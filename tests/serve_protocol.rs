//! End-to-end protocol tests for the `xring-serve` daemon: concurrent
//! clients get deterministic designs, malformed input fails structured,
//! deadlines degrade instead of hanging, overload sheds with 429, and
//! `GET /metrics` stays a valid Prometheus 0.0.4 exposition throughout.
//!
//! Every test starts its own in-process [`Server`] on an ephemeral port
//! and drains it before returning, so the suite is parallel-safe and
//! leaves no threads behind.

use std::time::{Duration, Instant};

use xring::core::DegradationPolicy;
use xring::serve::{client, ServeConfig, Server};

/// The slice of a `/synth` response that must be identical across
/// repeated submissions of the same spec: everything between the label
/// and the per-request timing fields (degradation, audit, full report).
fn deterministic_part(body: &str) -> &str {
    let start = body.find("\"degradation\"").expect("degradation field");
    let end = body.rfind(",\"queue_us\"").expect("queue_us field");
    &body[start..end]
}

fn synth_body(label: &str, wl: usize) -> String {
    format!(
        "{{\"label\": \"{label}\", \"net\": {{\"named\": \"proton_8\"}}, \
         \"options\": {{\"max_wavelengths\": {wl}}}}}"
    )
}

#[test]
fn concurrent_clients_get_deterministic_responses() {
    let mut server = Server::start(ServeConfig {
        workers: 2,
        max_inflight: 4,
        queue_depth: 16,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 6;
    let responses: Vec<(usize, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..PER_CLIENT {
                        let wl = [2usize, 4, 8][(c + i) % 3];
                        let (status, body) = client::http_request(
                            addr,
                            "POST",
                            "/synth",
                            &synth_body(&format!("c{c}-{i}"), wl),
                        )
                        .expect("request reaches the daemon");
                        assert_eq!(status, 200, "dropped non-shed request: {body}");
                        out.push((wl, body));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    // Zero dropped requests (all 200 above), and every response for the
    // same spec carries the identical design report and audit verdict,
    // no matter which client/handler/cache path produced it.
    assert_eq!(responses.len(), CLIENTS * PER_CLIENT);
    for wl in [2usize, 4, 8] {
        let bodies: Vec<&String> = responses
            .iter()
            .filter(|(w, _)| *w == wl)
            .map(|(_, b)| b)
            .collect();
        assert!(bodies.len() >= 2);
        for body in &bodies {
            assert!(
                body.contains("\"audit\":{\"clean\":true"),
                "missing audit verdict: {body}"
            );
            assert!(
                body.contains("\"degradation\":\"exact\""),
                "missing degradation level: {body}"
            );
            assert_eq!(deterministic_part(body), deterministic_part(bodies[0]));
        }
    }
    assert_eq!(server.metrics().shed(), 0);
    server.shutdown();
}

#[test]
fn malformed_requests_fail_structured_not_fatal() {
    let mut server = Server::start(ServeConfig::default()).expect("daemon starts");
    let addr = server.addr();

    for (body, status_want, code) in [
        ("{ not json", 400, "bad_json"),
        ("[1,2,3]", 400, "bad_request"),
        ("{\"net\": {\"named\": \"warp_9\"}}", 422, "unknown_network"),
        (
            "{\"net\": {\"named\": \"proton_8\"}, \"bogus\": 1}",
            400,
            "unknown_field",
        ),
        (
            "{\"net\": {\"named\": \"proton_8\"}, \"options\": {\"max_wavelengths\": 0}}",
            400,
            "bad_request",
        ),
    ] {
        let (status, resp) =
            client::http_request(addr, "POST", "/synth", body).expect("request reaches the daemon");
        assert_eq!(status, status_want, "{body} -> {resp}");
        assert!(
            resp.contains(&format!("\"code\":\"{code}\"")),
            "{body} -> {resp}"
        );
    }

    // Unroutable paths and wrong methods are structured errors too.
    let (status, _) = client::http_request(addr, "GET", "/nope", "").expect("reachable");
    assert_eq!(status, 404);
    let (status, _) = client::http_request(addr, "GET", "/synth", "").expect("reachable");
    assert_eq!(status, 405);

    // The daemon survived all of it.
    let (status, body) =
        client::http_request(addr, "POST", "/synth", &synth_body("after", 4)).expect("reachable");
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

#[test]
fn expired_deadline_degrades_instead_of_hanging() {
    // A 1 ms default deadline cannot fit a cold MILP on a 20-node
    // irregular floorplan; with `allow` the fallback chain must answer
    // (degraded) rather than 504 or hang.
    let mut server = Server::start(ServeConfig {
        deadline: Some(Duration::from_millis(1)),
        degradation: DegradationPolicy::Allow,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr();

    let t0 = Instant::now();
    let (status, body) = client::http_request(
        addr,
        "POST",
        "/synth",
        "{\"label\": \"tight\", \
         \"net\": {\"irregular\": {\"n\": 20, \"die_um\": 9000, \"seed\": 7}}, \
         \"options\": {\"max_wavelengths\": 8}}",
    )
    .expect("request reaches the daemon");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "deadline-exceeded request took {:?}",
        t0.elapsed()
    );
    assert_eq!(status, 200, "{body}");
    assert!(
        !body.contains("\"degradation\":\"exact\""),
        "a 1 ms budget cannot be met exactly: {body}"
    );
    assert!(body.contains("\"fallback_reason\":\""), "{body}");
    assert!(server.metrics().degraded() >= 1);

    // The same request with the policy overridden to `forbid` is a
    // structured 504, not a hang.
    let (status, body) = client::http_request(
        addr,
        "POST",
        "/synth",
        "{\"label\": \"strict\", \
         \"net\": {\"irregular\": {\"n\": 20, \"die_um\": 9000, \"seed\": 8}}, \
         \"options\": {\"max_wavelengths\": 8, \"degradation\": \"forbid\"}}",
    )
    .expect("request reaches the daemon");
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("\"code\":\"deadline_exceeded\""), "{body}");
    server.shutdown();
}

#[test]
fn overload_sheds_with_429_past_max_inflight() {
    // One handler, rendezvous queue: while the handler is busy, any
    // further /synth must shed immediately.
    let mut server = Server::start(ServeConfig {
        workers: 1,
        max_inflight: 1,
        queue_depth: 0,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr();

    // Occupy the single handler with a slow batch: distinct cold
    // irregular floorplans, serially on one engine worker.
    let slow = std::thread::spawn(move || {
        let jobs: Vec<String> = (0..6)
            .map(|i| {
                format!(
                    "{{\"label\": \"slow-{i}\", \
                     \"net\": {{\"irregular\": {{\"n\": 24, \"die_um\": 9000, \"seed\": {i}}}}}, \
                     \"options\": {{\"max_wavelengths\": 8}}}}"
                )
            })
            .collect();
        let body = format!("{{\"jobs\": [{}]}}", jobs.join(","));
        client::http_request(addr, "POST", "/batch", &body).expect("slow batch completes")
    });

    // /healthz bypasses admission, so it reports the saturation we are
    // waiting for even though the daemon cannot admit anything.
    let saturated = loop {
        let (status, body) = client::http_request(addr, "GET", "/healthz", "").expect("healthz");
        assert_eq!(status, 200);
        if body.contains("\"inflight\":1") {
            break true;
        }
        if slow.is_finished() {
            break false;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(saturated, "slow batch finished before saturation was seen");

    let (status, body) = client::http_request(addr, "POST", "/synth", &synth_body("shed-me", 2))
        .expect("shed response still answered");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("\"code\":\"shed\""), "{body}");
    assert!(server.metrics().shed() >= 1);

    let (status, body) = slow.join().expect("slow client");
    assert_eq!(status, 200, "{body}");

    // Load gone: the daemon admits again. Recovery is eventually
    // consistent — with a rendezvous queue the handler must park back
    // on the channel after writing the batch response before try_send
    // can succeed — so poll briefly instead of asserting first-shot.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let (status, body) = loop {
        let resp = client::http_request(addr, "POST", "/synth", &synth_body("after", 2))
            .expect("post-load request");
        if resp.0 != 429 || std::time::Instant::now() >= deadline {
            break resp;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

#[test]
fn spared_requests_survive_synthesis_and_reach_the_metrics() {
    let mut server = Server::start(ServeConfig::default()).expect("daemon starts");
    let addr = server.addr();

    // A spared request: the daemon releases the design only after the
    // synthesizer's exhaustive single-fault survivability proof.
    let (status, body) = client::http_request(
        addr,
        "POST",
        "/synth",
        "{\"label\": \"spared\", \"net\": {\"named\": \"proton_8\"}, \
         \"options\": {\"max_wavelengths\": 8, \"spares\": 1, \
          \"traffic\": {\"hotspot\": {\"hotspots\": 2, \"seed\": 7}}}}",
    )
    .expect("request reaches the daemon");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"audit\":{\"clean\":true"), "{body}");
    assert_eq!(server.metrics().spared(), 1);

    // A spare-less request leaves the counter alone.
    let (status, _) = client::http_request(addr, "POST", "/synth", &synth_body("plain", 4))
        .expect("request reaches the daemon");
    assert_eq!(status, 200);
    assert_eq!(server.metrics().spared(), 1);

    let (status, text) = client::http_request(addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    assert!(
        text.contains("xring_serve_spared_total 1"),
        "missing spared counter in:\n{text}"
    );
    server.shutdown();
}

#[test]
fn metrics_stay_a_valid_prometheus_exposition() {
    let mut server = Server::start(ServeConfig::default()).expect("daemon starts");
    let addr = server.addr();

    // Traffic across the status spectrum: ok, cache hit, client error.
    for body in [
        synth_body("m1", 2),
        synth_body("m2", 2),
        "{ nope".to_owned(),
    ] {
        let _ = client::http_request(addr, "POST", "/synth", &body).expect("request");
    }

    let (status, text) = client::http_request(addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    xring::obs::validate_exposition(&text).expect("valid Prometheus 0.0.4");
    for needle in [
        "# TYPE xring_serve_request_wall_us histogram",
        "xring_serve_request_wall_us_bucket",
        "xring_serve_request_wall_us_sum",
        "xring_serve_request_wall_us_count",
        "xring_serve_queue_wait_us_bucket",
        "# TYPE xring_serve_inflight gauge",
        "xring_serve_ok_total 2",
        "xring_serve_client_errors_total 1",
        "xring_cache_hits_total 1",
        "xring_cache_misses_total 1",
        "# TYPE xring_cache_bytes gauge",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    server.shutdown();
}
