//! Behaviour of the `#wl` sweep: the knob the paper turns to find each
//! router's best operating point.

use xring::core::{
    map_signals, plan_shortcuts, NetworkSpec, RingBuilder, ShortcutPlan, SynthesisError,
    SynthesisOptions, Synthesizer,
};
use xring::phot::{CrosstalkParams, LossParams, PowerParams};

#[test]
fn waveguide_count_is_monotone_in_wavelength_cap() {
    let net = NetworkSpec::psion_16();
    let ring = RingBuilder::new().build(&net).expect("ring");
    let sc = plan_shortcuts(&net, &ring.cycle);
    let mut last = usize::MAX;
    for wl in [2usize, 4, 8, 16] {
        let plan = map_signals(&net, &ring.cycle, &sc, wl, 0).expect("mapped");
        let count = plan.ring_waveguides.len();
        assert!(
            count <= last,
            "#wl={wl}: {count} waveguides > previous {last}"
        );
        last = count;
    }
}

#[test]
fn every_sweep_point_is_synthesizable() {
    let net = NetworkSpec::psion_16();
    for wl in 1..=16 {
        let result = Synthesizer::new(SynthesisOptions::with_wavelengths(wl)).synthesize(&net);
        assert!(result.is_ok(), "#wl={wl} failed: {result:?}");
        let design = result.expect("checked");
        assert!(design.plan.wavelengths_used() <= wl.max(4));
    }
}

#[test]
fn wavelength_budget_error_is_reported_cleanly() {
    let net = NetworkSpec::psion_16();
    let ring = RingBuilder::new().build(&net).expect("ring");
    // 1 wavelength x 1 waveguide cannot carry 240 signals.
    let err = map_signals(&net, &ring.cycle, &ShortcutPlan::empty(), 1, 1);
    match err {
        Err(SynthesisError::WavelengthBudgetExceeded {
            max_wavelengths: 1,
            max_waveguides: 1,
        }) => {}
        other => panic!("expected budget error, got {other:?}"),
    }
}

#[test]
fn reports_are_deterministic() {
    // The whole pipeline is deterministic: synthesizing twice must give
    // identical metrics (times aside).
    let net = NetworkSpec::psion_16();
    let loss = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    let power = PowerParams::default();
    let mk = || {
        Synthesizer::new(SynthesisOptions::with_wavelengths(14))
            .synthesize(&net)
            .expect("synthesis succeeds")
            .report("d", &loss, Some(&xtalk), &power)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.num_wavelengths, b.num_wavelengths);
    assert_eq!(a.worst_il_db, b.worst_il_db);
    assert_eq!(a.worst_path_len_mm, b.worst_path_len_mm);
    assert_eq!(a.worst_path_crossings, b.worst_path_crossings);
    assert_eq!(a.total_power_w, b.total_power_w);
    assert_eq!(a.noisy_signal_count, b.noisy_signal_count);
    assert_eq!(a.worst_snr_db, b.worst_snr_db);
}

#[test]
fn single_wavelength_forces_one_signal_per_lane_pair() {
    let net = NetworkSpec::proton_8();
    let ring = RingBuilder::new().build(&net).expect("ring");
    let plan = map_signals(&net, &ring.cycle, &ShortcutPlan::empty(), 1, 0).expect("mapped");
    for wg in &plan.ring_waveguides {
        assert_eq!(wg.lanes.len(), 1);
    }
    // All 56 signals still routed.
    assert_eq!(plan.routes.len(), 56);
}
