//! End-to-end acceptance suite for incremental re-synthesis.
//!
//! Pins the three properties the incremental layer promises on the
//! N=16 irregular fixture used by the `regress` edit-loop scenario:
//!
//! 1. **Determinism** — re-synthesizing an edited spec from cached
//!    phase artifacts is byte-identical to a cold full synthesis of
//!    the same final spec.
//! 2. **Dirty-suffix-only recompute** — a single-demand edit replays
//!    the ring and shortcut phases verbatim (no `ring-milp` /
//!    `shortcut` spans in the trace) and recomputes exactly the
//!    mapping → opening → PDN suffix.
//! 3. **Fault containment** (`--features fault-inject`) — a phase
//!    artifact corrupted mid-edit is detected by the audit, evicted,
//!    and the request falls back to a cold synthesis with the same
//!    byte-identical result.

use xring::core::{NetworkSpec, SynthesisOptions, Traffic};
use xring::engine::{Engine, SynthesisJob};
use xring::obs;

/// The pinned edit-loop fixture: the 16-node irregular placement with
/// 8 wavelengths, and the same spec with its first demand pair dropped.
fn fixture() -> (SynthesisJob, SynthesisJob) {
    let net = NetworkSpec::irregular(16, 8_000, 5).expect("valid placement");
    let options = SynthesisOptions::with_wavelengths(8);
    let mut pairs = options.traffic.pairs(&net);
    pairs.remove(0);
    let mut edited_options = options.clone();
    edited_options.traffic = Traffic::Custom(pairs);
    (
        SynthesisJob::new("edit-base", net.clone(), options),
        SynthesisJob::new("edit", net, edited_options),
    )
}

#[test]
fn incremental_edit_is_byte_identical_to_cold_synthesis() {
    let (base, edited) = fixture();

    // Cold reference: a fresh engine synthesizes the edited spec with
    // nothing cached.
    let cold = Engine::new()
        .with_workers(1)
        .resynthesize(&edited, &edited)
        .expect("pinned edit workload is feasible");
    assert!(!cold.cache_hit);
    assert_eq!(cold.phases_reused, 0, "fresh engine has nothing to reuse");

    // Incremental: the base run seeds the artifact store, then the
    // edit replays the clean prefix (ring + shortcut) from it.
    let engine = Engine::new().with_workers(1);
    engine
        .resynthesize(&base, &base)
        .expect("pinned edit workload is feasible");
    let warm = engine
        .resynthesize(&base, &edited)
        .expect("pinned edit workload is feasible");
    assert!(!warm.cache_hit, "edited spec is not a whole-design hit");
    assert_eq!(
        warm.phases_reused, 2,
        "a traffic edit replays ring + shortcut"
    );
    assert!(warm.design.provenance.audit.is_clean());
    assert_eq!(
        warm.design.describe(),
        cold.design.describe(),
        "incremental edit must be byte-identical to a cold synthesis"
    );
}

#[test]
fn edit_recomputes_only_the_dirty_suffix_of_the_phase_dag() {
    let _lock = obs::test_guard();
    let (base, edited) = fixture();
    let engine = Engine::new().with_workers(1);
    engine
        .resynthesize(&base, &base)
        .expect("pinned edit workload is feasible");

    // Trace only the edit: the seed run above stays outside the window.
    obs::start();
    let out = engine
        .resynthesize(&base, &edited)
        .expect("pinned edit workload is feasible");
    let trace = obs::finish();
    assert_eq!(out.phases_reused, 2);

    // Replayed phases never re-enter their compute spans...
    for phase in ["ring-milp", "shortcut"] {
        let count = trace.spans.iter().filter(|s| s.name == phase).count();
        assert_eq!(count, 0, "replayed phase {phase} recomputed {count}x");
    }
    // ...while the dirty suffix recomputes exactly once each.
    for phase in ["mapping", "opening", "pdn"] {
        let count = trace.spans.iter().filter(|s| s.name == phase).count();
        assert_eq!(count, 1, "dirty phase {phase} ran {count}x");
    }
    assert_eq!(trace.total("incremental.phase_hits"), 2);
    assert_eq!(trace.total("incremental.phase_misses"), 3);
    assert_eq!(trace.total("incremental.fallbacks"), 0);
}

/// A mapping artifact corrupted between the seed run and the edit: the
/// edit (an openings toggle, which keeps ring/shortcut/mapping keys
/// clean) would replay the damaged plan, so the audit must catch it,
/// evict the artifacts and re-run cold — same bytes as an honest cold
/// synthesis, no error surfaced to the caller.
#[cfg(feature = "fault-inject")]
#[test]
fn corrupted_artifact_mid_edit_falls_back_to_cold_synthesis() {
    use xring::core::{PhaseId, PhaseKeys};

    let _lock = obs::test_guard();
    let (base, _) = fixture();
    let mut edited = base.clone();
    edited.label = "edit-no-openings".to_owned();
    edited.options.openings = false;

    let engine = Engine::new().with_workers(1);
    engine
        .resynthesize(&base, &base)
        .expect("pinned edit workload is feasible");

    // The mapping key ignores the openings flag, so the edit would
    // replay this (now damaged) artifact verbatim.
    let keys = PhaseKeys::compute(&base.net, &base.options);
    assert!(
        engine
            .cache()
            .corrupt_artifact(PhaseId::Mapping, keys.mapping),
        "seed run must have persisted a mapping artifact"
    );

    obs::start();
    let out = engine
        .resynthesize(&base, &edited)
        .expect("corruption must degrade to a cold run, not an error");
    let trace = obs::finish();
    assert_eq!(trace.total("incremental.fallbacks"), 1);
    assert_eq!(
        out.phases_reused, 0,
        "the fallback is a cold run: nothing counts as reused"
    );
    assert!(out.design.provenance.audit.is_clean());

    let cold = Engine::new()
        .with_workers(1)
        .resynthesize(&edited, &edited)
        .expect("pinned edit workload is feasible");
    assert_eq!(
        out.design.describe(),
        cold.design.describe(),
        "the fallback result must match an honest cold synthesis"
    );
}
