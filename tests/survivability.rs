//! Device-fault survivability acceptance suite.
//!
//! The contract under test: synthesis with one spare of each class
//! (`SpareConfig::uniform(1)`) produces, on every tier-1 fixture, a
//! design for which *every* enumerated single-device fault — each MRR
//! drop, each waveguide-segment break, each wavelength-channel loss —
//! leaves the post-failure audit clean with 100 % of demands served.
//! The synthesizer already proves this internally before releasing the
//! design; this suite re-derives the proof independently through the
//! public fault API, and checks that a zero-spare design scores a
//! strictly lower fault margin in the engine's Pareto fault sweep.

use xring::core::{
    audit_design_under_fault, enumerate_single_faults, verify_single_fault_survivability,
    NetworkSpec, RingAlgorithm, SpareConfig, SynthesisOptions, Synthesizer, Traffic,
};
use xring::engine::Engine;
use xring::phot::CrosstalkParams;

/// Synthesizes `net` under `options` + one spare of each class and
/// audits every enumerated single-fault scenario through the public
/// fault API.
fn assert_single_fault_survivable(label: &str, net: &NetworkSpec, options: SynthesisOptions) {
    let options = options.with_spares(SpareConfig::uniform(1));
    let design = Synthesizer::new(options.clone())
        .synthesize(net)
        .unwrap_or_else(|e| panic!("{label}: synthesis failed: {e}"));
    // The spare channel must actually be reserved: mapping stays within
    // the reduced budget.
    assert!(
        design.plan.wavelengths_used() < options.max_wavelengths,
        "{label}: no dark spare channel left ({} of {} used)",
        design.plan.wavelengths_used(),
        options.max_wavelengths
    );
    let faults = enumerate_single_faults(&design);
    assert!(!faults.is_empty(), "{label}: nothing enumerated");
    for fault in faults {
        let audit = audit_design_under_fault(&design, fault, &options, None);
        assert!(
            audit.survived,
            "{label}: {fault} not survived: {}",
            audit.report.summary()
        );
        assert_eq!(
            audit.served_fraction(),
            1.0,
            "{label}: {fault} dropped demands"
        );
    }
}

#[test]
fn proton_8_with_one_spare_survives_every_single_fault() {
    assert_single_fault_survivable(
        "proton_8",
        &NetworkSpec::proton_8(),
        SynthesisOptions::with_wavelengths(8),
    );
}

#[test]
fn psion_8_with_one_spare_survives_every_single_fault() {
    assert_single_fault_survivable(
        "psion_8",
        &NetworkSpec::psion_8(),
        SynthesisOptions::with_wavelengths(8),
    );
}

#[test]
fn proton_16_with_one_spare_survives_every_single_fault() {
    assert_single_fault_survivable(
        "proton_16",
        &NetworkSpec::proton_16(),
        SynthesisOptions::with_wavelengths(16),
    );
}

#[test]
fn psion_16_with_one_spare_survives_every_single_fault() {
    assert_single_fault_survivable(
        "psion_16",
        &NetworkSpec::psion_16(),
        SynthesisOptions::with_wavelengths(16),
    );
}

#[test]
fn psion_32_heuristic_sparse_traffic_survives_every_single_fault() {
    // 32 nodes with all-to-all exact synthesis is a bench-tier workload;
    // the survivability contract is exercised here with the heuristic
    // ring and a locality-dominated traffic pattern.
    let mut options = SynthesisOptions::with_wavelengths(8);
    options.ring_algorithm = RingAlgorithm::Heuristic;
    options.traffic = Traffic::NearestNeighbors(3);
    assert_single_fault_survivable("psion_32", &NetworkSpec::psion_32(), options);
}

#[test]
fn seeded_traffic_generators_compose_with_spares() {
    let mut options = SynthesisOptions::with_wavelengths(8);
    options.traffic = Traffic::Hotspot {
        hotspots: 2,
        seed: 7,
    };
    assert_single_fault_survivable("proton_8/hotspot", &NetworkSpec::proton_8(), options);

    let mut options = SynthesisOptions::with_wavelengths(6);
    options.traffic = Traffic::Permutation { seed: 11 };
    assert_single_fault_survivable("proton_8/permutation", &NetworkSpec::proton_8(), options);
}

#[test]
fn zero_spare_design_fails_the_exhaustive_verification() {
    let options = SynthesisOptions::with_wavelengths(8);
    let design = Synthesizer::new(options.clone())
        .synthesize(&NetworkSpec::proton_8())
        .expect("synthesized");
    let report = verify_single_fault_survivability(&design, &options, None);
    assert!(report.scenarios > 0);
    assert!(
        !report.fully_survivable(),
        "a zero-spare design cannot survive an MRR drop"
    );
    assert!(report.fault_margin() < 1.0);
    assert!(report.min_served_fraction < 1.0);
    assert!(report.worst.is_some());
}

#[test]
fn fault_sweep_pareto_ranks_zero_spares_strictly_below_one_spare() {
    let engine = Engine::new();
    let result = engine
        .fault_sweep(
            &NetworkSpec::proton_8(),
            &SynthesisOptions::with_wavelengths(8),
            &[SpareConfig::default(), SpareConfig::uniform(1)],
            Some(&CrosstalkParams::default()),
        )
        .expect("sweep");
    assert_eq!(result.points.len(), 2);
    let zero = &result.points[0];
    let one = &result.points[1];
    assert!(
        zero.fault_margin < one.fault_margin,
        "zero-spare margin {} not strictly below spared margin {}",
        zero.fault_margin,
        one.fault_margin
    );
    assert_eq!(one.fault_margin, 1.0, "worst: {:?}", one.worst);
    assert_eq!(one.min_served_fraction, 1.0);
    // proton_8 at #wl=8 can be fully noise-free, in which case there is
    // honestly no SNR to report; when one exists it must be finite.
    assert!(one.worst_post_snr_db.is_none_or(f64::is_finite));
    // The fully-survivable level has the best margin, so it cannot be
    // dominated: it must appear in the Pareto frontier.
    assert!(one.pareto);
    assert!(result
        .frontier()
        .any(|p| p.spares == SpareConfig::uniform(1)));
}
