//! Parallel-search determinism acceptance at the ring-MILP and full
//! synthesis level: `--solver-threads 1/2/8` must produce the same
//! objective bits, the same design bytes, and the same final optimality
//! gap on every tier-1 ring-MILP fixture. The parallel branch-and-bound
//! batches frontier nodes, solves their relaxations concurrently, and
//! merges results in a fixed node-id order, so the explored tree — and
//! therefore everything derived from it — is thread-count invariant.
//!
//! ci.sh runs this suite as its determinism gate.

use xring::core::{NetworkSpec, RingBuilder, SynthesisOptions, Synthesizer};

fn fixtures() -> Vec<(&'static str, NetworkSpec)> {
    vec![
        (
            "grid2x2",
            NetworkSpec::regular_grid(2, 2, 2_000).expect("grid"),
        ),
        (
            "grid3x3",
            NetworkSpec::regular_grid(3, 3, 2_000).expect("grid"),
        ),
        ("proton_8", NetworkSpec::proton_8()),
        ("psion_8", NetworkSpec::psion_8()),
        ("psion_16", NetworkSpec::psion_16()),
        (
            "irr16_s5",
            NetworkSpec::irregular(16, 8_000, 5).expect("net"),
        ),
        (
            "irr16_s7",
            NetworkSpec::irregular(16, 8_000, 7).expect("net"),
        ),
        (
            "irr12_s13",
            NetworkSpec::irregular(12, 6_000, 13).expect("net"),
        ),
    ]
}

#[test]
fn ring_milp_is_bit_deterministic_across_thread_counts() {
    for (name, net) in fixtures() {
        let base = RingBuilder::new()
            .with_solver_threads(1)
            .build(&net)
            .unwrap_or_else(|e| panic!("{name}: 1-thread build failed: {e}"));
        for threads in [2usize, 8] {
            let out = RingBuilder::new()
                .with_solver_threads(threads)
                .build(&net)
                .unwrap_or_else(|e| panic!("{name}: {threads}-thread build failed: {e}"));
            // Objective: exact bits, not a tolerance — the merged search
            // must take the identical pivot path.
            assert_eq!(
                base.stats.milp_objective.to_bits(),
                out.stats.milp_objective.to_bits(),
                "{name}: objective differs at {threads} threads ({} vs {})",
                base.stats.milp_objective,
                out.stats.milp_objective
            );
            assert_eq!(
                base.cycle.order(),
                out.cycle.order(),
                "{name}: tour differs at {threads} threads"
            );
            assert_eq!(
                base.stats.milp_nodes, out.stats.milp_nodes,
                "{name}: node count differs at {threads} threads"
            );
            assert_eq!(
                base.stats.lp_solves, out.stats.lp_solves,
                "{name}: LP solve count differs at {threads} threads"
            );
            assert_eq!(
                base.stats.lazy_cuts, out.stats.lazy_cuts,
                "{name}: lazy-cut count differs at {threads} threads"
            );
            // Final gap and the event-stream shape (counts, not wall
            // times — elapsed is the one legitimately nondeterministic
            // field).
            let summary = |o: &Option<xring::core::ConvergenceSummary>| {
                o.as_ref().map(|c| {
                    (
                        c.final_gap.map(f64::to_bits),
                        c.incumbent_events,
                        c.nodes,
                        c.events,
                    )
                })
            };
            assert_eq!(
                summary(&base.stats.convergence),
                summary(&out.stats.convergence),
                "{name}: convergence telemetry differs at {threads} threads"
            );
        }
    }
}

#[test]
fn synthesized_design_bytes_are_thread_count_invariant() {
    // Full pipeline on the deep-tree irregular fixtures: the rendered
    // design document (ring order, lane occupancy, shortcuts, openings,
    // PDN) must be byte-identical across thread counts.
    for seed in [5u64, 7] {
        let net = NetworkSpec::irregular(16, 8_000, seed).expect("net");
        let reference =
            Synthesizer::new(SynthesisOptions::with_wavelengths(8).with_solver_threads(1))
                .synthesize(&net)
                .expect("1-thread synthesis")
                .describe();
        for threads in [2usize, 8] {
            let design = Synthesizer::new(
                SynthesisOptions::with_wavelengths(8).with_solver_threads(threads),
            )
            .synthesize(&net)
            .expect("parallel synthesis")
            .describe();
            assert_eq!(
                reference, design,
                "seed {seed}: design bytes differ at {threads} threads"
            );
        }
    }
}
