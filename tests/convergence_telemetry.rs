//! End-to-end solver convergence telemetry: a synthesis run with a
//! progress sink installed must stream well-ordered convergence events
//! (incumbents, bounds, monotone gaps, one terminal event per solve),
//! surface a per-design `ConvergenceSummary`, and render a valid
//! Prometheus text-format snapshot of the run's histograms.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use xring::milp::progress::{clear_sink, install_sink};
use xring::milp::{ProgressEvent, ProgressKind, ProgressSink};
use xring::obs;
use xring_core::{NetworkSpec, SynthesisOptions, Synthesizer};

/// A sink that records every event, tagged with its solve id.
#[derive(Default)]
struct CaptureSink {
    events: Mutex<Vec<(u64, ProgressEvent)>>,
}

impl ProgressSink for CaptureSink {
    fn emit(&self, solve_id: u64, event: &ProgressEvent) {
        self.events
            .lock()
            .expect("capture lock")
            .push((solve_id, event.clone()));
    }
}

fn synthesize_proton_8() {
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
        .synthesize(&NetworkSpec::proton_8())
        .expect("synthesis succeeds");
    assert!(design.provenance.audit.is_clean());
}

#[test]
fn sink_sees_ordered_convergence_events_with_monotone_gaps() {
    let _lock = obs::test_guard();
    let sink = Arc::new(CaptureSink::default());
    install_sink(sink.clone());
    synthesize_proton_8();
    clear_sink();
    let events = sink.events.lock().expect("capture lock");
    assert!(!events.is_empty(), "no convergence events reached the sink");

    let mut by_solve: BTreeMap<u64, Vec<&ProgressEvent>> = BTreeMap::new();
    for (solve, event) in events.iter() {
        by_solve.entry(*solve).or_default().push(event);
    }
    let mut incumbents = 0usize;
    for (solve, events) in &by_solve {
        // Exactly one terminal event, and it comes last.
        let finals = events
            .iter()
            .filter(|e| e.kind == ProgressKind::Final)
            .count();
        assert_eq!(finals, 1, "solve {solve}: {finals} terminal events");
        assert_eq!(events.last().expect("non-empty").kind, ProgressKind::Final);
        incumbents += events
            .iter()
            .filter(|e| e.kind == ProgressKind::Incumbent)
            .count();

        // Within a solve: elapsed and node counts never move backwards,
        // the optimality gap never widens, the best bound never drops.
        let mut last_gap = f64::INFINITY;
        let mut last_bound = f64::NEG_INFINITY;
        for pair in events.windows(2) {
            assert!(pair[0].elapsed <= pair[1].elapsed, "solve {solve}");
            assert!(pair[0].nodes <= pair[1].nodes, "solve {solve}");
        }
        for e in events {
            if let Some(gap) = e.gap {
                assert!(
                    gap <= last_gap + 1e-9,
                    "solve {solve}: gap widened {last_gap} -> {gap}"
                );
                last_gap = gap;
            }
            if let Some(bound) = e.best_bound {
                assert!(
                    bound >= last_bound - 1e-9,
                    "solve {solve}: bound dropped {last_bound} -> {bound}"
                );
                last_bound = bound;
            }
        }
    }
    assert!(incumbents >= 1, "no incumbent event in any solve");
}

#[test]
fn convergence_summary_follows_telemetry_activation() {
    let _lock = obs::test_guard();
    // Telemetry off: no collector is attached, the stats stay lean.
    let off = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
        .synthesize(&NetworkSpec::proton_8())
        .expect("synthesis succeeds");
    assert_eq!(off.ring_stats.convergence, None);

    // Tracing on: the ring MILP carries its convergence summary.
    obs::start();
    let on = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
        .synthesize(&NetworkSpec::proton_8())
        .expect("synthesis succeeds");
    let trace = obs::finish();
    let conv = on
        .ring_stats
        .convergence
        .expect("traced run records convergence");
    assert!(conv.events > 0);
    assert!(conv.incumbent_events >= 1);
    assert!(conv.time_to_first_incumbent.is_some());
    let gap = conv.final_gap.expect("final event carries a gap");
    assert!((0.0..=1.0).contains(&gap), "gap {gap} out of range");

    // The same run recorded the tentpole latency histograms.
    for name in ["synth.wall_us", "milp.solve_us"] {
        let h = trace.hist(name).expect("histogram recorded");
        assert!(h.count >= 1, "{name} empty");
    }
}

#[test]
fn prometheus_snapshot_of_a_synthesis_run_is_wellformed() {
    let _lock = obs::test_guard();
    obs::start();
    synthesize_proton_8();
    let trace = obs::finish();
    let mut out = Vec::new();
    trace.write_prometheus(&mut out).expect("prometheus export");
    let text = String::from_utf8(out).expect("utf8");

    // Histograms for the synthesis wall time and the MILP solves.
    for name in ["xring_synth_wall_us", "xring_milp_solve_us"] {
        assert!(
            text.contains(&format!("# TYPE {name} histogram")),
            "{name} missing from:\n{text}"
        );
    }

    // Every histogram: cumulative buckets ending at +Inf == _count, and
    // a matching _sum line.
    let mut last_le: BTreeMap<String, u64> = BTreeMap::new();
    let mut inf: BTreeMap<String, u64> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut sums: BTreeMap<String, u64> = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("SP-separated sample");
        if let Some((base, le)) = name
            .strip_suffix("\"}")
            .and_then(|n| n.split_once("_bucket{le=\""))
        {
            let count: u64 = value.parse().expect("bucket count");
            let prev = last_le.get(base).copied().unwrap_or(0);
            assert!(count >= prev, "bucket counts not cumulative: {line}");
            last_le.insert(base.to_owned(), count);
            if le == "+Inf" {
                inf.insert(base.to_owned(), count);
            } else {
                let _: u64 = le.parse().expect("numeric le");
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            counts.insert(base.to_owned(), value.parse().expect("count"));
        } else if let Some(base) = name.strip_suffix("_sum") {
            sums.insert(base.to_owned(), value.parse().expect("sum"));
        }
    }
    assert!(!inf.is_empty(), "no histogram rendered");
    for (base, total) in &inf {
        assert_eq!(Some(total), counts.get(base), "{base}: +Inf != _count");
        assert!(sums.contains_key(base), "{base}: missing _sum");
    }
}
