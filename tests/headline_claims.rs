//! Experiment E4 and the paper's headline comparative claims, asserted as
//! tests so regressions in any crate surface immediately.

use xring::core::{NetworkSpec, SynthesisOptions, Synthesizer};
use xring::phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};

fn xring_report(net: &NetworkSpec, wl: usize) -> RouterReport {
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(wl))
        .synthesize(net)
        .expect("synthesis succeeds");
    design.report(
        "XRing",
        &LossParams::oring(),
        Some(&CrosstalkParams::nikdast()),
        &PowerParams::default(),
    )
}

#[test]
fn more_than_98_percent_of_signals_are_noise_free() {
    // "more than 98% of signals in XRing do not suffer first-order
    // crosstalk noise" — checked on all three paper sizes.
    for (net, wl) in [
        (NetworkSpec::psion_8(), 8),
        (NetworkSpec::psion_16(), 14),
        (NetworkSpec::psion_32(), 24),
    ] {
        let r = xring_report(&net, wl);
        let f = r.noise_free_fraction().expect("noise evaluated");
        assert!(
            f > 0.98,
            "n={}: only {:.1}% noise-free",
            net.len(),
            f * 100.0
        );
    }
}

#[test]
fn xring_beats_ornoc_on_power_and_snr() {
    // Table II's qualitative claim: "for both ring routers, we vary the
    // settings of #wl and pick the one with the minimum power and maximum
    // SNR" — so the comparison runs at each router's best sweep setting,
    // exactly like the table harness.
    let sections = xring_bench::table2(&xring::engine::Engine::new()).expect("table2");
    for (title, rows) in &sections {
        let ornoc = &rows[0];
        let xring = &rows[1];
        assert!(ornoc.label.starts_with("ORNoC") && xring.label.starts_with("XRing"));
        if title.contains("min. power") {
            // The paper's own 8-node rows tie on power (both 0.04 W);
            // allow a 10% band there, require a strict win at 16/32.
            let slack = if title.contains("8-node") { 1.10 } else { 1.0 };
            assert!(
                xring.total_power_w.expect("pdn") <= ornoc.total_power_w.expect("pdn") * slack,
                "{title}: XRing power not lower"
            );
        }
        let xr_snr = xring.worst_snr_db.unwrap_or(f64::INFINITY);
        let or_snr = ornoc.worst_snr_db.expect("ornoc suffers noise");
        assert!(xr_snr > or_snr, "{title}: SNR not better");
        assert!(
            xring.noisy_signal_count.expect("evaluated")
                < ornoc.noisy_signal_count.expect("evaluated"),
            "{title}: #s not lower"
        );
    }
}

#[test]
fn xring_beats_oring_on_the_16_node_network() {
    // Table III's qualitative claim, at each router's best sweep setting.
    let sections = xring_bench::table3(&xring::engine::Engine::new()).expect("table3");
    for (title, rows) in &sections {
        let oring = &rows[0];
        let xring = &rows[1];
        assert!(oring.label.starts_with("ORing") && xring.label.starts_with("XRing"));
        if title.contains("min. power") {
            assert!(
                xring.total_power_w.expect("pdn") <= oring.total_power_w.expect("pdn"),
                "{title}: XRing power not lower"
            );
        }
        assert!(
            xring.worst_snr_db.unwrap_or(f64::INFINITY)
                > oring.worst_snr_db.expect("oring suffers noise"),
            "{title}: SNR not better"
        );
        // "87% of signals [in ORing] suffer the first-order noise power,
        // while only 1% of signals in XRing are affected" — we require
        // the same order-of-magnitude separation.
        let or_frac = 1.0 - oring.noise_free_fraction().expect("evaluated");
        let xr_frac = 1.0 - xring.noise_free_fraction().expect("evaluated");
        assert!(or_frac > 0.5, "{title}: ORing noisy fraction {or_frac}");
        assert!(xr_frac < 0.02, "{title}: XRing noisy fraction {xr_frac}");
    }
}

#[test]
fn xring_synthesizes_16_nodes_within_one_second() {
    // "XRing automatically synthesizes the 16-node ring router within one
    // second."
    let net = NetworkSpec::psion_16();
    let t0 = std::time::Instant::now();
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(14))
        .synthesize(&net)
        .expect("synthesis succeeds");
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs_f64() < 1.0,
        "took {elapsed:?} (paper: < 1 s)"
    );
    assert_eq!(design.layout.signals.len(), 240);
}

#[test]
fn worst_case_il_reduction_vs_crossbars_exceeds_40_percent() {
    // "Compared to the design tools for crossbar routers, XRing decreases
    // the worst-case insertion loss by more than 40%."
    use xring::baselines::{crossbar_report, CrossbarKind, LayoutStyle};
    let net = NetworkSpec::proton_16();
    let loss = LossParams::proton_plus();
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(14).without_pdn())
        .synthesize(&net)
        .expect("synthesis succeeds");
    let xr = design.report("XRing", &loss, None, &PowerParams::default());
    for (kind, style) in [
        (CrossbarKind::LambdaRouter, LayoutStyle::ProtonPlus),
        (CrossbarKind::LambdaRouter, LayoutStyle::PlanarOnoc),
        (CrossbarKind::Light, LayoutStyle::ToPro),
    ] {
        let cb = crossbar_report(kind, style, &net, &loss);
        let reduction = 1.0 - xr.worst_il_db / cb.worst_il_db;
        assert!(
            reduction > 0.40,
            "vs {}: only {:.0}% reduction",
            cb.label,
            reduction * 100.0
        );
    }
}
