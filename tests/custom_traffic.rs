//! Integration tests for the custom-traffic extension (the paper assumes
//! all-to-all; sparse workloads should need strictly fewer resources).

use xring::core::{NetworkSpec, NodeId, SynthesisOptions, Synthesizer, Traffic};
use xring::phot::{CrosstalkParams, LossParams, PowerParams};

fn synth(net: &NetworkSpec, traffic: Traffic, wl: usize) -> xring::core::XRingDesign {
    Synthesizer::new(SynthesisOptions {
        traffic,
        ..SynthesisOptions::with_wavelengths(wl)
    })
    .synthesize(net)
    .expect("synthesis succeeds")
}

#[test]
fn custom_traffic_routes_exactly_the_requested_pairs() {
    let net = NetworkSpec::psion_16();
    let pairs = vec![
        (NodeId(0), NodeId(15)),
        (NodeId(15), NodeId(0)),
        (NodeId(3), NodeId(12)),
        (NodeId(7), NodeId(8)),
    ];
    let design = synth(&net, Traffic::Custom(pairs.clone()), 8);
    assert_eq!(design.layout.signals.len(), pairs.len());
    for sig in &design.layout.signals {
        assert!(pairs.contains(&(sig.from, sig.to)));
    }
    assert_eq!(design.layout.validate(), Ok(()));
}

#[test]
fn sparse_traffic_needs_fewer_resources_than_all_to_all() {
    let net = NetworkSpec::psion_16();
    let loss = LossParams::oring();
    let power = PowerParams::default();

    let full = synth(&net, Traffic::AllToAll, 8);
    let sparse = synth(&net, Traffic::NearestNeighbors(3), 8);

    assert!(sparse.plan.ring_waveguides.len() <= full.plan.ring_waveguides.len());
    let r_full = full.report("full", &loss, None, &power);
    let r_sparse = sparse.report("sparse", &loss, None, &power);
    assert!(
        r_sparse.total_power_w.expect("pdn") < r_full.total_power_w.expect("pdn"),
        "sparse traffic should cost less laser power"
    );
    assert!(r_sparse.num_wavelengths <= r_full.num_wavelengths);
}

#[test]
fn nearest_neighbor_traffic_is_noise_free_and_crossing_free() {
    let net = NetworkSpec::psion_16();
    let design = synth(&net, Traffic::NearestNeighbors(4), 8);
    let report = design.report(
        "nn4",
        &LossParams::oring(),
        Some(&CrosstalkParams::nikdast()),
        &PowerParams::default(),
    );
    assert_eq!(report.worst_path_crossings, 0);
    assert_eq!(report.noisy_signal_count, Some(0));
}

#[test]
fn empty_custom_traffic_produces_an_empty_router() {
    let net = NetworkSpec::proton_8();
    let design = synth(&net, Traffic::Custom(Vec::new()), 4);
    assert_eq!(design.layout.signals.len(), 0);
    let report = design.report(
        "empty",
        &LossParams::default(),
        Some(&CrosstalkParams::default()),
        &PowerParams::default(),
    );
    assert_eq!(report.signal_count, 0);
    assert_eq!(report.noise_free_fraction(), Some(1.0));
}
