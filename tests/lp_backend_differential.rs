//! Backend differential acceptance at the ring-MILP level: the dense
//! reference tableau and the revised bounded-variable simplex must find
//! the same optimal edge-assignment objective on every tier-1 fixture.
//! The *final tours* may differ — the MILP allows sub-cycles that a
//! heuristic merges afterwards (paying extra length), and alternate
//! optimal assignments merge into different rings — so only the MILP
//! objective is compared here; random-LP agreement down to 1e-6 is
//! covered by the seeded suite in `crates/milp/tests`.

use xring::core::{LpBackendKind, NetworkSpec, RingBuilder};

fn fixtures() -> Vec<(&'static str, NetworkSpec)> {
    vec![
        (
            "grid2x2",
            NetworkSpec::regular_grid(2, 2, 2_000).expect("grid"),
        ),
        (
            "grid3x3",
            NetworkSpec::regular_grid(3, 3, 2_000).expect("grid"),
        ),
        ("proton_8", NetworkSpec::proton_8()),
        ("psion_8", NetworkSpec::psion_8()),
        ("psion_16", NetworkSpec::psion_16()),
        (
            "irr16_s5",
            NetworkSpec::irregular(16, 8_000, 5).expect("net"),
        ),
        (
            "irr16_s7",
            NetworkSpec::irregular(16, 8_000, 7).expect("net"),
        ),
        (
            "irr12_s13",
            NetworkSpec::irregular(12, 6_000, 13).expect("net"),
        ),
    ]
}

#[test]
fn backends_agree_on_the_ring_milp_optimum_for_every_fixture() {
    for (name, net) in fixtures() {
        let dense = RingBuilder::new()
            .with_lp_backend(LpBackendKind::Dense)
            .build(&net)
            .unwrap_or_else(|e| panic!("{name}: dense build failed: {e}"));
        let revised = RingBuilder::new()
            .with_lp_backend(LpBackendKind::Revised)
            .build(&net)
            .unwrap_or_else(|e| panic!("{name}: revised build failed: {e}"));
        assert!(
            (dense.stats.milp_objective - revised.stats.milp_objective).abs() < 1e-6,
            "{name}: backends disagree on the MILP optimum ({} vs {})",
            dense.stats.milp_objective,
            revised.stats.milp_objective
        );
        assert_eq!(
            dense.cycle.len(),
            net.len(),
            "{name}: dense ring incomplete"
        );
        assert_eq!(
            revised.cycle.len(),
            net.len(),
            "{name}: revised ring incomplete"
        );
        // The dense backend exports no basis, so it must never count
        // warm-start activity; the revised backend's counters must at
        // least be consistent.
        assert_eq!(dense.stats.lp_warm_starts, 0, "{name}");
        assert_eq!(dense.stats.lp_warm_eligible, 0, "{name}");
        assert!(
            revised.stats.lp_warm_starts <= revised.stats.lp_warm_eligible,
            "{name}: warm starts exceed eligible solves"
        );
    }
}

#[test]
fn revised_backend_warm_starts_nearly_every_branching_child() {
    // Summed over the fixtures whose branch-and-bound actually branches
    // (the regular floorplans mostly solve at the root), the revised
    // backend must reuse the parent basis on > 80 % of child solves —
    // the ISSUE's headline warm-start acceptance, asserted here on the
    // same irregular nets the regression suite pins.
    let mut warm = 0usize;
    let mut eligible = 0usize;
    for seed in [5u64, 7, 13] {
        let net = NetworkSpec::irregular(16, 8_000, seed).expect("net");
        let out = RingBuilder::new()
            .with_lp_backend(LpBackendKind::Revised)
            .build(&net)
            .expect("revised build");
        warm += out.stats.lp_warm_starts;
        eligible += out.stats.lp_warm_eligible;
    }
    assert!(eligible > 0, "no fixture branched");
    let rate = warm as f64 / eligible as f64;
    assert!(
        rate > 0.8,
        "warm-start rate {rate:.3} (= {warm}/{eligible})"
    );
}
