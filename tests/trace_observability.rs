//! End-to-end observability: a traced synthesis run must produce a
//! well-formed JSONL event stream covering every pipeline phase, and a
//! folded export that parses as flamegraph collapsed stacks.

use xring::obs;
use xring_core::{NetworkSpec, SynthesisOptions, Synthesizer};
use xring_phot::{CrosstalkParams, LossParams, PowerParams};

/// One full traced run: synthesize the paper's 8-node floorplan and
/// evaluate it, exactly what `xring synth --trace out.jsonl` records.
fn traced_synthesis() -> obs::Trace {
    let _lock = obs::test_guard();
    obs::start();
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
        .synthesize(&NetworkSpec::proton_8())
        .expect("synthesis succeeds");
    let _report = design.report(
        "e2e",
        &LossParams::default(),
        Some(&CrosstalkParams::default()),
        &PowerParams::default(),
    );
    obs::finish()
}

#[test]
fn jsonl_trace_covers_every_pipeline_phase() {
    let trace = traced_synthesis();
    let mut out = Vec::new();
    trace
        .write(obs::TraceFormat::Jsonl, &mut out)
        .expect("jsonl export");
    let text = String::from_utf8(out).expect("utf8");

    let mut spans = 0usize;
    let mut totals = 0usize;
    let mut hists = 0usize;
    for line in text.lines() {
        // Well-formed JSONL: one object per line, balanced unescaped
        // quotes, a known record type.
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        let unescaped = line
            .replace("\\\\", "")
            .replace("\\\"", "")
            .matches('"')
            .count();
        assert_eq!(unescaped % 2, 0, "unbalanced quotes: {line}");
        if line.starts_with(r#"{"type":"span""#) {
            spans += 1;
        } else if line.starts_with(r#"{"type":"totals""#) {
            totals += 1;
        } else if line.starts_with(r#"{"type":"hist""#) {
            hists += 1;
        } else {
            assert!(line.starts_with(r#"{"type":"gauge""#), "line: {line}");
        }
    }
    assert!(spans >= 5, "expected a span per phase, got {spans}");
    assert_eq!(totals, 1, "exactly one trailing totals line");
    assert!(hists >= 1, "expected latency histogram lines");

    // The acceptance phases from the issue, all present by name.
    for phase in ["ring-milp", "shortcut", "audit", "evaluation"] {
        assert!(
            text.contains(&format!(r#""name":"{phase}""#)),
            "phase {phase} missing from:\n{text}"
        );
        assert!(trace.inclusive_ns(phase) > 0, "phase {phase} has no time");
    }

    // Phase spans nest under the synthesis root in pipeline order.
    let synth = trace.find("synth").expect("synth root span");
    let ring = trace.find("ring-milp").expect("ring-milp span");
    let shortcut = trace.find("shortcut").expect("shortcut span");
    assert_eq!(ring.parent, synth.id);
    assert_eq!(shortcut.parent, synth.id);
    assert!(ring.start_ns <= shortcut.start_ns, "ring before shortcuts");
}

#[test]
fn folded_trace_parses_as_collapsed_stacks() {
    let trace = traced_synthesis();
    let mut out = Vec::new();
    trace
        .write(obs::TraceFormat::Folded, &mut out)
        .expect("folded export");
    let text = String::from_utf8(out).expect("utf8");

    assert!(!text.is_empty(), "folded export is empty");
    let mut chains = Vec::new();
    for line in text.lines() {
        // flamegraph.pl's collapsed format: "frame;frame;... <count>".
        let (stack, count) = line.rsplit_once(' ').expect("stack SP count");
        assert!(count.parse::<u64>().is_ok(), "bad count in: {line}");
        assert!(
            stack.split(';').all(|frame| !frame.is_empty()),
            "empty frame in: {line}"
        );
        chains.push(stack);
    }
    // The phase chain survives the collapse.
    assert!(
        chains.iter().any(|c| c.contains("synth;ring-milp")),
        "no synth;ring-milp chain in:\n{text}"
    );
    assert!(
        chains.iter().any(|c| c.contains("synth;audit")),
        "no synth;audit chain in:\n{text}"
    );
    // Distinct chains are emitted once (aggregated, not repeated).
    let mut sorted = chains.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), chains.len(), "duplicate chain lines");
}
