//! End-to-end integration tests across all crates: synthesize full
//! routers on several floorplans and check the structural invariants the
//! paper claims.

use xring::core::{NetworkSpec, RingAlgorithm, RouteKind, Station, SynthesisOptions, Synthesizer};
use xring::phot::{CrosstalkParams, LossParams, PathElement, PowerParams, SignalId};

fn synthesize(net: &NetworkSpec, wl: usize) -> xring::core::XRingDesign {
    Synthesizer::new(SynthesisOptions::with_wavelengths(wl))
        .synthesize(net)
        .expect("synthesis succeeds")
}

#[test]
fn every_floorplan_routes_all_signals() {
    for (net, wl) in [
        (NetworkSpec::proton_8(), 8),
        (NetworkSpec::psion_16(), 14),
        (NetworkSpec::irregular(10, 10_000, 3).expect("valid"), 10),
        (NetworkSpec::regular_grid(3, 4, 1_500).expect("valid"), 12),
    ] {
        let design = synthesize(&net, wl);
        assert_eq!(design.layout.signals.len(), net.signal_count());
        assert_eq!(design.plan.validate(), Ok(()));
    }
}

#[test]
fn all_traces_end_at_a_photodetector() {
    let net = NetworkSpec::psion_16();
    let design = synthesize(&net, 14);
    for i in 0..design.layout.signals.len() {
        let trace = design.layout.trace(SignalId(i as u32));
        assert!(
            matches!(trace.last(), Some(PathElement::Photodetector)),
            "signal {i} does not terminate at a detector"
        );
        let drops = trace
            .iter()
            .filter(|e| matches!(e, PathElement::MrrDrop))
            .count();
        assert!((1..=2).contains(&drops), "signal {i} has {drops} drops");
    }
}

#[test]
fn xring_ring_paths_are_crossing_free() {
    // The realized XRing layout must contain no Crossing stations on any
    // ring waveguide (shortcut CSEs are the only crossings allowed).
    let net = NetworkSpec::psion_16();
    let design = synthesize(&net, 14);
    for (wi, w) in design.layout.waveguides.iter().enumerate() {
        if !w.closed {
            continue; // shortcut wires may host a CSE crossing
        }
        for s in &w.stations {
            assert!(
                !matches!(s, Station::Crossing { .. }),
                "ring waveguide {wi} contains a crossing"
            );
        }
    }
    assert_eq!(design.cycle.residual_crossings(), 0);
}

#[test]
fn every_ring_waveguide_is_opened() {
    for (net, wl) in [
        (NetworkSpec::proton_8(), 8),
        (NetworkSpec::psion_16(), 14),
        (NetworkSpec::psion_32(), 24),
    ] {
        let design = synthesize(&net, wl);
        assert_eq!(design.opening_stats.unopened, 0, "n={}", net.len());
        assert!(design
            .plan
            .ring_waveguides
            .iter()
            .all(|w| w.opening.is_some()));
    }
}

#[test]
fn pdn_reaches_every_sender_without_crossings() {
    let net = NetworkSpec::psion_16();
    let design = synthesize(&net, 14);
    let pdn = design.pdn.as_ref().expect("pdn synthesized");
    assert!(pdn.crossed_waveguides.is_empty());
    for sig in &design.layout.signals {
        assert!(
            sig.pdn_loss_db > 0.0,
            "sender of {} -> {} unsupplied",
            sig.from,
            sig.to
        );
    }
}

#[test]
fn report_columns_are_consistent() {
    let net = NetworkSpec::psion_16();
    let design = synthesize(&net, 14);
    let report = design.report(
        "XRing/16",
        &LossParams::oring(),
        Some(&CrosstalkParams::nikdast()),
        &PowerParams::default(),
    );
    assert_eq!(report.signal_count, 240);
    assert!(report.num_wavelengths <= 14);
    assert!(report.worst_il_db > 0.0);
    assert!(report.worst_path_len_mm > 0.0);
    assert_eq!(report.worst_path_crossings, 0);
    assert!(report.total_power_w.expect("pdn modelled") > 0.0);
    let f = report.noise_free_fraction().expect("noise evaluated");
    assert!(f > 0.98, "headline claim violated: {f}");
}

#[test]
fn heuristic_pipeline_handles_large_networks() {
    // 64 nodes is beyond the paper's experiments; the heuristic ring
    // keeps it tractable.
    let net = NetworkSpec::regular_grid(8, 8, 1_000).expect("valid");
    let design = Synthesizer::new(SynthesisOptions {
        ring_algorithm: RingAlgorithm::Heuristic,
        ..SynthesisOptions::with_wavelengths(32)
    })
    .synthesize(&net)
    .expect("synthesis succeeds");
    assert_eq!(design.layout.signals.len(), 64 * 63);
    assert_eq!(design.plan.validate(), Ok(()));
}

#[test]
fn shortcut_signals_use_shortcut_routes() {
    let net = NetworkSpec::psion_16();
    let design = synthesize(&net, 14);
    for (i, r) in design.plan.routes.iter().enumerate() {
        if let RouteKind::ShortcutDirect { shortcut } = r.kind {
            let s = &design.shortcuts.shortcuts[shortcut];
            assert!(
                (s.a == r.from && s.b == r.to) || (s.b == r.from && s.a == r.to),
                "signal {i} on foreign shortcut"
            );
            // The realized trace must be as long as the corridor, not the
            // ring arc it replaced.
            let trace = design.layout.trace(SignalId(i as u32));
            let len: i64 = trace
                .iter()
                .map(|e| match e {
                    PathElement::Propagate { length_um } => *length_um,
                    _ => 0,
                })
                .sum();
            assert_eq!(len, s.length_um, "signal {i} length mismatch");
        }
    }
}

#[test]
fn disabling_steps_still_yields_valid_designs() {
    let net = NetworkSpec::proton_8();
    for (shortcuts, openings, pdn) in [
        (false, false, false),
        (true, false, false),
        (false, true, true),
        (true, true, false),
    ] {
        let design = Synthesizer::new(SynthesisOptions {
            shortcuts,
            openings,
            pdn,
            ..SynthesisOptions::with_wavelengths(8)
        })
        .synthesize(&net)
        .expect("synthesis succeeds");
        assert_eq!(design.layout.signals.len(), 56);
        assert_eq!(design.layout.pdn_modelled, pdn);
        assert_eq!(design.plan.validate(), Ok(()));
    }
}
