//! End-to-end request-scoped observability: every response carries a
//! unique request id (header and JSON body), inbound trace ids are
//! honored, per-request span trees reach the flight recorder with
//! per-phase timings, the tail sampler keeps full traces only for
//! unusual (slow/degraded/shed/errored) requests, and the SLO series
//! render as valid Prometheus.
//!
//! Every test starts its own in-process [`Server`] on an ephemeral port
//! and drains it before returning, so the suite is parallel-safe.

use std::collections::HashSet;
use std::time::Duration;

use xring::core::DegradationPolicy;
use xring::serve::{client, ServeConfig, Server, SloConfig};

fn synth_body(label: &str, wl: usize) -> String {
    format!(
        "{{\"label\": \"{label}\", \"net\": {{\"named\": \"proton_8\"}}, \
         \"options\": {{\"max_wavelengths\": {wl}}}}}"
    )
}

/// Pulls the `"request_id":"..."` value out of a JSON response body.
fn request_id_of(body: &str) -> &str {
    let start = body
        .find("\"request_id\":\"")
        .expect("response carries a request id")
        + "\"request_id\":\"".len();
    let end = body[start..].find('"').expect("terminated id") + start;
    &body[start..end]
}

/// Finds the echoed `x-request-id` response header.
fn header_id(headers: &[(String, String)]) -> &str {
    headers
        .iter()
        .find(|(n, _)| n == "x-request-id")
        .map(|(_, v)| v.as_str())
        .expect("every response carries x-request-id")
}

#[test]
fn concurrent_requests_get_unique_ids_and_recorded_span_trees() {
    let mut server = Server::start(ServeConfig {
        workers: 2,
        max_inflight: 4,
        queue_depth: 16,
        // A zero-latency objective makes every request "slow", so every
        // span trace is tail-sampled and visible for integrity checks.
        slo: SloConfig {
            latency_target: Duration::ZERO,
            ..SloConfig::default()
        },
        tail_capacity: 64,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 4;
    let ids: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..PER_CLIENT {
                        let wl = [2usize, 4, 8][(c + i) % 3];
                        let (status, headers, body) = client::http_request_full(
                            addr,
                            "POST",
                            "/synth",
                            &[],
                            &synth_body(&format!("c{c}-{i}"), wl),
                        )
                        .expect("request reaches the daemon");
                        assert_eq!(status, 200, "{body}");
                        // Header and body agree on the minted id.
                        assert_eq!(header_id(&headers), request_id_of(&body), "{body}");
                        out.push(request_id_of(&body).to_owned());
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    // Ids are unique across all concurrent connections and handlers.
    let unique: HashSet<&String> = ids.iter().collect();
    assert_eq!(unique.len(), CLIENTS * PER_CLIENT, "duplicate request ids");

    // Every request landed in the flight recorder with a per-phase
    // breakdown, and its tail-sampled span tree is structurally sound:
    // all lines are spans, every parent id is 0 or another span's id.
    for id in &ids {
        let (status, body) =
            client::http_request(addr, "GET", &format!("/debug/requests/{id}"), "")
                .expect("flight lookup");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"route\":\"/synth\""), "{body}");
        assert!(body.contains("\"phases\":{"), "{body}");
        // The serve-level request span is always present; cold requests
        // also record pipeline phases underneath it.
        assert!(body.contains("\"serve.request\""), "{body}");
        let trace_start = body.find("\"trace\":[").expect("trace attached") + "\"trace\":".len();
        let trace = &body[trace_start..body.len() - 1];
        let mut span_ids: HashSet<u64> = HashSet::new();
        let mut parents: Vec<u64> = Vec::new();
        for obj in trace.split("{\"type\":\"span\"").skip(1) {
            let field = |key: &str| -> u64 {
                let at = obj.find(key).expect("span field") + key.len();
                obj[at..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .expect("numeric span field")
            };
            span_ids.insert(field("\"id\":"));
            parents.push(field("\"parent\":"));
        }
        assert!(!span_ids.is_empty(), "empty span tree for {id}: {body}");
        for parent in parents {
            assert!(
                parent == 0 || span_ids.contains(&parent),
                "dangling parent {parent} in trace of {id}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn inbound_trace_ids_are_honored() {
    let mut server = Server::start(ServeConfig::default()).expect("daemon starts");
    let addr = server.addr();

    // W3C traceparent: the daemon adopts the trace-id field.
    let (status, headers, body) = client::http_request_full(
        addr,
        "POST",
        "/synth",
        &[(
            "traceparent",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        )],
        &synth_body("traced", 2),
    )
    .expect("request reaches the daemon");
    assert_eq!(status, 200, "{body}");
    assert_eq!(header_id(&headers), "4bf92f3577b34da6a3ce929d0e0e4736");
    assert_eq!(request_id_of(&body), "4bf92f3577b34da6a3ce929d0e0e4736");

    // A bare x-request-id works too, and a malformed one is replaced by
    // a minted id rather than echoed verbatim.
    let (_, headers, _) = client::http_request_full(
        addr,
        "POST",
        "/synth",
        &[("x-request-id", "000000000000000000000000deadbeef")],
        &synth_body("keyed", 2),
    )
    .expect("request reaches the daemon");
    assert_eq!(header_id(&headers), "000000000000000000000000deadbeef");
    let (_, headers, _) = client::http_request_full(
        addr,
        "POST",
        "/synth",
        &[("x-request-id", "not-hex")],
        &synth_body("bad-id", 2),
    )
    .expect("request reaches the daemon");
    assert_ne!(header_id(&headers), "not-hex");
    assert_eq!(header_id(&headers).len(), 32);
    server.shutdown();
}

#[test]
fn tail_sampler_keeps_unusual_requests_and_skips_fast_cached_ones() {
    // Default latency objective (1 s) with a 1 ms synthesis deadline and
    // `allow`: the cold irregular request degrades (tail-worthy), while
    // the repeated proton_8 spec is answered fast from cache (not).
    let mut server = Server::start(ServeConfig {
        deadline: Some(Duration::from_millis(1)),
        degradation: DegradationPolicy::Allow,
        ..ServeConfig::default()
    })
    .expect("daemon starts");
    let addr = server.addr();

    let (status, _, body) = client::http_request_full(
        addr,
        "POST",
        "/synth",
        &[],
        "{\"label\": \"degrade-me\", \
         \"net\": {\"irregular\": {\"n\": 20, \"die_um\": 9000, \"seed\": 7}}, \
         \"options\": {\"max_wavelengths\": 8}}",
    )
    .expect("request reaches the daemon");
    assert_eq!(status, 200, "{body}");
    assert!(!body.contains("\"degradation\":\"exact\""), "{body}");
    let degraded_id = request_id_of(&body).to_owned();

    // Warm the cache, then take the cached (fast, exact) answer.
    for label in ["warm", "cached"] {
        let (status, _, resp) =
            client::http_request_full(addr, "POST", "/synth", &[], &synth_body(label, 2))
                .expect("request reaches the daemon");
        assert_eq!(status, 200, "{resp}");
    }
    let (_, _, cached_resp) =
        client::http_request_full(addr, "POST", "/synth", &[], &synth_body("cached2", 2))
            .expect("request reaches the daemon");
    assert!(cached_resp.contains("\"cache_hit\":true"), "{cached_resp}");
    let cached_id = request_id_of(&cached_resp).to_owned();

    // The degraded request is in /debug/slow with a retained full
    // trace; the fast cached one is not.
    let (status, slow) =
        client::http_request(addr, "GET", "/debug/slow", "").expect("debug slow reachable");
    assert_eq!(status, 200);
    assert!(
        slow.contains(&degraded_id),
        "degraded request missing:\n{slow}"
    );
    assert!(
        !slow.contains(&cached_id),
        "cached request tail-sampled:\n{slow}"
    );
    let entry_at = slow.find(&degraded_id).expect("entry");
    assert!(
        slow[entry_at..].contains("{\"type\":\"span\""),
        "no retained trace for the degraded request:\n{slow}"
    );

    // Both are in the flight recorder (it keeps everything recent), and
    // only the degraded one is marked sampled.
    let (_, flight) =
        client::http_request(addr, "GET", "/debug/requests", "").expect("flight reachable");
    assert!(
        flight.contains(&degraded_id) && flight.contains(&cached_id),
        "{flight}"
    );
    // One record runs from its id to its trailing `"sampled":…}` pair
    // (`phases` is a nested object, so the first `}` is not the end).
    let record_of = |id: &str| {
        let tail = &flight[flight.find(id).expect("record present")..];
        let end = tail.find("\"sampled\":").expect("record fields");
        let close = tail[end..].find('}').expect("object end") + end + 1;
        tail[..close].to_owned()
    };
    assert!(record_of(&degraded_id).contains("\"degraded\":true"));
    assert!(record_of(&cached_id).contains("\"sampled\":false"));
    server.shutdown();
}

#[test]
fn slo_series_and_healthz_fields_are_live() {
    let mut server = Server::start(ServeConfig::default()).expect("daemon starts");
    let addr = server.addr();

    for label in ["s1", "s2"] {
        let (status, _) = client::http_request(addr, "POST", "/synth", &synth_body(label, 2))
            .expect("request reaches the daemon");
        assert_eq!(status, 200);
    }

    let (status, body) = client::http_request(addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    for needle in ["\"status\":\"ok\"", "\"uptime_s\":", "\"version\":\""] {
        assert!(body.contains(needle), "missing {needle:?} in {body}");
    }

    let (status, text) = client::http_request(addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    xring::obs::validate_exposition(&text).expect("valid Prometheus 0.0.4");
    for needle in [
        "xring_serve_slo_availability_good_total 2",
        "xring_serve_slo_availability_bad_total 0",
        "xring_serve_slo_latency_good_total",
        "# TYPE xring_serve_slo_availability_burn_rate_5m gauge",
        "xring_serve_slo_availability_burn_rate_1h",
        "xring_serve_slo_latency_burn_rate_5m",
        "xring_serve_slo_target_ppm 990000",
        "xring_serve_handler_panics_total 0",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    server.shutdown();
}
