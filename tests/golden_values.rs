//! Golden-value regression tests: tiny designs whose physics can be
//! computed by hand, asserted to ~1e-9 dB so any change to the evaluation
//! engine's arithmetic is caught immediately.

use xring::core::{NetworkSpec, NodeId, SynthesisOptions, Synthesizer, Traffic};
use xring::phot::{
    insertion_loss_db, LossBreakdown, LossParams, PathElement, PowerParams, SignalId,
};

/// 2x2 square, 1 mm pitch, a single diagonal signal, no PDN.
fn square_single_signal() -> xring::core::XRingDesign {
    let net = NetworkSpec::regular_grid(2, 2, 1_000).expect("valid");
    Synthesizer::new(SynthesisOptions {
        traffic: Traffic::Custom(vec![(NodeId(0), NodeId(3))]),
        shortcuts: false,
        pdn: false,
        ..SynthesisOptions::with_wavelengths(4)
    })
    .synthesize(&net)
    .expect("synthesis succeeds")
}

#[test]
fn single_diagonal_signal_loss_matches_hand_computation() {
    let design = square_single_signal();
    let trace = design.layout.trace(SignalId(0));
    let p = LossParams::default();
    let il = insertion_loss_db(&trace, &p);

    // Hand computation: the ring is the 4 mm square; nodes 0 and 3 are
    // ring-diagonal, so the signal travels two 1 mm edges. Each edge is a
    // straight segment whose station carries the junction turn into the
    // next edge (1 bend each). No other signal exists, so no through
    // MRRs; then the receiver drop and the photodetector.
    let b = LossBreakdown::of(&trace, &p);
    assert!((b.propagation_db - 0.274 * 0.2).abs() < 1e-12, "{b}");
    assert!((b.bend_db - 2.0 * 0.005).abs() < 1e-12, "{b}");
    assert_eq!(b.crossing_db, 0.0);
    assert_eq!(b.through_db, 0.0);
    assert!((b.drop_db - 0.5).abs() < 1e-12);
    assert!((b.photodetector_db - 0.1).abs() < 1e-12);
    let expect = 0.274 * 0.2 + 2.0 * 0.005 + 0.5 + 0.1;
    assert!((il - expect).abs() < 1e-12, "il = {il}, expect = {expect}");
}

#[test]
fn single_signal_report_columns_are_exact() {
    let design = square_single_signal();
    let report = design.report(
        "golden",
        &LossParams::default(),
        None,
        &PowerParams::default(),
    );
    assert_eq!(report.signal_count, 1);
    assert_eq!(report.num_wavelengths, 1);
    assert!((report.worst_path_len_mm - 2.0).abs() < 1e-12);
    assert_eq!(report.worst_path_crossings, 0);
}

#[test]
fn two_opposed_signals_share_a_wavelength_without_noise() {
    // 0 -> 3 and 3 -> 0 take complementary halves of the ring (or
    // opposite directions); either way they are arc-disjoint or on
    // different waveguides and must not interfere.
    let net = NetworkSpec::regular_grid(2, 2, 1_000).expect("valid");
    let design = Synthesizer::new(SynthesisOptions {
        traffic: Traffic::Custom(vec![(NodeId(0), NodeId(3)), (NodeId(3), NodeId(0))]),
        shortcuts: false,
        pdn: false,
        ..SynthesisOptions::with_wavelengths(4)
    })
    .synthesize(&net)
    .expect("synthesis succeeds");
    let ledger = design.layout.evaluate_noise(
        &LossParams::default(),
        &xring::phot::CrosstalkParams::default(),
    );
    assert_eq!(ledger.affected_signal_count(), 0);
    // Both signals travel exactly half the ring.
    for i in 0..2 {
        let len: i64 = design
            .layout
            .trace(SignalId(i))
            .iter()
            .map(|e| match e {
                PathElement::Propagate { length_um } => *length_um,
                _ => 0,
            })
            .sum();
        assert_eq!(len, 2_000, "signal {i}");
    }
}

#[test]
fn laser_power_formula_is_exact_for_one_signal() {
    // With a PDN, P = 10^((il_total + S)/10) mW for the single signal's
    // wavelength, where il_total includes the PDN loss to the sender.
    let net = NetworkSpec::regular_grid(2, 2, 1_000).expect("valid");
    let design = Synthesizer::new(SynthesisOptions {
        traffic: Traffic::Custom(vec![(NodeId(0), NodeId(3))]),
        shortcuts: false,
        ..SynthesisOptions::with_wavelengths(4)
    })
    .synthesize(&net)
    .expect("synthesis succeeds");
    let p = LossParams::default();
    let power = PowerParams::default();
    let report = design.report("golden", &p, None, &power);
    let il = insertion_loss_db(&design.layout.trace(SignalId(0)), &p);
    let pdn_loss = design.layout.signals[0].pdn_loss_db;
    let expect_w = 10f64.powf((il + pdn_loss + power.sensitivity_dbm) / 10.0) / 1_000.0;
    let got = report.total_power_w.expect("pdn modelled");
    assert!(
        (got - expect_w).abs() < 1e-15,
        "got {got}, expect {expect_w}"
    );
}
