//! Failure-injection tests: the layout validator must catch every class
//! of malformed layout, and every synthesized layout must pass it.

use xring::core::layout::{Hop, LayoutModel, SignalSpec, Station, Waveguide};
use xring::core::{NetworkSpec, NodeId, SynthesisOptions, Synthesizer};
use xring::phot::{SignalId, Wavelength};

fn minimal_layout() -> LayoutModel {
    let wl = Wavelength::new(0);
    LayoutModel {
        waveguides: vec![Waveguide {
            closed: false,
            stations: vec![
                Station::SenderTap { node: NodeId(0) },
                Station::Segment {
                    length_um: 1_000,
                    bends: 0,
                },
                Station::NodeTap {
                    node: NodeId(1),
                    drops: vec![(wl, SignalId(0))],
                },
            ],
        }],
        signals: vec![SignalSpec {
            from: NodeId(0),
            to: NodeId(1),
            wavelength: wl,
            hops: vec![Hop {
                waveguide: 0,
                from_station: 0,
                to_station: 2,
            }],
            pdn_loss_db: 0.0,
        }],
        pdn_modelled: false,
    }
}

#[test]
fn valid_minimal_layout_passes() {
    assert_eq!(minimal_layout().validate(), Ok(()));
}

#[test]
fn synthesized_layouts_pass_validation() {
    for (net, wl) in [
        (NetworkSpec::proton_8(), 8),
        (NetworkSpec::psion_16(), 14),
        (NetworkSpec::irregular(11, 9_000, 5).expect("valid"), 8),
    ] {
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(wl))
            .synthesize(&net)
            .expect("synthesis succeeds");
        assert_eq!(design.layout.validate(), Ok(()), "n = {}", net.len());
    }
}

#[test]
fn missing_drop_mrr_is_caught() {
    let mut m = minimal_layout();
    if let Station::NodeTap { drops, .. } = &mut m.waveguides[0].stations[2] {
        drops.clear();
    }
    let err = m.validate().expect_err("must fail");
    assert!(err.contains("drop MRR missing"), "{err}");
}

#[test]
fn hop_from_wrong_station_kind_is_caught() {
    let mut m = minimal_layout();
    m.signals[0].hops[0].from_station = 1; // a Segment, not a SenderTap
    let err = m.validate().expect_err("must fail");
    assert!(err.contains("non-sender"), "{err}");
}

#[test]
fn hop_across_opening_is_caught() {
    let mut m = minimal_layout();
    m.waveguides[0].stations.insert(1, Station::Opening);
    // to_station shifted by the insertion.
    m.signals[0].hops[0].to_station = 3;
    let err = m.validate().expect_err("must fail");
    assert!(err.contains("opening"), "{err}");
}

#[test]
fn same_wavelength_passthrough_is_caught() {
    let wl = Wavelength::new(0);
    let mut m = minimal_layout();
    // Insert a foreign same-λ drop between sender and receiver.
    m.waveguides[0].stations.insert(
        1,
        Station::NodeTap {
            node: NodeId(9),
            drops: vec![(wl, SignalId(7))],
        },
    );
    m.signals[0].hops[0].to_station = 3;
    let err = m.validate().expect_err("must fail");
    assert!(err.contains("same-wavelength"), "{err}");
}

#[test]
fn empty_hops_are_caught() {
    let mut m = minimal_layout();
    m.signals[0].hops.clear();
    let err = m.validate().expect_err("must fail");
    assert!(err.contains("no hops"), "{err}");
}

#[test]
fn out_of_range_indices_are_caught() {
    let mut m = minimal_layout();
    m.signals[0].hops[0].waveguide = 5;
    assert!(m.validate().is_err());

    let mut m = minimal_layout();
    m.signals[0].hops[0].to_station = 99;
    assert!(m.validate().is_err());
}
