//! Failure-injection tests: the layout validator must catch every class
//! of malformed layout, and every synthesized layout must pass it.

use xring::core::layout::{Hop, LayoutModel, SignalSpec, Station, Waveguide};
use xring::core::{NetworkSpec, NodeId, SynthesisOptions, Synthesizer};
use xring::phot::{SignalId, Wavelength};

fn minimal_layout() -> LayoutModel {
    let wl = Wavelength::new(0);
    LayoutModel {
        waveguides: vec![Waveguide {
            closed: false,
            stations: vec![
                Station::SenderTap { node: NodeId(0) },
                Station::Segment {
                    length_um: 1_000,
                    bends: 0,
                },
                Station::NodeTap {
                    node: NodeId(1),
                    drops: vec![(wl, SignalId(0))],
                },
            ],
        }],
        signals: vec![SignalSpec {
            from: NodeId(0),
            to: NodeId(1),
            wavelength: wl,
            hops: vec![Hop {
                waveguide: 0,
                from_station: 0,
                to_station: 2,
            }],
            pdn_loss_db: 0.0,
        }],
        pdn_modelled: false,
    }
}

#[test]
fn valid_minimal_layout_passes() {
    assert_eq!(minimal_layout().validate(), Ok(()));
}

#[test]
fn synthesized_layouts_pass_validation() {
    for (net, wl) in [
        (NetworkSpec::proton_8(), 8),
        (NetworkSpec::psion_16(), 14),
        (NetworkSpec::irregular(11, 9_000, 5).expect("valid"), 8),
    ] {
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(wl))
            .synthesize(&net)
            .expect("synthesis succeeds");
        assert_eq!(design.layout.validate(), Ok(()), "n = {}", net.len());
        assert!(
            design.provenance.audit.is_clean(),
            "n = {}: {}",
            net.len(),
            design.provenance.audit.summary()
        );
    }
}

#[test]
fn ring_baselines_audit_clean() {
    use xring::baselines::{synthesize_oring, synthesize_ornoc};
    use xring::phot::{CrosstalkParams, LossParams, PowerParams};

    let loss = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    for net in [NetworkSpec::proton_8(), NetworkSpec::psion_16()] {
        let wl = net.len();
        for with_pdn in [false, true] {
            for (name, design) in [
                ("ORNoC", synthesize_ornoc(&net, wl, with_pdn, &loss, &xtalk)),
                ("ORing", synthesize_oring(&net, wl, with_pdn, &loss, &xtalk)),
            ] {
                let d = design.expect("baseline synthesizes");
                assert!(
                    d.audit.is_clean(),
                    "{name}/{} pdn={with_pdn}: {}",
                    net.len(),
                    d.audit.summary()
                );
                // The evaluated report must also sit inside physical
                // bounds, with and without crosstalk evaluation.
                for xt in [None, Some(&xtalk)] {
                    let report = d.report(name, &loss, xt, &PowerParams::default());
                    let bounds = xring::core::audit_report_bounds(&report);
                    assert!(
                        bounds.passed,
                        "{name}/{} pdn={with_pdn}: {}",
                        net.len(),
                        bounds.detail
                    );
                }
            }
        }
    }
}

#[test]
fn crossbar_baselines_are_non_blocking_and_bounded() {
    use xring::baselines::crossbar::{crossbar_report, CrossbarKind, LayoutStyle};
    use xring::phot::LossParams;

    for n in [4, 8, 16] {
        xring::baselines::lambda_router::verify_non_blocking(n)
            .unwrap_or_else(|c| panic!("λ-router n={n} collides: {c:?}"));
        xring::baselines::matrix_crossbar::verify_non_blocking(n)
            .unwrap_or_else(|c| panic!("matrix crossbar n={n} collides: {c:?}"));
    }
    let loss = LossParams::proton_plus();
    for net in [NetworkSpec::proton_8(), NetworkSpec::psion_16()] {
        for kind in [
            CrossbarKind::LambdaRouter,
            CrossbarKind::Gwor,
            CrossbarKind::Light,
        ] {
            for style in [
                LayoutStyle::ProtonPlus,
                LayoutStyle::PlanarOnoc,
                LayoutStyle::ToPro,
            ] {
                let report = crossbar_report(kind, style, &net, &loss);
                let bounds = xring::core::audit_report_bounds(&report);
                assert!(
                    bounds.passed,
                    "{}/{}: {}",
                    report.label,
                    net.len(),
                    bounds.detail
                );
            }
        }
    }
}

#[test]
fn missing_drop_mrr_is_caught() {
    let mut m = minimal_layout();
    if let Station::NodeTap { drops, .. } = &mut m.waveguides[0].stations[2] {
        drops.clear();
    }
    let err = m.validate().expect_err("must fail");
    assert!(err.contains("drop MRR missing"), "{err}");
}

#[test]
fn hop_from_wrong_station_kind_is_caught() {
    let mut m = minimal_layout();
    m.signals[0].hops[0].from_station = 1; // a Segment, not a SenderTap
    let err = m.validate().expect_err("must fail");
    assert!(err.contains("non-sender"), "{err}");
}

#[test]
fn hop_across_opening_is_caught() {
    let mut m = minimal_layout();
    m.waveguides[0].stations.insert(1, Station::Opening);
    // to_station shifted by the insertion.
    m.signals[0].hops[0].to_station = 3;
    let err = m.validate().expect_err("must fail");
    assert!(err.contains("opening"), "{err}");
}

#[test]
fn same_wavelength_passthrough_is_caught() {
    let wl = Wavelength::new(0);
    let mut m = minimal_layout();
    // Insert a foreign same-λ drop between sender and receiver.
    m.waveguides[0].stations.insert(
        1,
        Station::NodeTap {
            node: NodeId(9),
            drops: vec![(wl, SignalId(7))],
        },
    );
    m.signals[0].hops[0].to_station = 3;
    let err = m.validate().expect_err("must fail");
    assert!(err.contains("same-wavelength"), "{err}");
}

#[test]
fn empty_hops_are_caught() {
    let mut m = minimal_layout();
    m.signals[0].hops.clear();
    let err = m.validate().expect_err("must fail");
    assert!(err.contains("no hops"), "{err}");
}

#[test]
fn out_of_range_indices_are_caught() {
    let mut m = minimal_layout();
    m.signals[0].hops[0].waveguide = 5;
    assert!(m.validate().is_err());

    let mut m = minimal_layout();
    m.signals[0].hops[0].to_station = 99;
    assert!(m.validate().is_err());
}
