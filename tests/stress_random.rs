//! Randomized stress: many seeds × sizes × options through the whole
//! pipeline, checking only invariants (never absolute numbers).

use xring::core::{NetworkSpec, RingAlgorithm, SynthesisOptions, Synthesizer, Traffic};
use xring::phot::{CrosstalkParams, LossParams, PowerParams};
use xring::viz::{render_design, RenderOptions};

#[test]
fn forty_random_configurations_synthesize_cleanly() {
    let loss = LossParams::default();
    let xtalk = CrosstalkParams::default();
    let power = PowerParams::default();
    let mut checked = 0usize;

    for seed in 0..10u64 {
        for (n, wl) in [(6usize, 4usize), (9, 6), (12, 8), (15, 10)] {
            let net = NetworkSpec::irregular(n, 9_000, seed * 31 + 7).expect("valid");
            let algorithm = match seed % 3 {
                0 => RingAlgorithm::Milp,
                1 => RingAlgorithm::Heuristic,
                _ => RingAlgorithm::Perimeter,
            };
            let traffic = match seed % 2 {
                0 => Traffic::AllToAll,
                _ => Traffic::NearestNeighbors(3),
            };
            let design = Synthesizer::new(SynthesisOptions {
                ring_algorithm: algorithm,
                traffic: traffic.clone(),
                shortcuts: seed % 2 == 0,
                ..SynthesisOptions::with_wavelengths(wl)
            })
            .synthesize(&net)
            .unwrap_or_else(|e| panic!("seed {seed} n {n}: {e}"));

            // Invariants.
            assert_eq!(design.layout.signals.len(), traffic.signal_count(&net));
            assert_eq!(design.plan.validate(), Ok(()), "seed {seed} n {n}");
            assert_eq!(design.layout.validate(), Ok(()), "seed {seed} n {n}");
            let report = design.report("stress", &loss, Some(&xtalk), &power);
            assert!(report.worst_il_db.is_finite());
            if design.layout.signals.is_empty() {
                continue;
            }
            assert!(report.total_power_w.expect("pdn").is_finite());
            // Rendering never panics and stays well-formed.
            let svg = render_design(&design, &RenderOptions::default());
            assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
            checked += 1;
        }
    }
    assert!(checked >= 36, "only {checked} configs checked");
}

#[test]
fn degenerate_three_node_network_works() {
    let net = NetworkSpec::new(vec![
        xring::geom::Point::new(0, 0),
        xring::geom::Point::new(5_000, 0),
        xring::geom::Point::new(0, 5_000),
    ])
    .expect("valid");
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(4))
        .synthesize(&net)
        .expect("synthesis succeeds");
    assert_eq!(design.layout.signals.len(), 6);
    assert_eq!(design.layout.validate(), Ok(()));
}

#[test]
fn collinear_nodes_work() {
    // All nodes on one line: the "ring" degenerates to an out-and-back
    // corridor; everything must still route.
    let net = NetworkSpec::new(
        (0..6)
            .map(|i| xring::geom::Point::new(i * 2_000, 0))
            .collect(),
    )
    .expect("valid");
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(6))
        .synthesize(&net)
        .expect("synthesis succeeds");
    assert_eq!(design.layout.signals.len(), 30);
    assert_eq!(design.layout.validate(), Ok(()));
    let report = design.report(
        "collinear",
        &LossParams::default(),
        Some(&CrosstalkParams::default()),
        &PowerParams::default(),
    );
    assert!(report.worst_il_db > 0.0);
}
