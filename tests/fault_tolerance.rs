//! Fault-injection acceptance suite (`--features fault-inject`).
//!
//! The engine must complete every job of a batch even when a deterministic
//! fault plan injects simplex numerical failures, solver deadlines, worker
//! panics and cache corruption into a substantial fraction of the jobs:
//! no batch aborts, submission order preserved, failures isolated, and
//! every produced design audit-clean — exact where possible, provenance-
//! marked degraded otherwise.

use xring::core::{
    DegradationLevel, DegradationPolicy, LpBackendKind, NetworkSpec, SynthesisOptions,
};
use xring::engine::{Engine, FaultClass, FaultPlan, FaultRates, JobError, SynthesisJob};

/// 32 distinct jobs (8 `#wl` settings × shortcuts on/off × openings
/// on/off on the 8-node network), all allowing degradation.
fn jobs_32() -> Vec<SynthesisJob> {
    let net = NetworkSpec::proton_8();
    let mut jobs = Vec::new();
    for wl in 2..=9usize {
        for shortcuts in [true, false] {
            for openings in [true, false] {
                let mut options = SynthesisOptions::with_wavelengths(wl)
                    .with_degradation(DegradationPolicy::Allow);
                options.shortcuts = shortcuts;
                options.openings = openings;
                jobs.push(SynthesisJob::new(
                    format!("wl{wl}-s{}-o{}", shortcuts as u8, openings as u8),
                    net.clone(),
                    options,
                ));
            }
        }
    }
    assert_eq!(jobs.len(), 32);
    jobs
}

/// The suite's plan: chosen so that ≥ 30 % of the 32 jobs are faulted and
/// every fault class fires at least once (asserted below, so a future
/// RNG change cannot silently weaken the suite).
fn plan() -> FaultPlan {
    FaultPlan::new(0x00C0_FFEE).with_rates(FaultRates {
        numerical: 0.15,
        deadline: 0.12,
        panic: 0.10,
        cache_corruption: 0.10,
        device: 0.0,
    })
}

#[test]
fn faulted_batch_completes_every_job_with_audited_designs() {
    let plan = plan();
    let schedule = plan.schedule(32);
    let fired = schedule.iter().filter(|d| d.is_some()).count();
    assert!(
        fired * 10 >= 32 * 3,
        "plan too weak: only {fired}/32 jobs faulted"
    );
    for class in FaultClass::PROCESS {
        assert!(
            schedule.contains(&Some(class)),
            "plan never injects {class}"
        );
    }

    let engine = Engine::new().with_workers(4).with_fault_plan(plan);
    let jobs = jobs_32();
    let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
    let batch = engine.run_batch(jobs);

    assert_eq!(batch.outcomes.len(), 32, "batch aborted");
    let mut retried = 0;
    let mut heuristic = 0;
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        let out = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("job {i} ({}) failed: {e}", labels[i]));
        assert_eq!(out.label, labels[i], "job {i} out of order");
        assert!(
            out.design.provenance.audit.is_clean(),
            "job {i}: unaudited or dirty design: {}",
            out.design.provenance.audit.summary()
        );
        let level = out.design.provenance.degradation;
        match schedule[i] {
            // A numerical failure is recovered by the perturbed-objective
            // MILP retry: still optimal, marked as retried.
            Some(FaultClass::SimplexNumerical) => {
                assert_eq!(level, DegradationLevel::RetriedPerturbed, "job {i}");
                assert!(out.design.provenance.fallback_reason.is_some(), "job {i}");
            }
            // A solver deadline skips the retry (it would also time out)
            // and lands on the deadline-waived heuristic ring.
            Some(FaultClass::SolverDeadline) => {
                assert_eq!(level, DegradationLevel::Heuristic, "job {i}");
                let reason = out.design.provenance.fallback_reason.as_deref();
                assert!(
                    reason.is_some_and(|r| r.contains("deadline")),
                    "job {i}: {reason:?}"
                );
            }
            // A worker panic heals on the engine's retry attempt; cache
            // corruption of a not-yet-cached key is a no-op. Both yield
            // the exact design.
            Some(FaultClass::WorkerPanic | FaultClass::CacheCorruption) | None => {
                assert_eq!(level, DegradationLevel::Exact, "job {i}");
            }
            Some(FaultClass::DeviceFault) => {
                unreachable!("plan has a zero device-fault rate")
            }
        }
        match level {
            DegradationLevel::Exact => {}
            DegradationLevel::RetriedPerturbed => retried += 1,
            DegradationLevel::Heuristic => heuristic += 1,
        }
    }
    assert_eq!(batch.metrics.succeeded, 32);
    assert_eq!(batch.metrics.failed, 0);
    assert_eq!(batch.metrics.degraded_retried, retried);
    assert_eq!(batch.metrics.degraded_heuristic, heuristic);
    assert!(
        retried > 0 && heuristic > 0,
        "degradation paths unexercised"
    );

    // Second run on the same engine: the cache is now populated, so the
    // cache-corruption faults hit real entries. Validate-on-read must
    // evict every corrupted entry and re-synthesize; solver faults are
    // absorbed by cache hits; panics heal on retry.
    let corrupted = schedule
        .iter()
        .filter(|d| **d == Some(FaultClass::CacheCorruption))
        .count();
    let batch2 = engine.run_batch(jobs_32());
    assert_eq!(batch2.metrics.succeeded, 32);
    assert_eq!(batch2.metrics.failed, 0);
    assert_eq!(engine.cache().evictions(), corrupted);
    assert_eq!(batch2.metrics.cache_hits, 32 - corrupted);
    for (i, outcome) in batch2.outcomes.iter().enumerate() {
        let out = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("run 2 job {i} failed: {e}"));
        assert!(
            out.design.provenance.audit.is_clean(),
            "run 2 job {i}: dirty design"
        );
    }
}

#[test]
fn revised_backend_degrades_through_the_same_chain() {
    // Only numerical faults, with every job explicitly requesting the
    // revised simplex: a faulted job must recover through the perturbed
    // retry — which also swaps the LP kernel to the dense reference
    // backend, so a numerical failure is never retried on the kernel
    // that produced it — and clean jobs must stay exact.
    let plan = FaultPlan::new(0x0B5E_55ED).with_rates(FaultRates {
        numerical: 0.4,
        ..FaultRates::default()
    });
    let schedule = plan.schedule(12);
    assert!(
        schedule.iter().any(|d| d.is_some()) && schedule.iter().any(|d| d.is_none()),
        "need a mix of faulted and clean jobs"
    );

    let net = NetworkSpec::proton_8();
    let jobs: Vec<SynthesisJob> = (0..12)
        .map(|i| {
            SynthesisJob::new(
                format!("job{i}"),
                net.clone(),
                SynthesisOptions::with_wavelengths(2 + (i % 7))
                    .with_degradation(DegradationPolicy::Allow)
                    .with_lp_backend(LpBackendKind::Revised),
            )
        })
        .collect();
    let engine = Engine::new().with_workers(3).with_fault_plan(plan);
    let batch = engine.run_batch(jobs);

    assert_eq!(batch.metrics.failed, 0, "{}", batch.metrics.summary());
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        let out = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("job {i} failed: {e}"));
        assert!(out.design.provenance.audit.is_clean(), "job {i}");
        match schedule[i] {
            Some(FaultClass::SimplexNumerical) if !out.cache_hit => {
                assert_eq!(
                    out.design.provenance.degradation,
                    DegradationLevel::RetriedPerturbed,
                    "job {i}"
                );
            }
            _ => {}
        }
    }
    assert!(
        batch.metrics.degraded_retried > 0,
        "perturbed retry never exercised"
    );
}

#[test]
fn fault_pattern_is_deterministic_across_engines() {
    let levels = |batch: &xring::engine::BatchResult| -> Vec<DegradationLevel> {
        batch
            .outcomes
            .iter()
            .map(|o| o.as_ref().expect("job ok").design.provenance.degradation)
            .collect()
    };
    let a = Engine::new()
        .with_workers(2)
        .with_fault_plan(plan())
        .run_batch(jobs_32());
    let b = Engine::new()
        .with_workers(7)
        .with_fault_plan(plan())
        .run_batch(jobs_32());
    assert_eq!(levels(&a), levels(&b));
}

#[test]
fn forbid_policy_isolates_injected_failures() {
    // Only solver faults, high rate, and jobs that forbid degradation:
    // faulted jobs fail individually, neighbours are untouched.
    let plan = FaultPlan::new(0xDEAD_10CC).with_rates(FaultRates {
        numerical: 0.5,
        ..FaultRates::default()
    });
    let schedule = plan.schedule(8);
    assert!(
        schedule.iter().any(|d| d.is_some()) && schedule.iter().any(|d| d.is_none()),
        "need a mix of faulted and clean jobs"
    );

    let net = NetworkSpec::proton_8();
    let jobs: Vec<SynthesisJob> = (0..8)
        .map(|i| {
            SynthesisJob::new(
                format!("job{i}"),
                net.clone(),
                SynthesisOptions::with_wavelengths(2 + i),
            )
        })
        .collect();
    let engine = Engine::new().with_workers(3).with_fault_plan(plan);
    let batch = engine.run_batch(jobs);

    for (i, outcome) in batch.outcomes.iter().enumerate() {
        match schedule[i] {
            Some(FaultClass::SimplexNumerical) => {
                let err = outcome.as_ref().expect_err("faulted job must fail");
                assert!(
                    matches!(err, JobError::Synthesis(_)),
                    "job {i}: unexpected error {err}"
                );
            }
            _ => {
                let out = outcome
                    .as_ref()
                    .unwrap_or_else(|e| panic!("clean job {i} failed: {e}"));
                assert_eq!(out.design.provenance.degradation, DegradationLevel::Exact);
                assert!(out.design.provenance.audit.is_clean());
            }
        }
    }
    assert_eq!(
        batch.metrics.failed,
        schedule.iter().filter(|d| d.is_some()).count()
    );
}

#[test]
fn injected_device_faults_kill_zero_spare_jobs_but_not_spared_ones() {
    use xring::core::SpareConfig;
    // Every job draws a device fault: a seeded single-device scenario is
    // applied to the finished design and the job fails unless the
    // degraded design passes its post-failure audit.
    let plan = || FaultPlan::new(0x5AFE_C0DE).with_rates(FaultRates::default().with_device(1.0));
    let net = NetworkSpec::proton_8();
    let jobs = |spares: SpareConfig| -> Vec<SynthesisJob> {
        (0..6)
            .map(|i| {
                SynthesisJob::new(
                    format!("dev{i}"),
                    net.clone(),
                    SynthesisOptions::with_wavelengths(8).with_spares(spares),
                )
            })
            .collect()
    };

    // Zero spares: a struck MRR/segment/channel loses its demand and the
    // post-failure audit fails the job. All six jobs share one cache key,
    // so this also exercises the device check on the cache-hit path.
    let engine = Engine::new().with_workers(3).with_fault_plan(plan());
    let batch = engine.run_batch(jobs(SpareConfig::default()));
    assert!(
        batch.metrics.failed > 0,
        "no zero-spare job lost its scenario: {}",
        batch.metrics.summary()
    );
    for outcome in batch.outcomes.iter().filter(|o| o.is_err()) {
        let err = outcome.as_ref().expect_err("filtered");
        assert!(
            matches!(err, JobError::Synthesis(_)) && err.to_string().contains("device fault"),
            "unexpected error: {err}"
        );
    }

    // One spare of each class: synthesis proved every single-fault
    // scenario survivable, so whatever scenario each job draws, the
    // degraded design audits clean and the whole batch succeeds.
    let engine = Engine::new().with_workers(3).with_fault_plan(plan());
    let batch = engine.run_batch(jobs(SpareConfig::uniform(1)));
    assert_eq!(
        batch.metrics.failed,
        0,
        "spared design lost a device-fault scenario: {}",
        batch.metrics.summary()
    );
    assert_eq!(batch.metrics.succeeded, 6);
}
