//! XRing — crosstalk-aware synthesis of wavelength-routed optical ring
//! routers (reproduction of Zheng et al., DATE 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geom`] — exact Manhattan geometry, crossing predicates, 2-SAT,
//! * [`milp`] — the 0/1 MILP solver (simplex + branch & bound),
//! * [`phot`] — photonic loss/crosstalk/SNR/laser-power models,
//! * [`core`] — the four-step XRing synthesis pipeline,
//! * [`engine`] — parallel, cached, deadline-aware batch execution,
//! * [`baselines`] — ORNoC, ORing and crossbar comparison routers,
//! * [`viz`] — SVG rendering of synthesized layouts,
//! * [`obs`] — phase-level span tracing, counters and trace exporters,
//! * [`serve`] — the synthesis daemon: JSON over HTTP with admission
//!   control, a bounded shared design cache and live Prometheus metrics.
//!
//! # Example
//!
//! Synthesize the paper's 16-node router and check its headline property
//! (more than 98 % of signals free of first-order crosstalk noise):
//!
//! ```
//! use xring::core::{NetworkSpec, SynthesisOptions, Synthesizer};
//! use xring::phot::{CrosstalkParams, LossParams, PowerParams};
//!
//! let net = NetworkSpec::psion_16();
//! let design = Synthesizer::new(SynthesisOptions::with_wavelengths(14))
//!     .synthesize(&net)?;
//! let report = design.report(
//!     "XRing/16",
//!     &LossParams::oring(),
//!     Some(&CrosstalkParams::nikdast()),
//!     &PowerParams::default(),
//! );
//! assert!(report.noise_free_fraction().expect("noise evaluated") > 0.98);
//! assert_eq!(report.worst_path_crossings, 0);
//! # Ok::<(), xring::core::SynthesisError>(())
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! paper-to-code inventory and `EXPERIMENTS.md` for reproduction results.

pub use xring_baselines as baselines;
pub use xring_core as core;
pub use xring_engine as engine;
pub use xring_geom as geom;
pub use xring_milp as milp;
pub use xring_obs as obs;
pub use xring_phot as phot;
pub use xring_serve as serve;
pub use xring_viz as viz;
