//! Irregular floorplans: the scenario that motivates automating ring
//! construction (paper Sec. I — "the connection problem may become more
//! complex when the network nodes are not regularly aligned on the chip").
//!
//! Synthesizes routers for pseudo-random node placements and compares the
//! MILP ring against the naive perimeter-order ring a designer might draw
//! by hand.
//!
//! Run with: `cargo run --release --example irregular_floorplan`

use xring::core::{NetworkSpec, RingAlgorithm, SynthesisOptions, Synthesizer};
use xring::phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let loss = LossParams::default();
    let xtalk = CrosstalkParams::default();
    let power = PowerParams::default();

    println!("{}", RouterReport::table_header());
    for seed in [1u64, 7, 42] {
        let net = NetworkSpec::irregular(12, 10_000, seed)?;
        for (name, algorithm) in [
            ("MILP ring", RingAlgorithm::Milp),
            ("perimeter ring", RingAlgorithm::Perimeter),
        ] {
            let design = Synthesizer::new(SynthesisOptions {
                ring_algorithm: algorithm,
                ..SynthesisOptions::with_wavelengths(12)
            })
            .synthesize(&net)?;
            let report = design.report(format!("seed {seed}: {name}"), &loss, Some(&xtalk), &power);
            println!(
                "{report}   (ring {:.1} mm, {} shortcuts)",
                design.cycle.perimeter() as f64 / 1_000.0,
                design.shortcuts.shortcuts.len(),
            );
        }
    }
    println!("\nThe MILP ring is never longer than the hand-drawn one, and");
    println!("shorter rings translate directly into lower insertion loss.");
    Ok(())
}
