//! Renders synthesized layouts to SVG files for design review.
//!
//! Run with: `cargo run --release --example render_layout [out_dir]`
//! (default output directory: `target/layouts`)

use std::fs;
use std::path::PathBuf;
use xring::core::{NetworkSpec, SynthesisOptions, Synthesizer};
use xring::viz::{render_design, RenderOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/layouts".to_string())
        .into();
    fs::create_dir_all(&out_dir)?;

    for (name, net, wl) in [
        ("xring_8", NetworkSpec::proton_8(), 8),
        ("xring_16", NetworkSpec::psion_16(), 14),
        (
            "xring_irregular_12",
            NetworkSpec::irregular(12, 10_000, 42)?,
            12,
        ),
    ] {
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(wl)).synthesize(&net)?;
        let svg = render_design(&design, &RenderOptions::default());
        let path = out_dir.join(format!("{name}.svg"));
        fs::write(&path, &svg)?;
        println!(
            "{} -> {} ({} ring waveguides, {} shortcuts, {} bytes)",
            name,
            path.display(),
            design.plan.ring_waveguides.len(),
            design.shortcuts.shortcuts.len(),
            svg.len()
        );
    }
    Ok(())
}
