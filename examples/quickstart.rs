//! Quickstart: synthesize an XRing router for a 16-node network and print
//! its evaluation report.
//!
//! Run with: `cargo run --release --example quickstart`

use xring::core::{NetworkSpec, SynthesisOptions, Synthesizer};
use xring::phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 16-node floorplan used in the paper's Table II/III experiments.
    let net = NetworkSpec::psion_16();

    // Full XRing pipeline: MILP ring construction, shortcuts, signal
    // mapping with ring openings, and a crossing-free PDN.
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(14)).synthesize(&net)?;

    println!("ring order        : {:?}", design.cycle.order());
    println!(
        "ring perimeter    : {:.1} mm",
        design.cycle.perimeter() as f64 / 1000.0
    );
    println!("shortcuts         : {}", design.shortcuts.shortcuts.len());
    println!(
        "ring waveguides   : {} (cw, ccw) = {:?}",
        design.plan.ring_waveguides.len(),
        design.plan.waveguide_counts()
    );
    println!(
        "openings          : {} opened / {} unopened",
        design.opening_stats.opened, design.opening_stats.unopened
    );
    println!("milp nodes        : {}", design.ring_stats.milp_nodes);
    println!("lazy conflict cuts: {}", design.ring_stats.lazy_cuts);
    println!();

    let report = design.report(
        "XRing/16",
        &LossParams::oring(),
        Some(&CrosstalkParams::nikdast()),
        &PowerParams::default(),
    );
    println!("{}", RouterReport::table_header());
    println!("{report}");
    println!(
        "\nnoise-free signals: {:.1}%",
        report.noise_free_fraction().unwrap_or(1.0) * 100.0
    );
    Ok(())
}
