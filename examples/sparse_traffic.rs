//! Extension beyond the paper: sparse traffic patterns.
//!
//! The paper synthesizes for all-to-all traffic; many MPSoC workloads are
//! locality-dominated. This example contrasts the resources an XRing
//! router needs for all-to-all vs k-nearest-neighbour traffic on the same
//! 16-node floorplan.
//!
//! Run with: `cargo run --release --example sparse_traffic`

use xring::core::{NetworkSpec, SynthesisOptions, Synthesizer, Traffic};
use xring::phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::psion_16();
    let loss = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    let power = PowerParams::default();

    println!("{}", RouterReport::table_header());
    for (name, traffic) in [
        ("all-to-all (paper)", Traffic::AllToAll),
        ("8 nearest neighbours", Traffic::NearestNeighbors(8)),
        ("4 nearest neighbours", Traffic::NearestNeighbors(4)),
        ("2 nearest neighbours", Traffic::NearestNeighbors(2)),
    ] {
        let design = Synthesizer::new(SynthesisOptions {
            traffic,
            ..SynthesisOptions::with_wavelengths(14)
        })
        .synthesize(&net)?;
        let report = design.report(name, &loss, Some(&xtalk), &power);
        println!(
            "{report}   ({} signals, {} waveguides)",
            design.layout.signals.len(),
            design.plan.ring_waveguides.len()
        );
    }
    println!("\nSparser traffic shrinks the waveguide stack and the laser bill —");
    println!("the knob the paper's all-to-all assumption leaves on the table.");
    Ok(())
}
