//! Head-to-head router comparison on one network: XRing vs the ORNoC and
//! ORing baselines vs the crossbar families — a miniature of the paper's
//! whole evaluation on a single floorplan.
//!
//! Run with: `cargo run --release --example compare_routers [N]`
//! where `N` is 8, 16 (default) or 32.

use xring::baselines::{
    crossbar_report, synthesize_oring, synthesize_ornoc, CrossbarKind, LayoutStyle,
};
use xring::core::{NetworkSpec, SynthesisOptions, Synthesizer};
use xring::phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(16);
    let (net, wl) = match n {
        8 => (NetworkSpec::psion_8(), 8),
        16 => (NetworkSpec::psion_16(), 14),
        32 => (NetworkSpec::psion_32(), 24),
        other => return Err(format!("unsupported size {other}: use 8, 16 or 32").into()),
    };
    let loss = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    let power = PowerParams::default();

    println!("Router comparison on the {n}-node network (#wl = {wl}):\n");
    println!("{}", RouterReport::table_header());

    // Crossbars (analytic, no PDN — see DESIGN.md §2).
    for (kind, style) in [
        (CrossbarKind::LambdaRouter, LayoutStyle::ProtonPlus),
        (CrossbarKind::LambdaRouter, LayoutStyle::PlanarOnoc),
        (CrossbarKind::Gwor, LayoutStyle::ToPro),
        (CrossbarKind::Light, LayoutStyle::ToPro),
    ] {
        println!("{}", crossbar_report(kind, style, &net, &loss));
    }

    // Ring baselines with their crossing PDNs.
    let ornoc = synthesize_ornoc(&net, wl, true, &loss, &xtalk)?;
    println!("{}", ornoc.report("ORNoC", &loss, Some(&xtalk), &power));
    let oring = synthesize_oring(&net, wl, true, &loss, &xtalk)?;
    println!("{}", oring.report("ORing", &loss, Some(&xtalk), &power));

    // XRing with its crossing-free PDN.
    let xr = Synthesizer::new(SynthesisOptions::with_wavelengths(wl)).synthesize(&net)?;
    let report = xr.report("XRing", &loss, Some(&xtalk), &power);
    println!("{report}");
    println!(
        "\nXRing: {} shortcuts, {} ring waveguides (all opened: {}), {:.1}% noise-free signals",
        xr.shortcuts.shortcuts.len(),
        xr.plan.ring_waveguides.len(),
        xr.opening_stats.unopened == 0,
        report.noise_free_fraction().unwrap_or(1.0) * 100.0,
    );
    Ok(())
}
