//! Robustness under fabrication variation (extension beyond the paper).
//!
//! Re-evaluates a synthesized 16-node XRing router under Monte-Carlo
//! perturbed loss parameters and reports the insertion-loss and laser-
//! power spread — the margin a designer would add to the link budget.
//!
//! Run with: `cargo run --release --example fabrication_variation`

use xring::core::{monte_carlo, NetworkSpec, SynthesisOptions, Synthesizer, VariationSpec};
use xring::phot::{CrosstalkParams, LossParams, PowerParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::psion_16();
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(14)).synthesize(&net)?;
    let nominal = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    let power = PowerParams::default();

    let nominal_report = design.report("nominal", &nominal, Some(&xtalk), &power);
    println!(
        "nominal: il_w = {:.3} dB, P = {:.4} W",
        nominal_report.worst_il_db,
        nominal_report.total_power_w.unwrap_or(f64::NAN)
    );

    for (label, scale) in [("loose fab (1x)", 1.0), ("sloppy fab (2x)", 2.0)] {
        let spec = VariationSpec {
            propagation: 0.10 * scale,
            crossing: 0.15 * scale,
            drop: 0.15 * scale,
            through: 0.20 * scale,
            seed: 42,
        };
        let s = monte_carlo(&design, &nominal, &xtalk, &power, &spec, 500);
        println!(
            "{label}: il_w mean {:.3} ± {:.3} dB (max {:.3}), P mean {:.4} W (max {:.4}), SNR min {}",
            s.il_mean_db,
            s.il_std_db,
            s.il_max_db,
            s.power_mean_w.unwrap_or(f64::NAN),
            s.power_max_w.unwrap_or(f64::NAN),
            s.snr_min_db
                .map(|v| format!("{v:.1} dB"))
                .unwrap_or_else(|| "unbounded (no noisy signal)".into()),
        );
    }
    println!("\nXRing's crossing-free structure keeps the spread narrow: the");
    println!("budget is dominated by drop loss, not by crossing-count jitter.");
    Ok(())
}
