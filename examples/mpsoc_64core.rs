//! Scaling beyond the paper: a 64-hub MPSoC optical layer.
//!
//! The paper evaluates up to 32 nodes; this example shows the pipeline
//! handling an 8x8 hub grid (64 nodes, 4032 signals). The exact MILP is
//! still tractable here thanks to the assignment-tight relaxation, but we
//! also run the 2-opt heuristic ring for comparison, which is what a user
//! would pick for much larger networks.
//!
//! Run with: `cargo run --release --example mpsoc_64core`

use std::time::Instant;
use xring::core::{NetworkSpec, RingAlgorithm, SynthesisOptions, Synthesizer};
use xring::phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::regular_grid(8, 8, 1_200)?;
    let loss = LossParams::default();
    let xtalk = CrosstalkParams::default();
    let power = PowerParams::default();

    println!("{}", RouterReport::table_header());
    for (name, algorithm) in [
        ("XRing 64 (MILP)", RingAlgorithm::Milp),
        ("XRing 64 (2-opt)", RingAlgorithm::Heuristic),
    ] {
        let t0 = Instant::now();
        let design = Synthesizer::new(SynthesisOptions {
            ring_algorithm: algorithm,
            ..SynthesisOptions::with_wavelengths(32)
        })
        .synthesize(&net)?;
        let elapsed = t0.elapsed();
        let report = design.report(name, &loss, Some(&xtalk), &power);
        println!("{report}");
        println!(
            "    -> {} signals, {} ring waveguides, {} shortcuts, ring {:.1} mm, wall clock {elapsed:?}",
            design.layout.signals.len(),
            design.plan.ring_waveguides.len(),
            design.shortcuts.shortcuts.len(),
            design.cycle.perimeter() as f64 / 1_000.0,
        );
    }
    Ok(())
}
