//! Link-budget review: decompose the worst signal's insertion loss by
//! physical mechanism, the way a photonic designer would audit a link.
//!
//! Run with: `cargo run --release --example link_budget`

use xring::core::{NetworkSpec, SynthesisOptions, Synthesizer};
use xring::phot::{insertion_loss_db, LossBreakdown, LossParams, SignalId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::psion_16();
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(14)).synthesize(&net)?;
    let loss = LossParams::oring();

    // Find the worst signal.
    let mut worst = (0usize, f64::NEG_INFINITY);
    for i in 0..design.layout.signals.len() {
        let trace = design.layout.trace(SignalId(i as u32));
        let il = insertion_loss_db(&trace, &loss);
        if il > worst.1 {
            worst = (i, il);
        }
    }
    let (wi, il) = worst;
    let sig = &design.layout.signals[wi];
    let trace = design.layout.trace(SignalId(wi as u32));
    let breakdown = LossBreakdown::of(&trace, &loss);

    println!(
        "worst signal: {} -> {} on {}",
        sig.from, sig.to, sig.wavelength
    );
    println!("total insertion loss: {il:.3} dB");
    println!("budget: {breakdown}");
    let (mechanism, share) = breakdown.dominant();
    println!(
        "dominant mechanism: {mechanism} ({:.0}% of the budget)",
        share * 100.0
    );
    println!("PDN loss to its sender: {:.2} dB", sig.pdn_loss_db);

    // Distribution of dominant mechanisms across all signals.
    let mut counts = std::collections::BTreeMap::<&str, usize>::new();
    for i in 0..design.layout.signals.len() {
        let t = design.layout.trace(SignalId(i as u32));
        let (m, _) = LossBreakdown::of(&t, &loss).dominant();
        *counts.entry(m).or_insert(0) += 1;
    }
    println!(
        "\ndominant mechanism across all {} signals:",
        design.layout.signals.len()
    );
    for (m, c) in counts {
        println!("  {m:<14} {c}");
    }
    Ok(())
}
