//! A from-scratch 0/1 mixed-integer linear programming solver.
//!
//! The XRing paper solves its ring-construction model (constraints (1)–(3),
//! objective (4)) with Gurobi. No mature, offline-friendly Rust bindings to
//! an industrial MILP solver exist, so this crate provides the substrate:
//!
//! * [`Model`] — a declarative model API (binary/continuous variables,
//!   linear constraints, linear objective),
//! * [`backend`] — the pluggable [`LpBackend`] trait over two LP solvers:
//!   [`simplex`], a dense two-phase primal tableau kept as the reference
//!   backend, and [`revised`], a revised bounded-variable simplex with
//!   native bound handling and dual-simplex warm starts (the default),
//! * [`BranchAndBound`] — an exact branch-and-bound search over the binary
//!   variables, with warm-start incumbents, per-node LP basis reuse
//!   through [`LpBackend::solve_warm`], and lazy-constraint callbacks
//!   (the mechanism the ring builder uses to separate conflict constraints
//!   on demand instead of enumerating all `O(|E|²)` pairs up front).
//!
//! # Example
//!
//! ```
//! use xring_milp::{BranchAndBound, LinExpr, Model, Relation};
//!
//! // maximize x + 2y  s.t.  x + y <= 1, binaries  =>  minimize -(x + 2y)
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.add_constraint(LinExpr::new() + (x, 1.0) + (y, 1.0), Relation::Le, 1.0);
//! m.set_objective(LinExpr::new() + (x, -1.0) + (y, -2.0));
//!
//! let solution = BranchAndBound::new().solve(&m)?;
//! assert_eq!(solution.value(y).round() as i64, 1);
//! assert_eq!(solution.value(x).round() as i64, 0);
//! # Ok::<(), xring_milp::SolveError>(())
//! ```
//!
//! Solves report spans (`milp-solve`), counters (`milp.nodes`,
//! `milp.lp_solves`, `simplex.pivots`, `simplex.warm_starts`,
//! `simplex.cold_starts`, plus per-backend `simplex.pivots.dense` /
//! `simplex.pivots.revised` variants — attributed in the [`backend`]
//! layer, never by the raw kernels) and a `milp.solve_us` histogram to
//! `xring-obs` when tracing is enabled; the disabled path costs one
//! relaxed atomic load. Convergence telemetry — (elapsed,
//! nodes, incumbent, best bound, gap) events at incumbent updates and
//! on a node stride — streams through the [`progress`] module to
//! per-solve observers and an optional process-global JSONL sink.

#![warn(missing_docs)]

pub mod backend;
pub mod bnb;
pub mod error;
pub mod expr;
pub mod factor;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod model;
pub mod presolve;
pub mod pricing;
pub mod progress;
pub mod revised;
pub mod simplex;

pub use backend::{BackendSolve, Basis, DenseBackend, LpBackend, LpBackendKind};
pub use bnb::{BranchAndBound, MilpSolution, SolveStats};
pub use error::SolveError;
pub use expr::{LinExpr, VarId};
pub use factor::{Factorization, FactorizationKind};
pub use model::{Model, Relation, VarKind};
pub use presolve::{presolve, PresolveResult};
pub use pricing::{Pricing, PricingKind};
pub use progress::{
    ConvergenceCollector, ConvergenceSummary, ProgressEvent, ProgressKind, ProgressObserver,
    ProgressSink,
};
pub use revised::{RevisedConfig, RevisedSimplex};
pub use simplex::{LpOutcome, LpProblem, LpSolution};
