//! Pluggable pricing rules for the revised simplex's primal phases.
//!
//! Pricing decides which improving nonbasic column enters the basis.
//! The [`Pricing`] trait abstracts the choice so backends can select a
//! rule per workload:
//!
//! * [`Dantzig`] — most-negative improvement rate. The historical
//!   default; cheap per scan and deterministic, but blind to column
//!   geometry.
//! * [`Devex`] — approximate steepest edge with reference weights
//!   (Forrest–Goldfarb). Scores `d²/w` and updates weights from the
//!   pivot row after each basis exchange; fewer, better pivots on
//!   ill-conditioned models at the cost of one extra `btran` per pivot.
//! * [`Partial`] — rotating-window partial pricing: scans a window of
//!   columns per iteration and only falls back to a full sweep to
//!   confirm optimality, cutting pricing cost on very wide models.
//!
//! The solver's anti-cycling Bland mode bypasses pricing entirely
//! (first eligible index), so every rule inherits the same termination
//! guarantee. The dual simplex's entering choice is a ratio test, not a
//! pricing decision, and is unaffected.

use std::fmt;
use std::str::FromStr;

/// Which pricing rule the revised simplex's primal phases use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PricingKind {
    /// Most-negative reduced cost (default).
    #[default]
    Dantzig,
    /// Approximate steepest edge with reference weights.
    Devex,
    /// Rotating-window partial pricing.
    Partial,
}

impl PricingKind {
    /// Stable lowercase name, also accepted by [`FromStr`].
    pub fn as_str(self) -> &'static str {
        match self {
            PricingKind::Dantzig => "dantzig",
            PricingKind::Devex => "devex",
            PricingKind::Partial => "partial",
        }
    }

    /// Builds a fresh pricing rule of this kind for `num_cols` columns.
    pub fn build(self, num_cols: usize) -> Box<dyn Pricing> {
        match self {
            PricingKind::Dantzig => Box::new(Dantzig),
            PricingKind::Devex => Box::new(Devex::new(num_cols)),
            PricingKind::Partial => Box::new(Partial::new(num_cols)),
        }
    }
}

impl fmt::Display for PricingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for PricingKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dantzig" => Ok(PricingKind::Dantzig),
            "devex" => Ok(PricingKind::Devex),
            "partial" => Ok(PricingKind::Partial),
            other => Err(format!(
                "unknown pricing rule {other:?} (expected dantzig|devex|partial)"
            )),
        }
    }
}

/// A pricing rule: selects the entering column for a primal iteration.
///
/// `improve(j)` (supplied by the solver) returns the improvement rate of
/// column `j` — already sign-adjusted for the bound the variable rests
/// at — when `j` is a strictly eligible nonbasic candidate, and `None`
/// otherwise. Rates are negative; more negative is better.
pub trait Pricing: fmt::Debug {
    /// Stable lowercase rule name ("dantzig", "devex", "partial").
    fn name(&self) -> &'static str;

    /// Resets per-solve state for a problem with `num_cols` columns.
    fn reset(&mut self, num_cols: usize);

    /// Selects the entering column, or `None` when no eligible column
    /// exists (primal optimality for the current phase).
    fn select(
        &mut self,
        num_cols: usize,
        improve: &mut dyn FnMut(usize) -> Option<f64>,
    ) -> Option<usize>;

    /// Whether [`on_pivot`](Self::on_pivot) needs the pivot row
    /// (`eᵣᵀB⁻¹N` entries), which costs the solver one extra `btran`.
    fn needs_pivot_row(&self) -> bool {
        false
    }

    /// Post-exchange hook: `entering` replaced `leaving` at the basis
    /// row whose pivot element was `pivot_alpha`. When
    /// [`needs_pivot_row`](Self::needs_pivot_row), `pivot_row(j)` gives
    /// the pivot-row entry of any column `j`.
    fn on_pivot(
        &mut self,
        entering: usize,
        leaving: usize,
        pivot_alpha: f64,
        pivot_row: Option<&dyn Fn(usize) -> f64>,
    ) {
        let _ = (entering, leaving, pivot_alpha, pivot_row);
    }
}

/// Most-negative-rate pricing (the classical textbook rule).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dantzig;

impl Pricing for Dantzig {
    fn name(&self) -> &'static str {
        "dantzig"
    }

    fn reset(&mut self, _num_cols: usize) {}

    fn select(
        &mut self,
        num_cols: usize,
        improve: &mut dyn FnMut(usize) -> Option<f64>,
    ) -> Option<usize> {
        let mut best = f64::INFINITY;
        let mut q = None;
        for j in 0..num_cols {
            if let Some(rate) = improve(j) {
                if rate < best {
                    best = rate;
                    q = Some(j);
                }
            }
        }
        q
    }
}

/// Approximate steepest-edge pricing with devex reference weights.
#[derive(Debug)]
pub struct Devex {
    weights: Vec<f64>,
}

impl Devex {
    /// Fresh rule with unit reference weights.
    pub fn new(num_cols: usize) -> Self {
        Devex {
            weights: vec![1.0; num_cols],
        }
    }
}

impl Pricing for Devex {
    fn name(&self) -> &'static str {
        "devex"
    }

    fn reset(&mut self, num_cols: usize) {
        self.weights.clear();
        self.weights.resize(num_cols, 1.0);
    }

    fn select(
        &mut self,
        num_cols: usize,
        improve: &mut dyn FnMut(usize) -> Option<f64>,
    ) -> Option<usize> {
        let mut best = 0.0f64;
        let mut q = None;
        for j in 0..num_cols {
            if let Some(rate) = improve(j) {
                let score = rate * rate / self.weights[j];
                if score > best {
                    best = score;
                    q = Some(j);
                }
            }
        }
        q
    }

    fn needs_pivot_row(&self) -> bool {
        true
    }

    fn on_pivot(
        &mut self,
        entering: usize,
        leaving: usize,
        pivot_alpha: f64,
        pivot_row: Option<&dyn Fn(usize) -> f64>,
    ) {
        let Some(row) = pivot_row else { return };
        if pivot_alpha.abs() < 1e-12 {
            return;
        }
        let wq = self.weights[entering];
        let inv2 = 1.0 / (pivot_alpha * pivot_alpha);
        for j in 0..self.weights.len() {
            if j == entering || j == leaving {
                continue;
            }
            let arj = row(j);
            if arj != 0.0 {
                let cand = arj * arj * inv2 * wq;
                if cand > self.weights[j] {
                    self.weights[j] = cand;
                }
            }
        }
        // The leaving variable re-enters the nonbasic pool with the
        // standard devex reference weight.
        self.weights[leaving] = (wq * inv2).max(1.0);
        self.weights[entering] = 1.0;
    }
}

/// Rotating-window partial pricing.
#[derive(Debug)]
pub struct Partial {
    cursor: usize,
    window: usize,
}

impl Partial {
    /// Fresh rule with a window sized for `num_cols` columns.
    pub fn new(num_cols: usize) -> Self {
        Partial {
            cursor: 0,
            window: Self::window_for(num_cols),
        }
    }

    fn window_for(num_cols: usize) -> usize {
        (num_cols / 8).max(32).min(num_cols.max(1))
    }
}

impl Pricing for Partial {
    fn name(&self) -> &'static str {
        "partial"
    }

    fn reset(&mut self, num_cols: usize) {
        self.cursor = 0;
        self.window = Self::window_for(num_cols);
    }

    fn select(
        &mut self,
        num_cols: usize,
        improve: &mut dyn FnMut(usize) -> Option<f64>,
    ) -> Option<usize> {
        if num_cols == 0 {
            return None;
        }
        let window = self.window.min(num_cols);
        let rounds = num_cols.div_ceil(window);
        // Scan windows starting at the cursor; the full rotation doubles
        // as the optimality confirmation sweep.
        for _ in 0..rounds {
            let start = self.cursor % num_cols;
            let mut best = f64::INFINITY;
            let mut q = None;
            for off in 0..window {
                let j = (start + off) % num_cols;
                if let Some(rate) = improve(j) {
                    if rate < best {
                        best = rate;
                        q = Some(j);
                    }
                }
            }
            if q.is_some() {
                return q;
            }
            self.cursor = (start + window) % num_cols;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rates fixture: columns 2 and 5 eligible, 5 more negative.
    fn rates(j: usize) -> Option<f64> {
        match j {
            2 => Some(-1.0),
            5 => Some(-3.0),
            _ => None,
        }
    }

    #[test]
    fn dantzig_picks_most_negative() {
        let mut p = Dantzig;
        assert_eq!(p.select(8, &mut rates), Some(5));
        assert_eq!(p.select(8, &mut |_| None), None);
    }

    #[test]
    fn devex_scores_by_weighted_square() {
        let mut p = Devex::new(8);
        // Unit weights: same pick as Dantzig.
        assert_eq!(p.select(8, &mut rates), Some(5));
        // A heavy weight on 5 flips the choice to 2: 9/10 < 1/1.
        p.weights[5] = 10.0;
        assert_eq!(p.select(8, &mut rates), Some(2));
        // Weight updates grow reference weights from the pivot row.
        p.reset(8);
        p.on_pivot(5, 1, 2.0, Some(&|j| if j == 2 { 4.0 } else { 0.0 }));
        assert!(p.weights[2] > 1.0, "pivot-row mass must raise w2");
        assert_eq!(p.weights[5], 1.0, "entering weight resets");
        assert!(p.weights[1] >= 1.0, "leaving weight floors at 1");
        assert!(p.needs_pivot_row());
    }

    #[test]
    fn partial_rotates_and_confirms_optimality() {
        let mut p = Partial {
            cursor: 0,
            window: 2,
        };
        // Window [0,2): nothing; [2,4): finds 2 (not 5 — out of window).
        assert_eq!(p.select(8, &mut rates), Some(2));
        // No eligible columns anywhere: full rotation returns None.
        assert_eq!(p.select(8, &mut |_| None), None);
        // Eligibility outside the cursor's window is still found.
        let mut once = |j: usize| if j == 7 { Some(-2.0) } else { None };
        assert_eq!(p.select(8, &mut once), Some(7));
    }

    #[test]
    fn kind_round_trips_and_builds() {
        for kind in [
            PricingKind::Dantzig,
            PricingKind::Devex,
            PricingKind::Partial,
        ] {
            assert_eq!(kind.as_str().parse::<PricingKind>().unwrap(), kind);
            assert_eq!(kind.build(4).name(), kind.as_str());
        }
        assert!("steepest".parse::<PricingKind>().is_err());
        assert_eq!(PricingKind::default(), PricingKind::Dantzig);
    }
}
