//! Deterministic solver fault injection (feature `fault-inject`).
//!
//! The batch engine's fault harness needs to make *this* solver fail on
//! demand — a simplex numerical breakdown or a deadline interrupt — at a
//! precise point, on a precise worker thread, without plumbing test-only
//! state through every call site. The hook is a thread-local one-shot:
//! [`arm`] loads a fault, and the next [`BranchAndBound`] solve on the
//! same thread consumes it at entry and returns the corresponding
//! [`SolveError`]. Subsequent solves (e.g. a degradation retry) run
//! normally.
//!
//! The armed fault is held by an RAII [`ArmedFault`] guard so a panic or
//! early return between arming and solving cannot leak a fault into an
//! unrelated job that later reuses the worker thread.
//!
//! [`BranchAndBound`]: crate::BranchAndBound

use crate::error::SolveError;
use std::cell::Cell;

/// A solver failure the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedSolveFault {
    /// The simplex fails numerically ([`SolveError::Numerical`]).
    Numerical,
    /// The cooperative deadline fires at entry
    /// ([`SolveError::Interrupted`]).
    Deadline,
}

impl InjectedSolveFault {
    /// The [`SolveError`] this fault materializes as.
    pub fn to_solve_error(self) -> SolveError {
        match self {
            InjectedSolveFault::Numerical => SolveError::Numerical,
            InjectedSolveFault::Deadline => SolveError::Interrupted { nodes: 0 },
        }
    }
}

thread_local! {
    static ARMED: Cell<Option<InjectedSolveFault>> = const { Cell::new(None) };
}

/// Disarms the pending fault (if still unconsumed) when dropped.
#[must_use = "dropping the guard immediately disarms the fault"]
#[derive(Debug)]
pub struct ArmedFault {
    _private: (),
}

impl Drop for ArmedFault {
    fn drop(&mut self) {
        ARMED.with(|c| c.set(None));
    }
}

/// Arms `fault` for the next solve on this thread, replacing any fault
/// already pending. The fault stays armed until consumed by a solve or
/// until the returned guard drops.
pub fn arm(fault: InjectedSolveFault) -> ArmedFault {
    ARMED.with(|c| c.set(Some(fault)));
    ArmedFault { _private: () }
}

/// Consumes and returns the pending fault on this thread, if any. Called
/// by [`BranchAndBound::solve_with_lazy`](crate::BranchAndBound::solve_with_lazy)
/// at entry.
pub fn take() -> Option<InjectedSolveFault> {
    ARMED.with(|c| c.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchAndBound, LinExpr, Model};

    fn trivial_model() -> Model {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        m
    }

    #[test]
    fn armed_fault_fails_exactly_one_solve() {
        let m = trivial_model();
        let guard = arm(InjectedSolveFault::Numerical);
        match BranchAndBound::new().solve(&m) {
            Err(SolveError::Numerical) => {}
            other => panic!("expected injected numerical failure, got {other:?}"),
        }
        // Consumed: the next solve succeeds.
        BranchAndBound::new().solve(&m).expect("fault was one-shot");
        drop(guard);
    }

    #[test]
    fn deadline_fault_maps_to_interrupted() {
        let m = trivial_model();
        let _guard = arm(InjectedSolveFault::Deadline);
        match BranchAndBound::new().solve(&m) {
            Err(SolveError::Interrupted { nodes: 0 }) => {}
            other => panic!("expected injected interrupt, got {other:?}"),
        }
    }

    #[test]
    fn dropping_the_guard_disarms() {
        let m = trivial_model();
        drop(arm(InjectedSolveFault::Numerical));
        BranchAndBound::new()
            .solve(&m)
            .expect("guard drop disarmed the fault");
        assert_eq!(take(), None);
    }
}
