//! The declarative MILP model.

use crate::expr::{LinExpr, VarId};

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Kind (and domain) of a variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// Binary variable in `{0, 1}`.
    Binary,
    /// Continuous variable in `[lb, ub]` (`ub` may be `f64::INFINITY`).
    Continuous {
        /// Lower bound (finite).
        lb: f64,
        /// Upper bound; `f64::INFINITY` for unbounded.
        ub: f64,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub(crate) kind: VarKind,
    pub(crate) name: String,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) expr: LinExpr,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

/// A mixed 0/1 linear program: minimize a linear objective subject to
/// linear constraints.
///
/// The solver convention is **minimization**; to maximize, negate the
/// objective coefficients.
///
/// # Example
///
/// ```
/// use xring_milp::{LinExpr, Model, Relation};
///
/// let mut m = Model::new();
/// let x = m.add_binary("x");
/// m.add_constraint(LinExpr::new() + (x, 1.0), Relation::Ge, 1.0);
/// m.set_objective(LinExpr::new() + (x, 5.0));
/// assert_eq!(m.num_vars(), 1);
/// assert_eq!(m.num_constraints(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a binary variable and returns its handle.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.vars.push(VarDef {
            kind: VarKind::Binary,
            name: name.into(),
        });
        VarId((self.vars.len() - 1) as u32)
    }

    /// Adds a continuous variable with bounds `[lb, ub]`.
    ///
    /// # Panics
    ///
    /// Panics if `lb` is not finite, `ub < lb`, or `ub` is NaN.
    pub fn add_continuous(&mut self, lb: f64, ub: f64, name: impl Into<String>) -> VarId {
        assert!(lb.is_finite(), "lower bound must be finite");
        assert!(
            !ub.is_nan() && ub >= lb,
            "upper bound must be >= lower bound"
        );
        self.vars.push(VarDef {
            kind: VarKind::Continuous { lb, ub },
            name: name.into(),
        });
        VarId((self.vars.len() - 1) as u32)
    }

    /// Adds the constraint `expr (relation) rhs`. The expression is
    /// normalized (duplicate terms merged) before storage.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not belong to this model or
    /// if a coefficient or the rhs is non-finite.
    pub fn add_constraint(&mut self, expr: LinExpr, relation: Relation, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let expr = expr.normalized();
        for &(v, c) in expr.terms() {
            assert!(v.index() < self.vars.len(), "variable {v} not in model");
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        self.constraints.push(Constraint {
            expr,
            relation,
            rhs,
        });
    }

    /// Sets the (minimization) objective.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not belong to this model.
    pub fn set_objective(&mut self, expr: LinExpr) {
        let expr = expr.normalized();
        for &(v, _) in expr.terms() {
            assert!(v.index() < self.vars.len(), "variable {v} not in model");
        }
        self.objective = expr;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Handles of all binary variables.
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == VarKind::Binary)
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    /// The name given to a variable.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this model.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// The kind of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this model.
    pub fn var_kind(&self, v: VarId) -> VarKind {
        self.vars[v.index()].kind
    }

    /// Checks a dense assignment against every constraint, returning the
    /// indices of violated constraints (within `tol`).
    pub fn violated_constraints(&self, values: &[f64], tol: f64) -> Vec<usize> {
        self.constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                let lhs = c.expr.evaluate(values);
                match c.relation {
                    Relation::Le => lhs > c.rhs + tol,
                    Relation::Ge => lhs < c.rhs - tol,
                    Relation::Eq => (lhs - c.rhs).abs() > tol,
                }
            })
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_building() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_continuous(0.0, 10.0, "y");
        m.add_constraint(LinExpr::new() + (x, 1.0) + (y, 1.0), Relation::Le, 5.0);
        m.set_objective(LinExpr::new() + (y, -1.0));
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.binary_vars(), vec![x]);
        assert_eq!(m.var_name(y), "y");
        assert_eq!(m.var_kind(x), VarKind::Binary);
    }

    #[test]
    #[should_panic(expected = "not in model")]
    fn foreign_variable_rejected() {
        let mut m1 = Model::new();
        let _ = m1.add_binary("a");
        let mut m2 = Model::new();
        let b = m2.add_binary("b");
        let mut m3 = Model::new();
        // b has index 0 which exists in m3 only if m3 has vars; it doesn't.
        m3.add_constraint(LinExpr::new() + (b, 1.0), Relation::Le, 1.0);
    }

    #[test]
    fn violation_check() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint(LinExpr::new() + (x, 1.0) + (y, 1.0), Relation::Le, 1.0);
        m.add_constraint(LinExpr::new() + (x, 1.0), Relation::Ge, 1.0);
        assert!(m.violated_constraints(&[1.0, 0.0], 1e-9).is_empty());
        assert_eq!(m.violated_constraints(&[1.0, 1.0], 1e-9), vec![0]);
        assert_eq!(m.violated_constraints(&[0.0, 1.0], 1e-9), vec![1]);
    }

    #[test]
    #[should_panic(expected = "upper bound")]
    fn bad_bounds_rejected() {
        let mut m = Model::new();
        let _ = m.add_continuous(1.0, 0.0, "bad");
    }
}
