//! Dense two-phase primal simplex for the LP relaxation.
//!
//! This is a textbook tableau implementation tuned for the model sizes the
//! ring-construction MILP produces (≈10³ variables, ≈10³ rows): rows are
//! scaled, pricing is Dantzig's rule with a Bland's-rule fallback to
//! guarantee termination, and upper bounds are handled as explicit rows.

use crate::model::Relation;

/// Feasibility tolerance used throughout the solver.
pub(crate) const EPS: f64 = 1e-9;

/// A linear program in "bounded variable" form:
/// minimize `c·x` subject to the rows, with `lb ≤ x ≤ ub`.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Number of structural variables.
    pub num_vars: usize,
    /// Per-variable finite lower bounds.
    pub lb: Vec<f64>,
    /// Per-variable upper bounds (`f64::INFINITY` allowed).
    pub ub: Vec<f64>,
    /// Dense objective coefficients (minimization).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub rows: Vec<LpRow>,
}

/// One constraint row with a sparse left-hand side.
#[derive(Debug, Clone)]
pub struct LpRow {
    /// Sparse `(variable index, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
    /// Relation between lhs and rhs.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Value of every structural variable.
    pub values: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal(LpSolution),
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

impl LpProblem {
    /// Solves the LP with the dense two-phase primal simplex.
    ///
    /// This is the raw kernel entry: it records **no** observability
    /// counters, so probe solves and re-solves do not inflate
    /// `simplex.pivots`. Counter attribution lives in the
    /// [`crate::backend::LpBackend`] layer — go through a backend
    /// (e.g. [`crate::backend::DenseBackend`]) when telemetry should
    /// see the solve.
    pub fn solve(&self) -> LpOutcome {
        let mut pivots = 0usize;
        let mut degenerate = 0usize;
        self.solve_counted(&mut pivots, &mut degenerate)
    }

    /// Number of rows the dense tableau materializes for this problem:
    /// user rows with at least one free variable, plus one upper-bound
    /// row per free variable with a finite span. Fixed variables
    /// (`ub − lb ≤ eps`) are substituted out before the tableau is
    /// built and contribute neither a column nor a redundant ub row.
    pub fn materialized_row_count(&self) -> usize {
        let fixed = |j: usize| self.ub[j] - self.lb[j] <= EPS;
        let user = self
            .rows
            .iter()
            .filter(|r| r.terms.iter().any(|&(j, _)| !fixed(j)))
            .count();
        let ub_rows = (0..self.num_vars)
            .filter(|&j| !fixed(j) && (self.ub[j] - self.lb[j]).is_finite())
            .count();
        user + ub_rows
    }

    /// Dense solve with pivot accounting handed back to the caller.
    ///
    /// Variables fixed by their bounds (`ub − lb ≤ eps` — e.g. binaries
    /// pinned by presolve implications or branch-and-bound fixes) are
    /// substituted out first: their columns disappear, their redundant
    /// ub rows are never emitted, and rows left with no free terms are
    /// checked for consistency directly.
    pub(crate) fn solve_counted(&self, pivots: &mut usize, degenerate: &mut usize) -> LpOutcome {
        assert_eq!(self.lb.len(), self.num_vars);
        assert_eq!(self.ub.len(), self.num_vars);
        assert_eq!(self.objective.len(), self.num_vars);
        let fixed: Vec<bool> = (0..self.num_vars)
            .map(|j| {
                assert!(self.lb[j].is_finite(), "lower bounds must be finite");
                assert!(self.ub[j] >= self.lb[j] - EPS, "ub < lb for var {j}");
                self.ub[j] - self.lb[j] <= EPS
            })
            .collect();
        if !fixed.iter().any(|&f| f) {
            return self.solve_impl(pivots, degenerate);
        }

        // Substitute fixed variables out.
        let mut map = vec![usize::MAX; self.num_vars];
        let mut lb = Vec::new();
        let mut ub = Vec::new();
        let mut objective = Vec::new();
        for j in 0..self.num_vars {
            if !fixed[j] {
                map[j] = lb.len();
                lb.push(self.lb[j]);
                ub.push(self.ub[j]);
                objective.push(self.objective[j]);
            }
        }
        let mut rows = Vec::with_capacity(self.rows.len());
        for r in &self.rows {
            let mut rhs = r.rhs;
            let mut scale = r.rhs.abs().max(1.0);
            let mut terms = Vec::with_capacity(r.terms.len());
            for &(j, c) in &r.terms {
                assert!(j < self.num_vars, "row references unknown variable {j}");
                if fixed[j] {
                    let contrib = c * self.lb[j];
                    rhs -= contrib;
                    scale = scale.max(contrib.abs());
                } else {
                    terms.push((map[j], c));
                }
            }
            if terms.is_empty() {
                // Every variable in the row is fixed: the row is either
                // trivially satisfied or the node is infeasible.
                let tol = 1e-7 * scale;
                let ok = match r.relation {
                    Relation::Le => rhs >= -tol,
                    Relation::Ge => rhs <= tol,
                    Relation::Eq => rhs.abs() <= tol,
                };
                if !ok {
                    return LpOutcome::Infeasible;
                }
                continue;
            }
            rows.push(LpRow {
                terms,
                relation: r.relation,
                rhs,
            });
        }
        let reduced = LpProblem {
            num_vars: lb.len(),
            lb,
            ub,
            objective,
            rows,
        };
        match reduced.solve_impl(pivots, degenerate) {
            LpOutcome::Optimal(s) => {
                let mut values = vec![0.0; self.num_vars];
                for j in 0..self.num_vars {
                    values[j] = if fixed[j] {
                        self.lb[j]
                    } else {
                        s.values[map[j]]
                    };
                }
                let objective: f64 = values.iter().zip(&self.objective).map(|(x, c)| x * c).sum();
                LpOutcome::Optimal(LpSolution { values, objective })
            }
            other => other,
        }
    }

    #[allow(clippy::needless_range_loop)] // tableau code reads best with explicit indices
    fn solve_impl(&self, pivots: &mut usize, degenerate: &mut usize) -> LpOutcome {
        assert_eq!(self.lb.len(), self.num_vars);
        assert_eq!(self.ub.len(), self.num_vars);
        assert_eq!(self.objective.len(), self.num_vars);

        // --- Shift variables so that lb = 0: x = x' + lb. ---
        let mut obj_const = 0.0;
        for j in 0..self.num_vars {
            assert!(self.lb[j].is_finite(), "lower bounds must be finite");
            assert!(self.ub[j] >= self.lb[j] - EPS, "ub < lb for var {j}");
            obj_const += self.objective[j] * self.lb[j];
        }

        // Collect all rows: user rows (rhs shifted) + upper-bound rows.
        struct NormRow {
            terms: Vec<(usize, f64)>,
            relation: Relation,
            rhs: f64,
        }
        let mut rows: Vec<NormRow> = Vec::with_capacity(self.rows.len() + self.num_vars);
        for r in &self.rows {
            let mut shift = 0.0;
            for &(j, c) in &r.terms {
                assert!(j < self.num_vars, "row references unknown variable {j}");
                shift += c * self.lb[j];
            }
            rows.push(NormRow {
                terms: r.terms.clone(),
                relation: r.relation,
                rhs: r.rhs - shift,
            });
        }
        for j in 0..self.num_vars {
            let span = self.ub[j] - self.lb[j];
            if span.is_finite() {
                rows.push(NormRow {
                    terms: vec![(j, 1.0)],
                    relation: Relation::Le,
                    rhs: span,
                });
            }
        }

        // --- Normalize: rhs >= 0 and per-row scaling. ---
        let mut row_scale = Vec::with_capacity(rows.len());
        for r in rows.iter_mut() {
            if r.rhs < 0.0 {
                for t in r.terms.iter_mut() {
                    t.1 = -t.1;
                }
                r.rhs = -r.rhs;
                r.relation = match r.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            let maxc = r
                .terms
                .iter()
                .map(|&(_, c)| c.abs())
                .fold(0.0f64, f64::max)
                .max(r.rhs.abs())
                .max(1e-12);
            let s = 1.0 / maxc;
            for t in r.terms.iter_mut() {
                t.1 *= s;
            }
            r.rhs *= s;
            row_scale.push(s);
        }
        let obj_scale = {
            let maxc = self
                .objective
                .iter()
                .map(|c| c.abs())
                .fold(0.0f64, f64::max)
                .max(1e-12);
            1.0 / maxc
        };

        // --- Build tableau. ---
        let m = rows.len();
        let n = self.num_vars;
        // Count slack/surplus and artificial columns.
        let mut num_slack = 0;
        let mut num_art = 0;
        for r in &rows {
            match r.relation {
                Relation::Le => num_slack += 1,
                Relation::Ge => {
                    num_slack += 1;
                    num_art += 1;
                }
                Relation::Eq => num_art += 1,
            }
        }
        let total = n + num_slack + num_art;
        let width = total + 1; // + rhs column
        let rhs_col = total;
        let mut tab = vec![0.0f64; (m + 2) * width]; // + phase2 row + phase1 row
        let p2 = m; // phase-2 cost row index
        let p1 = m + 1; // phase-1 cost row index
        let idx = |i: usize, j: usize| i * width + j;

        let mut basis = vec![usize::MAX; m];
        let art_start = n + num_slack;
        {
            let mut next_slack = n;
            let mut next_art = art_start;
            for (i, r) in rows.iter().enumerate() {
                for &(j, c) in &r.terms {
                    tab[idx(i, j)] += c;
                }
                tab[idx(i, rhs_col)] = r.rhs;
                match r.relation {
                    Relation::Le => {
                        tab[idx(i, next_slack)] = 1.0;
                        basis[i] = next_slack;
                        next_slack += 1;
                    }
                    Relation::Ge => {
                        tab[idx(i, next_slack)] = -1.0;
                        next_slack += 1;
                        tab[idx(i, next_art)] = 1.0;
                        basis[i] = next_art;
                        next_art += 1;
                    }
                    Relation::Eq => {
                        tab[idx(i, next_art)] = 1.0;
                        basis[i] = next_art;
                        next_art += 1;
                    }
                }
            }
        }
        // Phase-2 cost row: scaled objective (basic columns all have zero
        // phase-2 cost initially, so reduced costs == c).
        for j in 0..n {
            tab[idx(p2, j)] = self.objective[j] * obj_scale;
        }
        // Phase-1 cost row: sum of artificials has cost 1 each; subtract
        // each row whose basic variable is artificial to zero them out.
        for j in art_start..total {
            tab[idx(p1, j)] = 1.0;
        }
        for i in 0..m {
            if basis[i] >= art_start {
                for j in 0..width {
                    tab[idx(p1, j)] -= tab[idx(i, j)];
                }
            }
        }

        let iteration_limit = 20_000 + 200 * (m + n);
        let mut iterations = 0usize;

        // --- Pivot helper (borrows tab mutably inline). ---
        macro_rules! pivot {
            ($row:expr, $col:expr) => {{
                let pr = $row;
                let pc = $col;
                *pivots += 1;
                let pivval = tab[idx(pr, pc)];
                let inv = 1.0 / pivval;
                for j in 0..width {
                    tab[idx(pr, j)] *= inv;
                }
                tab[idx(pr, pc)] = 1.0;
                for i in 0..m + 2 {
                    if i == pr {
                        continue;
                    }
                    let f = tab[idx(i, pc)];
                    if f.abs() > EPS {
                        for j in 0..width {
                            tab[idx(i, j)] -= f * tab[idx(pr, j)];
                        }
                        tab[idx(i, pc)] = 0.0;
                    }
                }
                basis[pr] = pc;
            }};
        }

        // --- Simplex loop over a given cost row, restricted columns. ---
        // allowed_cols: phase 1 uses all columns; phase 2 excludes artificials.
        let run_phase = |tab: &mut Vec<f64>,
                         basis: &mut Vec<usize>,
                         cost_row: usize,
                         col_limit: usize,
                         iterations: &mut usize,
                         pivots: &mut usize,
                         degenerate: &mut usize|
         -> Result<(), LpOutcome> {
            let bland_threshold = 5_000 + 20 * (m + n);
            loop {
                *iterations += 1;
                if *iterations > iteration_limit {
                    return Err(LpOutcome::IterationLimit);
                }
                let use_bland = *iterations > bland_threshold;
                // Entering column.
                let mut enter = None;
                if use_bland {
                    for j in 0..col_limit {
                        if tab[idx(cost_row, j)] < -EPS {
                            enter = Some(j);
                            break;
                        }
                    }
                } else {
                    let mut best = -EPS;
                    for j in 0..col_limit {
                        let rc = tab[idx(cost_row, j)];
                        if rc < best {
                            best = rc;
                            enter = Some(j);
                        }
                    }
                }
                let Some(pc) = enter else {
                    return Ok(());
                };
                // Ratio test.
                let mut leave: Option<usize> = None;
                let mut best_ratio = f64::INFINITY;
                for i in 0..m {
                    let a = tab[idx(i, pc)];
                    if a > EPS {
                        let ratio = tab[idx(i, rhs_col)] / a;
                        let better = if use_bland {
                            ratio < best_ratio - EPS
                                || (ratio < best_ratio + EPS
                                    && leave.map(|l| basis[i] < basis[l]).unwrap_or(true))
                        } else {
                            ratio < best_ratio - EPS
                                || (ratio < best_ratio + EPS
                                    && leave
                                        .map(|l| a.abs() > tab[idx(l, pc)].abs())
                                        .unwrap_or(true))
                        };
                        if better {
                            best_ratio = ratio;
                            leave = Some(i);
                        }
                    }
                }
                let Some(pr) = leave else {
                    return Err(LpOutcome::Unbounded);
                };
                *pivots += 1;
                if best_ratio <= EPS {
                    *degenerate += 1;
                }
                // Inline pivot (macro captures tab/basis from the closure's
                // environment via the outer names — but we shadowed them, so
                // do it manually here).
                let pivval = tab[idx(pr, pc)];
                let inv = 1.0 / pivval;
                for j in 0..width {
                    tab[idx(pr, j)] *= inv;
                }
                tab[idx(pr, pc)] = 1.0;
                for i in 0..m + 2 {
                    if i == pr {
                        continue;
                    }
                    let f = tab[idx(i, pc)];
                    if f.abs() > EPS {
                        for j in 0..width {
                            tab[idx(i, j)] -= f * tab[idx(pr, j)];
                        }
                        tab[idx(i, pc)] = 0.0;
                    }
                }
                basis[pr] = pc;
            }
        };

        // --- Phase 1. ---
        if num_art > 0 {
            match run_phase(
                &mut tab,
                &mut basis,
                p1,
                total,
                &mut iterations,
                pivots,
                degenerate,
            ) {
                Ok(()) => {}
                Err(LpOutcome::Unbounded) => {
                    // Phase-1 objective is bounded below by 0; "unbounded"
                    // here is numerical trouble.
                    return LpOutcome::IterationLimit;
                }
                Err(other) => return other,
            }
            let phase1_obj = -tab[idx(p1, rhs_col)];
            if phase1_obj > 1e-7 {
                return LpOutcome::Infeasible;
            }
            // Drive remaining artificial basics out of the basis.
            for i in 0..m {
                if basis[i] >= art_start {
                    let mut pivoted = false;
                    for j in 0..art_start {
                        if tab[idx(i, j)].abs() > 1e-7 {
                            pivot!(i, j);
                            pivoted = true;
                            break;
                        }
                    }
                    if !pivoted {
                        // Redundant row: the artificial stays basic at
                        // value ~0; it can never become positive because
                        // the row is (numerically) all zeros.
                        tab[idx(i, rhs_col)] = 0.0;
                    }
                }
            }
        }

        // --- Phase 2 (artificial columns excluded from pricing). ---
        match run_phase(
            &mut tab,
            &mut basis,
            p2,
            art_start,
            &mut iterations,
            pivots,
            degenerate,
        ) {
            Ok(()) => {}
            Err(outcome) => return outcome,
        }

        // --- Extract solution. ---
        let _ = row_scale; // scaling is baked into the tableau
        let mut values = vec![0.0f64; self.num_vars];
        for i in 0..m {
            let b = basis[i];
            if b < n {
                values[b] = tab[idx(i, rhs_col)];
            }
        }
        for j in 0..self.num_vars {
            values[j] += self.lb[j];
            // Clamp tiny negatives / bound overshoots from roundoff.
            if values[j] < self.lb[j] {
                values[j] = self.lb[j];
            }
            if values[j] > self.ub[j] {
                values[j] = self.ub[j];
            }
        }
        let objective: f64 = values.iter().zip(&self.objective).map(|(x, c)| x * c).sum();
        let _ = obj_const;
        LpOutcome::Optimal(LpSolution { values, objective })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(terms: Vec<(usize, f64)>, relation: Relation, rhs: f64) -> LpRow {
        LpRow {
            terms,
            relation,
            rhs,
        }
    }

    fn optimal(o: LpOutcome) -> LpSolution {
        match o {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_2d_lp() {
        // min -x - y  s.t.  x + 2y <= 4, 3x + y <= 6, 0 <= x,y
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
            objective: vec![-1.0, -1.0],
            rows: vec![
                row(vec![(0, 1.0), (1, 2.0)], Relation::Le, 4.0),
                row(vec![(0, 3.0), (1, 1.0)], Relation::Le, 6.0),
            ],
        };
        let s = optimal(p.solve());
        // Optimum at intersection: x = 8/5, y = 6/5, obj = -14/5.
        assert!(
            (s.objective + 14.0 / 5.0).abs() < 1e-6,
            "obj = {}",
            s.objective
        );
        assert!((s.values[0] - 1.6).abs() < 1e-6);
        assert!((s.values[1] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y  s.t.  x + y = 2, x >= 0.5
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
            objective: vec![1.0, 1.0],
            rows: vec![
                row(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0),
                row(vec![(0, 1.0)], Relation::Ge, 0.5),
            ],
        };
        let s = optimal(p.solve());
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!(s.values[0] >= 0.5 - 1e-6);
    }

    #[test]
    fn infeasible_lp() {
        // x <= 1 and x >= 2.
        let p = LpProblem {
            num_vars: 1,
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
            objective: vec![0.0],
            rows: vec![
                row(vec![(0, 1.0)], Relation::Le, 1.0),
                row(vec![(0, 1.0)], Relation::Ge, 2.0),
            ],
        };
        assert!(matches!(p.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_lp() {
        // min -x, x >= 0, no upper bound.
        let p = LpProblem {
            num_vars: 1,
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
            objective: vec![-1.0],
            rows: vec![],
        };
        assert!(matches!(p.solve(), LpOutcome::Unbounded));
    }

    #[test]
    fn variable_bounds_respected() {
        // min -x with 0 <= x <= 3.5.
        let p = LpProblem {
            num_vars: 1,
            lb: vec![0.0],
            ub: vec![3.5],
            objective: vec![-1.0],
            rows: vec![],
        };
        let s = optimal(p.solve());
        assert!((s.values[0] - 3.5).abs() < 1e-6);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x with 2 <= x <= 5 and x >= 1 (slack constraint).
        let p = LpProblem {
            num_vars: 1,
            lb: vec![2.0],
            ub: vec![5.0],
            objective: vec![1.0],
            rows: vec![row(vec![(0, 1.0)], Relation::Ge, 1.0)],
        };
        let s = optimal(p.solve());
        assert!((s.values[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_normalization() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let p = LpProblem {
            num_vars: 1,
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
            objective: vec![1.0],
            rows: vec![row(vec![(0, -1.0)], Relation::Le, -3.0)],
        };
        let s = optimal(p.solve());
        assert!((s.values[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn assignment_relaxation_is_integral() {
        // 3x3 assignment problem: LP relaxation has an integral optimum.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let nv = 9;
        let var = |i: usize, j: usize| i * 3 + j;
        let mut rows = Vec::new();
        for i in 0..3 {
            rows.push(row(
                (0..3).map(|j| (var(i, j), 1.0)).collect(),
                Relation::Eq,
                1.0,
            ));
            rows.push(row(
                (0..3).map(|j| (var(j, i), 1.0)).collect(),
                Relation::Eq,
                1.0,
            ));
        }
        let p = LpProblem {
            num_vars: nv,
            lb: vec![0.0; nv],
            ub: vec![1.0; nv],
            objective: (0..3)
                .flat_map(|i| (0..3).map(move |j| cost[i][j]))
                .collect(),
            rows,
        };
        let s = optimal(p.solve());
        // Optimal assignment: (0,1)=2, (1,0)=4 or better... brute force:
        // 0->1 (2), 1->2 (7), 2->0 (3) = 12 ; 0->0(4),1->2(7),2->1(1)=12;
        // 0->1(2),1->0(4),2->2(6)=12 ; best is 12.
        assert!((s.objective - 12.0).abs() < 1e-6, "obj={}", s.objective);
        for v in &s.values {
            assert!(v.fract().abs() < 1e-6 || (v.fract() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fixed_variables_emit_no_ub_rows() {
        // Three binaries; presolve-style implication has fixed x1 = 1.
        // The dense tableau must materialize ub rows only for the two
        // free binaries, and no column/row at all for the fixed one.
        let p = LpProblem {
            num_vars: 3,
            lb: vec![0.0, 1.0, 0.0],
            ub: vec![1.0, 1.0, 1.0],
            objective: vec![2.0, 5.0, 1.0],
            rows: vec![
                row(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Ge, 2.0),
                row(vec![(1, 1.0)], Relation::Le, 1.0),
            ],
        };
        // 1 user row keeps a free term (the Le row collapses entirely
        // onto the fixed variable) + 2 free-variable ub rows.
        assert_eq!(p.materialized_row_count(), 3);
        let s = optimal(p.solve());
        assert!((s.values[1] - 1.0).abs() < 1e-9, "fixed value must hold");
        // x1 = 1 satisfies one unit of the Ge row; cheapest remaining is x2.
        assert!((s.objective - 6.0).abs() < 1e-6, "obj = {}", s.objective);

        let free = LpProblem {
            num_vars: 3,
            lb: vec![0.0, 0.0, 0.0],
            ub: p.ub.clone(),
            objective: p.objective.clone(),
            rows: p.rows.clone(),
        };
        // Without the fix all three binaries materialize ub rows.
        assert_eq!(free.materialized_row_count(), 5);
    }

    #[test]
    fn fixed_variables_detect_infeasible_collapsed_rows() {
        // Both binaries fixed to 0 but an Eq row demands their sum be 1.
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![0.0, 0.0],
            objective: vec![1.0, 1.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 1.0)],
        };
        assert!(matches!(p.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn all_variables_fixed_solves_trivially() {
        let p = LpProblem {
            num_vars: 2,
            lb: vec![1.0, 0.0],
            ub: vec![1.0, 0.0],
            objective: vec![3.0, 7.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0)], Relation::Le, 2.0)],
        };
        assert_eq!(p.materialized_row_count(), 0);
        let s = optimal(p.solve());
        assert!((s.objective - 3.0).abs() < 1e-9);
        assert_eq!(s.values, vec![1.0, 0.0]);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut rows = Vec::new();
        for k in 1..20 {
            rows.push(row(vec![(0, k as f64), (1, 1.0)], Relation::Le, 10.0));
        }
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
            objective: vec![-1.0, -1.0],
            rows,
        };
        let s = optimal(p.solve());
        assert!(s.objective < 0.0);
    }
}
