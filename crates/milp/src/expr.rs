//! Linear expressions over model variables.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Opaque handle to a model variable.
///
/// Obtained from [`Model::add_binary`](crate::Model::add_binary) or
/// [`Model::add_continuous`](crate::Model::add_continuous); only valid for
/// the model that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Index of this variable in the owning model (creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ coeffᵢ · xᵢ`, built incrementally with `+`.
///
/// Repeated terms on the same variable are merged on
/// [`LinExpr::normalized`] (and automatically before a constraint is stored
/// in a model).
///
/// # Example
///
/// ```
/// use xring_milp::{LinExpr, Model};
///
/// let mut m = Model::new();
/// let x = m.add_binary("x");
/// let y = m.add_binary("y");
/// let e = LinExpr::new() + (x, 1.0) + (y, 2.0) + (x, 0.5);
/// let n = e.normalized();
/// assert_eq!(n.terms().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// The empty expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// Builds an expression from `(variable, coefficient)` pairs.
    pub fn from_terms<I: IntoIterator<Item = (VarId, f64)>>(iter: I) -> Self {
        LinExpr {
            terms: iter.into_iter().collect(),
        }
    }

    /// Sum of the given variables with coefficient 1 (common for degree
    /// and packing constraints).
    pub fn sum<I: IntoIterator<Item = VarId>>(vars: I) -> Self {
        LinExpr {
            terms: vars.into_iter().map(|v| (v, 1.0)).collect(),
        }
    }

    /// Adds a term in place.
    pub fn push(&mut self, var: VarId, coeff: f64) {
        self.terms.push((var, coeff));
    }

    /// The raw (possibly duplicated) terms.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// True if there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns a copy with duplicate variables merged and zero
    /// coefficients dropped, sorted by variable index.
    pub fn normalized(&self) -> LinExpr {
        let mut sorted = self.terms.clone();
        sorted.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(sorted.len());
        for (v, c) in sorted {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| c.abs() > 0.0);
        LinExpr { terms: out }
    }

    /// Evaluates the expression against a dense assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if a variable index exceeds `values.len()`.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|(v, c)| c * values[v.index()]).sum()
    }
}

impl Add<(VarId, f64)> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, term: (VarId, f64)) -> LinExpr {
        self.terms.push(term);
        self
    }
}

impl AddAssign<(VarId, f64)> for LinExpr {
    fn add_assign(&mut self, term: (VarId, f64)) {
        self.terms.push(term);
    }
}

impl Add<LinExpr> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (VarId, f64)>>(iter: T) -> Self {
        LinExpr::from_terms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn normalization_merges_and_drops_zeros() {
        let e = LinExpr::new() + (v(1), 2.0) + (v(0), 1.0) + (v(1), -2.0) + (v(2), 3.0);
        let n = e.normalized();
        assert_eq!(n.terms(), &[(v(0), 1.0), (v(2), 3.0)]);
    }

    #[test]
    fn evaluate_dot_product() {
        let e = LinExpr::new() + (v(0), 2.0) + (v(2), -1.0);
        assert_eq!(e.evaluate(&[3.0, 99.0, 4.0]), 2.0);
    }

    #[test]
    fn sum_builder() {
        let e = LinExpr::sum([v(0), v(3)]);
        assert_eq!(e.terms(), &[(v(0), 1.0), (v(3), 1.0)]);
    }

    #[test]
    fn collect_from_iterator() {
        let e: LinExpr = [(v(0), 1.0), (v(1), 2.0)].into_iter().collect();
        assert_eq!(e.terms().len(), 2);
    }
}
