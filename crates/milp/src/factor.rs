//! Pluggable basis factorizations for the revised simplex.
//!
//! The revised simplex needs four linear-algebra primitives against the
//! current basis matrix `B`: `ftran` (`B⁻¹a`), `btran` (`cᵀB⁻¹`), pivot
//! row extraction (`eᵣᵀB⁻¹`, the dual simplex's working row), and a
//! rank-1 post-pivot update. The [`Factorization`] trait abstracts them
//! so the solver can swap representations:
//!
//! * [`DenseEta`] — an explicit dense `B⁻¹` with product-form updates
//!   and periodic Gauss–Jordan refactorization. `O(m²)` memory, `O(m³)`
//!   refactorization; kept as the reference implementation.
//! * [`SparseLu`] — a left-looking sparse LU (Gilbert–Peierls shape)
//!   with partial pivoting and a **bounded eta file**: the factors stay
//!   fixed after a refresh and each pivot appends one sparse eta matrix
//!   (`B_k⁻¹ = E_k…E_1·B_0⁻¹`), so solves cost factor-plus-eta nonzeros
//!   instead of `m²` and refactorization costs `O(m·nnz)` instead of
//!   `O(m³)`. This is the default and what keeps the `N ≥ 64` ring
//!   models tractable.
//!
//! Both implementations answer the same queries to within roundoff; the
//! seeded differential suites pin dense/revised/LU agreement at `1e-6`.

use crate::simplex::EPS;
use std::fmt;
use std::str::FromStr;

/// Minimum acceptable pivot magnitude during (re)factorization.
const SINGULAR_TOL: f64 = 1e-10;

/// Which basis factorization backs the revised simplex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FactorizationKind {
    /// Dense `B⁻¹` with product-form updates (reference).
    DenseEta,
    /// Sparse LU with a bounded eta file (default).
    #[default]
    SparseLu,
}

impl FactorizationKind {
    /// Stable lowercase name, also accepted by [`FromStr`].
    pub fn as_str(self) -> &'static str {
        match self {
            FactorizationKind::DenseEta => "dense-eta",
            FactorizationKind::SparseLu => "sparse-lu",
        }
    }

    /// Builds a fresh factorization of this kind for an `m`-row basis,
    /// initialized to the identity (the all-logical basis).
    pub fn build(self, m: usize) -> Box<dyn Factorization> {
        match self {
            FactorizationKind::DenseEta => Box::new(DenseEta::identity(m)),
            FactorizationKind::SparseLu => Box::new(SparseLu::identity(m)),
        }
    }
}

impl fmt::Display for FactorizationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FactorizationKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense-eta" => Ok(FactorizationKind::DenseEta),
            "sparse-lu" => Ok(FactorizationKind::SparseLu),
            other => Err(format!(
                "unknown factorization {other:?} (expected dense-eta|sparse-lu)"
            )),
        }
    }
}

/// Read-only view of the scaled constraint columns a factorization needs
/// to (re)factorize a basis. Structural variables `j < n` use `cols[j]`;
/// logical variable `n + i` is the unit column `eᵢ`.
pub struct FactorCtx<'a> {
    /// Structural variable count.
    pub n: usize,
    /// Row (and basis) count.
    pub m: usize,
    /// Scaled sparse structural columns, `(row, coefficient)` pairs
    /// (duplicate rows allowed; they accumulate).
    pub cols: &'a [Vec<(usize, f64)>],
}

impl FactorCtx<'_> {
    /// Visits the scaled column of variable `j` (structural or logical).
    fn visit_col(&self, j: usize, f: &mut dyn FnMut(usize, f64)) {
        if j < self.n {
            for &(row, c) in &self.cols[j] {
                f(row, c);
            }
        } else {
            f(j - self.n, 1.0);
        }
    }
}

/// A basis factorization: the linear-algebra kernel behind the revised
/// simplex. All vectors are length `m`; `ftran` results are indexed by
/// basis position, `btran` results by constraint row.
pub trait Factorization: fmt::Debug {
    /// Stable lowercase name ("dense-eta", "sparse-lu").
    fn name(&self) -> &'static str;

    /// Resets to the identity basis (all logicals basic) of size `m`.
    fn reset_identity(&mut self, m: usize);

    /// Refactorizes from scratch for the basis `basic` (variable index
    /// per basis position). Returns `false` on a numerically singular
    /// basis, leaving the previous factorization intact.
    fn refresh(&mut self, ctx: &FactorCtx<'_>, basic: &[usize]) -> bool;

    /// `B⁻¹·a` for a sparse column `a` (duplicate rows accumulate).
    fn ftran_sparse(&self, col: &[(usize, f64)]) -> Vec<f64>;

    /// `B⁻¹·eᵣₒᵥᵥ` — the column of `B⁻¹` for one constraint row.
    fn ftran_unit(&self, row: usize) -> Vec<f64>;

    /// `B⁻¹·r` for a dense right-hand side.
    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64>;

    /// `cᵀ·B⁻¹` for a dense basic-cost vector (indexed by basis
    /// position); the result is indexed by constraint row.
    fn btran(&self, c: &[f64]) -> Vec<f64>;

    /// Row `r` of `B⁻¹` (`eᵣᵀ·B⁻¹`), the dual simplex's pivot row.
    fn row(&self, r: usize) -> Vec<f64>;

    /// Rank-1 update after `alpha = ftran(entering)` pivots at basis row
    /// `r`. Returns `false` when the update is refused on stability
    /// grounds; the caller must then [`refresh`](Self::refresh).
    fn update(&mut self, r: usize, alpha: &[f64]) -> bool;

    /// Updates absorbed since the last refresh (or identity reset).
    fn updates_since_refresh(&self) -> usize;

    /// Factor nonzeros in excess of the basis-matrix nonzeros at the
    /// last refresh (0 for the dense representation).
    fn fill_in(&self) -> usize {
        0
    }
}

/// Dense `B⁻¹` with product-form (eta) updates — the representation the
/// revised simplex originally hard-coded, now behind [`Factorization`].
#[derive(Debug)]
pub struct DenseEta {
    m: usize,
    /// Row-major dense `B⁻¹`.
    binv: Vec<f64>,
    etas: usize,
}

impl DenseEta {
    /// Identity factorization of size `m`.
    pub fn identity(m: usize) -> Self {
        DenseEta {
            m,
            binv: identity_matrix(m),
            etas: 0,
        }
    }
}

impl Factorization for DenseEta {
    fn name(&self) -> &'static str {
        "dense-eta"
    }

    fn reset_identity(&mut self, m: usize) {
        self.m = m;
        self.binv = identity_matrix(m);
        self.etas = 0;
    }

    fn refresh(&mut self, ctx: &FactorCtx<'_>, basic: &[usize]) -> bool {
        let m = ctx.m;
        let mut work = vec![0.0; m * m];
        for (i, &b) in basic.iter().enumerate() {
            ctx.visit_col(b, &mut |row, c| work[row * m + i] += c);
        }
        let mut inv = identity_matrix(m);
        for k in 0..m {
            let mut p = k;
            let mut best = work[k * m + k].abs();
            for i in k + 1..m {
                let v = work[i * m + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < SINGULAR_TOL {
                return false;
            }
            if p != k {
                for t in 0..m {
                    work.swap(p * m + t, k * m + t);
                    inv.swap(p * m + t, k * m + t);
                }
            }
            let piv = 1.0 / work[k * m + k];
            for t in 0..m {
                work[k * m + t] *= piv;
                inv[k * m + t] *= piv;
            }
            for i in 0..m {
                if i == k {
                    continue;
                }
                let f = work[i * m + k];
                if f.abs() <= EPS {
                    continue;
                }
                for t in 0..m {
                    work[i * m + t] -= f * work[k * m + t];
                    inv[i * m + t] -= f * inv[k * m + t];
                }
            }
        }
        self.m = m;
        self.binv = inv;
        self.etas = 0;
        true
    }

    fn ftran_sparse(&self, col: &[(usize, f64)]) -> Vec<f64> {
        let m = self.m;
        let mut alpha = vec![0.0; m];
        for &(row, c) in col {
            for (i, a) in alpha.iter_mut().enumerate() {
                *a += self.binv[i * m + row] * c;
            }
        }
        alpha
    }

    fn ftran_unit(&self, row: usize) -> Vec<f64> {
        let m = self.m;
        (0..m).map(|i| self.binv[i * m + row]).collect()
    }

    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        let m = self.m;
        (0..m)
            .map(|i| {
                let brow = &self.binv[i * m..(i + 1) * m];
                brow.iter().zip(rhs).map(|(b, r)| b * r).sum()
            })
            .collect()
    }

    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (i, &ci) in c.iter().enumerate() {
            if ci == 0.0 {
                continue;
            }
            let brow = &self.binv[i * m..(i + 1) * m];
            for (t, yv) in y.iter_mut().enumerate() {
                *yv += ci * brow[t];
            }
        }
        y
    }

    fn row(&self, r: usize) -> Vec<f64> {
        self.binv[r * self.m..(r + 1) * self.m].to_vec()
    }

    fn update(&mut self, r: usize, alpha: &[f64]) -> bool {
        let m = self.m;
        if alpha[r].abs() < SINGULAR_TOL {
            return false;
        }
        let inv = 1.0 / alpha[r];
        for t in 0..m {
            self.binv[r * m + t] *= inv;
        }
        for (i, &f) in alpha.iter().enumerate() {
            if i == r || f.abs() <= EPS {
                continue;
            }
            for t in 0..m {
                self.binv[i * m + t] -= f * self.binv[r * m + t];
            }
        }
        self.etas += 1;
        true
    }

    fn updates_since_refresh(&self) -> usize {
        self.etas
    }
}

/// Sparse LU factorization (`P·B₀ = L·U`) with a bounded eta file.
///
/// After a refresh the factors stay immutable; each basis exchange
/// appends one sparse eta column so that `B_k⁻¹ = E_k…E_1·B₀⁻¹`. `ftran`
/// applies the LU solve then the etas in order; `btran` applies the etas
/// in reverse, then solves against `Uᵀ`/`Lᵀ`. The solver refreshes when
/// the eta file reaches its bound (or an update is refused), which also
/// restores sparsity.
#[derive(Debug)]
pub struct SparseLu {
    m: usize,
    /// CSC of strictly-lower `L` (unit diagonal implicit). Row indices
    /// are *original* constraint rows; columns are pivot positions.
    l_ptr: Vec<usize>,
    l_idx: Vec<usize>,
    l_val: Vec<f64>,
    /// CSC of strictly-upper `U` (diagonal in `u_diag`). Row indices are
    /// pivot positions `< column`; columns are basis positions.
    u_ptr: Vec<usize>,
    u_idx: Vec<usize>,
    u_val: Vec<f64>,
    u_diag: Vec<f64>,
    /// `perm[k]` = original row pivoted at position `k`.
    perm: Vec<usize>,
    /// Inverse of `perm`, indexed by original row.
    pos_of_row: Vec<usize>,
    /// Eta file: `(pivot basis row, sparse eta column incl. the pivot)`.
    etas: Vec<(usize, Vec<(usize, f64)>)>,
    /// Factor nonzeros minus basis nonzeros at the last refresh.
    fill: usize,
}

impl SparseLu {
    /// Identity factorization of size `m`.
    pub fn identity(m: usize) -> Self {
        let mut lu = SparseLu {
            m: 0,
            l_ptr: Vec::new(),
            l_idx: Vec::new(),
            l_val: Vec::new(),
            u_ptr: Vec::new(),
            u_idx: Vec::new(),
            u_val: Vec::new(),
            u_diag: Vec::new(),
            perm: Vec::new(),
            pos_of_row: Vec::new(),
            etas: Vec::new(),
            fill: 0,
        };
        lu.reset_identity(m);
        lu
    }

    /// LU solve (no etas): `rhs` indexed by original row in `work`;
    /// returns `B₀⁻¹·rhs` indexed by basis position.
    fn lu_ftran(&self, work: &mut [f64]) -> Vec<f64> {
        let m = self.m;
        // Forward: L·z = P·rhs. After step k, work[perm[k]] is final.
        for k in 0..m {
            let v = work[self.perm[k]];
            if v != 0.0 {
                for t in self.l_ptr[k]..self.l_ptr[k + 1] {
                    work[self.l_idx[t]] -= self.l_val[t] * v;
                }
            }
        }
        let mut x: Vec<f64> = (0..m).map(|k| work[self.perm[k]]).collect();
        // Backward: U·x = z, column-oriented.
        for j in (0..m).rev() {
            let xj = x[j] / self.u_diag[j];
            x[j] = xj;
            if xj != 0.0 {
                for t in self.u_ptr[j]..self.u_ptr[j + 1] {
                    x[self.u_idx[t]] -= self.u_val[t] * xj;
                }
            }
        }
        x
    }

    /// Applies the eta file (in order) to an ftran result in place.
    fn apply_etas(&self, x: &mut [f64]) {
        for (r, entries) in &self.etas {
            let v = x[*r];
            if v == 0.0 {
                continue;
            }
            for &(i, e) in entries {
                if i == *r {
                    x[i] = e * v;
                } else {
                    x[i] += e * v;
                }
            }
        }
    }
}

impl Factorization for SparseLu {
    fn name(&self) -> &'static str {
        "sparse-lu"
    }

    fn reset_identity(&mut self, m: usize) {
        self.m = m;
        self.l_ptr = vec![0; m + 1];
        self.l_idx.clear();
        self.l_val.clear();
        self.u_ptr = vec![0; m + 1];
        self.u_idx.clear();
        self.u_val.clear();
        self.u_diag = vec![1.0; m];
        self.perm = (0..m).collect();
        self.pos_of_row = (0..m).collect();
        self.etas.clear();
        self.fill = 0;
    }

    fn refresh(&mut self, ctx: &FactorCtx<'_>, basic: &[usize]) -> bool {
        let m = ctx.m;
        let mut l_ptr: Vec<usize> = Vec::with_capacity(m + 1);
        let mut l_idx: Vec<usize> = Vec::new();
        let mut l_val: Vec<f64> = Vec::new();
        let mut u_ptr: Vec<usize> = Vec::with_capacity(m + 1);
        let mut u_idx: Vec<usize> = Vec::new();
        let mut u_val: Vec<f64> = Vec::new();
        let mut u_diag = vec![0.0; m];
        let mut perm = vec![usize::MAX; m];
        let mut pos_of_row = vec![usize::MAX; m];
        l_ptr.push(0);
        u_ptr.push(0);

        let mut w = vec![0.0f64; m];
        let mut marked = vec![false; m];
        let mut touched: Vec<usize> = Vec::with_capacity(16);
        let mut basis_nnz = 0usize;

        for (j, &b) in basic.iter().enumerate() {
            // Scatter the basic column (duplicate rows accumulate).
            ctx.visit_col(b, &mut |row, c| {
                w[row] += c;
                if !marked[row] {
                    marked[row] = true;
                    touched.push(row);
                }
                basis_nnz += 1;
            });
            // Forward-substitute against the settled columns in pivot
            // order (left-looking: L(0..j)·y = a_j).
            for k in 0..j {
                let v = w[perm[k]];
                if v == 0.0 {
                    continue;
                }
                for t in l_ptr[k]..l_ptr[k + 1] {
                    let i = l_idx[t];
                    w[i] -= l_val[t] * v;
                    if !marked[i] {
                        marked[i] = true;
                        touched.push(i);
                    }
                }
            }
            // Partial pivoting over the not-yet-pivoted touched rows.
            let mut piv = usize::MAX;
            let mut best = SINGULAR_TOL;
            for &i in &touched {
                if pos_of_row[i] == usize::MAX && w[i].abs() > best {
                    best = w[i].abs();
                    piv = i;
                }
            }
            if piv == usize::MAX {
                return false; // singular: keep the previous factors
            }
            let diag = w[piv];
            // Emit U column j (pivoted rows) and L column j (the rest).
            for &i in &touched {
                let v = w[i];
                w[i] = 0.0;
                marked[i] = false;
                if v.abs() <= EPS || i == piv {
                    continue;
                }
                let k = pos_of_row[i];
                if k != usize::MAX {
                    u_idx.push(k);
                    u_val.push(v);
                } else {
                    l_idx.push(i);
                    l_val.push(v / diag);
                }
            }
            touched.clear();
            u_diag[j] = diag;
            perm[j] = piv;
            pos_of_row[piv] = j;
            l_ptr.push(l_idx.len());
            u_ptr.push(u_idx.len());
        }

        let factor_nnz = l_val.len() + u_val.len() + m;
        self.m = m;
        self.l_ptr = l_ptr;
        self.l_idx = l_idx;
        self.l_val = l_val;
        self.u_ptr = u_ptr;
        self.u_idx = u_idx;
        self.u_val = u_val;
        self.u_diag = u_diag;
        self.perm = perm;
        self.pos_of_row = pos_of_row;
        self.etas.clear();
        self.fill = factor_nnz.saturating_sub(basis_nnz);
        true
    }

    fn ftran_sparse(&self, col: &[(usize, f64)]) -> Vec<f64> {
        let mut work = vec![0.0; self.m];
        for &(row, c) in col {
            work[row] += c;
        }
        let mut x = self.lu_ftran(&mut work);
        self.apply_etas(&mut x);
        x
    }

    fn ftran_unit(&self, row: usize) -> Vec<f64> {
        let mut work = vec![0.0; self.m];
        work[row] = 1.0;
        let mut x = self.lu_ftran(&mut work);
        self.apply_etas(&mut x);
        x
    }

    fn ftran_dense(&self, rhs: &[f64]) -> Vec<f64> {
        let mut work = rhs.to_vec();
        let mut x = self.lu_ftran(&mut work);
        self.apply_etas(&mut x);
        x
    }

    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut c = c.to_vec();
        // Etas in reverse: (cᵀE)ᵣ = cᵀ·eta_col, other entries unchanged.
        for (r, entries) in self.etas.iter().rev() {
            let mut v = 0.0;
            for &(i, e) in entries {
                v += c[i] * e;
            }
            c[*r] = v;
        }
        // Uᵀ·z = c (lower triangular in pivot order, column-oriented).
        let mut z = c;
        for k in 0..m {
            let mut v = z[k];
            for t in self.u_ptr[k]..self.u_ptr[k + 1] {
                v -= self.u_val[t] * z[self.u_idx[t]];
            }
            z[k] = v / self.u_diag[k];
        }
        // Lᵀ·w = z (upper triangular in pivot order).
        for k in (0..m).rev() {
            let mut v = z[k];
            for t in self.l_ptr[k]..self.l_ptr[k + 1] {
                v -= self.l_val[t] * z[self.pos_of_row[self.l_idx[t]]];
            }
            z[k] = v;
        }
        // yᵀ = wᵀ·P: scatter back to original row indices.
        let mut y = vec![0.0; m];
        for k in 0..m {
            y[self.perm[k]] = z[k];
        }
        y
    }

    fn row(&self, r: usize) -> Vec<f64> {
        let mut e = vec![0.0; self.m];
        e[r] = 1.0;
        self.btran(&e)
    }

    fn update(&mut self, r: usize, alpha: &[f64]) -> bool {
        let ar = alpha[r];
        if ar.abs() < SINGULAR_TOL {
            return false;
        }
        let inv = 1.0 / ar;
        let mut entries = Vec::with_capacity(8);
        for (i, &a) in alpha.iter().enumerate() {
            if i == r {
                entries.push((r, inv));
            } else if a.abs() > EPS {
                entries.push((i, -a * inv));
            }
        }
        self.etas.push((r, entries));
        true
    }

    fn updates_since_refresh(&self) -> usize {
        self.etas.len()
    }

    fn fill_in(&self) -> usize {
        self.fill
    }
}

fn identity_matrix(m: usize) -> Vec<f64> {
    let mut id = vec![0.0; m * m];
    for i in 0..m {
        id[i * m + i] = 1.0;
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic split-mix generator for the agreement sweeps.
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Random sparse columns + a basis over structurals and logicals.
    fn random_ctx(
        rng: &mut SplitMix64,
        n: usize,
        m: usize,
    ) -> (Vec<Vec<(usize, f64)>>, Vec<usize>) {
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            let nnz = 1 + (rng.next() as usize) % m.max(1);
            let mut col = Vec::with_capacity(nnz);
            for _ in 0..nnz.min(4) {
                col.push(((rng.next() as usize) % m, rng.unit() * 4.0 - 2.0));
            }
            cols.push(col);
        }
        // Basis: mix of structural and logical columns, one per row.
        let mut basic = Vec::with_capacity(m);
        for i in 0..m {
            if rng.unit() < 0.5 && n > 0 {
                basic.push((rng.next() as usize) % n);
            } else {
                basic.push(n + i);
            }
        }
        (cols, basic)
    }

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn lu_matches_dense_on_random_bases() {
        let mut rng = SplitMix64(0xFAC7_0001);
        let mut factored = 0usize;
        for _ in 0..200 {
            let n = 2 + (rng.next() as usize) % 6;
            let m = 1 + (rng.next() as usize) % 8;
            let (cols, basic) = random_ctx(&mut rng, n, m);
            let ctx = FactorCtx { n, m, cols: &cols };
            let mut dense = DenseEta::identity(m);
            let mut lu = SparseLu::identity(m);
            let d_ok = dense.refresh(&ctx, &basic);
            let l_ok = lu.refresh(&ctx, &basic);
            // Near the singularity tolerance the two pivoting orders may
            // disagree on viability; only compare when both factored.
            assert_eq!(d_ok, l_ok, "viability must agree on random bases");
            if !(d_ok && l_ok) {
                continue;
            }
            factored += 1;
            let rhs: Vec<f64> = (0..m).map(|_| rng.unit() * 2.0 - 1.0).collect();
            assert!(
                close(&dense.ftran_dense(&rhs), &lu.ftran_dense(&rhs), 1e-8),
                "ftran mismatch"
            );
            assert!(close(&dense.btran(&rhs), &lu.btran(&rhs), 1e-8));
            for r in 0..m {
                assert!(close(&dense.row(r), &lu.row(r), 1e-8), "row {r}");
                assert!(close(&dense.ftran_unit(r), &lu.ftran_unit(r), 1e-8));
            }
            let col: Vec<(usize, f64)> = (0..2)
                .map(|_| ((rng.next() as usize) % m, rng.unit()))
                .collect();
            assert!(close(
                &dense.ftran_sparse(&col),
                &lu.ftran_sparse(&col),
                1e-8
            ));
        }
        assert!(factored > 50, "only {factored} bases factored");
    }

    #[test]
    fn lu_eta_updates_match_dense_eta_updates() {
        let mut rng = SplitMix64(0xFAC7_0002);
        for _ in 0..100 {
            let n = 4 + (rng.next() as usize) % 4;
            let m = 2 + (rng.next() as usize) % 6;
            let (cols, basic) = random_ctx(&mut rng, n, m);
            let ctx = FactorCtx { n, m, cols: &cols };
            let mut dense = DenseEta::identity(m);
            let mut lu = SparseLu::identity(m);
            if !dense.refresh(&ctx, &basic) || !lu.refresh(&ctx, &basic) {
                continue;
            }
            // A few pivots: enter a random structural column at a row
            // where its alpha is usable, mirroring simplex updates.
            for _ in 0..3 {
                let q = (rng.next() as usize) % n;
                let alpha = dense.ftran_sparse(&cols[q]);
                let Some(r) = (0..m).find(|&i| alpha[i].abs() > 0.1) else {
                    continue;
                };
                if !dense.update(r, &alpha) {
                    continue;
                }
                let alpha_lu = lu.ftran_sparse(&cols[q]);
                assert!(lu.update(r, &alpha_lu), "lu refused a dense-accepted pivot");
                let rhs: Vec<f64> = (0..m).map(|_| rng.unit()).collect();
                assert!(
                    close(&dense.ftran_dense(&rhs), &lu.ftran_dense(&rhs), 1e-7),
                    "post-update ftran mismatch"
                );
                assert!(close(&dense.btran(&rhs), &lu.btran(&rhs), 1e-7));
            }
            assert_eq!(dense.updates_since_refresh(), lu.updates_since_refresh());
        }
    }

    #[test]
    fn singular_basis_is_rejected_and_factors_survive() {
        // Two identical structural columns cannot form a basis.
        let cols = vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]];
        let ctx = FactorCtx {
            n: 2,
            m: 2,
            cols: &cols,
        };
        for factor in [
            &mut DenseEta::identity(2) as &mut dyn Factorization,
            &mut SparseLu::identity(2),
        ] {
            assert!(!factor.refresh(&ctx, &[0, 1]), "singular must be rejected");
            // The identity factors must still answer queries.
            let x = factor.ftran_dense(&[3.0, -2.0]);
            assert!(close(&x, &[3.0, -2.0], 1e-12));
            assert!(factor.refresh(&ctx, &[0, 3]), "mixed basis is regular");
        }
    }

    #[test]
    fn kind_round_trips_and_builds() {
        for kind in [FactorizationKind::DenseEta, FactorizationKind::SparseLu] {
            assert_eq!(kind.as_str().parse::<FactorizationKind>().unwrap(), kind);
            assert_eq!(kind.build(3).name(), kind.as_str());
        }
        assert!("qr".parse::<FactorizationKind>().is_err());
        assert_eq!(FactorizationKind::default(), FactorizationKind::SparseLu);
    }

    #[test]
    fn zero_row_factorization_is_trivial() {
        let cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 2];
        let ctx = FactorCtx {
            n: 2,
            m: 0,
            cols: &cols,
        };
        let mut lu = SparseLu::identity(0);
        assert!(lu.refresh(&ctx, &[]));
        assert!(lu.ftran_dense(&[]).is_empty());
        assert!(lu.btran(&[]).is_empty());
    }
}
