//! Solver error type.

use std::error::Error;
use std::fmt;

/// Errors returned by [`BranchAndBound`](crate::BranchAndBound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The model has no feasible integer solution.
    Infeasible,
    /// The LP relaxation is unbounded below (the MILP is unbounded or
    /// mis-modelled).
    Unbounded,
    /// The node or simplex-iteration budget was exhausted before the
    /// search could be completed.
    ResourceLimit {
        /// Nodes explored when the limit hit.
        nodes: usize,
    },
    /// The solver was interrupted by its cooperative deadline (see
    /// [`BranchAndBound::with_deadline`](crate::BranchAndBound::with_deadline))
    /// before the search could be completed. Unlike
    /// [`ResourceLimit`](SolveError::ResourceLimit)
    /// (which falls back to the incumbent), a deadline is a hard stop:
    /// the caller's time budget is spent, so no solution is returned.
    Interrupted {
        /// Nodes explored when the deadline hit.
        nodes: usize,
    },
    /// The simplex ran into numerical trouble it could not recover from.
    Numerical,
    /// The solver was handed an ill-formed input (e.g. a warm-start
    /// incumbent whose dimension disagrees with the model). Reported as
    /// a typed error so batch workers can isolate the bad job instead of
    /// aborting on an assertion.
    InvalidModel {
        /// What was wrong with the input.
        detail: String,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "model is unbounded"),
            SolveError::ResourceLimit { nodes } => {
                write!(f, "resource limit exhausted after {nodes} nodes")
            }
            SolveError::Interrupted { nodes } => {
                write!(f, "solve interrupted by deadline after {nodes} nodes")
            }
            SolveError::Numerical => write!(f, "simplex failed numerically"),
            SolveError::InvalidModel { detail } => write!(f, "invalid model: {detail}"),
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        for (e, needle) in [
            (SolveError::Infeasible, "infeasible"),
            (SolveError::Unbounded, "unbounded"),
            (SolveError::ResourceLimit { nodes: 7 }, "7"),
            (SolveError::Interrupted { nodes: 9 }, "deadline"),
            (SolveError::Numerical, "numerically"),
            (
                SolveError::InvalidModel {
                    detail: "bad incumbent".to_owned(),
                },
                "bad incumbent",
            ),
        ] {
            let s = e.to_string();
            assert!(s.contains(needle), "{s}");
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }
}
