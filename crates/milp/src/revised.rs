//! Revised bounded-variable simplex with dual-simplex warm starts.
//!
//! Unlike the dense tableau in [`crate::simplex`], this backend:
//!
//! * keeps the constraint matrix **column-wise sparse** and maintains the
//!   basis behind the [`crate::factor::Factorization`] trait — by default
//!   a sparse LU with a bounded eta file and periodic refactorization
//!   ([`crate::factor::SparseLu`]), with the original dense `B⁻¹`
//!   ([`crate::factor::DenseEta`]) kept as the reference representation;
//! * prices entering columns through the [`crate::pricing::Pricing`]
//!   trait (Dantzig by default, devex and partial pricing selectable per
//!   backend via [`RevisedConfig`]);
//! * treats `lb ≤ x ≤ ub` **natively**: a nonbasic variable rests at its
//!   lower or upper bound and may *bound-flip* without a basis change,
//!   so finite upper bounds cost no extra rows (the all-binary XRing
//!   models roughly halve their row count);
//! * supports **warm starts**: a child branch-and-bound node differs
//!   from its parent only in one variable's bounds, so the parent's
//!   optimal basis stays dual feasible (after flipping nonbasic
//!   statuses, always possible for bounded binaries) and a short dual
//!   simplex run restores primal feasibility instead of a cold
//!   two-phase solve. Appended lazy-cut rows extend the basis with
//!   their logicals basic; adoption refactorizes the extended basis
//!   directly (the exported [`Basis`] no longer carries a dense `B⁻¹`).
//!
//! Every row `i` gets a logical variable `n + i` (`Ge` rows are negated
//! to `Le` first, so logicals always have coefficient `+1` and bounds
//! `[0, ∞)` for inequalities, `[0, 0]` for equalities). Cold solves
//! start from the all-logical basis: when flipping nonbasic variables
//! restores dual feasibility (always, for the ring models' nonnegative
//! objectives) the dual simplex runs directly; otherwise a composite
//! primal phase 1 drives out infeasibility first.

use crate::backend::{record_counters, BackendSolve, Basis, LpBackend, SolveTelemetry};
use crate::factor::{FactorCtx, Factorization, FactorizationKind};
use crate::model::Relation;
use crate::pricing::{Pricing, PricingKind};
use crate::simplex::{LpOutcome, LpProblem, LpSolution, EPS};

/// Primal feasibility tolerance on the scaled rows.
const PFEAS: f64 = 1e-7;
/// Minimum pivot magnitude accepted in either ratio test.
const PIVOT_TOL: f64 = 1e-7;
/// Dual feasibility tolerance on the scaled reduced costs.
const DTOL: f64 = 1e-9;
/// Default factorization updates between refactorizations.
const REFACTOR_INTERVAL: usize = 100;

/// Configured revised simplex: factorization and pricing selectable per
/// backend instance. [`RevisedSimplex`] is the all-defaults shorthand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevisedConfig {
    /// Basis factorization (default [`FactorizationKind::SparseLu`]).
    pub factorization: FactorizationKind,
    /// Primal pricing rule (default [`PricingKind::Dantzig`]).
    pub pricing: PricingKind,
    /// Factorization updates absorbed before a refactorization (numeric
    /// hygiene). Lower values trade speed for stability; the
    /// differential suite exercises forced cadences down to 1.
    pub refactor_interval: usize,
}

impl Default for RevisedConfig {
    fn default() -> Self {
        RevisedConfig {
            factorization: FactorizationKind::default(),
            pricing: PricingKind::default(),
            refactor_interval: REFACTOR_INTERVAL,
        }
    }
}

impl RevisedConfig {
    /// Selects the basis factorization.
    pub fn with_factorization(mut self, kind: FactorizationKind) -> Self {
        self.factorization = kind;
        self
    }

    /// Selects the pricing rule.
    pub fn with_pricing(mut self, kind: PricingKind) -> Self {
        self.pricing = kind;
        self
    }

    /// Overrides the refactorization cadence (minimum 1).
    pub fn with_refactor_interval(mut self, interval: usize) -> Self {
        self.refactor_interval = interval.max(1);
        self
    }

    fn finish(&self, s: Solver<'_>, outcome: LpOutcome, warmed: bool) -> BackendSolve {
        let basis = match outcome {
            LpOutcome::Optimal(_) => Some(s.export_basis()),
            _ => None,
        };
        record_counters(
            "revised",
            SolveTelemetry {
                pivots: s.pivots,
                degenerate: s.degenerate,
                warmed,
                refactorizations: s.refactorizations,
                fill_in: s.max_fill,
            },
        );
        BackendSolve {
            outcome,
            basis,
            warmed,
        }
    }
}

impl LpBackend for RevisedConfig {
    fn name(&self) -> &'static str {
        "revised"
    }

    fn solve(&self, lp: &LpProblem) -> BackendSolve {
        let mut s = Solver::new(lp, self);
        s.set_initial_basis();
        let mut pricing = self.pricing.build(s.nt);
        let outcome = s.run(pricing.as_mut());
        self.finish(s, outcome, false)
    }

    fn solve_warm(&self, lp: &LpProblem, warm: &Basis) -> BackendSolve {
        let mut s = Solver::new(lp, self);
        let warmed = s.adopt_basis(warm);
        if !warmed {
            s.set_initial_basis();
        }
        let mut pricing = self.pricing.build(s.nt);
        let outcome = s.run(pricing.as_mut());
        self.finish(s, outcome, warmed)
    }
}

/// The revised bounded-variable simplex backend with all-default
/// configuration (sparse LU, Dantzig pricing). Use [`RevisedConfig`] to
/// select other factorizations or pricing rules.
#[derive(Debug, Clone, Copy, Default)]
pub struct RevisedSimplex;

impl LpBackend for RevisedSimplex {
    fn name(&self) -> &'static str {
        "revised"
    }

    fn solve(&self, lp: &LpProblem) -> BackendSolve {
        RevisedConfig::default().solve(lp)
    }

    fn solve_warm(&self, lp: &LpProblem, warm: &Basis) -> BackendSolve {
        RevisedConfig::default().solve_warm(lp, warm)
    }
}

const NONE: usize = usize::MAX;

struct Solver<'a> {
    lp: &'a LpProblem,
    n: usize,
    m: usize,
    /// n + m: structural variables then one logical per row.
    nt: usize,
    /// Scaled sparse columns of the structural variables. Rows are
    /// scaled by a signed factor (negative for `Ge` rows, which are
    /// normalized to `Le`).
    cols: Vec<Vec<(usize, f64)>>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Scaled objective (zero on logicals).
    cost: Vec<f64>,
    /// Scaled right-hand sides.
    rhs: Vec<f64>,
    basic: Vec<usize>,
    /// Variable → basis row, `NONE` when nonbasic.
    pos: Vec<usize>,
    at_upper: Vec<bool>,
    /// Basic variable values, indexed by basis row.
    xb: Vec<f64>,
    /// Pluggable basis factorization (dense `B⁻¹` or sparse LU).
    factor: Box<dyn Factorization>,
    refactor_interval: usize,
    pivots: usize,
    degenerate: usize,
    refactorizations: usize,
    /// Worst LU fill-in observed across this solve's refactorizations.
    max_fill: usize,
    iterations: usize,
    iteration_limit: usize,
    bland_threshold: usize,
    /// Leaky-bucket stall score: +2 per step without primal or dual
    /// progress, −1 per progressing step. At `stall_limit` the pivot
    /// rules switch to Bland until the score drains (much earlier than
    /// the global `bland_threshold`, so a degenerate cycle — even one
    /// interleaved with near-zero "progress" steps — costs hundreds of
    /// iterations, not thousands).
    stalled: usize,
    stall_limit: usize,
}

impl<'a> Solver<'a> {
    fn new(lp: &'a LpProblem, config: &RevisedConfig) -> Self {
        let n = lp.num_vars;
        let m = lp.rows.len();
        assert_eq!(lp.lb.len(), n);
        assert_eq!(lp.ub.len(), n);
        assert_eq!(lp.objective.len(), n);

        let mut lower = Vec::with_capacity(n + m);
        let mut upper = Vec::with_capacity(n + m);
        for j in 0..n {
            assert!(lp.lb[j].is_finite(), "lower bounds must be finite");
            assert!(lp.ub[j] >= lp.lb[j] - EPS, "ub < lb for var {j}");
            lower.push(lp.lb[j]);
            upper.push(lp.ub[j].max(lp.lb[j]));
        }

        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut rhs = Vec::with_capacity(m);
        for (i, r) in lp.rows.iter().enumerate() {
            let maxc = r
                .terms
                .iter()
                .map(|&(_, c)| c.abs())
                .fold(0.0f64, f64::max)
                .max(r.rhs.abs());
            let scale = if maxc > 1e-12 { 1.0 / maxc } else { 1.0 };
            let factor = if r.relation == Relation::Ge {
                -scale
            } else {
                scale
            };
            for &(j, c) in &r.terms {
                assert!(j < n, "row references unknown variable {j}");
                cols[j].push((i, c * factor));
            }
            rhs.push(r.rhs * factor);
            // Logical bounds: inequalities (Le, and Ge-negated-to-Le)
            // get a slack in [0, ∞); equalities a fixed slack at 0.
            if r.relation == Relation::Eq {
                lower.push(0.0);
                upper.push(0.0);
            } else {
                lower.push(0.0);
                upper.push(f64::INFINITY);
            }
        }

        let obj_scale = {
            let maxc = lp.objective.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
            if maxc > 1e-12 {
                1.0 / maxc
            } else {
                1.0
            }
        };
        let mut cost = vec![0.0; n + m];
        for (c, obj) in cost.iter_mut().zip(&lp.objective) {
            *c = obj * obj_scale;
        }

        Solver {
            lp,
            n,
            m,
            nt: n + m,
            cols,
            lower,
            upper,
            cost,
            rhs,
            basic: Vec::new(),
            pos: vec![NONE; n + m],
            at_upper: vec![false; n + m],
            xb: vec![0.0; m],
            factor: config.factorization.build(m),
            refactor_interval: config.refactor_interval.max(1),
            pivots: 0,
            degenerate: 0,
            refactorizations: 0,
            max_fill: 0,
            iterations: 0,
            iteration_limit: 20_000 + 200 * (m + n),
            bland_threshold: 5_000 + 20 * (m + n),
            stalled: 0,
            stall_limit: 100 + m,
        }
    }

    fn set_initial_basis(&mut self) {
        self.basic = (self.n..self.nt).collect();
        self.pos = vec![NONE; self.nt];
        for (i, &b) in self.basic.iter().enumerate() {
            self.pos[b] = i;
        }
        self.at_upper = vec![false; self.nt];
        self.factor.reset_identity(self.m);
    }

    /// Adopts a basis exported by an earlier solve of this problem
    /// family (same rows, possibly appended rows, different bounds) by
    /// refactorizing its basic set against this problem's columns.
    /// Returns false — leaving the solver unconfigured — when the
    /// snapshot cannot apply (or its basis is singular here).
    fn adopt_basis(&mut self, warm: &Basis) -> bool {
        if warm.num_vars != self.n || warm.num_rows > self.m {
            return false;
        }
        if warm.basic.len() != warm.num_rows || warm.at_upper.len() != warm.num_vars + warm.num_rows
        {
            return false;
        }
        let old_m = warm.num_rows;
        let old_nt = self.n + old_m;
        let mut pos = vec![NONE; self.nt];
        for (i, &b) in warm.basic.iter().enumerate() {
            if b >= old_nt || pos[b] != NONE {
                return false;
            }
            pos[b] = i;
        }
        let mut basic = warm.basic.clone();
        let mut at_upper = vec![false; self.nt];
        at_upper[..self.n].copy_from_slice(&warm.at_upper[..self.n]);
        at_upper[self.n..old_nt].copy_from_slice(&warm.at_upper[self.n..]);
        // Appended rows (lazy cuts): their logicals join the basis; the
        // refactorization below factors the extended basis directly
        // (the old block-triangular `B⁻¹` patch-up is no longer needed
        // now that adoption refactorizes).
        for i in old_m..self.m {
            basic.push(self.n + i);
            pos[self.n + i] = i;
        }
        self.basic = basic;
        self.pos = pos;
        self.at_upper = at_upper;
        let ctx = FactorCtx {
            n: self.n,
            m: self.m,
            cols: &self.cols,
        };
        if !self.factor.refresh(&ctx, &self.basic) {
            return false;
        }
        self.refactorizations += 1;
        self.max_fill = self.max_fill.max(self.factor.fill_in());
        true
    }

    fn export_basis(&self) -> Basis {
        Basis {
            num_vars: self.n,
            num_rows: self.m,
            basic: self.basic.clone(),
            at_upper: self.at_upper.clone(),
        }
    }

    fn run(&mut self, pricing: &mut dyn Pricing) -> LpOutcome {
        pricing.reset(self.nt);
        self.compute_xb();
        let dual_feasible = self.make_dual_feasible();
        if dual_feasible {
            if let Err(out) = self.dual_simplex() {
                return out;
            }
        } else if let Err(out) = self.primal_phase1(pricing) {
            return out;
        }
        // Primal optimization / cleanup. After a successful dual run
        // this typically performs zero pivots.
        if let Err(out) = self.primal_phase2(pricing) {
            return out;
        }
        self.extract()
    }

    /// Nonbasic resting value of variable `j`.
    fn nb_value(&self, j: usize) -> f64 {
        if self.at_upper[j] && self.upper[j].is_finite() {
            self.upper[j]
        } else {
            self.lower[j]
        }
    }

    fn span(&self, j: usize) -> f64 {
        self.upper[j] - self.lower[j]
    }

    /// Recomputes `xb = B⁻¹ (b − N x_N)` from scratch.
    fn compute_xb(&mut self) {
        let mut r = self.rhs.clone();
        for j in 0..self.n {
            if self.pos[j] != NONE {
                continue;
            }
            let v = self.nb_value(j);
            if v != 0.0 {
                for &(row, c) in &self.cols[j] {
                    r[row] -= c * v;
                }
            }
        }
        // Nonbasic logicals rest at 0 (inequality slack lb, or the
        // fixed equality slack), contributing nothing.
        self.xb = self.factor.ftran_dense(&r);
    }

    /// `y = c_Bᵀ B⁻¹` for an arbitrary basic cost vector.
    fn btran(&self, cb: &[f64]) -> Vec<f64> {
        self.factor.btran(cb)
    }

    /// `α = B⁻¹ A_q` for column `q` (structural or logical).
    fn ftran(&self, q: usize) -> Vec<f64> {
        if q < self.n {
            self.factor.ftran_sparse(&self.cols[q])
        } else {
            self.factor.ftran_unit(q - self.n)
        }
    }

    /// Reduced cost of nonbasic `j` given `y`.
    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            let mut d = self.cost[j];
            for &(row, c) in &self.cols[j] {
                d -= y[row] * c;
            }
            d
        } else {
            -y[j - self.n]
        }
    }

    fn objective_y(&self) -> Vec<f64> {
        let cb: Vec<f64> = self.basic.iter().map(|&b| self.cost[b]).collect();
        self.btran(&cb)
    }

    /// Flips nonbasic variables onto the bound their reduced cost
    /// prefers. Returns false when some variable would need an infinite
    /// bound to become dual feasible (then primal phase 1 runs instead).
    fn make_dual_feasible(&mut self) -> bool {
        let y = self.objective_y();
        // Two passes: mutating flags before discovering an impossible
        // flip would leave `at_upper` out of sync with `xb`.
        let mut flips = Vec::new();
        for j in 0..self.nt {
            if self.pos[j] != NONE || self.span(j) <= EPS {
                continue;
            }
            let d = self.reduced_cost(j, &y);
            if !self.at_upper[j] && d < -DTOL {
                if !self.upper[j].is_finite() {
                    return false;
                }
                flips.push((j, true));
            } else if self.at_upper[j] && d > DTOL {
                flips.push((j, false));
            }
        }
        if !flips.is_empty() {
            for &(j, up) in &flips {
                self.at_upper[j] = up;
            }
            self.compute_xb();
        }
        true
    }

    /// Absorbs one basis exchange into the factorization (`alpha =
    /// B⁻¹A_q` entered at basis row `r`), refactorizing when the update
    /// is refused or the eta budget is spent.
    fn update_factor(&mut self, r: usize, alpha: &[f64]) {
        let ok = self.factor.update(r, alpha);
        if !ok || self.factor.updates_since_refresh() >= self.refactor_interval {
            self.refactorize();
        }
    }

    /// Rebuilds the factorization from the basic columns. Returns false
    /// on a (numerically) singular basis, leaving the previous
    /// factorization in use (a retry is attempted after the next pivot).
    fn refactorize(&mut self) -> bool {
        let ctx = FactorCtx {
            n: self.n,
            m: self.m,
            cols: &self.cols,
        };
        if !self.factor.refresh(&ctx, &self.basic) {
            return false;
        }
        self.refactorizations += 1;
        self.max_fill = self.max_fill.max(self.factor.fill_in());
        self.compute_xb();
        true
    }

    fn tick(&mut self) -> Result<bool, LpOutcome> {
        self.iterations += 1;
        if self.iterations > self.iteration_limit {
            return Err(LpOutcome::IterationLimit);
        }
        Ok(self.iterations > self.bland_threshold || self.stalled >= self.stall_limit)
    }

    /// Records whether the last step made progress, feeding the
    /// stall-triggered Bland switch in [`Self::tick`].
    fn note_progress(&mut self, progressed: bool) {
        if progressed {
            self.stalled = self.stalled.saturating_sub(1);
        } else {
            self.degenerate += 1;
            self.stalled += 2;
        }
    }

    /// Dual simplex: starting dual feasible, drives out primal bound
    /// violations. `Err(Infeasible)` when a violated row admits no
    /// entering column. The entering choice is a dual ratio test, so
    /// pricing rules do not apply here.
    fn dual_simplex(&mut self) -> Result<(), LpOutcome> {
        loop {
            let bland = self.tick()?;
            // Leaving: most violated basic variable.
            let mut r = NONE;
            let mut worst = PFEAS;
            for i in 0..self.m {
                let b = self.basic[i];
                let viol = (self.lower[b] - self.xb[i]).max(self.xb[i] - self.upper[b]);
                let better = if bland {
                    // Bland: smallest-index violated basic variable.
                    viol > PFEAS && (r == NONE || b < self.basic[r])
                } else {
                    viol > worst
                };
                if better {
                    worst = viol;
                    r = i;
                }
            }
            if r == NONE {
                return Ok(());
            }
            let l = self.basic[r];
            let below = self.xb[r] < self.lower[l];
            let y = self.objective_y();
            let w = self.factor.row(r);

            // Entering: dual ratio test over movable nonbasic columns.
            let mut q = NONE;
            let mut q_alpha: f64 = 0.0;
            let mut best_ratio = f64::INFINITY;
            for j in 0..self.nt {
                if self.pos[j] != NONE || self.span(j) <= EPS {
                    continue;
                }
                let a = if j < self.n {
                    let mut acc = 0.0;
                    for &(row, c) in &self.cols[j] {
                        acc += w[row] * c;
                    }
                    acc
                } else {
                    w[j - self.n]
                };
                if a.abs() <= PIVOT_TOL {
                    continue;
                }
                let sigma = if self.at_upper[j] { -1.0 } else { 1.0 };
                // x_B[r] moves at rate −aσ per unit of entering step.
                let rate = -a * sigma;
                let helps = if below { rate > 0.0 } else { rate < 0.0 };
                if !helps {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let ratio = (d * sigma).max(0.0) / a.abs();
                let better = if bland {
                    ratio < best_ratio - DTOL || (ratio < best_ratio + DTOL && (q == NONE || j < q))
                } else {
                    ratio < best_ratio - DTOL
                        || (ratio < best_ratio + DTOL && a.abs() > q_alpha.abs())
                };
                if better {
                    best_ratio = ratio;
                    q = j;
                    q_alpha = a;
                }
            }
            if q == NONE {
                return Err(LpOutcome::Infeasible);
            }

            let sigma = if self.at_upper[q] { -1.0 } else { 1.0 };
            let target = if below { self.lower[l] } else { self.upper[l] };
            let t = ((self.xb[r] - target) / (q_alpha * sigma)).max(0.0);
            let alpha = self.ftran(q);
            if self.span(q).is_finite() && t > self.span(q) + EPS {
                // The entering column hits its own opposite bound first:
                // bound flip, no basis change.
                let step = self.span(q);
                for (x, &a) in self.xb.iter_mut().zip(&alpha) {
                    *x -= sigma * step * a;
                }
                self.at_upper[q] = !self.at_upper[q];
                self.pivots += 1;
                // A flip along a zero reduced cost advances neither
                // bound — classic dual-degenerate cycling material.
                self.note_progress(best_ratio > DTOL);
                continue;
            }
            for (x, &a) in self.xb.iter_mut().zip(&alpha) {
                *x -= sigma * t * a;
            }
            self.xb[r] = self.nb_value(q) + sigma * t;
            self.pos[l] = NONE;
            self.at_upper[l] = !below;
            self.basic[r] = q;
            self.pos[q] = r;
            self.pivots += 1;
            // Dual progress is the dual-objective gain `violation *
            // ratio`; a positive primal step `t` alone proves nothing
            // (a dual cycle moves `x_B` every iteration).
            self.note_progress(best_ratio > DTOL);
            self.update_factor(r, &alpha);
        }
    }

    /// Composite primal phase 1: minimizes total bound violation of the
    /// basic variables. `Err(Infeasible)` when no improving column
    /// exists while violation remains.
    fn primal_phase1(&mut self, pricing: &mut dyn Pricing) -> Result<(), LpOutcome> {
        loop {
            let bland = self.tick()?;
            let mut infeasible = false;
            let mut cb = vec![0.0; self.m];
            for (i, ci) in cb.iter_mut().enumerate() {
                let b = self.basic[i];
                if self.xb[i] < self.lower[b] - PFEAS {
                    *ci = -1.0;
                    infeasible = true;
                } else if self.xb[i] > self.upper[b] + PFEAS {
                    *ci = 1.0;
                    infeasible = true;
                }
            }
            if !infeasible {
                return Ok(());
            }
            let y = self.btran(&cb);
            // Entering: improvement rate of the auxiliary objective (the
            // auxiliary cost of every nonbasic column is zero).
            let aux_rate = |s: &Self, j: usize| -> Option<f64> {
                if s.pos[j] != NONE || s.span(j) <= EPS {
                    return None;
                }
                let d = -{
                    if j < s.n {
                        let mut acc = 0.0;
                        for &(row, c) in &s.cols[j] {
                            acc += y[row] * c;
                        }
                        acc
                    } else {
                        y[j - s.n]
                    }
                };
                let sigma = if s.at_upper[j] { -1.0 } else { 1.0 };
                let improve = d * sigma;
                (improve < -DTOL).then_some(improve)
            };
            let q = if bland {
                (0..self.nt).find(|&j| aux_rate(self, j).is_some())
            } else {
                pricing.select(self.nt, &mut |j| aux_rate(self, j))
            };
            let Some(q) = q else {
                return Err(LpOutcome::Infeasible);
            };
            let sigma = if self.at_upper[q] { -1.0 } else { 1.0 };
            let alpha = self.ftran(q);
            self.phase1_step(q, sigma, &alpha, pricing)?;
        }
    }

    /// Ratio test + pivot for one phase-1 iteration.
    fn phase1_step(
        &mut self,
        q: usize,
        sigma: f64,
        alpha: &[f64],
        pricing: &mut dyn Pricing,
    ) -> Result<(), LpOutcome> {
        let mut t_best = if self.span(q).is_finite() {
            self.span(q)
        } else {
            f64::INFINITY
        };
        let mut blocking = NONE;
        let mut blocking_alpha: f64 = 0.0;
        for (i, &ai) in alpha.iter().enumerate() {
            let delta = -sigma * ai;
            if delta.abs() <= PIVOT_TOL {
                continue;
            }
            let b = self.basic[i];
            let (lo, hi) = (self.lower[b], self.upper[b]);
            let t = if self.xb[i] < lo - PFEAS {
                // Infeasible below: blocks only when it reaches lo.
                if delta > 0.0 {
                    (lo - self.xb[i]) / delta
                } else {
                    continue;
                }
            } else if self.xb[i] > hi + PFEAS {
                if delta < 0.0 {
                    (self.xb[i] - hi) / -delta
                } else {
                    continue;
                }
            } else if delta < 0.0 {
                if lo.is_finite() {
                    (self.xb[i] - lo) / -delta
                } else {
                    continue;
                }
            } else if hi.is_finite() {
                (hi - self.xb[i]) / delta
            } else {
                continue;
            };
            let t = t.max(0.0);
            if t < t_best - EPS
                || (t < t_best + EPS && (blocking == NONE || ai.abs() > blocking_alpha.abs()))
            {
                t_best = t;
                blocking = i;
                blocking_alpha = ai;
            }
        }
        if t_best.is_infinite() {
            // Total violation decreases forever yet is bounded below by
            // zero — numerical trouble.
            return Err(LpOutcome::IterationLimit);
        }
        self.apply_primal_step(q, sigma, t_best, blocking, alpha, pricing);
        Ok(())
    }

    /// Primal phase 2: standard bounded-variable primal simplex on the
    /// true objective. `Err(Unbounded)` on an unblocked improving ray.
    fn primal_phase2(&mut self, pricing: &mut dyn Pricing) -> Result<(), LpOutcome> {
        loop {
            let bland = self.tick()?;
            let y = self.objective_y();
            let rate = |s: &Self, j: usize| -> Option<f64> {
                if s.pos[j] != NONE || s.span(j) <= EPS {
                    return None;
                }
                let d = s.reduced_cost(j, &y);
                let sigma = if s.at_upper[j] { -1.0 } else { 1.0 };
                let improve = d * sigma;
                (improve < -DTOL).then_some(improve)
            };
            let q = if bland {
                (0..self.nt).find(|&j| rate(self, j).is_some())
            } else {
                pricing.select(self.nt, &mut |j| rate(self, j))
            };
            let Some(q) = q else {
                return Ok(());
            };
            let q_sigma = if self.at_upper[q] { -1.0 } else { 1.0 };
            let alpha = self.ftran(q);
            let mut t_best = if self.span(q).is_finite() {
                self.span(q)
            } else {
                f64::INFINITY
            };
            let mut blocking = NONE;
            let mut blocking_alpha: f64 = 0.0;
            for (i, &ai) in alpha.iter().enumerate() {
                let delta = -q_sigma * ai;
                if delta.abs() <= PIVOT_TOL {
                    continue;
                }
                let b = self.basic[i];
                let t = if delta < 0.0 {
                    if self.lower[b].is_finite() {
                        ((self.xb[i] - self.lower[b]) / -delta).max(0.0)
                    } else {
                        continue;
                    }
                } else if self.upper[b].is_finite() {
                    ((self.upper[b] - self.xb[i]) / delta).max(0.0)
                } else {
                    continue;
                };
                if t < t_best - EPS
                    || (t < t_best + EPS && (blocking == NONE || ai.abs() > blocking_alpha.abs()))
                {
                    t_best = t;
                    blocking = i;
                    blocking_alpha = ai;
                }
            }
            if t_best.is_infinite() {
                return Err(LpOutcome::Unbounded);
            }
            self.apply_primal_step(q, q_sigma, t_best, blocking, &alpha, pricing);
        }
    }

    /// Applies a primal step of length `t` on entering column `q`
    /// (direction `sigma`): a basis exchange when a basic variable
    /// blocks, a bound flip when the entering column blocks itself.
    fn apply_primal_step(
        &mut self,
        q: usize,
        sigma: f64,
        t: f64,
        blocking: usize,
        alpha: &[f64],
        pricing: &mut dyn Pricing,
    ) {
        for (x, &a) in self.xb.iter_mut().zip(alpha) {
            *x -= sigma * t * a;
        }
        self.pivots += 1;
        if blocking == NONE {
            // Bound flip across the full span: always real movement.
            self.at_upper[q] = !self.at_upper[q];
            self.note_progress(true);
            return;
        }
        self.note_progress(t > EPS);
        let r = blocking;
        let l = self.basic[r];
        // Devex needs the pivot row of the *outgoing* basis to update
        // its reference weights; compute it before the exchange.
        if pricing.needs_pivot_row() {
            let w = self.factor.row(r);
            let pivot_row = |j: usize| -> f64 {
                if j < self.n {
                    let mut acc = 0.0;
                    for &(row, c) in &self.cols[j] {
                        acc += w[row] * c;
                    }
                    acc
                } else {
                    w[j - self.n]
                }
            };
            pricing.on_pivot(q, l, alpha[r], Some(&pivot_row));
        } else {
            pricing.on_pivot(q, l, alpha[r], None);
        }
        // The leaving variable exits on the bound it ran into.
        let delta = -sigma * alpha[r];
        self.at_upper[l] = delta > 0.0 && self.upper[l].is_finite();
        self.pos[l] = NONE;
        self.xb[r] = self.nb_value(q) + sigma * t;
        self.basic[r] = q;
        self.pos[q] = r;
        self.update_factor(r, alpha);
    }

    fn extract(&mut self) -> LpOutcome {
        let mut values = vec![0.0; self.n];
        for (j, v) in values.iter_mut().enumerate() {
            let mut raw = match self.pos[j] {
                NONE => self.nb_value(j),
                r => self.xb[r],
            };
            // Clamp roundoff overshoots (sequential, so a degenerate
            // ub < lb span cannot panic the way `clamp` would).
            if raw < self.lp.lb[j] {
                raw = self.lp.lb[j];
            }
            if raw > self.lp.ub[j] {
                raw = self.lp.ub[j];
            }
            *v = raw;
        }
        let objective: f64 = values
            .iter()
            .zip(&self.lp.objective)
            .map(|(x, c)| x * c)
            .sum();
        LpOutcome::Optimal(LpSolution { values, objective })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::LpRow;

    fn row(terms: Vec<(usize, f64)>, relation: Relation, rhs: f64) -> LpRow {
        LpRow {
            terms,
            relation,
            rhs,
        }
    }

    fn optimal(o: LpOutcome) -> LpSolution {
        match o {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    fn solve(p: &LpProblem) -> LpOutcome {
        RevisedSimplex.solve(p).outcome
    }

    /// Every (factorization × pricing) configuration under test.
    fn all_configs() -> Vec<RevisedConfig> {
        let mut configs = Vec::new();
        for f in [FactorizationKind::DenseEta, FactorizationKind::SparseLu] {
            for p in [
                PricingKind::Dantzig,
                PricingKind::Devex,
                PricingKind::Partial,
            ] {
                configs.push(
                    RevisedConfig::default()
                        .with_factorization(f)
                        .with_pricing(p),
                );
            }
        }
        configs
    }

    #[test]
    fn revised_simple_2d_lp() {
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
            objective: vec![-1.0, -1.0],
            rows: vec![
                row(vec![(0, 1.0), (1, 2.0)], Relation::Le, 4.0),
                row(vec![(0, 3.0), (1, 1.0)], Relation::Le, 6.0),
            ],
        };
        for config in all_configs() {
            let s = optimal(config.solve(&p).outcome);
            assert!((s.objective + 14.0 / 5.0).abs() < 1e-6, "{}", s.objective);
            assert!((s.values[0] - 1.6).abs() < 1e-6);
            assert!((s.values[1] - 1.2).abs() < 1e-6);
        }
    }

    #[test]
    fn revised_handles_bounds_without_rows() {
        // min -x with 0 <= x <= 3.5 and no constraint rows at all.
        let p = LpProblem {
            num_vars: 1,
            lb: vec![0.0],
            ub: vec![3.5],
            objective: vec![-1.0],
            rows: vec![],
        };
        let s = optimal(solve(&p));
        assert!((s.values[0] - 3.5).abs() < 1e-6);
    }

    #[test]
    fn revised_detects_unbounded() {
        let p = LpProblem {
            num_vars: 1,
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
            objective: vec![-1.0],
            rows: vec![],
        };
        assert!(matches!(solve(&p), LpOutcome::Unbounded));
    }

    #[test]
    fn revised_detects_infeasible() {
        let p = LpProblem {
            num_vars: 1,
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
            objective: vec![0.0],
            rows: vec![
                row(vec![(0, 1.0)], Relation::Le, 1.0),
                row(vec![(0, 1.0)], Relation::Ge, 2.0),
            ],
        };
        for config in all_configs() {
            assert!(matches!(config.solve(&p).outcome, LpOutcome::Infeasible));
        }
    }

    #[test]
    fn revised_equality_and_ge_constraints() {
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
            objective: vec![1.0, 1.0],
            rows: vec![
                row(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0),
                row(vec![(0, 1.0)], Relation::Ge, 0.5),
            ],
        };
        let s = optimal(solve(&p));
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!(s.values[0] >= 0.5 - 1e-6);
    }

    #[test]
    fn revised_assignment_relaxation_is_integral() {
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let nv = 9;
        let var = |i: usize, j: usize| i * 3 + j;
        let mut rows = Vec::new();
        for i in 0..3 {
            rows.push(row(
                (0..3).map(|j| (var(i, j), 1.0)).collect(),
                Relation::Eq,
                1.0,
            ));
            rows.push(row(
                (0..3).map(|j| (var(j, i), 1.0)).collect(),
                Relation::Eq,
                1.0,
            ));
        }
        let p = LpProblem {
            num_vars: nv,
            lb: vec![0.0; nv],
            ub: vec![1.0; nv],
            objective: (0..3)
                .flat_map(|i| (0..3).map(move |j| cost[i][j]))
                .collect(),
            rows,
        };
        for config in all_configs() {
            let s = optimal(config.solve(&p).outcome);
            assert!((s.objective - 12.0).abs() < 1e-6, "obj={}", s.objective);
        }
    }

    #[test]
    fn revised_warm_start_after_bound_fix() {
        // Branch-and-bound shape: solve, fix a binary to each side via
        // lb = ub, re-solve warm. Warm results must match cold solves.
        let p = LpProblem {
            num_vars: 3,
            lb: vec![0.0; 3],
            ub: vec![1.0; 3],
            objective: vec![-2.0, -1.0, -3.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 2.0)],
        };
        for config in all_configs() {
            let root = config.solve(&p);
            let basis = root.basis.expect("optimal root must export a basis");
            for fix in [0.0, 1.0] {
                let mut child = p.clone();
                child.lb[2] = fix;
                child.ub[2] = fix;
                let warm = config.solve_warm(&child, &basis);
                assert!(warm.warmed, "basis must be adopted");
                let cold = optimal(child.solve());
                let s = optimal(warm.outcome);
                assert!(
                    (s.objective - cold.objective).abs() < 1e-6,
                    "fix={fix}: warm {} vs cold {}",
                    s.objective,
                    cold.objective
                );
            }
        }
    }

    #[test]
    fn revised_warm_start_with_appended_cut_rows() {
        // min -x - y, x + y <= 2 on [0,1]² → optimum (1,1). Append a cut
        // x + y <= 1 afterwards and warm-start from the parent basis.
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0; 2],
            ub: vec![1.0; 2],
            objective: vec![-1.0, -1.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0)], Relation::Le, 2.0)],
        };
        for config in all_configs() {
            let root = config.solve(&p);
            let basis = root.basis.expect("basis");
            let mut cut = p.clone();
            cut.rows
                .push(row(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0));
            let warm = config.solve_warm(&cut, &basis);
            assert!(warm.warmed);
            let s = optimal(warm.outcome);
            assert!((s.objective + 1.0).abs() < 1e-6, "obj={}", s.objective);
        }
    }

    #[test]
    fn revised_warm_start_detects_child_infeasibility() {
        // x + y >= 2 with both binaries; fixing both to 0 is infeasible.
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0; 2],
            ub: vec![1.0; 2],
            objective: vec![1.0, 1.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 2.0)],
        };
        let root = RevisedSimplex.solve(&p);
        let basis = root.basis.expect("basis");
        let mut child = p.clone();
        for j in 0..2 {
            child.lb[j] = 0.0;
            child.ub[j] = 0.0;
        }
        let warm = RevisedSimplex.solve_warm(&child, &basis);
        assert!(matches!(warm.outcome, LpOutcome::Infeasible));
    }

    #[test]
    fn revised_rejects_mismatched_basis_and_recovers() {
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0; 2],
            ub: vec![1.0; 2],
            objective: vec![-1.0, -1.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0)],
        };
        let other = LpProblem {
            num_vars: 3,
            lb: vec![0.0; 3],
            ub: vec![1.0; 3],
            objective: vec![-1.0; 3],
            rows: vec![],
        };
        let foreign = RevisedSimplex.solve(&other).basis.expect("basis");
        let solved = RevisedSimplex.solve_warm(&p, &foreign);
        assert!(!solved.warmed, "foreign basis must be rejected");
        let s = optimal(solved.outcome);
        assert!((s.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn revised_shifted_and_negative_bounds() {
        // min x + 2y with x in [-3, -1], y in [2, 5], x + y >= 0.
        let p = LpProblem {
            num_vars: 2,
            lb: vec![-3.0, 2.0],
            ub: vec![-1.0, 5.0],
            objective: vec![1.0, 2.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 0.0)],
        };
        let s = optimal(solve(&p));
        let cold = optimal(p.solve());
        assert!(
            (s.objective - cold.objective).abs() < 1e-6,
            "revised {} vs dense {}",
            s.objective,
            cold.objective
        );
    }

    #[test]
    fn revised_degenerate_lp_terminates() {
        let mut rows = Vec::new();
        for k in 1..20 {
            rows.push(row(vec![(0, k as f64), (1, 1.0)], Relation::Le, 10.0));
        }
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
            objective: vec![-1.0, -1.0],
            rows,
        };
        for config in all_configs() {
            let s = optimal(config.solve(&p).outcome);
            assert!(s.objective < 0.0);
        }
    }

    #[test]
    fn revised_forced_refactorization_cadence_agrees() {
        // Refactorizing after every single pivot must not change any
        // answer — only the arithmetic path.
        let p = LpProblem {
            num_vars: 4,
            lb: vec![0.0; 4],
            ub: vec![1.0; 4],
            objective: vec![-3.0, -5.0, -4.0, -1.5],
            rows: vec![
                row(vec![(0, 2.0), (1, 3.0), (2, 1.0)], Relation::Le, 4.0),
                row(vec![(1, 2.0), (2, 4.0), (3, 1.0)], Relation::Le, 5.0),
                row(vec![(0, 1.0), (3, 2.0)], Relation::Le, 2.5),
            ],
        };
        let reference = optimal(p.solve());
        for interval in [1, 2, 7] {
            for f in [FactorizationKind::DenseEta, FactorizationKind::SparseLu] {
                let config = RevisedConfig::default()
                    .with_factorization(f)
                    .with_refactor_interval(interval);
                let s = optimal(config.solve(&p).outcome);
                assert!(
                    (s.objective - reference.objective).abs() < 1e-6,
                    "{f} interval {interval}: {} vs {}",
                    s.objective,
                    reference.objective
                );
            }
        }
    }
}
