//! Revised bounded-variable simplex with dual-simplex warm starts.
//!
//! Unlike the dense tableau in [`crate::simplex`], this backend:
//!
//! * keeps the constraint matrix **column-wise sparse** and maintains an
//!   explicit dense `B⁻¹` with product-form updates (one rank-1 update
//!   per pivot, periodic refactorization for numerical hygiene);
//! * treats `lb ≤ x ≤ ub` **natively**: a nonbasic variable rests at its
//!   lower or upper bound and may *bound-flip* without a basis change,
//!   so finite upper bounds cost no extra rows (the all-binary XRing
//!   models roughly halve their row count);
//! * supports **warm starts**: a child branch-and-bound node differs
//!   from its parent only in one variable's bounds, so the parent's
//!   optimal basis stays dual feasible (after flipping nonbasic
//!   statuses, always possible for bounded binaries) and a short dual
//!   simplex run restores primal feasibility instead of a cold
//!   two-phase solve. Appended lazy-cut rows extend the basis with
//!   their logicals basic, via the block-triangular `B⁻¹` update.
//!
//! Every row `i` gets a logical variable `n + i` (`Ge` rows are negated
//! to `Le` first, so logicals always have coefficient `+1` and bounds
//! `[0, ∞)` for inequalities, `[0, 0]` for equalities). Cold solves
//! start from the all-logical basis: when flipping nonbasic variables
//! restores dual feasibility (always, for the ring models' nonnegative
//! objectives) the dual simplex runs directly; otherwise a composite
//! primal phase 1 drives out infeasibility first.

use crate::backend::{record_counters, BackendSolve, Basis, LpBackend};
use crate::model::Relation;
use crate::simplex::{LpOutcome, LpProblem, LpSolution, EPS};

/// Primal feasibility tolerance on the scaled rows.
const PFEAS: f64 = 1e-7;
/// Minimum pivot magnitude accepted in either ratio test.
const PIVOT_TOL: f64 = 1e-7;
/// Dual feasibility tolerance on the scaled reduced costs.
const DTOL: f64 = 1e-9;
/// Eta updates between `B⁻¹` refactorizations.
const REFACTOR_INTERVAL: usize = 100;

/// The revised bounded-variable simplex backend (default).
#[derive(Debug, Clone, Copy, Default)]
pub struct RevisedSimplex;

impl LpBackend for RevisedSimplex {
    fn name(&self) -> &'static str {
        "revised"
    }

    fn solve(&self, lp: &LpProblem) -> BackendSolve {
        let mut s = Solver::new(lp);
        s.set_initial_basis();
        let outcome = s.run();
        let basis = match outcome {
            LpOutcome::Optimal(_) => Some(s.export_basis()),
            _ => None,
        };
        record_counters("revised", s.pivots, s.degenerate, false);
        BackendSolve {
            outcome,
            basis,
            warmed: false,
        }
    }

    fn solve_warm(&self, lp: &LpProblem, warm: &Basis) -> BackendSolve {
        let mut s = Solver::new(lp);
        let warmed = s.adopt_basis(warm);
        if !warmed {
            s.set_initial_basis();
        }
        let outcome = s.run();
        let basis = match outcome {
            LpOutcome::Optimal(_) => Some(s.export_basis()),
            _ => None,
        };
        record_counters("revised", s.pivots, s.degenerate, warmed);
        BackendSolve {
            outcome,
            basis,
            warmed,
        }
    }
}

const NONE: usize = usize::MAX;

struct Solver<'a> {
    lp: &'a LpProblem,
    n: usize,
    m: usize,
    /// n + m: structural variables then one logical per row.
    nt: usize,
    /// Scaled sparse columns of the structural variables.
    cols: Vec<Vec<(usize, f64)>>,
    /// Signed row scale: scaled row = `row_factor[i] ×` original row
    /// (negative for `Ge` rows, which are normalized to `Le`).
    row_factor: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Scaled objective (zero on logicals).
    cost: Vec<f64>,
    /// Scaled right-hand sides.
    rhs: Vec<f64>,
    basic: Vec<usize>,
    /// Variable → basis row, `NONE` when nonbasic.
    pos: Vec<usize>,
    at_upper: Vec<bool>,
    /// Basic variable values, indexed by basis row.
    xb: Vec<f64>,
    /// Row-major dense `B⁻¹` for the scaled matrix.
    binv: Vec<f64>,
    pivots: usize,
    degenerate: usize,
    iterations: usize,
    iteration_limit: usize,
    bland_threshold: usize,
    /// Leaky-bucket stall score: +2 per step without primal or dual
    /// progress, −1 per progressing step. At `stall_limit` the pivot
    /// rules switch to Bland until the score drains (much earlier than
    /// the global `bland_threshold`, so a degenerate cycle — even one
    /// interleaved with near-zero "progress" steps — costs hundreds of
    /// iterations, not thousands).
    stalled: usize,
    stall_limit: usize,
    since_refactor: usize,
}

impl<'a> Solver<'a> {
    fn new(lp: &'a LpProblem) -> Self {
        let n = lp.num_vars;
        let m = lp.rows.len();
        assert_eq!(lp.lb.len(), n);
        assert_eq!(lp.ub.len(), n);
        assert_eq!(lp.objective.len(), n);

        let mut lower = Vec::with_capacity(n + m);
        let mut upper = Vec::with_capacity(n + m);
        for j in 0..n {
            assert!(lp.lb[j].is_finite(), "lower bounds must be finite");
            assert!(lp.ub[j] >= lp.lb[j] - EPS, "ub < lb for var {j}");
            lower.push(lp.lb[j]);
            upper.push(lp.ub[j].max(lp.lb[j]));
        }

        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut row_factor = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for (i, r) in lp.rows.iter().enumerate() {
            let maxc = r
                .terms
                .iter()
                .map(|&(_, c)| c.abs())
                .fold(0.0f64, f64::max)
                .max(r.rhs.abs());
            let scale = if maxc > 1e-12 { 1.0 / maxc } else { 1.0 };
            let factor = if r.relation == Relation::Ge {
                -scale
            } else {
                scale
            };
            for &(j, c) in &r.terms {
                assert!(j < n, "row references unknown variable {j}");
                cols[j].push((i, c * factor));
            }
            rhs.push(r.rhs * factor);
            row_factor.push(factor);
            // Logical bounds: inequalities (Le, and Ge-negated-to-Le)
            // get a slack in [0, ∞); equalities a fixed slack at 0.
            if r.relation == Relation::Eq {
                lower.push(0.0);
                upper.push(0.0);
            } else {
                lower.push(0.0);
                upper.push(f64::INFINITY);
            }
        }

        let obj_scale = {
            let maxc = lp.objective.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
            if maxc > 1e-12 {
                1.0 / maxc
            } else {
                1.0
            }
        };
        let mut cost = vec![0.0; n + m];
        for (c, obj) in cost.iter_mut().zip(&lp.objective) {
            *c = obj * obj_scale;
        }

        Solver {
            lp,
            n,
            m,
            nt: n + m,
            cols,
            row_factor,
            lower,
            upper,
            cost,
            rhs,
            basic: Vec::new(),
            pos: vec![NONE; n + m],
            at_upper: vec![false; n + m],
            xb: vec![0.0; m],
            binv: Vec::new(),
            pivots: 0,
            degenerate: 0,
            iterations: 0,
            iteration_limit: 20_000 + 200 * (m + n),
            bland_threshold: 5_000 + 20 * (m + n),
            stalled: 0,
            stall_limit: 100 + m,
            since_refactor: 0,
        }
    }

    fn set_initial_basis(&mut self) {
        self.basic = (self.n..self.nt).collect();
        self.pos = vec![NONE; self.nt];
        for (i, &b) in self.basic.iter().enumerate() {
            self.pos[b] = i;
        }
        self.at_upper = vec![false; self.nt];
        self.binv = identity(self.m);
    }

    /// Adopts a basis exported by an earlier solve of this problem
    /// family (same rows, possibly appended rows, different bounds).
    /// Returns false — leaving the solver unconfigured — when the
    /// snapshot cannot apply.
    fn adopt_basis(&mut self, warm: &Basis) -> bool {
        if warm.num_vars != self.n || warm.num_rows > self.m {
            return false;
        }
        if warm.basic.len() != warm.num_rows
            || warm.at_upper.len() != warm.num_vars + warm.num_rows
            || warm.binv.len() != warm.num_rows * warm.num_rows
        {
            return false;
        }
        let old_m = warm.num_rows;
        let old_nt = self.n + old_m;
        let mut pos = vec![NONE; self.nt];
        for (i, &b) in warm.basic.iter().enumerate() {
            if b >= old_nt || pos[b] != NONE {
                return false;
            }
            pos[b] = i;
        }
        let mut basic = warm.basic.clone();
        let mut at_upper = vec![false; self.nt];
        at_upper[..self.n].copy_from_slice(&warm.at_upper[..self.n]);
        at_upper[self.n..old_nt].copy_from_slice(&warm.at_upper[self.n..]);

        let mut binv = identity(self.m);
        for i in 0..old_m {
            binv[i * self.m..i * self.m + old_m]
                .copy_from_slice(&warm.binv[i * old_m..(i + 1) * old_m]);
        }
        // Appended rows (lazy cuts): their logicals join the basis, and
        // B_new = [[B, 0], [C, I]] inverts block-triangularly to
        // [[B⁻¹, 0], [-C·B⁻¹, I]] where C holds the new rows'
        // coefficients on the old basic (structural) variables.
        for i in old_m..self.m {
            basic.push(self.n + i);
            pos[self.n + i] = i;
            let factor = self.row_factor[i];
            for &(v, c) in &self.lp.rows[i].terms {
                let Some(&r) = pos.get(v) else { continue };
                if r == NONE || r >= old_m {
                    continue;
                }
                let coef = c * factor;
                for t in 0..old_m {
                    binv[i * self.m + t] -= coef * warm.binv[r * old_m + t];
                }
            }
        }
        self.basic = basic;
        self.pos = pos;
        self.at_upper = at_upper;
        self.binv = binv;
        true
    }

    fn export_basis(&self) -> Basis {
        Basis {
            num_vars: self.n,
            num_rows: self.m,
            basic: self.basic.clone(),
            at_upper: self.at_upper.clone(),
            binv: self.binv.clone(),
        }
    }

    fn run(&mut self) -> LpOutcome {
        self.compute_xb();
        let dual_feasible = self.make_dual_feasible();
        if dual_feasible {
            if let Err(out) = self.dual_simplex() {
                return out;
            }
        } else if let Err(out) = self.primal_phase1() {
            return out;
        }
        // Primal optimization / cleanup. After a successful dual run
        // this typically performs zero pivots.
        if let Err(out) = self.primal_phase2() {
            return out;
        }
        self.extract()
    }

    /// Nonbasic resting value of variable `j`.
    fn nb_value(&self, j: usize) -> f64 {
        if self.at_upper[j] && self.upper[j].is_finite() {
            self.upper[j]
        } else {
            self.lower[j]
        }
    }

    fn span(&self, j: usize) -> f64 {
        self.upper[j] - self.lower[j]
    }

    /// Recomputes `xb = B⁻¹ (b − N x_N)` from scratch.
    fn compute_xb(&mut self) {
        let mut r = self.rhs.clone();
        for j in 0..self.n {
            if self.pos[j] != NONE {
                continue;
            }
            let v = self.nb_value(j);
            if v != 0.0 {
                for &(row, c) in &self.cols[j] {
                    r[row] -= c * v;
                }
            }
        }
        // Nonbasic logicals rest at 0 (inequality slack lb, or the
        // fixed equality slack), contributing nothing.
        for i in 0..self.m {
            let mut acc = 0.0;
            let brow = &self.binv[i * self.m..(i + 1) * self.m];
            for (t, &rv) in r.iter().enumerate() {
                acc += brow[t] * rv;
            }
            self.xb[i] = acc;
        }
    }

    /// `y = c_Bᵀ B⁻¹` for an arbitrary basic cost vector.
    fn btran(&self, cb: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (i, &c) in cb.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            let brow = &self.binv[i * self.m..(i + 1) * self.m];
            for (t, yv) in y.iter_mut().enumerate() {
                *yv += c * brow[t];
            }
        }
        y
    }

    /// `α = B⁻¹ A_q` for column `q` (structural or logical).
    fn ftran(&self, q: usize) -> Vec<f64> {
        let mut alpha = vec![0.0; self.m];
        if q < self.n {
            for &(row, c) in &self.cols[q] {
                for (i, a) in alpha.iter_mut().enumerate() {
                    *a += self.binv[i * self.m + row] * c;
                }
            }
        } else {
            let row = q - self.n;
            for (i, a) in alpha.iter_mut().enumerate() {
                *a = self.binv[i * self.m + row];
            }
        }
        alpha
    }

    /// Reduced cost of nonbasic `j` given `y`.
    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            let mut d = self.cost[j];
            for &(row, c) in &self.cols[j] {
                d -= y[row] * c;
            }
            d
        } else {
            -y[j - self.n]
        }
    }

    fn objective_y(&self) -> Vec<f64> {
        let cb: Vec<f64> = self.basic.iter().map(|&b| self.cost[b]).collect();
        self.btran(&cb)
    }

    /// Flips nonbasic variables onto the bound their reduced cost
    /// prefers. Returns false when some variable would need an infinite
    /// bound to become dual feasible (then primal phase 1 runs instead).
    fn make_dual_feasible(&mut self) -> bool {
        let y = self.objective_y();
        // Two passes: mutating flags before discovering an impossible
        // flip would leave `at_upper` out of sync with `xb`.
        let mut flips = Vec::new();
        for j in 0..self.nt {
            if self.pos[j] != NONE || self.span(j) <= EPS {
                continue;
            }
            let d = self.reduced_cost(j, &y);
            if !self.at_upper[j] && d < -DTOL {
                if !self.upper[j].is_finite() {
                    return false;
                }
                flips.push((j, true));
            } else if self.at_upper[j] && d > DTOL {
                flips.push((j, false));
            }
        }
        if !flips.is_empty() {
            for &(j, up) in &flips {
                self.at_upper[j] = up;
            }
            self.compute_xb();
        }
        true
    }

    /// One product-form (eta) update of `B⁻¹` after `alpha = B⁻¹ A_q`
    /// enters at basis row `r`.
    fn update_binv(&mut self, r: usize, alpha: &[f64]) {
        let m = self.m;
        let inv = 1.0 / alpha[r];
        for t in 0..m {
            self.binv[r * m + t] *= inv;
        }
        for (i, &f) in alpha.iter().enumerate() {
            if i == r || f.abs() <= EPS {
                continue;
            }
            for t in 0..m {
                self.binv[i * m + t] -= f * self.binv[r * m + t];
            }
        }
        self.since_refactor += 1;
        if self.since_refactor >= REFACTOR_INTERVAL {
            self.refactorize();
        }
    }

    /// Rebuilds `B⁻¹` from the basic columns by Gauss–Jordan with
    /// partial pivoting. Returns false on a (numerically) singular
    /// basis, leaving `binv` untouched.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        let mut work = vec![0.0; m * m];
        for (i, &b) in self.basic.iter().enumerate() {
            if b < self.n {
                for &(row, c) in &self.cols[b] {
                    work[row * m + i] += c;
                }
            } else {
                work[(b - self.n) * m + i] += 1.0;
            }
        }
        let mut inv = identity(m);
        for k in 0..m {
            let mut p = k;
            let mut best = work[k * m + k].abs();
            for i in k + 1..m {
                let v = work[i * m + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-10 {
                return false;
            }
            if p != k {
                for t in 0..m {
                    work.swap(p * m + t, k * m + t);
                    inv.swap(p * m + t, k * m + t);
                }
            }
            let piv = 1.0 / work[k * m + k];
            for t in 0..m {
                work[k * m + t] *= piv;
                inv[k * m + t] *= piv;
            }
            for i in 0..m {
                if i == k {
                    continue;
                }
                let f = work[i * m + k];
                if f.abs() <= EPS {
                    continue;
                }
                for t in 0..m {
                    work[i * m + t] -= f * work[k * m + t];
                    inv[i * m + t] -= f * inv[k * m + t];
                }
            }
        }
        self.binv = inv;
        self.since_refactor = 0;
        self.compute_xb();
        true
    }

    fn tick(&mut self) -> Result<bool, LpOutcome> {
        self.iterations += 1;
        if self.iterations > self.iteration_limit {
            return Err(LpOutcome::IterationLimit);
        }
        Ok(self.iterations > self.bland_threshold || self.stalled >= self.stall_limit)
    }

    /// Records whether the last step made progress, feeding the
    /// stall-triggered Bland switch in [`Self::tick`].
    fn note_progress(&mut self, progressed: bool) {
        if progressed {
            self.stalled = self.stalled.saturating_sub(1);
        } else {
            self.degenerate += 1;
            self.stalled += 2;
        }
    }

    /// Dual simplex: starting dual feasible, drives out primal bound
    /// violations. `Err(Infeasible)` when a violated row admits no
    /// entering column.
    fn dual_simplex(&mut self) -> Result<(), LpOutcome> {
        loop {
            let bland = self.tick()?;
            // Leaving: most violated basic variable.
            let mut r = NONE;
            let mut worst = PFEAS;
            for i in 0..self.m {
                let b = self.basic[i];
                let viol = (self.lower[b] - self.xb[i]).max(self.xb[i] - self.upper[b]);
                let better = if bland {
                    // Bland: smallest-index violated basic variable.
                    viol > PFEAS && (r == NONE || b < self.basic[r])
                } else {
                    viol > worst
                };
                if better {
                    worst = viol;
                    r = i;
                }
            }
            if r == NONE {
                return Ok(());
            }
            let l = self.basic[r];
            let below = self.xb[r] < self.lower[l];
            let y = self.objective_y();
            let w = &self.binv[r * self.m..(r + 1) * self.m];

            // Entering: dual ratio test over movable nonbasic columns.
            let mut q = NONE;
            let mut q_alpha: f64 = 0.0;
            let mut best_ratio = f64::INFINITY;
            for j in 0..self.nt {
                if self.pos[j] != NONE || self.span(j) <= EPS {
                    continue;
                }
                let a = if j < self.n {
                    let mut acc = 0.0;
                    for &(row, c) in &self.cols[j] {
                        acc += w[row] * c;
                    }
                    acc
                } else {
                    w[j - self.n]
                };
                if a.abs() <= PIVOT_TOL {
                    continue;
                }
                let sigma = if self.at_upper[j] { -1.0 } else { 1.0 };
                // x_B[r] moves at rate −aσ per unit of entering step.
                let rate = -a * sigma;
                let helps = if below { rate > 0.0 } else { rate < 0.0 };
                if !helps {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let ratio = (d * sigma).max(0.0) / a.abs();
                let better = if bland {
                    ratio < best_ratio - DTOL || (ratio < best_ratio + DTOL && (q == NONE || j < q))
                } else {
                    ratio < best_ratio - DTOL
                        || (ratio < best_ratio + DTOL && a.abs() > q_alpha.abs())
                };
                if better {
                    best_ratio = ratio;
                    q = j;
                    q_alpha = a;
                }
            }
            if q == NONE {
                return Err(LpOutcome::Infeasible);
            }

            let sigma = if self.at_upper[q] { -1.0 } else { 1.0 };
            let target = if below { self.lower[l] } else { self.upper[l] };
            let t = ((self.xb[r] - target) / (q_alpha * sigma)).max(0.0);
            let alpha = self.ftran(q);
            if self.span(q).is_finite() && t > self.span(q) + EPS {
                // The entering column hits its own opposite bound first:
                // bound flip, no basis change.
                let step = self.span(q);
                for (x, &a) in self.xb.iter_mut().zip(&alpha) {
                    *x -= sigma * step * a;
                }
                self.at_upper[q] = !self.at_upper[q];
                self.pivots += 1;
                // A flip along a zero reduced cost advances neither
                // bound — classic dual-degenerate cycling material.
                self.note_progress(best_ratio > DTOL);
                continue;
            }
            for (x, &a) in self.xb.iter_mut().zip(&alpha) {
                *x -= sigma * t * a;
            }
            self.xb[r] = self.nb_value(q) + sigma * t;
            self.pos[l] = NONE;
            self.at_upper[l] = !below;
            self.basic[r] = q;
            self.pos[q] = r;
            self.pivots += 1;
            // Dual progress is the dual-objective gain `violation *
            // ratio`; a positive primal step `t` alone proves nothing
            // (a dual cycle moves `x_B` every iteration).
            self.note_progress(best_ratio > DTOL);
            self.update_binv(r, &alpha);
        }
    }

    /// Composite primal phase 1: minimizes total bound violation of the
    /// basic variables. `Err(Infeasible)` when no improving column
    /// exists while violation remains.
    fn primal_phase1(&mut self) -> Result<(), LpOutcome> {
        loop {
            let bland = self.tick()?;
            let mut infeasible = false;
            let mut cb = vec![0.0; self.m];
            for (i, ci) in cb.iter_mut().enumerate() {
                let b = self.basic[i];
                if self.xb[i] < self.lower[b] - PFEAS {
                    *ci = -1.0;
                    infeasible = true;
                } else if self.xb[i] > self.upper[b] + PFEAS {
                    *ci = 1.0;
                    infeasible = true;
                }
            }
            if !infeasible {
                return Ok(());
            }
            let y = self.btran(&cb);
            // Entering: most negative auxiliary reduced cost (the
            // auxiliary cost of every nonbasic column is zero).
            let mut q = NONE;
            let mut best = -DTOL;
            for j in 0..self.nt {
                if self.pos[j] != NONE || self.span(j) <= EPS {
                    continue;
                }
                let d = -{
                    if j < self.n {
                        let mut acc = 0.0;
                        for &(row, c) in &self.cols[j] {
                            acc += y[row] * c;
                        }
                        acc
                    } else {
                        y[j - self.n]
                    }
                };
                let sigma = if self.at_upper[j] { -1.0 } else { 1.0 };
                let improve = d * sigma;
                let eligible = if bland {
                    improve < -DTOL && q == NONE
                } else {
                    improve < best
                };
                if eligible {
                    best = improve;
                    q = j;
                }
            }
            if q == NONE {
                return Err(LpOutcome::Infeasible);
            }
            let sigma = if self.at_upper[q] { -1.0 } else { 1.0 };
            let alpha = self.ftran(q);
            self.phase1_step(q, sigma, &alpha)?;
        }
    }

    /// Ratio test + pivot for one phase-1 iteration.
    fn phase1_step(&mut self, q: usize, sigma: f64, alpha: &[f64]) -> Result<(), LpOutcome> {
        let mut t_best = if self.span(q).is_finite() {
            self.span(q)
        } else {
            f64::INFINITY
        };
        let mut blocking = NONE;
        let mut blocking_alpha: f64 = 0.0;
        for (i, &ai) in alpha.iter().enumerate() {
            let delta = -sigma * ai;
            if delta.abs() <= PIVOT_TOL {
                continue;
            }
            let b = self.basic[i];
            let (lo, hi) = (self.lower[b], self.upper[b]);
            let t = if self.xb[i] < lo - PFEAS {
                // Infeasible below: blocks only when it reaches lo.
                if delta > 0.0 {
                    (lo - self.xb[i]) / delta
                } else {
                    continue;
                }
            } else if self.xb[i] > hi + PFEAS {
                if delta < 0.0 {
                    (self.xb[i] - hi) / -delta
                } else {
                    continue;
                }
            } else if delta < 0.0 {
                if lo.is_finite() {
                    (self.xb[i] - lo) / -delta
                } else {
                    continue;
                }
            } else if hi.is_finite() {
                (hi - self.xb[i]) / delta
            } else {
                continue;
            };
            let t = t.max(0.0);
            if t < t_best - EPS
                || (t < t_best + EPS && (blocking == NONE || ai.abs() > blocking_alpha.abs()))
            {
                t_best = t;
                blocking = i;
                blocking_alpha = ai;
            }
        }
        if t_best.is_infinite() {
            // Total violation decreases forever yet is bounded below by
            // zero — numerical trouble.
            return Err(LpOutcome::IterationLimit);
        }
        self.apply_primal_step(q, sigma, t_best, blocking, alpha);
        Ok(())
    }

    /// Primal phase 2: standard bounded-variable primal simplex on the
    /// true objective. `Err(Unbounded)` on an unblocked improving ray.
    fn primal_phase2(&mut self) -> Result<(), LpOutcome> {
        loop {
            let bland = self.tick()?;
            let y = self.objective_y();
            let mut q = NONE;
            let mut q_sigma = 1.0;
            let mut best = -DTOL;
            for j in 0..self.nt {
                if self.pos[j] != NONE || self.span(j) <= EPS {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let sigma = if self.at_upper[j] { -1.0 } else { 1.0 };
                let improve = d * sigma;
                let eligible = if bland {
                    improve < -DTOL && q == NONE
                } else {
                    improve < best
                };
                if eligible {
                    best = improve;
                    q = j;
                    q_sigma = sigma;
                }
            }
            if q == NONE {
                return Ok(());
            }
            let alpha = self.ftran(q);
            let mut t_best = if self.span(q).is_finite() {
                self.span(q)
            } else {
                f64::INFINITY
            };
            let mut blocking = NONE;
            let mut blocking_alpha: f64 = 0.0;
            for (i, &ai) in alpha.iter().enumerate() {
                let delta = -q_sigma * ai;
                if delta.abs() <= PIVOT_TOL {
                    continue;
                }
                let b = self.basic[i];
                let t = if delta < 0.0 {
                    if self.lower[b].is_finite() {
                        ((self.xb[i] - self.lower[b]) / -delta).max(0.0)
                    } else {
                        continue;
                    }
                } else if self.upper[b].is_finite() {
                    ((self.upper[b] - self.xb[i]) / delta).max(0.0)
                } else {
                    continue;
                };
                if t < t_best - EPS
                    || (t < t_best + EPS && (blocking == NONE || ai.abs() > blocking_alpha.abs()))
                {
                    t_best = t;
                    blocking = i;
                    blocking_alpha = ai;
                }
            }
            if t_best.is_infinite() {
                return Err(LpOutcome::Unbounded);
            }
            self.apply_primal_step(q, q_sigma, t_best, blocking, &alpha);
        }
    }

    /// Applies a primal step of length `t` on entering column `q`
    /// (direction `sigma`): a basis exchange when a basic variable
    /// blocks, a bound flip when the entering column blocks itself.
    fn apply_primal_step(&mut self, q: usize, sigma: f64, t: f64, blocking: usize, alpha: &[f64]) {
        for (x, &a) in self.xb.iter_mut().zip(alpha) {
            *x -= sigma * t * a;
        }
        self.pivots += 1;
        if blocking == NONE {
            // Bound flip across the full span: always real movement.
            self.at_upper[q] = !self.at_upper[q];
            self.note_progress(true);
            return;
        }
        self.note_progress(t > EPS);
        let r = blocking;
        let l = self.basic[r];
        // The leaving variable exits on the bound it ran into.
        let delta = -sigma * alpha[r];
        self.at_upper[l] = delta > 0.0 && self.upper[l].is_finite();
        self.pos[l] = NONE;
        self.xb[r] = self.nb_value(q) + sigma * t;
        self.basic[r] = q;
        self.pos[q] = r;
        self.update_binv(r, alpha);
    }

    fn extract(&mut self) -> LpOutcome {
        let mut values = vec![0.0; self.n];
        for (j, v) in values.iter_mut().enumerate() {
            let mut raw = match self.pos[j] {
                NONE => self.nb_value(j),
                r => self.xb[r],
            };
            // Clamp roundoff overshoots (sequential, so a degenerate
            // ub < lb span cannot panic the way `clamp` would).
            if raw < self.lp.lb[j] {
                raw = self.lp.lb[j];
            }
            if raw > self.lp.ub[j] {
                raw = self.lp.ub[j];
            }
            *v = raw;
        }
        let objective: f64 = values
            .iter()
            .zip(&self.lp.objective)
            .map(|(x, c)| x * c)
            .sum();
        LpOutcome::Optimal(LpSolution { values, objective })
    }
}

fn identity(m: usize) -> Vec<f64> {
    let mut id = vec![0.0; m * m];
    for i in 0..m {
        id[i * m + i] = 1.0;
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::LpRow;

    fn row(terms: Vec<(usize, f64)>, relation: Relation, rhs: f64) -> LpRow {
        LpRow {
            terms,
            relation,
            rhs,
        }
    }

    fn optimal(o: LpOutcome) -> LpSolution {
        match o {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    fn solve(p: &LpProblem) -> LpOutcome {
        RevisedSimplex.solve(p).outcome
    }

    #[test]
    fn revised_simple_2d_lp() {
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
            objective: vec![-1.0, -1.0],
            rows: vec![
                row(vec![(0, 1.0), (1, 2.0)], Relation::Le, 4.0),
                row(vec![(0, 3.0), (1, 1.0)], Relation::Le, 6.0),
            ],
        };
        let s = optimal(solve(&p));
        assert!((s.objective + 14.0 / 5.0).abs() < 1e-6, "{}", s.objective);
        assert!((s.values[0] - 1.6).abs() < 1e-6);
        assert!((s.values[1] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn revised_handles_bounds_without_rows() {
        // min -x with 0 <= x <= 3.5 and no constraint rows at all.
        let p = LpProblem {
            num_vars: 1,
            lb: vec![0.0],
            ub: vec![3.5],
            objective: vec![-1.0],
            rows: vec![],
        };
        let s = optimal(solve(&p));
        assert!((s.values[0] - 3.5).abs() < 1e-6);
    }

    #[test]
    fn revised_detects_unbounded() {
        let p = LpProblem {
            num_vars: 1,
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
            objective: vec![-1.0],
            rows: vec![],
        };
        assert!(matches!(solve(&p), LpOutcome::Unbounded));
    }

    #[test]
    fn revised_detects_infeasible() {
        let p = LpProblem {
            num_vars: 1,
            lb: vec![0.0],
            ub: vec![f64::INFINITY],
            objective: vec![0.0],
            rows: vec![
                row(vec![(0, 1.0)], Relation::Le, 1.0),
                row(vec![(0, 1.0)], Relation::Ge, 2.0),
            ],
        };
        assert!(matches!(solve(&p), LpOutcome::Infeasible));
    }

    #[test]
    fn revised_equality_and_ge_constraints() {
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
            objective: vec![1.0, 1.0],
            rows: vec![
                row(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0),
                row(vec![(0, 1.0)], Relation::Ge, 0.5),
            ],
        };
        let s = optimal(solve(&p));
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!(s.values[0] >= 0.5 - 1e-6);
    }

    #[test]
    fn revised_assignment_relaxation_is_integral() {
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let nv = 9;
        let var = |i: usize, j: usize| i * 3 + j;
        let mut rows = Vec::new();
        for i in 0..3 {
            rows.push(row(
                (0..3).map(|j| (var(i, j), 1.0)).collect(),
                Relation::Eq,
                1.0,
            ));
            rows.push(row(
                (0..3).map(|j| (var(j, i), 1.0)).collect(),
                Relation::Eq,
                1.0,
            ));
        }
        let p = LpProblem {
            num_vars: nv,
            lb: vec![0.0; nv],
            ub: vec![1.0; nv],
            objective: (0..3)
                .flat_map(|i| (0..3).map(move |j| cost[i][j]))
                .collect(),
            rows,
        };
        let s = optimal(solve(&p));
        assert!((s.objective - 12.0).abs() < 1e-6, "obj={}", s.objective);
    }

    #[test]
    fn revised_warm_start_after_bound_fix() {
        // Branch-and-bound shape: solve, fix a binary to each side via
        // lb = ub, re-solve warm. Warm results must match cold solves.
        let p = LpProblem {
            num_vars: 3,
            lb: vec![0.0; 3],
            ub: vec![1.0; 3],
            objective: vec![-2.0, -1.0, -3.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 2.0)],
        };
        let root = RevisedSimplex.solve(&p);
        let basis = root.basis.expect("optimal root must export a basis");
        for fix in [0.0, 1.0] {
            let mut child = p.clone();
            child.lb[2] = fix;
            child.ub[2] = fix;
            let warm = RevisedSimplex.solve_warm(&child, &basis);
            assert!(warm.warmed, "basis must be adopted");
            let cold = optimal(child.solve());
            let s = optimal(warm.outcome);
            assert!(
                (s.objective - cold.objective).abs() < 1e-6,
                "fix={fix}: warm {} vs cold {}",
                s.objective,
                cold.objective
            );
        }
    }

    #[test]
    fn revised_warm_start_with_appended_cut_rows() {
        // min -x - y, x + y <= 2 on [0,1]² → optimum (1,1). Append a cut
        // x + y <= 1 afterwards and warm-start from the parent basis.
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0; 2],
            ub: vec![1.0; 2],
            objective: vec![-1.0, -1.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0)], Relation::Le, 2.0)],
        };
        let root = RevisedSimplex.solve(&p);
        let basis = root.basis.expect("basis");
        let mut cut = p.clone();
        cut.rows
            .push(row(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0));
        let warm = RevisedSimplex.solve_warm(&cut, &basis);
        assert!(warm.warmed);
        let s = optimal(warm.outcome);
        assert!((s.objective + 1.0).abs() < 1e-6, "obj={}", s.objective);
    }

    #[test]
    fn revised_warm_start_detects_child_infeasibility() {
        // x + y >= 2 with both binaries; fixing both to 0 is infeasible.
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0; 2],
            ub: vec![1.0; 2],
            objective: vec![1.0, 1.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 2.0)],
        };
        let root = RevisedSimplex.solve(&p);
        let basis = root.basis.expect("basis");
        let mut child = p.clone();
        for j in 0..2 {
            child.lb[j] = 0.0;
            child.ub[j] = 0.0;
        }
        let warm = RevisedSimplex.solve_warm(&child, &basis);
        assert!(matches!(warm.outcome, LpOutcome::Infeasible));
    }

    #[test]
    fn revised_rejects_mismatched_basis_and_recovers() {
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0; 2],
            ub: vec![1.0; 2],
            objective: vec![-1.0, -1.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0)],
        };
        let other = LpProblem {
            num_vars: 3,
            lb: vec![0.0; 3],
            ub: vec![1.0; 3],
            objective: vec![-1.0; 3],
            rows: vec![],
        };
        let foreign = RevisedSimplex.solve(&other).basis.expect("basis");
        let solved = RevisedSimplex.solve_warm(&p, &foreign);
        assert!(!solved.warmed, "foreign basis must be rejected");
        let s = optimal(solved.outcome);
        assert!((s.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn revised_shifted_and_negative_bounds() {
        // min x + 2y with x in [-3, -1], y in [2, 5], x + y >= 0.
        let p = LpProblem {
            num_vars: 2,
            lb: vec![-3.0, 2.0],
            ub: vec![-1.0, 5.0],
            objective: vec![1.0, 2.0],
            rows: vec![row(vec![(0, 1.0), (1, 1.0)], Relation::Ge, 0.0)],
        };
        let s = optimal(solve(&p));
        let cold = optimal(p.solve());
        assert!(
            (s.objective - cold.objective).abs() < 1e-6,
            "revised {} vs dense {}",
            s.objective,
            cold.objective
        );
    }

    #[test]
    fn revised_degenerate_lp_terminates() {
        let mut rows = Vec::new();
        for k in 1..20 {
            rows.push(row(vec![(0, k as f64), (1, 1.0)], Relation::Le, 10.0));
        }
        let p = LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![f64::INFINITY, f64::INFINITY],
            objective: vec![-1.0, -1.0],
            rows,
        };
        let s = optimal(solve(&p));
        assert!(s.objective < 0.0);
    }
}
