//! Solver convergence telemetry: progress events from the
//! branch-and-bound search, a global JSONL sink (`--solver-log`), and
//! the per-solve [`ConvergenceSummary`] surfaced through ring
//! statistics and batch metrics.
//!
//! The search emits a [`ProgressEvent`] when the incumbent changes, on
//! a node-count stride
//! ([`with_progress_stride`](crate::BranchAndBound::with_progress_stride)),
//! and once at the end of the solve. Events flow to two places:
//!
//! * a per-solve [`ProgressObserver`] passed to
//!   [`solve_observed`](crate::BranchAndBound::solve_observed) — the
//!   synthesis pipeline uses [`ConvergenceCollector`] here, and
//! * a process-global [`ProgressSink`] ([`install_sink`]) that tags
//!   every event with a process-unique solve id — the CLI installs a
//!   [`JsonlProgressSink`] for `--solver-log FILE`.
//!
//! With neither attached, the per-node cost is one relaxed atomic load
//! (the same discipline as `xring-obs`).

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Why a [`ProgressEvent`] was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressKind {
    /// The incumbent was set or improved (including a warm start
    /// accepted at the root, so every solve with a feasible start
    /// reports at least one incumbent event).
    Incumbent,
    /// A node-count stride tick.
    Stride,
    /// The search ended (optimal, limit, or error).
    Final,
}

impl ProgressKind {
    /// Stable lowercase name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            ProgressKind::Incumbent => "incumbent",
            ProgressKind::Stride => "stride",
            ProgressKind::Final => "final",
        }
    }
}

/// One convergence data point from a branch-and-bound solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressEvent {
    /// Why the event fired.
    pub kind: ProgressKind,
    /// Wall time since the solve started.
    pub elapsed: Duration,
    /// Nodes explored so far.
    pub nodes: usize,
    /// Objective of the best feasible solution so far, if any.
    pub incumbent: Option<f64>,
    /// Global lower bound: the root LP relaxation objective, once
    /// known. Fixed for the whole solve, so the gap is monotone.
    pub best_bound: Option<f64>,
    /// Relative optimality gap `(incumbent − bound) / max(|incumbent|,
    /// ε)`, clamped at 0; `None` until both terms exist. Monotone
    /// non-increasing over a solve (the incumbent only improves and
    /// the bound is fixed).
    pub gap: Option<f64>,
}

/// Computes the relative optimality gap reported in [`ProgressEvent`].
pub fn relative_gap(incumbent: f64, best_bound: f64) -> f64 {
    ((incumbent - best_bound) / incumbent.abs().max(1e-9)).max(0.0)
}

/// Per-solve observer of [`ProgressEvent`]s, attached via
/// [`solve_observed`](crate::BranchAndBound::solve_observed) /
/// [`solve_with_lazy_observed`](crate::BranchAndBound::solve_with_lazy_observed).
pub trait ProgressObserver {
    /// Called synchronously from the search loop; keep it cheap.
    fn on_event(&mut self, event: &ProgressEvent);
}

/// Process-global receiver of progress events from **every** solve,
/// tagged with a process-unique solve id (solves run concurrently on
/// engine workers). Installed with [`install_sink`].
pub trait ProgressSink: Send + Sync {
    /// Called synchronously from the search loop of any thread.
    fn emit(&self, solve_id: u64, event: &ProgressEvent);
}

/// One relaxed load gates the per-node telemetry check.
static SINK_ON: AtomicBool = AtomicBool::new(false);

/// Process-unique solve ids, starting at 1.
static NEXT_SOLVE_ID: AtomicU64 = AtomicU64::new(1);

fn sink_slot() -> &'static Mutex<Option<Arc<dyn ProgressSink>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn ProgressSink>>>> = OnceLock::new();
    SLOT.get_or_init(Mutex::default)
}

fn lock_slot() -> MutexGuard<'static, Option<Arc<dyn ProgressSink>>> {
    sink_slot()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Installs the process-global progress sink, replacing any previous
/// one. Like the `xring-obs` recorder this is global state: concurrent
/// tests must serialize around install/clear (e.g. with
/// `xring_obs::test_guard`).
pub fn install_sink(sink: Arc<dyn ProgressSink>) {
    *lock_slot() = Some(sink);
    SINK_ON.store(true, Ordering::SeqCst);
}

/// Removes the global progress sink (no-op when none is installed).
pub fn clear_sink() {
    SINK_ON.store(false, Ordering::SeqCst);
    *lock_slot() = None;
}

/// Whether a global progress sink is installed — a single relaxed
/// atomic load, safe to call per node.
pub fn sink_enabled() -> bool {
    SINK_ON.load(Ordering::Relaxed)
}

/// Reserves the next process-unique solve id.
pub(crate) fn next_solve_id() -> u64 {
    NEXT_SOLVE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Forwards an event to the installed sink, if any. The `Arc` is
/// cloned out of the slot so a slow sink never holds the slot lock
/// while writing.
pub(crate) fn emit_to_sink(solve_id: u64, event: &ProgressEvent) {
    if !sink_enabled() {
        return;
    }
    let sink = lock_slot().clone();
    if let Some(sink) = sink {
        sink.emit(solve_id, event);
    }
}

/// A [`ProgressSink`] that writes one JSON object per event — the
/// `--solver-log FILE` format:
///
/// ```text
/// {"type":"solver","solve":1,"event":"incumbent","elapsed_us":412,"nodes":3,"incumbent":12000,"bound":11981.5,"gap":0.001542}
/// ```
///
/// Absent values are `null`. Lines from concurrent solves interleave;
/// the `solve` id groups them.
pub struct JsonlProgressSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlProgressSink<W> {
    /// Wraps `writer`; each event becomes one line.
    pub fn new(writer: W) -> Self {
        JsonlProgressSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(self) -> W {
        let mut w = self
            .writer
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let _ = w.flush();
        w
    }
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_owned(),
    }
}

impl<W: Write + Send> ProgressSink for JsonlProgressSink<W> {
    fn emit(&self, solve_id: u64, event: &ProgressEvent) {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Best-effort: a full disk must not abort the solve.
        let _ = writeln!(
            w,
            r#"{{"type":"solver","solve":{},"event":"{}","elapsed_us":{},"nodes":{},"incumbent":{},"bound":{},"gap":{}}}"#,
            solve_id,
            event.kind.as_str(),
            event.elapsed.as_micros(),
            event.nodes,
            json_f64(event.incumbent),
            json_f64(event.best_bound),
            json_f64(event.gap),
        );
        if event.kind == ProgressKind::Final {
            let _ = w.flush();
        }
    }
}

/// How a solve converged, distilled from its progress events — the
/// solver-side payload of `RingStats` and the batch metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceSummary {
    /// Wall time until the first feasible solution (a warm start
    /// accepted at the root counts, at elapsed ≈ 0).
    pub time_to_first_incumbent: Option<Duration>,
    /// Wall time until the relative gap first dropped to ≤ 1%.
    pub time_to_1pct_gap: Option<Duration>,
    /// The last reported gap (`None` when no bound or no incumbent
    /// existed, e.g. an infeasible solve).
    pub final_gap: Option<f64>,
    /// Incumbent events observed (warm-start acceptance included).
    pub incumbent_events: usize,
    /// Nodes explored when the last event fired.
    pub nodes: usize,
    /// Total progress events observed.
    pub events: usize,
}

/// A [`ProgressObserver`] that distills events into a
/// [`ConvergenceSummary`] and feeds the gap series into an `xring-obs`
/// time-series sampler (gauge `milp.gap`), so a trace shows
/// gap-over-time alongside the phase spans.
#[derive(Debug)]
pub struct ConvergenceCollector {
    summary: ConvergenceSummary,
    gap_series: xring_obs::Sampler,
}

impl Default for ConvergenceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl ConvergenceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        ConvergenceCollector {
            summary: ConvergenceSummary::default(),
            gap_series: xring_obs::Sampler::new("milp.gap", 256),
        }
    }

    /// Finalizes the collector: flushes the gap series into the global
    /// trace and returns the summary.
    pub fn finish(mut self) -> ConvergenceSummary {
        self.gap_series.flush();
        std::mem::take(&mut self.summary)
    }
}

impl ProgressObserver for ConvergenceCollector {
    fn on_event(&mut self, event: &ProgressEvent) {
        let s = &mut self.summary;
        s.events += 1;
        s.nodes = s.nodes.max(event.nodes);
        if event.kind == ProgressKind::Incumbent {
            s.incumbent_events += 1;
            if s.time_to_first_incumbent.is_none() {
                s.time_to_first_incumbent = Some(event.elapsed);
            }
        }
        if let Some(gap) = event.gap {
            s.final_gap = Some(gap);
            if gap <= 0.01 && s.time_to_1pct_gap.is_none() {
                s.time_to_1pct_gap = Some(event.elapsed);
            }
            self.gap_series.record(gap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: ProgressKind, ms: u64, nodes: usize, gap: Option<f64>) -> ProgressEvent {
        ProgressEvent {
            kind,
            elapsed: Duration::from_millis(ms),
            nodes,
            incumbent: gap.map(|_| 10.0),
            best_bound: gap.map(|g| 10.0 * (1.0 - g)),
            gap,
        }
    }

    #[test]
    fn collector_distills_first_incumbent_and_gap_milestones() {
        let mut c = ConvergenceCollector::new();
        c.on_event(&event(ProgressKind::Stride, 1, 64, None));
        c.on_event(&event(ProgressKind::Incumbent, 5, 70, Some(0.2)));
        c.on_event(&event(ProgressKind::Incumbent, 9, 90, Some(0.005)));
        c.on_event(&event(ProgressKind::Final, 12, 100, Some(0.0)));
        let s = c.finish();
        assert_eq!(s.time_to_first_incumbent, Some(Duration::from_millis(5)));
        assert_eq!(s.time_to_1pct_gap, Some(Duration::from_millis(9)));
        assert_eq!(s.final_gap, Some(0.0));
        assert_eq!(s.incumbent_events, 2);
        assert_eq!(s.nodes, 100);
        assert_eq!(s.events, 4);
    }

    #[test]
    fn collector_handles_solves_with_no_incumbent() {
        let mut c = ConvergenceCollector::new();
        c.on_event(&event(ProgressKind::Final, 3, 10, None));
        let s = c.finish();
        assert_eq!(s.time_to_first_incumbent, None);
        assert_eq!(s.time_to_1pct_gap, None);
        assert_eq!(s.final_gap, None);
        assert_eq!(s.incumbent_events, 0);
    }

    #[test]
    fn relative_gap_is_clamped_and_scale_free() {
        assert!((relative_gap(10.0, 9.0) - 0.1).abs() < 1e-12);
        assert_eq!(
            relative_gap(10.0, 11.0),
            0.0,
            "bound above incumbent clamps"
        );
        // Negative objectives (maximization encoded as negated min).
        assert!((relative_gap(-9.0, -10.0) - (1.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn jsonl_sink_writes_one_wellformed_line_per_event() {
        let sink = JsonlProgressSink::new(Vec::new());
        sink.emit(7, &event(ProgressKind::Incumbent, 2, 5, Some(0.25)));
        sink.emit(7, &event(ProgressKind::Final, 3, 6, None));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"type":"solver","solve":7,"event":"incumbent","elapsed_us":2000,"nodes":5,"incumbent":10,"bound":7.5,"gap":0.25}"#
        );
        assert_eq!(
            lines[1],
            r#"{"type":"solver","solve":7,"event":"final","elapsed_us":3000,"nodes":6,"incumbent":null,"bound":null,"gap":null}"#
        );
    }

    #[test]
    fn global_sink_is_gated_and_replaceable() {
        let _lock = xring_obs::test_guard();
        struct Count(AtomicU64);
        impl ProgressSink for Count {
            fn emit(&self, _: u64, _: &ProgressEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        clear_sink();
        assert!(!sink_enabled());
        emit_to_sink(1, &event(ProgressKind::Stride, 0, 1, None)); // dropped
        let counter = Arc::new(Count(AtomicU64::new(0)));
        install_sink(counter.clone());
        assert!(sink_enabled());
        emit_to_sink(1, &event(ProgressKind::Stride, 0, 1, None));
        clear_sink();
        emit_to_sink(1, &event(ProgressKind::Stride, 0, 1, None)); // dropped
        assert_eq!(counter.0.load(Ordering::Relaxed), 1);
        assert!(!sink_enabled());
    }
}
