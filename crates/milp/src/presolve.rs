//! Root presolve: cheap logical reductions applied before branch and
//! bound.
//!
//! Three conservative rules, iterated to a fixed point:
//!
//! 1. **Singleton rows** — a constraint with one remaining variable
//!    tightens that variable's bounds (and fixes binaries when the bounds
//!    meet).
//! 2. **Knapsack fixing** — in an all-nonnegative `≤` row, any binary
//!    whose coefficient alone exceeds the remaining rhs must be 0.
//! 3. **Forcing rows** — when a row's minimum activity equals its rhs
//!    (for `≤`/`=`) every variable must sit at the bound achieving it;
//!    when its maximum activity is below the rhs of a `≥`/`=` row the
//!    model is infeasible.
//!
//! The reductions are sound for the mixed binary/continuous models this
//! crate targets; anything unproven is simply left to the search.

use crate::model::{Model, Relation, VarKind};

/// Outcome of presolving a model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PresolveResult {
    /// Variables proven to take a fixed value (binaries: 0.0 or 1.0).
    pub fixed: Vec<(usize, f64)>,
    /// True when presolve proved the model infeasible.
    pub infeasible: bool,
    /// Fixed-point iterations performed.
    pub rounds: usize,
}

/// Runs presolve on `model`.
pub fn presolve(model: &Model) -> PresolveResult {
    let n = model.num_vars();
    let mut lb = vec![0.0f64; n];
    let mut ub = vec![0.0f64; n];
    let mut binary = vec![false; n];
    for (j, def) in model.vars.iter().enumerate() {
        match def.kind {
            VarKind::Binary => {
                ub[j] = 1.0;
                binary[j] = true;
            }
            VarKind::Continuous { lb: l, ub: u } => {
                lb[j] = l;
                ub[j] = u;
            }
        }
    }

    let mut result = PresolveResult::default();
    let eps = 1e-9;
    loop {
        result.rounds += 1;
        let mut changed = false;
        for c in &model.constraints {
            // Remaining activity bounds.
            let mut min_act = 0.0f64;
            let mut max_act = 0.0f64;
            for &(v, coef) in c.expr.terms() {
                let j = v.index();
                if coef >= 0.0 {
                    min_act += coef * lb[j];
                    max_act += coef * ub[j];
                } else {
                    min_act += coef * ub[j];
                    max_act += coef * lb[j];
                }
            }
            if max_act.is_nan() || min_act.is_nan() {
                continue;
            }
            // Infeasibility / forcing detection.
            match c.relation {
                Relation::Le => {
                    if min_act > c.rhs + eps {
                        result.infeasible = true;
                        return result;
                    }
                    if (min_act - c.rhs).abs() <= eps && max_act > c.rhs + eps {
                        // Every variable must sit at its activity-minimizing bound.
                        for &(v, coef) in c.expr.terms() {
                            let j = v.index();
                            let target = if coef >= 0.0 { lb[j] } else { ub[j] };
                            if (ub[j] - lb[j]).abs() > eps {
                                lb[j] = target;
                                ub[j] = target;
                                changed = true;
                            }
                        }
                    }
                }
                Relation::Ge => {
                    if max_act < c.rhs - eps {
                        result.infeasible = true;
                        return result;
                    }
                    if (max_act - c.rhs).abs() <= eps && min_act < c.rhs - eps {
                        for &(v, coef) in c.expr.terms() {
                            let j = v.index();
                            let target = if coef >= 0.0 { ub[j] } else { lb[j] };
                            if (ub[j] - lb[j]).abs() > eps {
                                lb[j] = target;
                                ub[j] = target;
                                changed = true;
                            }
                        }
                    }
                }
                Relation::Eq => {
                    if min_act > c.rhs + eps || max_act < c.rhs - eps {
                        result.infeasible = true;
                        return result;
                    }
                }
            }
            // Singleton rows tighten bounds directly.
            let free: Vec<&(crate::expr::VarId, f64)> = c
                .expr
                .terms()
                .iter()
                .filter(|(v, _)| (ub[v.index()] - lb[v.index()]).abs() > eps)
                .collect();
            if free.len() == 1 {
                let (v, coef) = *free[0];
                let j = v.index();
                // Activity contributed by the fixed part.
                let fixed_part: f64 = c
                    .expr
                    .terms()
                    .iter()
                    .filter(|(w, _)| w.index() != j)
                    .map(|&(w, cf)| cf * lb[w.index()])
                    .sum();
                let slack = c.rhs - fixed_part;
                match (c.relation, coef > 0.0) {
                    (Relation::Le, true) => {
                        let bound = slack / coef;
                        if bound < ub[j] - eps {
                            ub[j] = if binary[j] {
                                bound.floor().max(0.0)
                            } else {
                                bound
                            };
                            changed = true;
                        }
                    }
                    (Relation::Ge, true) => {
                        let bound = slack / coef;
                        if bound > lb[j] + eps {
                            lb[j] = if binary[j] {
                                bound.ceil().min(1.0)
                            } else {
                                bound
                            };
                            changed = true;
                        }
                    }
                    (Relation::Eq, _) => {
                        let value = slack / coef;
                        if (value - lb[j]).abs() > eps || (value - ub[j]).abs() > eps {
                            if binary[j] && (value - value.round()).abs() > 1e-6 {
                                result.infeasible = true;
                                return result;
                            }
                            lb[j] = value;
                            ub[j] = value;
                            changed = true;
                        }
                    }
                    _ => {}
                }
                if lb[j] > ub[j] + eps {
                    result.infeasible = true;
                    return result;
                }
            }
            // Knapsack fixing on all-nonnegative <= rows.
            if c.relation == Relation::Le && c.expr.terms().iter().all(|&(_, coef)| coef >= 0.0) {
                for &(v, coef) in c.expr.terms() {
                    let j = v.index();
                    if binary[j]
                        && (ub[j] - lb[j]).abs() > eps
                        && min_act - coef * lb[j] + coef > c.rhs + eps
                    {
                        ub[j] = 0.0;
                        changed = true;
                    }
                }
            }
        }
        if !changed || result.rounds > 50 {
            break;
        }
    }

    for j in 0..n {
        if binary[j] && (ub[j] - lb[j]).abs() <= eps {
            result.fixed.push((j, lb[j].round()));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Model};

    #[test]
    fn knapsack_rule_fixes_oversized_items() {
        // 5x + y <= 4: x must be 0.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint(LinExpr::new() + (x, 5.0) + (y, 1.0), Relation::Le, 4.0);
        let r = presolve(&m);
        assert!(!r.infeasible);
        assert_eq!(r.fixed, vec![(x.index(), 0.0)]);
        let _ = y;
    }

    #[test]
    fn singleton_eq_fixes_variable() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint(LinExpr::new() + (x, 2.0), Relation::Eq, 2.0);
        let r = presolve(&m);
        assert_eq!(r.fixed, vec![(x.index(), 1.0)]);
    }

    #[test]
    fn fractional_singleton_eq_on_binary_is_infeasible() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint(LinExpr::new() + (x, 2.0), Relation::Eq, 1.0);
        assert!(presolve(&m).infeasible);
    }

    #[test]
    fn forcing_le_row_pins_everything_down() {
        // x + y <= 0 over binaries: both must be 0.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint(LinExpr::sum([x, y]), Relation::Le, 0.0);
        let mut r = presolve(&m);
        r.fixed.sort_unstable_by_key(|a| a.0);
        assert_eq!(r.fixed, vec![(x.index(), 0.0), (y.index(), 0.0)]);
    }

    #[test]
    fn forcing_ge_row_pins_everything_up() {
        // x + y >= 2 over binaries: both must be 1.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint(LinExpr::sum([x, y]), Relation::Ge, 2.0);
        let mut r = presolve(&m);
        r.fixed.sort_unstable_by_key(|a| a.0);
        assert_eq!(r.fixed, vec![(x.index(), 1.0), (y.index(), 1.0)]);
    }

    #[test]
    fn obvious_infeasibility_detected() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint(LinExpr::new() + (x, 1.0), Relation::Ge, 3.0);
        assert!(presolve(&m).infeasible);
    }

    #[test]
    fn feasible_model_without_reductions_is_untouched() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint(LinExpr::sum([x, y]), Relation::Le, 1.0);
        let r = presolve(&m);
        assert!(!r.infeasible);
        assert!(r.fixed.is_empty());
    }

    #[test]
    fn chained_implications_reach_fixed_point() {
        // x = 1 (singleton), then x + y <= 1 forces y = 0 via knapsack
        // (remaining slack 0 < coefficient 1).
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint(LinExpr::new() + (x, 1.0), Relation::Ge, 1.0);
        m.add_constraint(LinExpr::sum([x, y]), Relation::Le, 1.0);
        let mut r = presolve(&m);
        r.fixed.sort_unstable_by_key(|a| a.0);
        assert_eq!(r.fixed, vec![(x.index(), 1.0), (y.index(), 0.0)]);
        assert!(r.rounds >= 2);
    }
}
