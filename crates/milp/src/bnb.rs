//! Exact branch-and-bound over the binary variables, parallelized over
//! a deterministic work-stealing node pool.
//!
//! Nodes fix binaries through their *bounds* (`lb = ub`) rather than by
//! substituting them out of the LP, so every node shares the parent's
//! variable space and the LP basis transfers: each node carries an
//! `Arc<Basis>` from its parent's optimal solve and hands it to
//! [`LpBackend::solve_warm`], turning child solves into short
//! dual-simplex cleanups on the [`crate::revised`] backend.
//!
//! # Deterministic parallel search
//!
//! The search runs in **rounds**. Each round pops up to a fixed batch
//! of nodes from a best-bound frontier (ties broken by node id, ids
//! assigned in creation order), solves their LP relaxations in
//! parallel — each solve is a pure function of the round-start rows,
//! the node's fixes, and its warm basis — and then merges the results
//! **serially in batch order**: pruning, incumbent updates, lazy-cut
//! separation, and child creation all happen on one thread in a fixed
//! order. The batch size is a constant independent of
//! [`with_solver_threads`](BranchAndBound::with_solver_threads), so
//! the node selection, the event stream, and the final result are
//! byte-identical across thread counts; only wall-clock time (and the
//! `elapsed` field of progress events) varies. Worker threads claim
//! batch items from per-worker stripes first and then steal leftovers
//! via a global scan (`bnb.steals`), which balances skewed LP costs
//! without affecting which nodes are solved.
//!
//! # Incumbent seeding
//!
//! When the root relaxation is fractional, its LP point — a *split
//! routing* in the ring models, where a demand may ride several
//! wavelength paths — is rounded to the nearest integral assignment.
//! If that unsplit rounding is feasible (model constraints, lazy pool,
//! and the separation callback all accept it) it seeds the incumbent
//! before any branching, so best-bound pruning has a cutoff from round
//! one.

use crate::backend::{Basis, DenseBackend, LpBackend, LpBackendKind};
use crate::error::SolveError;
use crate::expr::{LinExpr, VarId};
use crate::factor::FactorizationKind;
use crate::model::{Model, Relation, VarKind};
use crate::pricing::PricingKind;
use crate::progress::{self, ProgressEvent, ProgressKind, ProgressObserver};
use crate::revised::RevisedConfig;
use crate::simplex::{LpOutcome, LpProblem, LpRow};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Integrality tolerance: an LP value within this distance of an integer
/// is considered integral.
const INT_TOL: f64 = 1e-6;

/// Nodes selected per search round. A fixed constant — independent of
/// the worker-thread count — so the explored tree is identical at every
/// parallelism level (the determinism gate relies on this).
const BATCH: usize = 16;

/// What the branch-and-bound search returns for the winning node:
/// solution values, objective, and the basis that proved it (shared
/// via `Rc` until export).
type SearchOutcome = (Vec<f64>, f64, Option<Arc<Basis>>);

/// A feasible integer solution found by [`BranchAndBound::solve`].
#[derive(Debug, Clone)]
pub struct MilpSolution {
    values: Vec<f64>,
    objective: f64,
    stats: SolveStats,
    basis: Option<Basis>,
}

impl MilpSolution {
    /// Value of variable `v` (binaries are exactly 0.0 or 1.0 after
    /// rounding within tolerance).
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved model.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// True if binary variable `v` is set in this solution.
    pub fn is_set(&self, v: VarId) -> bool {
        self.value(v) > 0.5
    }

    /// Dense assignment vector, indexed by variable creation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Search statistics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The LP basis at the node where the final incumbent was proved,
    /// for seeding a later re-solve of a *same-shaped* model via
    /// [`BranchAndBound::with_root_basis`]. `None` when the incumbent
    /// came from a warm start accepted without any LP solve, or when
    /// the backend does not export bases (the dense reference backend).
    pub fn basis(&self) -> Option<&Basis> {
        self.basis.as_ref()
    }

    /// Consumes the solution, yielding the exported basis (see
    /// [`basis`](Self::basis)).
    pub fn into_basis(self) -> Option<Basis> {
        self.basis
    }
}

/// Statistics reported with a solution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// LP relaxations solved (≥ nodes when lazy constraints re-solve).
    pub lp_solves: usize,
    /// Lazy constraints added by the callback.
    pub lazy_constraints: usize,
    /// Binaries fixed by root presolve.
    pub presolve_fixed: usize,
    /// Times the incumbent improved during the search (excludes a
    /// warm start accepted via
    /// [`with_incumbent`](BranchAndBound::with_incumbent)).
    pub incumbent_updates: usize,
    /// LP solves that were offered a parent basis (every solve except
    /// each search's first; the root has no predecessor).
    pub warm_eligible: usize,
    /// LP solves where the backend actually adopted the offered basis
    /// (0 on the dense reference backend, which cannot warm-start).
    pub warm_starts: usize,
    /// Nodes processed in rounds holding more than one node — the nodes
    /// eligible for parallel LP solving. Counted from the batch shape,
    /// not the thread count, so it is identical across
    /// [`with_solver_threads`](BranchAndBound::with_solver_threads)
    /// settings (steal counts, which are scheduling-dependent, go to
    /// the `bnb.steals` observability counter instead).
    pub nodes_parallel: usize,
}

/// Configurable exact branch-and-bound solver.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone)]
pub struct BranchAndBound {
    max_nodes: usize,
    deadline: Option<Instant>,
    incumbent: Option<(Vec<f64>, f64)>,
    progress_stride: usize,
    lp_backend: LpBackendKind,
    root_basis: Option<Arc<Basis>>,
    solver_threads: usize,
    pricing: PricingKind,
    factorization: FactorizationKind,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            max_nodes: 200_000,
            deadline: None,
            incumbent: None,
            progress_stride: 64,
            lp_backend: LpBackendKind::default(),
            root_basis: None,
            solver_threads: 1,
            pricing: PricingKind::default(),
            factorization: FactorizationKind::default(),
        }
    }
}

/// Per-solve convergence-telemetry plumbing: holds the optional
/// observer, the global-sink solve id, and the root bound, and turns
/// search milestones into [`ProgressEvent`]s. When `active` is false
/// every hook is a single branch on a local bool.
struct ProgressState<'a> {
    observer: Option<&'a mut dyn ProgressObserver>,
    /// 0 when no global sink was installed at solve start.
    solve_id: u64,
    active: bool,
    stride: usize,
    started: Instant,
    /// Global lower bound: the root LP relaxation objective (raised by
    /// valid root cuts). Fixed once branching starts, so the reported
    /// gap is monotone non-increasing.
    best_bound: Option<f64>,
    /// Cleared when a resource limit truncates the search; while set,
    /// an `Ok` result means the tree was exhausted and the incumbent is
    /// proven optimal (the final event then closes the gap to 0).
    proven: bool,
}

impl ProgressState<'_> {
    fn emit(&mut self, kind: ProgressKind, nodes: usize, incumbent: Option<f64>) {
        if !self.active {
            return;
        }
        let gap = match (incumbent, self.best_bound) {
            (Some(inc), Some(bound)) => Some(progress::relative_gap(inc, bound)),
            _ => None,
        };
        let event = ProgressEvent {
            kind,
            elapsed: self.started.elapsed(),
            nodes,
            incumbent,
            best_bound: self.best_bound,
            gap,
        };
        if let Some(observer) = self.observer.as_deref_mut() {
            observer.on_event(&event);
        }
        if self.solve_id != 0 {
            progress::emit_to_sink(self.solve_id, &event);
        }
    }

    /// Stride tick: fires every `stride`-th node.
    fn on_node(&mut self, nodes: usize, incumbent: Option<f64>) {
        if self.active && nodes.is_multiple_of(self.stride) {
            self.emit(ProgressKind::Stride, nodes, incumbent);
        }
    }

    /// Records a (possibly improved) global lower bound from a root LP
    /// solve and announces it, so the gap becomes reportable early.
    fn raise_bound(&mut self, bound: f64, nodes: usize, incumbent: Option<f64>) {
        if !self.active {
            return;
        }
        if self.best_bound.is_none_or(|b| bound > b) {
            self.best_bound = Some(bound);
            self.emit(ProgressKind::Stride, nodes, incumbent);
        }
    }
}

impl BranchAndBound {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of branch-and-bound nodes. On exhaustion the best
    /// incumbent is returned if one exists, otherwise
    /// [`SolveError::ResourceLimit`].
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Sets a cooperative wall-clock deadline, checked once per
    /// branch-and-bound node alongside the node limit. When the deadline
    /// passes mid-search the solve aborts with
    /// [`SolveError::Interrupted`] — a hard stop (no incumbent fallback),
    /// since the caller's time budget is already spent. `None` clears a
    /// previously set deadline.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Warm-starts the search with a known feasible assignment (e.g. from
    /// a heuristic). The assignment must be feasible for the model passed
    /// to [`solve`](Self::solve); it is re-checked there.
    pub fn with_incumbent(mut self, values: Vec<f64>, objective: f64) -> Self {
        self.incumbent = Some((values, objective));
        self
    }

    /// Sets the node-count stride between periodic convergence-telemetry
    /// events (default 64, minimum 1). Only consulted when an observer
    /// or a global progress sink is attached; see [`crate::progress`].
    pub fn with_progress_stride(mut self, stride: usize) -> Self {
        self.progress_stride = stride.max(1);
        self
    }

    /// Seeds the root node's LP with a basis exported from a previous
    /// solve ([`MilpSolution::basis`]). The basis must come from a model
    /// with the same variable count and a compatible row structure —
    /// typically an earlier solve of the *same* model with different
    /// coefficients (an edited spec). An incompatible basis is detected
    /// by the backend and the root simply solves cold, so this is always
    /// safe to offer. Only the revised backend can adopt it.
    pub fn with_root_basis(mut self, basis: Basis) -> Self {
        self.root_basis = Some(Arc::new(basis));
        self
    }

    /// Selects the LP backend for the node relaxations (default
    /// [`LpBackendKind::Revised`]). The dense reference backend solves
    /// every node cold; the revised backend warm-starts children from
    /// their parent's basis.
    pub fn with_lp_backend(mut self, backend: LpBackendKind) -> Self {
        self.lp_backend = backend;
        self
    }

    /// Sets the number of worker threads for the per-round node-batch
    /// LP solves (default 1, minimum 1). The explored tree, the final
    /// solution, and the progress-event stream are identical at every
    /// setting; only wall-clock time changes.
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = threads.max(1);
        self
    }

    /// Selects the pricing rule for the revised backend's primal phases
    /// (default [`PricingKind::Dantzig`]). Ignored by the dense
    /// reference backend.
    pub fn with_pricing(mut self, pricing: PricingKind) -> Self {
        self.pricing = pricing;
        self
    }

    /// Selects the basis factorization for the revised backend (default
    /// [`FactorizationKind::SparseLu`]). Ignored by the dense reference
    /// backend.
    pub fn with_factorization(mut self, factorization: FactorizationKind) -> Self {
        self.factorization = factorization;
        self
    }

    /// Solves the model exactly.
    ///
    /// # Example
    ///
    /// Minimize `5x + 3y` subject to `x + y >= 1` over binaries:
    ///
    /// ```
    /// use xring_milp::{BranchAndBound, LinExpr, Model, Relation};
    ///
    /// let mut m = Model::new();
    /// let x = m.add_binary("x");
    /// let y = m.add_binary("y");
    /// m.add_constraint(LinExpr::new() + (x, 1.0) + (y, 1.0), Relation::Ge, 1.0);
    /// m.set_objective(LinExpr::new() + (x, 5.0) + (y, 3.0));
    ///
    /// let solution = BranchAndBound::new().solve(&m)?;
    /// assert!(solution.is_set(y) && !solution.is_set(x));
    /// assert_eq!(solution.objective(), 3.0);
    /// assert!(solution.stats().nodes >= 1);
    /// # Ok::<(), xring_milp::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when no integer point satisfies the
    /// constraints, [`SolveError::Unbounded`] when the relaxation is
    /// unbounded, [`SolveError::ResourceLimit`] when limits are hit with
    /// no incumbent, [`SolveError::Numerical`] on simplex failure.
    pub fn solve(&self, model: &Model) -> Result<MilpSolution, SolveError> {
        self.solve_with_lazy(model, |_| Vec::new())
    }

    /// Solves the model with a lazy-constraint callback.
    ///
    /// Whenever the search finds an LP-optimal **integral** assignment,
    /// `separate` is called with the candidate values. If it returns any
    /// cuts (each `(expr, relation, rhs)`), they are added to a global cut
    /// pool, the candidate is rejected, and the node is re-solved. The
    /// callback must be *consistent*: it must eventually accept any truly
    /// feasible point, or the search cannot terminate with that point.
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve).
    pub fn solve_with_lazy<F>(&self, model: &Model, separate: F) -> Result<MilpSolution, SolveError>
    where
        F: FnMut(&[f64]) -> Vec<(LinExpr, Relation, f64)>,
    {
        self.solve_full(model, separate, None)
    }

    /// Like [`solve`](Self::solve), but streams convergence telemetry
    /// (incumbent updates, node-stride ticks, a final event) to
    /// `observer`. See [`crate::progress`] for the event model.
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve).
    pub fn solve_observed(
        &self,
        model: &Model,
        observer: &mut dyn ProgressObserver,
    ) -> Result<MilpSolution, SolveError> {
        self.solve_full(model, |_| Vec::new(), Some(observer))
    }

    /// Like [`solve_with_lazy`](Self::solve_with_lazy), but streams
    /// convergence telemetry to `observer`.
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve).
    pub fn solve_with_lazy_observed<F>(
        &self,
        model: &Model,
        separate: F,
        observer: &mut dyn ProgressObserver,
    ) -> Result<MilpSolution, SolveError>
    where
        F: FnMut(&[f64]) -> Vec<(LinExpr, Relation, f64)>,
    {
        self.solve_full(model, separate, Some(observer))
    }

    fn solve_full<F>(
        &self,
        model: &Model,
        separate: F,
        observer: Option<&mut dyn ProgressObserver>,
    ) -> Result<MilpSolution, SolveError>
    where
        F: FnMut(&[f64]) -> Vec<(LinExpr, Relation, f64)>,
    {
        #[cfg(feature = "fault-inject")]
        if let Some(fault) = crate::fault::take() {
            return Err(fault.to_solve_error());
        }

        let _span = xring_obs::span("milp-solve");
        let started = Instant::now();
        // Telemetry activation is decided once per solve (one relaxed
        // load for the sink), so the per-node hooks branch on a bool.
        let sink_on = progress::sink_enabled();
        let mut progress = ProgressState {
            active: observer.is_some() || sink_on,
            observer,
            solve_id: if sink_on {
                progress::next_solve_id()
            } else {
                0
            },
            stride: self.progress_stride,
            started,
            best_bound: None,
            proven: true,
        };
        let mut stats = SolveStats::default();
        let result = self.search(model, separate, &mut stats, &mut progress);
        let final_incumbent = result.as_ref().ok().map(|(_, objective, _)| *objective);
        if progress.proven && progress.best_bound.is_some() {
            // Exhausted tree: the incumbent is the proven optimum, so
            // the bound meets it and the final gap closes to 0.
            progress.best_bound = final_incumbent.or(progress.best_bound);
        }
        progress.emit(ProgressKind::Final, stats.nodes, final_incumbent);
        xring_obs::record_hist("milp.solve_us", started.elapsed().as_micros() as u64);
        xring_obs::counter("milp.nodes", stats.nodes as u64);
        xring_obs::counter("milp.lp_solves", stats.lp_solves as u64);
        xring_obs::counter("milp.lazy_cuts", stats.lazy_constraints as u64);
        xring_obs::counter("milp.presolve_fixed", stats.presolve_fixed as u64);
        xring_obs::counter("milp.incumbent_updates", stats.incumbent_updates as u64);
        xring_obs::counter("bnb.nodes_parallel", stats.nodes_parallel as u64);
        // Attribute the solve outcome to the enclosing span so
        // per-request traces distinguish proven-optimal solves from
        // bound-limited ones without parsing progress events.
        match result.is_ok() {
            true if progress.proven => xring_obs::counter("milp.solves_proven", 1),
            true => xring_obs::counter("milp.solves_bound_limited", 1),
            false => xring_obs::counter("milp.solves_failed", 1),
        }
        result.map(|(values, objective, basis)| MilpSolution {
            values,
            objective,
            stats,
            basis: basis.map(|b| Arc::try_unwrap(b).unwrap_or_else(|arc| (*arc).clone())),
        })
    }

    /// The branch-and-bound search behind
    /// [`solve_with_lazy`](Self::solve_with_lazy), with statistics
    /// accumulated into `stats` on every exit path (so the
    /// observability counters are flushed even when the search errors)
    /// and convergence milestones reported through `progress`.
    fn search<F>(
        &self,
        model: &Model,
        mut separate: F,
        stats: &mut SolveStats,
        progress: &mut ProgressState<'_>,
    ) -> Result<SearchOutcome, SolveError>
    where
        F: FnMut(&[f64]) -> Vec<(LinExpr, Relation, f64)>,
    {
        let n = model.num_vars();

        // Dense objective.
        let mut objective = vec![0.0f64; n];
        for &(v, c) in model.objective.terms() {
            objective[v.index()] += c;
        }

        // Base bounds.
        let mut base_lb = vec![0.0f64; n];
        let mut base_ub = vec![0.0f64; n];
        for (j, def) in model.vars.iter().enumerate() {
            match def.kind {
                VarKind::Binary => {
                    base_lb[j] = 0.0;
                    base_ub[j] = 1.0;
                }
                VarKind::Continuous { lb, ub } => {
                    base_lb[j] = lb;
                    base_ub[j] = ub;
                }
            }
        }

        // Rows from model constraints + lazy pool.
        let to_lp_row = |expr: &LinExpr, relation: Relation, rhs: f64| LpRow {
            terms: expr.terms().iter().map(|&(v, c)| (v.index(), c)).collect(),
            relation,
            rhs,
        };
        let mut rows: Vec<LpRow> = model
            .constraints
            .iter()
            .map(|c| to_lp_row(&c.expr, c.relation, c.rhs))
            .collect();
        let mut lazy_pool: Vec<(LinExpr, Relation, f64)> = Vec::new();

        // Incumbent, plus the LP basis of the node that proved it (the
        // exported warm-start seed for a later re-solve of an edited
        // model).
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut best_basis: Option<Arc<Basis>> = None;
        if let Some((vals, obj)) = &self.incumbent {
            if vals.len() != n {
                return Err(SolveError::InvalidModel {
                    detail: format!(
                        "incumbent has {} values for a {n}-variable model",
                        vals.len()
                    ),
                });
            }
            if model.violated_constraints(vals, 1e-6).is_empty() {
                best = Some((vals.clone(), *obj));
                // A feasible warm start is the solve's first incumbent:
                // report it so every solve that starts feasible carries
                // at least one incumbent event, even when the warm
                // start is already optimal.
                progress.emit(ProgressKind::Incumbent, 0, Some(*obj));
            }
        }

        // Root presolve: logical fixings applied to every node.
        let pre = crate::presolve::presolve(model);
        if pre.infeasible {
            return Err(SolveError::Infeasible);
        }
        stats.presolve_fixed = pre.fixed.len();

        // The backend is built per solve so the revised kernel picks up
        // this solver's pricing/factorization knobs.
        let backend_owned: Box<dyn LpBackend> = match self.lp_backend {
            LpBackendKind::Dense => Box::new(DenseBackend),
            LpBackendKind::Revised => Box::new(
                RevisedConfig::default()
                    .with_factorization(self.factorization)
                    .with_pricing(self.pricing),
            ),
        };
        let backend: &dyn LpBackend = backend_owned.as_ref();
        let dense_backend = self.lp_backend == LpBackendKind::Dense;
        let binaries: Vec<usize> = model.binary_vars().iter().map(|v| v.index()).collect();
        let is_binary = {
            let mut flags = vec![false; n];
            for &b in &binaries {
                flags[b] = true;
            }
            flags
        };

        // Implied-upper-bound detection: a binary x_j needs no explicit
        // `x_j <= 1` row in the relaxation when some all-nonnegative
        // constraint `Σ aᵢxᵢ {<=,=} rhs` with `rhs <= 1` and `a_j >= 1`
        // already enforces it (true for the degree constraints of the
        // ring-construction model, which makes its LP 3x smaller).
        let implied_ub = {
            let mut implied = vec![false; n];
            for c in &model.constraints {
                if !matches!(c.relation, Relation::Le | Relation::Eq) || c.rhs > 1.0 + 1e-12 {
                    continue;
                }
                if c.expr.terms().iter().any(|&(_, coef)| coef < 0.0) {
                    continue;
                }
                for &(v, coef) in c.expr.terms() {
                    if coef >= 1.0 - 1e-12 && is_binary[v.index()] {
                        implied[v.index()] = true;
                    }
                }
            }
            implied
        };

        /// A frontier node: the parent's LP objective bounds everything
        /// below it. Heap order is best bound first, then creation
        /// order (`id`), which fixes every tie deterministically.
        struct Node {
            bound: f64,
            id: u64,
            fixes: Vec<(usize, bool)>,
            basis: Option<Arc<Basis>>,
        }
        impl PartialEq for Node {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == CmpOrdering::Equal
            }
        }
        impl Eq for Node {}
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Node {
            fn cmp(&self, other: &Self) -> CmpOrdering {
                // BinaryHeap is a max-heap: "greater" = smaller bound,
                // then smaller id.
                other
                    .bound
                    .total_cmp(&self.bound)
                    .then_with(|| other.id.cmp(&self.id))
            }
        }

        /// One round's unit of parallel work: the node plus its bound
        /// vectors, solved as a pure function of the round-start rows.
        struct WorkItem {
            node: Node,
            lb: Vec<f64>,
            ub: Vec<f64>,
        }

        /// Appends lazy cuts to the LP rows and the pool, dropping the
        /// stored incumbent when a new cut invalidates it (e.g. a warm
        /// start the callback had not vetted).
        #[allow(clippy::too_many_arguments)]
        fn apply_cuts(
            cuts: Vec<(LinExpr, Relation, f64)>,
            rows: &mut Vec<LpRow>,
            lazy_pool: &mut Vec<(LinExpr, Relation, f64)>,
            best: &mut Option<(Vec<f64>, f64)>,
            best_basis: &mut Option<Arc<Basis>>,
            to_lp_row: &impl Fn(&LinExpr, Relation, f64) -> LpRow,
        ) {
            for (expr, rel, rhs) in cuts {
                let expr = expr.normalized();
                if let Some((bvals, _)) = &best {
                    let lhs = expr.evaluate(bvals);
                    let violated = match rel {
                        Relation::Le => lhs > rhs + 1e-6,
                        Relation::Ge => lhs < rhs - 1e-6,
                        Relation::Eq => (lhs - rhs).abs() > 1e-6,
                    };
                    if violated {
                        *best = None;
                        *best_basis = None;
                    }
                }
                rows.push(to_lp_row(&expr, rel, rhs));
                lazy_pool.push((expr, rel, rhs));
            }
        }

        let satisfies = |expr: &LinExpr, rel: Relation, rhs: f64, vals: &[f64]| {
            let lhs = expr.evaluate(vals);
            match rel {
                Relation::Le => lhs <= rhs + 1e-6,
                Relation::Ge => lhs >= rhs - 1e-6,
                Relation::Eq => (lhs - rhs).abs() <= 1e-6,
            }
        };

        let threads = self.solver_threads.max(1);
        let mut next_id: u64 = 1;
        let mut frontier = BinaryHeap::new();
        frontier.push(Node {
            bound: f64::NEG_INFINITY,
            id: 0,
            fixes: pre.fixed.iter().map(|&(j, v)| (j, v > 0.5)).collect(),
            basis: self.root_basis.clone(),
        });

        while !frontier.is_empty() {
            // --- Selection: pop the round's batch, best bound first.
            // Node accounting (count, stride tick, limits) happens here,
            // in deterministic pop order; bound-pruned nodes are dropped
            // without spending an LP solve or a node count on them.
            let mut batch: Vec<Node> = Vec::with_capacity(BATCH);
            while batch.len() < BATCH {
                let Some(node) = frontier.pop() else { break };
                if let Some((_, best_obj)) = &best {
                    if node.bound >= *best_obj - 1e-9 {
                        continue;
                    }
                }
                stats.nodes += 1;
                progress.on_node(stats.nodes, best.as_ref().map(|(_, obj)| *obj));
                if stats.nodes > self.max_nodes {
                    progress.proven = false;
                    return match best {
                        Some((values, obj)) => Ok((values, obj, best_basis)),
                        None => Err(SolveError::ResourceLimit { nodes: stats.nodes }),
                    };
                }
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return Err(SolveError::Interrupted { nodes: stats.nodes });
                    }
                }
                batch.push(node);
            }
            if batch.is_empty() {
                break;
            }
            if batch.len() > 1 {
                stats.nodes_parallel += batch.len();
            }
            xring_obs::record_hist("bnb.batch_size", batch.len() as u64);

            // --- Bound vectors per item (serial: O(n) copies).
            let items: Vec<WorkItem> = batch
                .into_iter()
                .map(|node| {
                    let mut lb = base_lb.clone();
                    // Fix binaries through bounds (lb = ub), keeping the
                    // full variable space so the parent basis stays
                    // valid. The dense backend substitutes fixed columns
                    // out internally and still benefits from dropping
                    // implied ub rows; the revised backend handles all
                    // bounds natively.
                    let mut ub: Vec<f64> = if dense_backend {
                        (0..n)
                            .map(|j| {
                                if is_binary[j] && implied_ub[j] {
                                    f64::INFINITY
                                } else {
                                    base_ub[j]
                                }
                            })
                            .collect()
                    } else {
                        base_ub.clone()
                    };
                    for &(j, val) in &node.fixes {
                        let v = if val { 1.0 } else { 0.0 };
                        lb[j] = v;
                        ub[j] = v;
                    }
                    WorkItem { node, lb, ub }
                })
                .collect();

            // --- Parallel LP solves: each item is a pure function of
            // the round-start rows, its fixes, and its warm basis, so
            // the schedule cannot affect any result.
            let solve_item = |item: &WorkItem| {
                let lp = LpProblem {
                    num_vars: n,
                    lb: item.lb.clone(),
                    ub: item.ub.clone(),
                    objective: objective.clone(),
                    rows: rows.clone(),
                };
                match &item.node.basis {
                    Some(basis) => backend.solve_warm(&lp, basis),
                    None => backend.solve(&lp),
                }
            };
            let results: Vec<crate::backend::BackendSolve> = if threads > 1 && items.len() > 1 {
                let nw = threads.min(items.len());
                let claimed: Vec<AtomicBool> =
                    (0..items.len()).map(|_| AtomicBool::new(false)).collect();
                let slots: Vec<Mutex<Option<crate::backend::BackendSolve>>> =
                    (0..items.len()).map(|_| Mutex::new(None)).collect();
                let steals = AtomicUsize::new(0);
                // Per-worker stripes first, then a global scan that
                // steals whatever slower workers have not claimed.
                let worker = |w: usize| {
                    let mut i = w;
                    while i < items.len() {
                        if !claimed[i].swap(true, Ordering::Relaxed) {
                            *slots[i].lock().unwrap() = Some(solve_item(&items[i]));
                        }
                        i += nw;
                    }
                    for i in 0..items.len() {
                        if !claimed[i].swap(true, Ordering::Relaxed) {
                            steals.fetch_add(1, Ordering::Relaxed);
                            *slots[i].lock().unwrap() = Some(solve_item(&items[i]));
                        }
                    }
                };
                std::thread::scope(|scope| {
                    for w in 1..nw {
                        let worker = &worker;
                        scope.spawn(move || worker(w));
                    }
                    worker(0);
                });
                xring_obs::counter("bnb.steals", steals.load(Ordering::Relaxed) as u64);
                slots
                    .into_iter()
                    .map(|slot| slot.into_inner().unwrap().expect("item processed"))
                    .collect()
            } else {
                items.iter().map(solve_item).collect()
            };

            // --- Serial merge, in batch order: the only place that
            // mutates search state, so results are schedule-independent.
            for (item, solved) in items.into_iter().zip(results) {
                if item.node.basis.is_some() {
                    stats.warm_eligible += 1;
                }
                stats.lp_solves += 1;
                if solved.warmed {
                    stats.warm_starts += 1;
                }
                let node_basis = solved.basis.map(Arc::new);
                let sol = match solved.outcome {
                    LpOutcome::Optimal(s) => s,
                    LpOutcome::Infeasible => continue, // prune
                    LpOutcome::Unbounded => {
                        // Unbounded relaxation at the root means an
                        // unbounded MILP; in a branch it still means the
                        // whole problem is unbounded (bounds only
                        // tighten).
                        return Err(SolveError::Unbounded);
                    }
                    LpOutcome::IterationLimit => return Err(SolveError::Numerical),
                };
                let node_obj = sol.objective;
                // Every LP solve of the root node (including re-queues
                // after valid lazy cuts) bounds the whole problem from
                // below.
                if item.node.id == 0 {
                    progress.raise_bound(node_obj, stats.nodes, best.as_ref().map(|(_, o)| *o));
                }

                // Re-prune against the freshest incumbent (it may have
                // improved since this item's selection).
                if let Some((_, best_obj)) = &best {
                    if node_obj >= *best_obj - 1e-9 {
                        continue;
                    }
                }

                // The solve covers the full variable space (fixed
                // binaries sit at their pinned bound).
                let full = sol.values;

                // Find the most fractional binary.
                let mut branch_var = None;
                let mut branch_frac = INT_TOL;
                for &j in &binaries {
                    let x = full[j];
                    let frac = (x - x.round()).abs();
                    if frac > branch_frac {
                        branch_frac = frac;
                        branch_var = Some(j);
                    }
                }

                match branch_var {
                    None => {
                        // Integral: round, check lazy cuts.
                        let mut values = full.clone();
                        for (j, v) in values.iter_mut().enumerate() {
                            if is_binary[j] {
                                *v = v.round();
                            }
                        }
                        let cuts = separate(&values);
                        if cuts.is_empty() {
                            let obj: f64 = values.iter().zip(&objective).map(|(x, c)| x * c).sum();
                            let improves =
                                best.as_ref().map(|(_, b)| obj < *b - 1e-9).unwrap_or(true);
                            if improves {
                                stats.incumbent_updates += 1;
                                best = Some((values, obj));
                                best_basis = node_basis;
                                progress.emit(ProgressKind::Incumbent, stats.nodes, Some(obj));
                            }
                        } else {
                            stats.lazy_constraints += cuts.len();
                            apply_cuts(
                                cuts,
                                &mut rows,
                                &mut lazy_pool,
                                &mut best,
                                &mut best_basis,
                                &to_lp_row,
                            );
                            // Re-queue the node (same id) so the cut-
                            // extended LP re-solves it next round.
                            frontier.push(Node {
                                bound: node_obj,
                                id: item.node.id,
                                fixes: item.node.fixes,
                                basis: node_basis,
                            });
                        }
                    }
                    Some(j) => {
                        // Fractional root: round the split-routing LP
                        // point to the nearest unsplit assignment and
                        // adopt it as the incumbent when feasible, so
                        // pruning has a cutoff before any branching.
                        if item.node.id == 0 {
                            let mut cand = full.clone();
                            for &b in &binaries {
                                cand[b] = cand[b].round();
                            }
                            let pool_ok = lazy_pool
                                .iter()
                                .all(|(expr, rel, rhs)| satisfies(expr, *rel, *rhs, &cand));
                            if pool_ok && model.violated_constraints(&cand, 1e-6).is_empty() {
                                let cuts = separate(&cand);
                                if cuts.is_empty() {
                                    let obj: f64 =
                                        cand.iter().zip(&objective).map(|(x, c)| x * c).sum();
                                    let improves =
                                        best.as_ref().map(|(_, b)| obj < *b - 1e-9).unwrap_or(true);
                                    if improves {
                                        stats.incumbent_updates += 1;
                                        best = Some((cand, obj));
                                        best_basis = None;
                                        progress.emit(
                                            ProgressKind::Incumbent,
                                            stats.nodes,
                                            Some(obj),
                                        );
                                    }
                                } else {
                                    stats.lazy_constraints += cuts.len();
                                    apply_cuts(
                                        cuts,
                                        &mut rows,
                                        &mut lazy_pool,
                                        &mut best,
                                        &mut best_basis,
                                        &to_lp_row,
                                    );
                                }
                            }
                        }
                        // Branch: both children share this node's final
                        // basis and inherit its LP objective as their
                        // bound. The side nearer the LP value gets the
                        // smaller id, so bound ties explore it first.
                        let x = full[j];
                        let mut down = item.node.fixes.clone();
                        down.push((j, false));
                        let mut up = item.node.fixes;
                        up.push((j, true));
                        let (near, far) = if x >= 0.5 { (up, down) } else { (down, up) };
                        frontier.push(Node {
                            bound: node_obj,
                            id: next_id,
                            fixes: near,
                            basis: node_basis.clone(),
                        });
                        frontier.push(Node {
                            bound: node_obj,
                            id: next_id + 1,
                            fixes: far,
                            basis: node_basis,
                        });
                        next_id += 2;
                    }
                }
            }
        }

        match best {
            Some((values, obj)) => {
                // Final consistency check against lazy pool and model.
                debug_assert!(model.violated_constraints(&values, 1e-5).is_empty());
                Ok((values, obj, best_basis))
            }
            None => Err(SolveError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test observer: records every event verbatim.
    #[derive(Default)]
    struct Recorder {
        events: Vec<ProgressEvent>,
    }

    impl ProgressObserver for Recorder {
        fn on_event(&mut self, event: &ProgressEvent) {
            self.events.push(event.clone());
        }
    }

    #[test]
    fn observer_sees_incumbent_final_and_monotone_gap() {
        // Knapsack (below): branching is required, so the search finds
        // at least one incumbent after the root bound is known.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(
            LinExpr::new() + (a, 3.0) + (b, 4.0) + (c, 2.0),
            Relation::Le,
            6.0,
        );
        m.set_objective(LinExpr::new() + (a, -10.0) + (b, -13.0) + (c, -7.0));
        let mut rec = Recorder::default();
        let s = BranchAndBound::new()
            .with_progress_stride(1)
            .solve_observed(&m, &mut rec)
            .expect("feasible");

        let events = &rec.events;
        assert!(!events.is_empty());
        let last = events.last().unwrap();
        assert_eq!(
            last.kind,
            ProgressKind::Final,
            "final event closes the stream"
        );
        assert_eq!(last.incumbent, Some(s.objective()));
        assert_eq!(last.nodes, s.stats().nodes);
        assert!(
            events.iter().any(|e| e.kind == ProgressKind::Incumbent),
            "at least one incumbent event"
        );
        // Stride 1: every node ticks.
        let strides = events
            .iter()
            .filter(|e| e.kind == ProgressKind::Stride)
            .count();
        assert!(strides >= s.stats().nodes, "strides={strides}");
        // The bound never decreases, elapsed and nodes never regress,
        // and the gap is monotone non-increasing once reported.
        let mut prev_gap = f64::INFINITY;
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_nodes = 0;
        for e in events {
            if let Some(bound) = e.best_bound {
                assert!(bound >= prev_bound - 1e-9, "bound regressed");
                prev_bound = bound;
            }
            if let Some(gap) = e.gap {
                assert!(gap <= prev_gap + 1e-12, "gap regressed: {gap} > {prev_gap}");
                prev_gap = gap;
            }
            assert!(e.nodes >= prev_nodes);
            prev_nodes = e.nodes;
        }
        assert_eq!(prev_gap, 0.0, "exact solve closes the gap");
    }

    #[test]
    fn warm_start_reports_an_incumbent_event_even_when_optimal() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        let mut rec = Recorder::default();
        let s = BranchAndBound::new()
            .with_incumbent(vec![0.0], 0.0)
            .solve_observed(&m, &mut rec)
            .expect("feasible");
        assert_eq!(s.stats().incumbent_updates, 0, "warm start stays optimal");
        let first = &rec.events[0];
        assert_eq!(first.kind, ProgressKind::Incumbent);
        assert_eq!(first.nodes, 0, "warm start accepted before node 1");
        assert_eq!(first.incumbent, Some(0.0));
    }

    #[test]
    fn unobserved_solves_reach_no_sink() {
        let _lock = xring_obs::test_guard();
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Count(AtomicU64);
        impl crate::progress::ProgressSink for Count {
            fn emit(&self, _: u64, _: &ProgressEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        // No sink, no observer: nothing to receive events.
        crate::progress::clear_sink();
        BranchAndBound::new().solve(&m).expect("feasible");
        // Sink installed: the same solve streams tagged events.
        let sink = std::sync::Arc::new(Count(AtomicU64::new(0)));
        crate::progress::install_sink(sink.clone());
        BranchAndBound::new().solve(&m).expect("feasible");
        crate::progress::clear_sink();
        assert!(
            sink.0.load(Ordering::Relaxed) >= 1,
            "sink alone activates telemetry"
        );
    }

    /// A model that needs real branching: 8-item knapsack.
    fn branching_model() -> Model {
        let mut m = Model::new();
        let w = [3.0, 4.0, 2.0, 5.0, 6.0, 1.0, 4.0, 3.0];
        let p = [10.0, 13.0, 7.0, 16.0, 19.0, 4.0, 12.0, 9.0];
        let vars: Vec<_> = (0..8).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            cap += (v, w[i]);
            obj += (v, -p[i]);
        }
        m.add_constraint(cap, Relation::Le, 12.0);
        m.set_objective(obj);
        m
    }

    #[test]
    fn parallel_search_is_deterministic_across_thread_counts() {
        let m = branching_model();
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut rec = Recorder::default();
            let s = BranchAndBound::new()
                .with_solver_threads(threads)
                .with_progress_stride(1)
                .solve_observed(&m, &mut rec)
                .expect("feasible");
            runs.push((threads, s, rec.events));
        }
        let (_, base, base_events) = &runs[0];
        for (threads, s, events) in &runs[1..] {
            assert_eq!(
                s.objective(),
                base.objective(),
                "objective differs at {threads} threads"
            );
            assert_eq!(
                s.values(),
                base.values(),
                "design bytes differ at {threads} threads"
            );
            assert_eq!(s.stats(), base.stats(), "stats differ at {threads} threads");
            assert_eq!(
                events.len(),
                base_events.len(),
                "event count differs at {threads} threads"
            );
            for (e, b) in events.iter().zip(base_events) {
                // Everything except wall-clock `elapsed` is pinned.
                assert_eq!(e.kind, b.kind);
                assert_eq!(e.nodes, b.nodes);
                assert_eq!(e.incumbent, b.incumbent);
                assert_eq!(e.best_bound, b.best_bound);
                assert_eq!(e.gap, b.gap);
            }
        }
    }

    #[test]
    fn parallel_search_with_lazy_cuts_is_deterministic() {
        // Lazy cuts force re-queues; the merge order must still pin
        // the outcome across thread counts.
        let solve_at = |threads: usize| {
            let m = branching_model();
            let first3: Vec<VarId> = m.binary_vars().iter().take(3).copied().collect();
            BranchAndBound::new()
                .with_solver_threads(threads)
                .solve_with_lazy(&m, |vals| {
                    if first3.iter().map(|v| vals[v.index()]).sum::<f64>() > 2.5 {
                        let mut cut = LinExpr::new();
                        for &v in &first3 {
                            cut += (v, 1.0);
                        }
                        vec![(cut, Relation::Le, 2.0)]
                    } else {
                        Vec::new()
                    }
                })
                .expect("feasible")
        };
        let base = solve_at(1);
        for threads in [2usize, 8] {
            let s = solve_at(threads);
            assert_eq!(s.objective(), base.objective());
            assert_eq!(s.values(), base.values());
            assert_eq!(s.stats(), base.stats());
        }
    }

    #[test]
    fn root_rounding_seeds_an_incumbent_on_fractional_roots() {
        // Fractional root LP whose rounding is feasible: the heuristic
        // must register an incumbent before any branching happens.
        let m = branching_model();
        let mut rec = Recorder::default();
        let s = BranchAndBound::new()
            .solve_observed(&m, &mut rec)
            .expect("feasible");
        let first_incumbent = rec
            .events
            .iter()
            .find(|e| e.kind == ProgressKind::Incumbent)
            .expect("incumbent event");
        assert_eq!(
            first_incumbent.nodes, 1,
            "rounding fires at the root, before branching"
        );
        assert!((s.objective() + 40.0).abs() < 1e-6, "obj={}", s.objective());
    }

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6   => min negated
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(
            LinExpr::new() + (a, 3.0) + (b, 4.0) + (c, 2.0),
            Relation::Le,
            6.0,
        );
        m.set_objective(LinExpr::new() + (a, -10.0) + (b, -13.0) + (c, -7.0));
        let s = BranchAndBound::new().solve(&m).expect("feasible");
        // Best: b + c = 20 (weight 6). a + c = 17, a alone 10.
        assert!((s.objective() + 20.0).abs() < 1e-6, "obj={}", s.objective());
        assert!(s.is_set(b) && s.is_set(c) && !s.is_set(a));
    }

    #[test]
    fn infeasible_model() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint(LinExpr::new() + (x, 1.0), Relation::Ge, 2.0);
        match BranchAndBound::new().solve(&m) {
            Err(SolveError::Infeasible) => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn set_partition() {
        // Choose exactly one of three options, minimize cost.
        let mut m = Model::new();
        let v: Vec<_> = (0..3).map(|i| m.add_binary(format!("v{i}"))).collect();
        m.add_constraint(LinExpr::sum(v.clone()), Relation::Eq, 1.0);
        m.set_objective(LinExpr::new() + (v[0], 5.0) + (v[1], 3.0) + (v[2], 9.0));
        let s = BranchAndBound::new().solve(&m).expect("feasible");
        assert!(s.is_set(v[1]));
        assert!((s.objective() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min y  s.t. y >= 1.5 - x, y >= x - 0.5, x binary, y >= 0.
        // x=1 -> y >= 0.5 ; x=0 -> y >= 1.5. Optimal: x=1, y=0.5.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_continuous(0.0, f64::INFINITY, "y");
        m.add_constraint(LinExpr::new() + (y, 1.0) + (x, 1.0), Relation::Ge, 1.5);
        m.add_constraint(LinExpr::new() + (y, 1.0) + (x, -1.0), Relation::Ge, -0.5);
        m.set_objective(LinExpr::new() + (y, 1.0));
        let s = BranchAndBound::new().solve(&m).expect("feasible");
        assert!(s.is_set(x));
        assert!((s.value(y) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lazy_constraints_cut_off_candidates() {
        // min -(a+b+c); lazily forbid "all three set".
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective(LinExpr::new() + (a, -1.0) + (b, -1.0) + (c, -1.0));
        let s = BranchAndBound::new()
            .solve_with_lazy(&m, |vals| {
                if vals.iter().take(3).sum::<f64>() > 2.5 {
                    vec![(LinExpr::sum([a, b, c]), Relation::Le, 2.0)]
                } else {
                    Vec::new()
                }
            })
            .expect("feasible");
        assert!((s.objective() + 2.0).abs() < 1e-6);
        assert!(s.stats().lazy_constraints >= 1);
    }

    #[test]
    fn expired_deadline_interrupts_even_with_incumbent() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        let solver = BranchAndBound::new()
            .with_incumbent(vec![0.0], 0.0)
            .with_deadline(Some(Instant::now()));
        match solver.solve(&m) {
            Err(SolveError::Interrupted { nodes }) => assert!(nodes <= 1),
            other => panic!("expected interrupted, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_does_not_interrupt() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        let far = Instant::now() + std::time::Duration::from_secs(3_600);
        let s = BranchAndBound::new()
            .with_deadline(Some(far))
            .solve(&m)
            .expect("feasible");
        assert!((s.objective() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_incumbent_is_a_typed_error() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        let solver = BranchAndBound::new().with_incumbent(vec![0.0, 1.0], 0.0);
        match solver.solve(&m) {
            Err(SolveError::InvalidModel { detail }) => {
                assert!(detail.contains("incumbent"), "{detail}");
            }
            other => panic!("expected invalid-model error, got {other:?}"),
        }
    }

    #[test]
    fn incumbent_warm_start_preserved_when_optimal() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        // Incumbent x=0, obj=0 — already optimal.
        let s = BranchAndBound::new()
            .with_incumbent(vec![0.0], 0.0)
            .solve(&m)
            .expect("feasible");
        assert!((s.objective() - 0.0).abs() < 1e-9);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // matrix-style indices
    fn tiny_tsp_assignment_with_subtour_cuts() {
        // 4-city symmetric TSP via assignment + lazy subtour elimination.
        let d = [
            [0.0, 1.0, 9.0, 9.0],
            [1.0, 0.0, 1.0, 9.0],
            [9.0, 1.0, 0.0, 1.0],
            [1.0, 9.0, 1.0, 0.0],
        ];
        let mut m = Model::new();
        let mut var = vec![vec![None; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    var[i][j] = Some(m.add_binary(format!("e{i}{j}")));
                }
            }
        }
        let mut obj = LinExpr::new();
        for i in 0..4 {
            let out: Vec<_> = (0..4).filter_map(|j| var[i][j]).collect();
            let inn: Vec<_> = (0..4).filter_map(|j| var[j][i]).collect();
            m.add_constraint(LinExpr::sum(out), Relation::Eq, 1.0);
            m.add_constraint(LinExpr::sum(inn), Relation::Eq, 1.0);
            for j in 0..4 {
                if let Some(v) = var[i][j] {
                    obj += (v, d[i][j]);
                }
            }
        }
        m.set_objective(obj);
        let var_clone = var.clone();
        let s = BranchAndBound::new()
            .solve_with_lazy(&m, move |vals| {
                // Find a subtour; forbid it.
                let next = |i: usize| {
                    (0..4).find(|&j| {
                        var_clone[i][j]
                            .map(|v| vals[v.index()] > 0.5)
                            .unwrap_or(false)
                    })
                };
                let mut seen = [false; 4];
                let mut tour = vec![0usize];
                seen[0] = true;
                let mut cur = 0usize;
                while let Some(nx) = next(cur) {
                    if seen[nx] {
                        break;
                    }
                    seen[nx] = true;
                    tour.push(nx);
                    cur = nx;
                }
                if tour.len() == 4 {
                    return Vec::new();
                }
                // Cut: sum of edges inside `tour` <= |tour| - 1.
                let mut cut = LinExpr::new();
                for &i in &tour {
                    for &j in &tour {
                        if let Some(v) = var_clone[i][j] {
                            cut += (v, 1.0);
                        }
                    }
                }
                vec![(cut, Relation::Le, tour.len() as f64 - 1.0)]
            })
            .expect("feasible");
        // Optimal tour 0->1->2->3->0 = 1+1+1+1 = 4.
        assert!((s.objective() - 4.0).abs() < 1e-6, "obj={}", s.objective());
    }
}
