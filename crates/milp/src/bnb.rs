//! Exact branch-and-bound over the binary variables.
//!
//! Nodes fix binaries through their *bounds* (`lb = ub`) rather than by
//! substituting them out of the LP, so every node shares the parent's
//! variable space and the LP basis transfers: each node carries an
//! `Rc<Basis>` from its parent's optimal solve and hands it to
//! [`LpBackend::solve_warm`], turning child solves into short
//! dual-simplex cleanups on the [`crate::revised`] backend.

use crate::backend::{Basis, LpBackendKind};
use crate::error::SolveError;
use crate::expr::{LinExpr, VarId};
use crate::model::{Model, Relation, VarKind};
use crate::progress::{self, ProgressEvent, ProgressKind, ProgressObserver};
use crate::simplex::{LpOutcome, LpProblem, LpRow};
use std::rc::Rc;
use std::time::Instant;

#[allow(unused_imports)] // doc link
use crate::backend::LpBackend;

/// Integrality tolerance: an LP value within this distance of an integer
/// is considered integral.
const INT_TOL: f64 = 1e-6;

/// What the branch-and-bound search returns for the winning node:
/// solution values, objective, and the basis that proved it (shared
/// via `Rc` until export).
type SearchOutcome = (Vec<f64>, f64, Option<Rc<Basis>>);

/// A feasible integer solution found by [`BranchAndBound::solve`].
#[derive(Debug, Clone)]
pub struct MilpSolution {
    values: Vec<f64>,
    objective: f64,
    stats: SolveStats,
    basis: Option<Basis>,
}

impl MilpSolution {
    /// Value of variable `v` (binaries are exactly 0.0 or 1.0 after
    /// rounding within tolerance).
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved model.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// True if binary variable `v` is set in this solution.
    pub fn is_set(&self, v: VarId) -> bool {
        self.value(v) > 0.5
    }

    /// Dense assignment vector, indexed by variable creation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Search statistics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The LP basis at the node where the final incumbent was proved,
    /// for seeding a later re-solve of a *same-shaped* model via
    /// [`BranchAndBound::with_root_basis`]. `None` when the incumbent
    /// came from a warm start accepted without any LP solve, or when
    /// the backend does not export bases (the dense reference backend).
    pub fn basis(&self) -> Option<&Basis> {
        self.basis.as_ref()
    }

    /// Consumes the solution, yielding the exported basis (see
    /// [`basis`](Self::basis)).
    pub fn into_basis(self) -> Option<Basis> {
        self.basis
    }
}

/// Statistics reported with a solution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// LP relaxations solved (≥ nodes when lazy constraints re-solve).
    pub lp_solves: usize,
    /// Lazy constraints added by the callback.
    pub lazy_constraints: usize,
    /// Binaries fixed by root presolve.
    pub presolve_fixed: usize,
    /// Times the incumbent improved during the search (excludes a
    /// warm start accepted via
    /// [`with_incumbent`](BranchAndBound::with_incumbent)).
    pub incumbent_updates: usize,
    /// LP solves that were offered a parent basis (every solve except
    /// each search's first; the root has no predecessor).
    pub warm_eligible: usize,
    /// LP solves where the backend actually adopted the offered basis
    /// (0 on the dense reference backend, which cannot warm-start).
    pub warm_starts: usize,
}

/// Configurable exact branch-and-bound solver.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone)]
pub struct BranchAndBound {
    max_nodes: usize,
    deadline: Option<Instant>,
    incumbent: Option<(Vec<f64>, f64)>,
    progress_stride: usize,
    lp_backend: LpBackendKind,
    root_basis: Option<Rc<Basis>>,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            max_nodes: 200_000,
            deadline: None,
            incumbent: None,
            progress_stride: 64,
            lp_backend: LpBackendKind::default(),
            root_basis: None,
        }
    }
}

/// Per-solve convergence-telemetry plumbing: holds the optional
/// observer, the global-sink solve id, and the root bound, and turns
/// search milestones into [`ProgressEvent`]s. When `active` is false
/// every hook is a single branch on a local bool.
struct ProgressState<'a> {
    observer: Option<&'a mut dyn ProgressObserver>,
    /// 0 when no global sink was installed at solve start.
    solve_id: u64,
    active: bool,
    stride: usize,
    started: Instant,
    /// Global lower bound: the root LP relaxation objective (raised by
    /// valid root cuts). Fixed once branching starts, so the reported
    /// gap is monotone non-increasing.
    best_bound: Option<f64>,
    /// Cleared when a resource limit truncates the search; while set,
    /// an `Ok` result means the tree was exhausted and the incumbent is
    /// proven optimal (the final event then closes the gap to 0).
    proven: bool,
}

impl ProgressState<'_> {
    fn emit(&mut self, kind: ProgressKind, nodes: usize, incumbent: Option<f64>) {
        if !self.active {
            return;
        }
        let gap = match (incumbent, self.best_bound) {
            (Some(inc), Some(bound)) => Some(progress::relative_gap(inc, bound)),
            _ => None,
        };
        let event = ProgressEvent {
            kind,
            elapsed: self.started.elapsed(),
            nodes,
            incumbent,
            best_bound: self.best_bound,
            gap,
        };
        if let Some(observer) = self.observer.as_deref_mut() {
            observer.on_event(&event);
        }
        if self.solve_id != 0 {
            progress::emit_to_sink(self.solve_id, &event);
        }
    }

    /// Stride tick: fires every `stride`-th node.
    fn on_node(&mut self, nodes: usize, incumbent: Option<f64>) {
        if self.active && nodes.is_multiple_of(self.stride) {
            self.emit(ProgressKind::Stride, nodes, incumbent);
        }
    }

    /// Records a (possibly improved) global lower bound from a root LP
    /// solve and announces it, so the gap becomes reportable early.
    fn raise_bound(&mut self, bound: f64, nodes: usize, incumbent: Option<f64>) {
        if !self.active {
            return;
        }
        if self.best_bound.is_none_or(|b| bound > b) {
            self.best_bound = Some(bound);
            self.emit(ProgressKind::Stride, nodes, incumbent);
        }
    }
}

impl BranchAndBound {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of branch-and-bound nodes. On exhaustion the best
    /// incumbent is returned if one exists, otherwise
    /// [`SolveError::ResourceLimit`].
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Sets a cooperative wall-clock deadline, checked once per
    /// branch-and-bound node alongside the node limit. When the deadline
    /// passes mid-search the solve aborts with
    /// [`SolveError::Interrupted`] — a hard stop (no incumbent fallback),
    /// since the caller's time budget is already spent. `None` clears a
    /// previously set deadline.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Warm-starts the search with a known feasible assignment (e.g. from
    /// a heuristic). The assignment must be feasible for the model passed
    /// to [`solve`](Self::solve); it is re-checked there.
    pub fn with_incumbent(mut self, values: Vec<f64>, objective: f64) -> Self {
        self.incumbent = Some((values, objective));
        self
    }

    /// Sets the node-count stride between periodic convergence-telemetry
    /// events (default 64, minimum 1). Only consulted when an observer
    /// or a global progress sink is attached; see [`crate::progress`].
    pub fn with_progress_stride(mut self, stride: usize) -> Self {
        self.progress_stride = stride.max(1);
        self
    }

    /// Seeds the root node's LP with a basis exported from a previous
    /// solve ([`MilpSolution::basis`]). The basis must come from a model
    /// with the same variable count and a compatible row structure —
    /// typically an earlier solve of the *same* model with different
    /// coefficients (an edited spec). An incompatible basis is detected
    /// by the backend and the root simply solves cold, so this is always
    /// safe to offer. Only the revised backend can adopt it.
    pub fn with_root_basis(mut self, basis: Basis) -> Self {
        self.root_basis = Some(Rc::new(basis));
        self
    }

    /// Selects the LP backend for the node relaxations (default
    /// [`LpBackendKind::Revised`]). The dense reference backend solves
    /// every node cold; the revised backend warm-starts children from
    /// their parent's basis.
    pub fn with_lp_backend(mut self, backend: LpBackendKind) -> Self {
        self.lp_backend = backend;
        self
    }

    /// Solves the model exactly.
    ///
    /// # Example
    ///
    /// Minimize `5x + 3y` subject to `x + y >= 1` over binaries:
    ///
    /// ```
    /// use xring_milp::{BranchAndBound, LinExpr, Model, Relation};
    ///
    /// let mut m = Model::new();
    /// let x = m.add_binary("x");
    /// let y = m.add_binary("y");
    /// m.add_constraint(LinExpr::new() + (x, 1.0) + (y, 1.0), Relation::Ge, 1.0);
    /// m.set_objective(LinExpr::new() + (x, 5.0) + (y, 3.0));
    ///
    /// let solution = BranchAndBound::new().solve(&m)?;
    /// assert!(solution.is_set(y) && !solution.is_set(x));
    /// assert_eq!(solution.objective(), 3.0);
    /// assert!(solution.stats().nodes >= 1);
    /// # Ok::<(), xring_milp::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when no integer point satisfies the
    /// constraints, [`SolveError::Unbounded`] when the relaxation is
    /// unbounded, [`SolveError::ResourceLimit`] when limits are hit with
    /// no incumbent, [`SolveError::Numerical`] on simplex failure.
    pub fn solve(&self, model: &Model) -> Result<MilpSolution, SolveError> {
        self.solve_with_lazy(model, |_| Vec::new())
    }

    /// Solves the model with a lazy-constraint callback.
    ///
    /// Whenever the search finds an LP-optimal **integral** assignment,
    /// `separate` is called with the candidate values. If it returns any
    /// cuts (each `(expr, relation, rhs)`), they are added to a global cut
    /// pool, the candidate is rejected, and the node is re-solved. The
    /// callback must be *consistent*: it must eventually accept any truly
    /// feasible point, or the search cannot terminate with that point.
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve).
    pub fn solve_with_lazy<F>(&self, model: &Model, separate: F) -> Result<MilpSolution, SolveError>
    where
        F: FnMut(&[f64]) -> Vec<(LinExpr, Relation, f64)>,
    {
        self.solve_full(model, separate, None)
    }

    /// Like [`solve`](Self::solve), but streams convergence telemetry
    /// (incumbent updates, node-stride ticks, a final event) to
    /// `observer`. See [`crate::progress`] for the event model.
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve).
    pub fn solve_observed(
        &self,
        model: &Model,
        observer: &mut dyn ProgressObserver,
    ) -> Result<MilpSolution, SolveError> {
        self.solve_full(model, |_| Vec::new(), Some(observer))
    }

    /// Like [`solve_with_lazy`](Self::solve_with_lazy), but streams
    /// convergence telemetry to `observer`.
    ///
    /// # Errors
    ///
    /// As for [`solve`](Self::solve).
    pub fn solve_with_lazy_observed<F>(
        &self,
        model: &Model,
        separate: F,
        observer: &mut dyn ProgressObserver,
    ) -> Result<MilpSolution, SolveError>
    where
        F: FnMut(&[f64]) -> Vec<(LinExpr, Relation, f64)>,
    {
        self.solve_full(model, separate, Some(observer))
    }

    fn solve_full<F>(
        &self,
        model: &Model,
        separate: F,
        observer: Option<&mut dyn ProgressObserver>,
    ) -> Result<MilpSolution, SolveError>
    where
        F: FnMut(&[f64]) -> Vec<(LinExpr, Relation, f64)>,
    {
        #[cfg(feature = "fault-inject")]
        if let Some(fault) = crate::fault::take() {
            return Err(fault.to_solve_error());
        }

        let _span = xring_obs::span("milp-solve");
        let started = Instant::now();
        // Telemetry activation is decided once per solve (one relaxed
        // load for the sink), so the per-node hooks branch on a bool.
        let sink_on = progress::sink_enabled();
        let mut progress = ProgressState {
            active: observer.is_some() || sink_on,
            observer,
            solve_id: if sink_on {
                progress::next_solve_id()
            } else {
                0
            },
            stride: self.progress_stride,
            started,
            best_bound: None,
            proven: true,
        };
        let mut stats = SolveStats::default();
        let result = self.search(model, separate, &mut stats, &mut progress);
        let final_incumbent = result.as_ref().ok().map(|(_, objective, _)| *objective);
        if progress.proven && progress.best_bound.is_some() {
            // Exhausted tree: the incumbent is the proven optimum, so
            // the bound meets it and the final gap closes to 0.
            progress.best_bound = final_incumbent.or(progress.best_bound);
        }
        progress.emit(ProgressKind::Final, stats.nodes, final_incumbent);
        xring_obs::record_hist("milp.solve_us", started.elapsed().as_micros() as u64);
        xring_obs::counter("milp.nodes", stats.nodes as u64);
        xring_obs::counter("milp.lp_solves", stats.lp_solves as u64);
        xring_obs::counter("milp.lazy_cuts", stats.lazy_constraints as u64);
        xring_obs::counter("milp.presolve_fixed", stats.presolve_fixed as u64);
        xring_obs::counter("milp.incumbent_updates", stats.incumbent_updates as u64);
        // Attribute the solve outcome to the enclosing span so
        // per-request traces distinguish proven-optimal solves from
        // bound-limited ones without parsing progress events.
        match result.is_ok() {
            true if progress.proven => xring_obs::counter("milp.solves_proven", 1),
            true => xring_obs::counter("milp.solves_bound_limited", 1),
            false => xring_obs::counter("milp.solves_failed", 1),
        }
        result.map(|(values, objective, basis)| MilpSolution {
            values,
            objective,
            stats,
            basis: basis.map(|b| Rc::try_unwrap(b).unwrap_or_else(|rc| (*rc).clone())),
        })
    }

    /// The branch-and-bound search behind
    /// [`solve_with_lazy`](Self::solve_with_lazy), with statistics
    /// accumulated into `stats` on every exit path (so the
    /// observability counters are flushed even when the search errors)
    /// and convergence milestones reported through `progress`.
    fn search<F>(
        &self,
        model: &Model,
        mut separate: F,
        stats: &mut SolveStats,
        progress: &mut ProgressState<'_>,
    ) -> Result<SearchOutcome, SolveError>
    where
        F: FnMut(&[f64]) -> Vec<(LinExpr, Relation, f64)>,
    {
        let n = model.num_vars();

        // Dense objective.
        let mut objective = vec![0.0f64; n];
        for &(v, c) in model.objective.terms() {
            objective[v.index()] += c;
        }

        // Base bounds.
        let mut base_lb = vec![0.0f64; n];
        let mut base_ub = vec![0.0f64; n];
        for (j, def) in model.vars.iter().enumerate() {
            match def.kind {
                VarKind::Binary => {
                    base_lb[j] = 0.0;
                    base_ub[j] = 1.0;
                }
                VarKind::Continuous { lb, ub } => {
                    base_lb[j] = lb;
                    base_ub[j] = ub;
                }
            }
        }

        // Rows from model constraints + lazy pool.
        let to_lp_row = |expr: &LinExpr, relation: Relation, rhs: f64| LpRow {
            terms: expr.terms().iter().map(|&(v, c)| (v.index(), c)).collect(),
            relation,
            rhs,
        };
        let mut rows: Vec<LpRow> = model
            .constraints
            .iter()
            .map(|c| to_lp_row(&c.expr, c.relation, c.rhs))
            .collect();
        let mut lazy_pool: Vec<(LinExpr, Relation, f64)> = Vec::new();

        // Incumbent, plus the LP basis of the node that proved it (the
        // exported warm-start seed for a later re-solve of an edited
        // model).
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut best_basis: Option<Rc<Basis>> = None;
        if let Some((vals, obj)) = &self.incumbent {
            if vals.len() != n {
                return Err(SolveError::InvalidModel {
                    detail: format!(
                        "incumbent has {} values for a {n}-variable model",
                        vals.len()
                    ),
                });
            }
            if model.violated_constraints(vals, 1e-6).is_empty() {
                best = Some((vals.clone(), *obj));
                // A feasible warm start is the solve's first incumbent:
                // report it so every solve that starts feasible carries
                // at least one incumbent event, even when the warm
                // start is already optimal.
                progress.emit(ProgressKind::Incumbent, 0, Some(*obj));
            }
        }

        // Root presolve: logical fixings applied to every node.
        let pre = crate::presolve::presolve(model);
        if pre.infeasible {
            return Err(SolveError::Infeasible);
        }
        stats.presolve_fixed = pre.fixed.len();

        // DFS over nodes: each node fixes a subset of binaries through
        // their bounds and carries the parent's LP basis for warm starts.
        #[derive(Clone)]
        struct Node {
            fixes: Vec<(usize, bool)>,
            basis: Option<Rc<Basis>>,
        }
        let root_fixes: Vec<(usize, bool)> = pre.fixed.iter().map(|&(j, v)| (j, v > 0.5)).collect();
        let mut stack = vec![Node {
            fixes: root_fixes,
            basis: self.root_basis.clone(),
        }];
        let backend = self.lp_backend.backend();
        let dense_backend = self.lp_backend == LpBackendKind::Dense;
        let binaries: Vec<usize> = model.binary_vars().iter().map(|v| v.index()).collect();
        let is_binary = {
            let mut flags = vec![false; n];
            for &b in &binaries {
                flags[b] = true;
            }
            flags
        };

        // Implied-upper-bound detection: a binary x_j needs no explicit
        // `x_j <= 1` row in the relaxation when some all-nonnegative
        // constraint `Σ aᵢxᵢ {<=,=} rhs` with `rhs <= 1` and `a_j >= 1`
        // already enforces it (true for the degree constraints of the
        // ring-construction model, which makes its LP 3x smaller).
        let implied_ub = {
            let mut implied = vec![false; n];
            for c in &model.constraints {
                if !matches!(c.relation, Relation::Le | Relation::Eq) || c.rhs > 1.0 + 1e-12 {
                    continue;
                }
                if c.expr.terms().iter().any(|&(_, coef)| coef < 0.0) {
                    continue;
                }
                for &(v, coef) in c.expr.terms() {
                    if coef >= 1.0 - 1e-12 && is_binary[v.index()] {
                        implied[v.index()] = true;
                    }
                }
            }
            implied
        };

        while let Some(node) = stack.pop() {
            stats.nodes += 1;
            progress.on_node(stats.nodes, best.as_ref().map(|(_, obj)| *obj));
            if stats.nodes > self.max_nodes {
                progress.proven = false;
                return match best {
                    Some((values, obj)) => Ok((values, obj, best_basis)),
                    None => Err(SolveError::ResourceLimit { nodes: stats.nodes }),
                };
            }
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Err(SolveError::Interrupted { nodes: stats.nodes });
                }
            }

            // Fix binaries through their bounds (lb = ub), keeping the
            // full variable space so the parent basis stays valid. The
            // dense backend substitutes fixed columns out internally and
            // still benefits from dropping implied ub rows; the revised
            // backend handles all bounds natively.
            let mut lb = base_lb.clone();
            let mut ub: Vec<f64> = if dense_backend {
                (0..n)
                    .map(|j| {
                        if is_binary[j] && implied_ub[j] {
                            f64::INFINITY
                        } else {
                            base_ub[j]
                        }
                    })
                    .collect()
            } else {
                base_ub.clone()
            };
            for &(j, val) in &node.fixes {
                let v = if val { 1.0 } else { 0.0 };
                lb[j] = v;
                ub[j] = v;
            }
            let mut warm: Option<Rc<Basis>> = node.basis.clone();

            // Re-solve this node until the lazy callback accepts or the
            // node is pruned.
            'resolve: loop {
                let lp = LpProblem {
                    num_vars: n,
                    lb: lb.clone(),
                    ub: ub.clone(),
                    objective: objective.clone(),
                    rows: rows.clone(),
                };
                stats.lp_solves += 1;
                let solved = match &warm {
                    Some(basis) => {
                        stats.warm_eligible += 1;
                        backend.solve_warm(&lp, basis)
                    }
                    None => backend.solve(&lp),
                };
                if solved.warmed {
                    stats.warm_starts += 1;
                }
                warm = solved.basis.map(Rc::new);
                let sol = match solved.outcome {
                    LpOutcome::Optimal(s) => s,
                    LpOutcome::Infeasible => break 'resolve, // prune
                    LpOutcome::Unbounded => {
                        // Unbounded relaxation at the root means an
                        // unbounded MILP; in a branch it still means the
                        // whole problem is unbounded (bounds only tighten).
                        return Err(SolveError::Unbounded);
                    }
                    LpOutcome::IterationLimit => return Err(SolveError::Numerical),
                };
                let node_obj = sol.objective;
                // Every LP solve of the root node (including re-solves
                // after valid lazy cuts) bounds the whole problem from
                // below.
                if stats.nodes == 1 {
                    progress.raise_bound(node_obj, stats.nodes, best.as_ref().map(|(_, o)| *o));
                }

                // Bound pruning.
                if let Some((_, best_obj)) = &best {
                    if node_obj >= *best_obj - 1e-9 {
                        break 'resolve;
                    }
                }

                // The solve covers the full variable space (fixed
                // binaries sit at their pinned bound).
                let full = sol.values;

                // Find the most fractional binary.
                let mut branch_var = None;
                let mut branch_frac = INT_TOL;
                for &j in &binaries {
                    let x = full[j];
                    let frac = (x - x.round()).abs();
                    if frac > branch_frac {
                        branch_frac = frac;
                        branch_var = Some(j);
                    }
                }

                match branch_var {
                    None => {
                        // Integral: round, check lazy cuts.
                        let mut values = full.clone();
                        for (j, v) in values.iter_mut().enumerate() {
                            if is_binary[j] {
                                *v = v.round();
                            }
                        }
                        let cuts = separate(&values);
                        if cuts.is_empty() {
                            let obj: f64 = values.iter().zip(&objective).map(|(x, c)| x * c).sum();
                            let improves =
                                best.as_ref().map(|(_, b)| obj < *b - 1e-9).unwrap_or(true);
                            if improves {
                                stats.incumbent_updates += 1;
                                best = Some((values, obj));
                                best_basis = warm.clone();
                                progress.emit(ProgressKind::Incumbent, stats.nodes, Some(obj));
                            }
                            break 'resolve;
                        }
                        stats.lazy_constraints += cuts.len();
                        for (expr, rel, rhs) in cuts {
                            let expr = expr.normalized();
                            // A new cut can invalidate the stored
                            // incumbent (e.g. a warm start that the
                            // callback had not vetted); drop it then.
                            if let Some((bvals, _)) = &best {
                                let lhs = expr.evaluate(bvals);
                                let violated = match rel {
                                    Relation::Le => lhs > rhs + 1e-6,
                                    Relation::Ge => lhs < rhs - 1e-6,
                                    Relation::Eq => (lhs - rhs).abs() > 1e-6,
                                };
                                if violated {
                                    best = None;
                                    best_basis = None;
                                }
                            }
                            rows.push(to_lp_row(&expr, rel, rhs));
                            lazy_pool.push((expr, rel, rhs));
                        }
                        continue 'resolve;
                    }
                    Some(j) => {
                        // Branch: explore the side nearer the LP value
                        // first (pushed last => popped first). Both
                        // children share this node's final basis.
                        let x = full[j];
                        let mut down = node.fixes.clone();
                        down.push((j, false));
                        let mut up = node.fixes.clone();
                        up.push((j, true));
                        let down = Node {
                            fixes: down,
                            basis: warm.clone(),
                        };
                        let up = Node {
                            fixes: up,
                            basis: warm.clone(),
                        };
                        if x >= 0.5 {
                            stack.push(down);
                            stack.push(up);
                        } else {
                            stack.push(up);
                            stack.push(down);
                        }
                        break 'resolve;
                    }
                }
            }
        }

        match best {
            Some((values, obj)) => {
                // Final consistency check against lazy pool and model.
                debug_assert!(model.violated_constraints(&values, 1e-5).is_empty());
                Ok((values, obj, best_basis))
            }
            None => Err(SolveError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test observer: records every event verbatim.
    #[derive(Default)]
    struct Recorder {
        events: Vec<ProgressEvent>,
    }

    impl ProgressObserver for Recorder {
        fn on_event(&mut self, event: &ProgressEvent) {
            self.events.push(event.clone());
        }
    }

    #[test]
    fn observer_sees_incumbent_final_and_monotone_gap() {
        // Knapsack (below): branching is required, so the search finds
        // at least one incumbent after the root bound is known.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(
            LinExpr::new() + (a, 3.0) + (b, 4.0) + (c, 2.0),
            Relation::Le,
            6.0,
        );
        m.set_objective(LinExpr::new() + (a, -10.0) + (b, -13.0) + (c, -7.0));
        let mut rec = Recorder::default();
        let s = BranchAndBound::new()
            .with_progress_stride(1)
            .solve_observed(&m, &mut rec)
            .expect("feasible");

        let events = &rec.events;
        assert!(!events.is_empty());
        let last = events.last().unwrap();
        assert_eq!(
            last.kind,
            ProgressKind::Final,
            "final event closes the stream"
        );
        assert_eq!(last.incumbent, Some(s.objective()));
        assert_eq!(last.nodes, s.stats().nodes);
        assert!(
            events.iter().any(|e| e.kind == ProgressKind::Incumbent),
            "at least one incumbent event"
        );
        // Stride 1: every node ticks.
        let strides = events
            .iter()
            .filter(|e| e.kind == ProgressKind::Stride)
            .count();
        assert!(strides >= s.stats().nodes, "strides={strides}");
        // The bound never decreases, elapsed and nodes never regress,
        // and the gap is monotone non-increasing once reported.
        let mut prev_gap = f64::INFINITY;
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_nodes = 0;
        for e in events {
            if let Some(bound) = e.best_bound {
                assert!(bound >= prev_bound - 1e-9, "bound regressed");
                prev_bound = bound;
            }
            if let Some(gap) = e.gap {
                assert!(gap <= prev_gap + 1e-12, "gap regressed: {gap} > {prev_gap}");
                prev_gap = gap;
            }
            assert!(e.nodes >= prev_nodes);
            prev_nodes = e.nodes;
        }
        assert_eq!(prev_gap, 0.0, "exact solve closes the gap");
    }

    #[test]
    fn warm_start_reports_an_incumbent_event_even_when_optimal() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        let mut rec = Recorder::default();
        let s = BranchAndBound::new()
            .with_incumbent(vec![0.0], 0.0)
            .solve_observed(&m, &mut rec)
            .expect("feasible");
        assert_eq!(s.stats().incumbent_updates, 0, "warm start stays optimal");
        let first = &rec.events[0];
        assert_eq!(first.kind, ProgressKind::Incumbent);
        assert_eq!(first.nodes, 0, "warm start accepted before node 1");
        assert_eq!(first.incumbent, Some(0.0));
    }

    #[test]
    fn unobserved_solves_reach_no_sink() {
        let _lock = xring_obs::test_guard();
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Count(AtomicU64);
        impl crate::progress::ProgressSink for Count {
            fn emit(&self, _: u64, _: &ProgressEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        // No sink, no observer: nothing to receive events.
        crate::progress::clear_sink();
        BranchAndBound::new().solve(&m).expect("feasible");
        // Sink installed: the same solve streams tagged events.
        let sink = std::sync::Arc::new(Count(AtomicU64::new(0)));
        crate::progress::install_sink(sink.clone());
        BranchAndBound::new().solve(&m).expect("feasible");
        crate::progress::clear_sink();
        assert!(
            sink.0.load(Ordering::Relaxed) >= 1,
            "sink alone activates telemetry"
        );
    }

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6   => min negated
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(
            LinExpr::new() + (a, 3.0) + (b, 4.0) + (c, 2.0),
            Relation::Le,
            6.0,
        );
        m.set_objective(LinExpr::new() + (a, -10.0) + (b, -13.0) + (c, -7.0));
        let s = BranchAndBound::new().solve(&m).expect("feasible");
        // Best: b + c = 20 (weight 6). a + c = 17, a alone 10.
        assert!((s.objective() + 20.0).abs() < 1e-6, "obj={}", s.objective());
        assert!(s.is_set(b) && s.is_set(c) && !s.is_set(a));
    }

    #[test]
    fn infeasible_model() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.add_constraint(LinExpr::new() + (x, 1.0), Relation::Ge, 2.0);
        match BranchAndBound::new().solve(&m) {
            Err(SolveError::Infeasible) => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn set_partition() {
        // Choose exactly one of three options, minimize cost.
        let mut m = Model::new();
        let v: Vec<_> = (0..3).map(|i| m.add_binary(format!("v{i}"))).collect();
        m.add_constraint(LinExpr::sum(v.clone()), Relation::Eq, 1.0);
        m.set_objective(LinExpr::new() + (v[0], 5.0) + (v[1], 3.0) + (v[2], 9.0));
        let s = BranchAndBound::new().solve(&m).expect("feasible");
        assert!(s.is_set(v[1]));
        assert!((s.objective() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min y  s.t. y >= 1.5 - x, y >= x - 0.5, x binary, y >= 0.
        // x=1 -> y >= 0.5 ; x=0 -> y >= 1.5. Optimal: x=1, y=0.5.
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_continuous(0.0, f64::INFINITY, "y");
        m.add_constraint(LinExpr::new() + (y, 1.0) + (x, 1.0), Relation::Ge, 1.5);
        m.add_constraint(LinExpr::new() + (y, 1.0) + (x, -1.0), Relation::Ge, -0.5);
        m.set_objective(LinExpr::new() + (y, 1.0));
        let s = BranchAndBound::new().solve(&m).expect("feasible");
        assert!(s.is_set(x));
        assert!((s.value(y) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lazy_constraints_cut_off_candidates() {
        // min -(a+b+c); lazily forbid "all three set".
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective(LinExpr::new() + (a, -1.0) + (b, -1.0) + (c, -1.0));
        let s = BranchAndBound::new()
            .solve_with_lazy(&m, |vals| {
                if vals.iter().take(3).sum::<f64>() > 2.5 {
                    vec![(LinExpr::sum([a, b, c]), Relation::Le, 2.0)]
                } else {
                    Vec::new()
                }
            })
            .expect("feasible");
        assert!((s.objective() + 2.0).abs() < 1e-6);
        assert!(s.stats().lazy_constraints >= 1);
    }

    #[test]
    fn expired_deadline_interrupts_even_with_incumbent() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        let solver = BranchAndBound::new()
            .with_incumbent(vec![0.0], 0.0)
            .with_deadline(Some(Instant::now()));
        match solver.solve(&m) {
            Err(SolveError::Interrupted { nodes }) => assert!(nodes <= 1),
            other => panic!("expected interrupted, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_does_not_interrupt() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        let far = Instant::now() + std::time::Duration::from_secs(3_600);
        let s = BranchAndBound::new()
            .with_deadline(Some(far))
            .solve(&m)
            .expect("feasible");
        assert!((s.objective() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_incumbent_is_a_typed_error() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        let solver = BranchAndBound::new().with_incumbent(vec![0.0, 1.0], 0.0);
        match solver.solve(&m) {
            Err(SolveError::InvalidModel { detail }) => {
                assert!(detail.contains("incumbent"), "{detail}");
            }
            other => panic!("expected invalid-model error, got {other:?}"),
        }
    }

    #[test]
    fn incumbent_warm_start_preserved_when_optimal() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        m.set_objective(LinExpr::new() + (x, 1.0));
        // Incumbent x=0, obj=0 — already optimal.
        let s = BranchAndBound::new()
            .with_incumbent(vec![0.0], 0.0)
            .solve(&m)
            .expect("feasible");
        assert!((s.objective() - 0.0).abs() < 1e-9);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // matrix-style indices
    fn tiny_tsp_assignment_with_subtour_cuts() {
        // 4-city symmetric TSP via assignment + lazy subtour elimination.
        let d = [
            [0.0, 1.0, 9.0, 9.0],
            [1.0, 0.0, 1.0, 9.0],
            [9.0, 1.0, 0.0, 1.0],
            [1.0, 9.0, 1.0, 0.0],
        ];
        let mut m = Model::new();
        let mut var = vec![vec![None; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    var[i][j] = Some(m.add_binary(format!("e{i}{j}")));
                }
            }
        }
        let mut obj = LinExpr::new();
        for i in 0..4 {
            let out: Vec<_> = (0..4).filter_map(|j| var[i][j]).collect();
            let inn: Vec<_> = (0..4).filter_map(|j| var[j][i]).collect();
            m.add_constraint(LinExpr::sum(out), Relation::Eq, 1.0);
            m.add_constraint(LinExpr::sum(inn), Relation::Eq, 1.0);
            for j in 0..4 {
                if let Some(v) = var[i][j] {
                    obj += (v, d[i][j]);
                }
            }
        }
        m.set_objective(obj);
        let var_clone = var.clone();
        let s = BranchAndBound::new()
            .solve_with_lazy(&m, move |vals| {
                // Find a subtour; forbid it.
                let next = |i: usize| {
                    (0..4).find(|&j| {
                        var_clone[i][j]
                            .map(|v| vals[v.index()] > 0.5)
                            .unwrap_or(false)
                    })
                };
                let mut seen = [false; 4];
                let mut tour = vec![0usize];
                seen[0] = true;
                let mut cur = 0usize;
                while let Some(nx) = next(cur) {
                    if seen[nx] {
                        break;
                    }
                    seen[nx] = true;
                    tour.push(nx);
                    cur = nx;
                }
                if tour.len() == 4 {
                    return Vec::new();
                }
                // Cut: sum of edges inside `tour` <= |tour| - 1.
                let mut cut = LinExpr::new();
                for &i in &tour {
                    for &j in &tour {
                        if let Some(v) = var_clone[i][j] {
                            cut += (v, 1.0);
                        }
                    }
                }
                vec![(cut, Relation::Le, tour.len() as f64 - 1.0)]
            })
            .expect("feasible");
        // Optimal tour 0->1->2->3->0 = 1+1+1+1 = 4.
        assert!((s.objective() - 4.0).abs() < 1e-6, "obj={}", s.objective());
    }
}
