//! Pluggable LP backends for the branch-and-bound relaxation solves.
//!
//! The solver stack is structured around the [`LpBackend`] trait: the
//! branch-and-bound search asks a backend to solve each node's LP
//! relaxation, either cold ([`LpBackend::solve`]) or warm-started from a
//! parent node's [`Basis`] ([`LpBackend::solve_warm`]). Two backends
//! exist:
//!
//! * [`DenseBackend`] — the reference dense two-phase tableau from
//!   [`crate::simplex`]. It cannot reuse a basis; `solve_warm` falls back
//!   to a cold solve.
//! * [`crate::revised::RevisedSimplex`] — a revised bounded-variable
//!   simplex with native `lb ≤ x ≤ ub` handling and dual-simplex warm
//!   starts. This is the default ([`LpBackendKind::Revised`]).
//!
//! Observability attribution happens here, not inside the raw kernels:
//! each backend records `simplex.pivots` / `simplex.degenerate_pivots`
//! (aggregates) plus per-backend variants (`simplex.pivots.dense`,
//! `simplex.pivots.revised`), and one of `simplex.warm_starts` /
//! `simplex.cold_starts` per solve, so per-solve histograms and
//! warm-start rates stay meaningful regardless of which layer triggered
//! the solve.

use std::fmt;
use std::str::FromStr;

use crate::revised::RevisedSimplex;
use crate::simplex::{LpOutcome, LpProblem};

/// Which LP backend solves the branch-and-bound relaxations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LpBackendKind {
    /// Dense two-phase tableau (reference backend, no warm starts).
    Dense,
    /// Revised bounded-variable simplex with warm starts (default).
    #[default]
    Revised,
}

impl LpBackendKind {
    /// Stable lowercase name, also accepted by [`FromStr`].
    pub fn as_str(self) -> &'static str {
        match self {
            LpBackendKind::Dense => "dense",
            LpBackendKind::Revised => "revised",
        }
    }

    /// The backend implementation for this kind.
    pub fn backend(self) -> &'static dyn LpBackend {
        match self {
            LpBackendKind::Dense => &DenseBackend,
            LpBackendKind::Revised => &RevisedSimplex,
        }
    }
}

impl fmt::Display for LpBackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for LpBackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(LpBackendKind::Dense),
            "revised" => Ok(LpBackendKind::Revised),
            other => Err(format!(
                "unknown LP backend {other:?} (expected dense|revised)"
            )),
        }
    }
}

/// An opaque simplex basis snapshot, produced by an optimal solve and
/// consumed by [`LpBackend::solve_warm`] on a *bounds-modified* version
/// of the same problem (the branch-and-bound case: a child node fixes
/// one binary via `lb = ub`, rows unchanged except possibly appended
/// lazy cuts).
///
/// The snapshot pins the basic variable set and the lower/upper status
/// of every nonbasic variable; the adopting solver refactorizes the
/// basis matrix from that set, so no factorization state is carried.
#[derive(Debug, Clone)]
pub struct Basis {
    /// Structural variable count of the producing problem.
    pub(crate) num_vars: usize,
    /// Row count of the producing problem.
    pub(crate) num_rows: usize,
    /// Basic variable per row (structural `j < n`, logical `n + i`).
    pub(crate) basic: Vec<usize>,
    /// Nonbasic-at-upper flag per variable (`n + m` entries).
    pub(crate) at_upper: Vec<bool>,
}

impl Basis {
    /// Approximate memory footprint in bytes (struct plus owned
    /// buffers), for byte-budgeted caches that persist exported bases.
    /// Since the factorization was dropped from the snapshot (adoption
    /// refactorizes from the basic set), this is O(n + m), not O(m²).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.basic.len() * std::mem::size_of::<usize>()
            + self.at_upper.len()
    }
}

/// The result of one backend solve.
#[derive(Debug)]
pub struct BackendSolve {
    /// The LP outcome.
    pub outcome: LpOutcome,
    /// Basis snapshot for warm-starting descendants (optimal solves on
    /// basis-capable backends only; `None` from [`DenseBackend`]).
    pub basis: Option<Basis>,
    /// Whether a supplied warm basis was actually adopted.
    pub warmed: bool,
}

/// A pluggable LP solver for branch-and-bound relaxations.
pub trait LpBackend: fmt::Debug + Send + Sync {
    /// Stable lowercase backend name ("dense", "revised").
    fn name(&self) -> &'static str;

    /// Solves the LP from scratch.
    fn solve(&self, lp: &LpProblem) -> BackendSolve;

    /// Solves the LP starting from `warm`, a basis exported by a prior
    /// optimal solve of the same problem with (possibly) different
    /// variable bounds and (possibly) appended rows. Backends that
    /// cannot reuse a basis fall back to a cold solve and report
    /// `warmed: false`.
    fn solve_warm(&self, lp: &LpProblem, warm: &Basis) -> BackendSolve;
}

/// The dense two-phase tableau reference backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseBackend;

impl LpBackend for DenseBackend {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn solve(&self, lp: &LpProblem) -> BackendSolve {
        let mut pivots = 0usize;
        let mut degenerate = 0usize;
        let outcome = lp.solve_counted(&mut pivots, &mut degenerate);
        record_counters(
            "dense",
            SolveTelemetry {
                pivots,
                degenerate,
                warmed: false,
                refactorizations: 0,
                fill_in: 0,
            },
        );
        BackendSolve {
            outcome,
            basis: None,
            warmed: false,
        }
    }

    fn solve_warm(&self, lp: &LpProblem, _warm: &Basis) -> BackendSolve {
        // The tableau is rebuilt from scratch every time; a warm basis
        // cannot be exploited, so this counts as a cold start.
        self.solve(lp)
    }
}

/// Per-solve telemetry a backend hands to [`record_counters`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SolveTelemetry {
    /// Simplex pivots performed (bound flips included).
    pub pivots: usize,
    /// Pivots that made no primal/dual progress.
    pub degenerate: usize,
    /// Whether a supplied warm basis was adopted.
    pub warmed: bool,
    /// Basis refactorizations performed (0 for factorization-free
    /// backends like the dense tableau).
    pub refactorizations: usize,
    /// Worst factorization fill-in observed (factor nnz − basis nnz;
    /// 0 for dense representations).
    pub fill_in: usize,
}

/// Records per-solve observability counters on behalf of a backend.
///
/// Counter names are static, so per-backend attribution uses distinct
/// suffixed names rather than tags. The unsuffixed aggregates are part
/// of the public telemetry surface (pinned by the engine trace tests).
pub(crate) fn record_counters(backend: &'static str, t: SolveTelemetry) {
    if !xring_obs::enabled() {
        return;
    }
    xring_obs::counter("simplex.pivots", t.pivots as u64);
    xring_obs::counter("simplex.degenerate_pivots", t.degenerate as u64);
    let (pivots_name, warm_name, cold_name) = match backend {
        "dense" => (
            "simplex.pivots.dense",
            "simplex.warm_starts.dense",
            "simplex.cold_starts.dense",
        ),
        _ => (
            "simplex.pivots.revised",
            "simplex.warm_starts.revised",
            "simplex.cold_starts.revised",
        ),
    };
    xring_obs::counter(pivots_name, t.pivots as u64);
    if t.warmed {
        xring_obs::counter("simplex.warm_starts", 1);
        xring_obs::counter(warm_name, 1);
    } else {
        xring_obs::counter("simplex.cold_starts", 1);
        xring_obs::counter(cold_name, 1);
    }
    if t.refactorizations > 0 {
        xring_obs::counter("simplex.refactorizations", t.refactorizations as u64);
        if backend != "dense" {
            xring_obs::counter(
                "simplex.refactorizations.revised",
                t.refactorizations as u64,
            );
        }
        xring_obs::counter("lu.fill_in", t.fill_in as u64);
        xring_obs::record_hist("lu.fill_in", t.fill_in as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Relation;
    use crate::simplex::LpRow;

    fn toy_lp() -> LpProblem {
        // min -x - y  s.t.  x + 2y <= 4, 3x + y <= 6, 0 <= x,y <= 10
        LpProblem {
            num_vars: 2,
            lb: vec![0.0, 0.0],
            ub: vec![10.0, 10.0],
            objective: vec![-1.0, -1.0],
            rows: vec![
                LpRow {
                    terms: vec![(0, 1.0), (1, 2.0)],
                    relation: Relation::Le,
                    rhs: 4.0,
                },
                LpRow {
                    terms: vec![(0, 3.0), (1, 1.0)],
                    relation: Relation::Le,
                    rhs: 6.0,
                },
            ],
        }
    }

    #[test]
    fn backend_kind_round_trips_through_strings() {
        for kind in [LpBackendKind::Dense, LpBackendKind::Revised] {
            assert_eq!(kind.as_str().parse::<LpBackendKind>().unwrap(), kind);
        }
        assert!("simplex".parse::<LpBackendKind>().is_err());
        assert_eq!(LpBackendKind::default(), LpBackendKind::Revised);
    }

    #[test]
    fn backend_kind_names_match_backends() {
        for kind in [LpBackendKind::Dense, LpBackendKind::Revised] {
            assert_eq!(kind.backend().name(), kind.as_str());
        }
    }

    #[test]
    fn backend_dense_solves_but_exports_no_basis() {
        let lp = toy_lp();
        let solved = DenseBackend.solve(&lp);
        assert!(solved.basis.is_none());
        assert!(!solved.warmed);
        match solved.outcome {
            LpOutcome::Optimal(s) => assert!((s.objective + 14.0 / 5.0).abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn backend_dense_warm_solve_falls_back_to_cold() {
        let lp = toy_lp();
        let first = match LpBackendKind::Revised.backend().solve(&lp).basis {
            Some(b) => b,
            None => panic!("revised backend must export a basis"),
        };
        let solved = DenseBackend.solve_warm(&lp, &first);
        assert!(!solved.warmed, "dense cannot adopt a basis");
        assert!(matches!(solved.outcome, LpOutcome::Optimal(_)));
    }
}
