//! Property-based tests: the branch-and-bound solver against brute-force
//! enumeration on random small 0/1 programs.

use proptest::prelude::*;
use xring_milp::{BranchAndBound, LinExpr, Model, Relation, SolveError, VarId};

/// A randomly generated small binary program.
#[derive(Debug, Clone)]
struct RandomBip {
    num_vars: usize,
    /// (coefficients, relation, rhs) triples.
    constraints: Vec<(Vec<i8>, u8, i8)>,
    objective: Vec<i8>,
}

fn arb_bip() -> impl Strategy<Value = RandomBip> {
    (2usize..7).prop_flat_map(|num_vars| {
        let constraint = (prop::collection::vec(-3i8..=3, num_vars), 0u8..3, -4i8..=6);
        (
            prop::collection::vec(constraint, 0..5),
            prop::collection::vec(-5i8..=5, num_vars),
        )
            .prop_map(move |(constraints, objective)| RandomBip {
                num_vars,
                constraints,
                objective,
            })
    })
}

fn build(bip: &RandomBip) -> (Model, Vec<VarId>) {
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..bip.num_vars)
        .map(|i| m.add_binary(format!("x{i}")))
        .collect();
    for (coeffs, rel, rhs) in &bip.constraints {
        let expr = LinExpr::from_terms(coeffs.iter().zip(&vars).map(|(&c, &v)| (v, c as f64)));
        let rel = match rel {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        m.add_constraint(expr, rel, *rhs as f64);
    }
    m.set_objective(LinExpr::from_terms(
        bip.objective
            .iter()
            .zip(&vars)
            .map(|(&c, &v)| (v, c as f64)),
    ));
    (m, vars)
}

/// Brute force: best objective over all 2^n assignments, or None.
fn brute_force(bip: &RandomBip) -> Option<f64> {
    let n = bip.num_vars;
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
        let feasible = bip.constraints.iter().all(|(coeffs, rel, rhs)| {
            let lhs: f64 = coeffs.iter().zip(&x).map(|(&c, v)| c as f64 * v).sum();
            match rel {
                0 => lhs <= *rhs as f64 + 1e-9,
                1 => lhs >= *rhs as f64 - 1e-9,
                _ => (lhs - *rhs as f64).abs() < 1e-9,
            }
        });
        if feasible {
            let obj: f64 = bip
                .objective
                .iter()
                .zip(&x)
                .map(|(&c, v)| c as f64 * v)
                .sum();
            if best.map(|b| obj < b).unwrap_or(true) {
                best = Some(obj);
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bnb_matches_brute_force(bip in arb_bip()) {
        let (model, _) = build(&bip);
        let expected = brute_force(&bip);
        match (BranchAndBound::new().solve(&model), expected) {
            (Ok(sol), Some(best)) => {
                prop_assert!(
                    (sol.objective() - best).abs() < 1e-6,
                    "solver {} vs brute force {best}",
                    sol.objective()
                );
                // The returned assignment must itself be feasible.
                prop_assert!(model.violated_constraints(sol.values(), 1e-6).is_empty());
                // And binaries must be integral.
                for v in sol.values() {
                    prop_assert!((v - v.round()).abs() < 1e-6);
                }
            }
            (Err(SolveError::Infeasible), None) => {}
            (got, want) => prop_assert!(
                false,
                "solver disagreed with brute force: {got:?} vs {want:?}"
            ),
        }
    }

    #[test]
    fn warm_start_never_changes_the_optimum(bip in arb_bip()) {
        let (model, _) = build(&bip);
        let Some(best) = brute_force(&bip) else { return Ok(()) };
        // Use the brute-force optimum itself as the incumbent.
        let n = bip.num_vars;
        let mut incumbent = None;
        for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
            if model.violated_constraints(&x, 1e-9).is_empty() {
                let obj: f64 = bip
                    .objective
                    .iter()
                    .zip(&x)
                    .map(|(&c, v)| c as f64 * v)
                    .sum();
                if (obj - best).abs() < 1e-9 {
                    incumbent = Some(x);
                    break;
                }
            }
        }
        let incumbent = incumbent.expect("brute force found it");
        let sol = BranchAndBound::new()
            .with_incumbent(incumbent, best)
            .solve(&model)
            .expect("feasible");
        prop_assert!((sol.objective() - best).abs() < 1e-6);
    }

    #[test]
    fn lazy_cuts_respected_in_final_solution(bip in arb_bip()) {
        // Add a lazy "at most half the variables set" rule and verify the
        // final solution honours it.
        let (model, vars) = build(&bip);
        let cap = (bip.num_vars / 2) as f64;
        let vars2 = vars.clone();
        let result = BranchAndBound::new().solve_with_lazy(&model, move |values| {
            let set: f64 = vars2.iter().map(|v| values[v.index()]).sum();
            if set > cap + 1e-9 {
                vec![(LinExpr::sum(vars2.clone()), Relation::Le, cap)]
            } else {
                Vec::new()
            }
        });
        if let Ok(sol) = result {
            let set: f64 = vars.iter().map(|v| sol.value(*v)).sum();
            prop_assert!(set <= cap + 1e-6, "lazy cap violated: {set} > {cap}");
        }
    }
}
