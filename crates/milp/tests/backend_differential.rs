//! Differential suite: the dense reference backend and the revised
//! bounded-variable simplex must agree — same outcome class and, when
//! optimal, objectives within 1e-6 — on a large seeded population of
//! random bounded LPs covering feasible, infeasible, unbounded and
//! degenerate instances, plus warm-started child solves of the
//! branch-and-bound shape (one variable's bounds pinned).
//!
//! All test names contain `backend` so `cargo test -p xring-milp
//! backend` selects the whole suite.

use xring_milp::{
    DenseBackend, FactorizationKind, LpBackend, LpOutcome, LpProblem, LpSolution, Relation,
    RevisedConfig, RevisedSimplex,
};

/// Deterministic split-mix generator (local copy: `xring-milp` sits
/// below `xring-core`, which owns the shared implementation).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Half-integer in `[lo, hi]`.
    fn half(&mut self, lo: i64, hi: i64) -> f64 {
        let steps = ((hi - lo) * 2) as u64 + 1;
        lo as f64 + self.below(steps) as f64 * 0.5
    }
}

fn gen_lp(rng: &mut SplitMix64) -> LpProblem {
    let n = 1 + rng.below(6) as usize;
    let m = rng.below(9) as usize;
    let mut lb = Vec::with_capacity(n);
    let mut ub = Vec::with_capacity(n);
    let mut objective = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = rng.half(-2, 1);
        // Span mix: fixed (degenerate), unit/binary-like, wide, infinite.
        let span = match rng.below(10) {
            0 => 0.0,
            1..=4 => 1.0,
            5..=6 => 2.5,
            7 => 4.0,
            _ => f64::INFINITY,
        };
        lb.push(lo);
        ub.push(lo + span);
        objective.push(rng.half(-5, 5));
    }
    let mut rows: Vec<xring_milp::simplex::LpRow> = Vec::with_capacity(m);
    for _ in 0..m {
        if !rows.is_empty() && rng.below(10) < 2 {
            // Duplicate an earlier row verbatim: a cheap source of
            // primal degeneracy (ties in every ratio test).
            let i = rng.below(rows.len() as u64) as usize;
            let dup: xring_milp::simplex::LpRow = rows[i].clone();
            rows.push(dup);
            continue;
        }
        let nnz = 1 + rng.below(n.min(3) as u64) as usize;
        let mut terms = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let j = rng.below(n as u64) as usize;
            let mut c = rng.half(-4, 4);
            if c == 0.0 {
                c = 1.0;
            }
            terms.push((j, c));
        }
        let relation = match rng.below(3) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        rows.push(xring_milp::simplex::LpRow {
            terms,
            relation,
            rhs: rng.half(-6, 6),
        });
    }
    LpProblem {
        num_vars: n,
        lb,
        ub,
        objective,
        rows,
    }
}

fn outcome_class(o: &LpOutcome) -> &'static str {
    match o {
        LpOutcome::Optimal(_) => "optimal",
        LpOutcome::Infeasible => "infeasible",
        LpOutcome::Unbounded => "unbounded",
        LpOutcome::IterationLimit => "iteration-limit",
    }
}

/// Max constraint/bound violation of `s` on `lp`.
fn violation(lp: &LpProblem, s: &LpSolution) -> f64 {
    let mut worst = 0.0f64;
    for j in 0..lp.num_vars {
        worst = worst.max(lp.lb[j] - s.values[j]);
        worst = worst.max(s.values[j] - lp.ub[j]);
    }
    for r in &lp.rows {
        let lhs: f64 = r.terms.iter().map(|&(j, c)| c * s.values[j]).sum();
        let v = match r.relation {
            Relation::Le => lhs - r.rhs,
            Relation::Ge => r.rhs - lhs,
            Relation::Eq => (lhs - r.rhs).abs(),
        };
        worst = worst.max(v);
    }
    worst
}

fn check_agreement(lp: &LpProblem, seed_tag: u64) -> &'static str {
    let dense = DenseBackend.solve(lp).outcome;
    let revised = RevisedSimplex.solve(lp).outcome;
    let (dc, rc) = (outcome_class(&dense), outcome_class(&revised));
    assert_ne!(dc, "iteration-limit", "seed {seed_tag}: dense stalled");
    assert_ne!(rc, "iteration-limit", "seed {seed_tag}: revised stalled");
    assert_eq!(dc, rc, "seed {seed_tag}: outcome mismatch on {lp:?}");
    if let (LpOutcome::Optimal(d), LpOutcome::Optimal(r)) = (&dense, &revised) {
        assert!(
            (d.objective - r.objective).abs() < 1e-6,
            "seed {seed_tag}: dense {} vs revised {} on {lp:?}",
            d.objective,
            r.objective
        );
        assert!(
            violation(lp, d) < 1e-6,
            "seed {seed_tag}: dense solution infeasible"
        );
        assert!(
            violation(lp, r) < 1e-6,
            "seed {seed_tag}: revised solution infeasible"
        );
    }
    dc
}

/// Triple agreement: the dense tableau and the revised simplex under
/// both factorizations (dense eta file, sparse LU) must report the same
/// outcome class and, when optimal, objectives within 1e-6.
fn check_triple_agreement(lp: &LpProblem, seed_tag: u64) -> &'static str {
    let dense = DenseBackend.solve(lp).outcome;
    let dc = outcome_class(&dense);
    assert_ne!(dc, "iteration-limit", "seed {seed_tag}: dense stalled");
    for kind in [FactorizationKind::DenseEta, FactorizationKind::SparseLu] {
        let backend = RevisedConfig::default().with_factorization(kind);
        let revised = backend.solve(lp).outcome;
        let rc = outcome_class(&revised);
        assert_ne!(rc, "iteration-limit", "seed {seed_tag}: {kind} stalled");
        assert_eq!(dc, rc, "seed {seed_tag}: {kind} outcome mismatch on {lp:?}");
        if let (LpOutcome::Optimal(d), LpOutcome::Optimal(r)) = (&dense, &revised) {
            assert!(
                (d.objective - r.objective).abs() < 1e-6,
                "seed {seed_tag}: dense {} vs {kind} {} on {lp:?}",
                d.objective,
                r.objective
            );
            assert!(
                violation(lp, r) < 1e-6,
                "seed {seed_tag}: {kind} solution infeasible"
            );
        }
    }
    dc
}

#[test]
fn backend_agreement_on_1500_seeded_lps() {
    let mut rng = SplitMix64(0xD1FF_5EED_0001);
    let mut optimal = 0usize;
    let mut infeasible = 0usize;
    let mut unbounded = 0usize;
    for seed_tag in 0..1500u64 {
        let lp = gen_lp(&mut rng);
        match check_agreement(&lp, seed_tag) {
            "optimal" => optimal += 1,
            "infeasible" => infeasible += 1,
            _ => unbounded += 1,
        }
    }
    // The population must genuinely cover every outcome class.
    assert!(optimal >= 300, "only {optimal} optimal instances");
    assert!(infeasible >= 100, "only {infeasible} infeasible instances");
    assert!(unbounded >= 50, "only {unbounded} unbounded instances");
}

#[test]
fn backend_agreement_on_warm_started_children() {
    // Branch-and-bound shape: take an optimal parent, pin one
    // finite-span variable to a bound, and compare the revised
    // warm-started child against a dense cold solve of the same child.
    let mut rng = SplitMix64(0xD1FF_5EED_0002);
    let mut warm_children = 0usize;
    let mut seed_tag = 0u64;
    while warm_children < 1000 {
        seed_tag += 1;
        let lp = gen_lp(&mut rng);
        let parent = RevisedSimplex.solve(&lp);
        let Some(basis) = parent.basis else { continue };
        let finite: Vec<usize> = (0..lp.num_vars)
            .filter(|&j| (lp.ub[j] - lp.lb[j]).is_finite() && lp.ub[j] > lp.lb[j])
            .collect();
        if finite.is_empty() {
            continue;
        }
        let j = finite[rng.below(finite.len() as u64) as usize];
        let pin = if rng.below(2) == 0 {
            lp.lb[j]
        } else {
            lp.ub[j]
        };
        let mut child = lp.clone();
        child.lb[j] = pin;
        child.ub[j] = pin;
        let warm = RevisedSimplex.solve_warm(&child, &basis);
        assert!(warm.warmed, "seed {seed_tag}: basis rejected");
        let cold = DenseBackend.solve(&child).outcome;
        let (wc, cc) = (outcome_class(&warm.outcome), outcome_class(&cold));
        assert_ne!(wc, "iteration-limit", "seed {seed_tag}: warm stalled");
        assert_eq!(wc, cc, "seed {seed_tag}: warm/cold outcome mismatch");
        if let (LpOutcome::Optimal(w), LpOutcome::Optimal(c)) = (&warm.outcome, &cold) {
            assert!(
                (w.objective - c.objective).abs() < 1e-6,
                "seed {seed_tag}: warm {} vs cold {} on {child:?}",
                w.objective,
                c.objective
            );
            assert!(
                violation(&child, w) < 1e-6,
                "seed {seed_tag}: warm solution infeasible"
            );
        }
        warm_children += 1;
    }
}

#[test]
fn backend_agreement_on_degenerate_transportation_lps() {
    // Classic degenerate family: balanced transportation problems with
    // equal supplies/demands produce many ratio-test ties.
    let mut rng = SplitMix64(0xD1FF_5EED_0003);
    for seed_tag in 0..100u64 {
        let k = 2 + rng.below(3) as usize; // k x k transportation
        let nv = k * k;
        let mut rows = Vec::new();
        for i in 0..k {
            rows.push(xring_milp::simplex::LpRow {
                terms: (0..k).map(|j| (i * k + j, 1.0)).collect(),
                relation: Relation::Eq,
                rhs: 1.0,
            });
            rows.push(xring_milp::simplex::LpRow {
                terms: (0..k).map(|j| (j * k + i, 1.0)).collect(),
                relation: Relation::Eq,
                rhs: 1.0,
            });
        }
        let lp = LpProblem {
            num_vars: nv,
            lb: vec![0.0; nv],
            ub: vec![1.0; nv],
            objective: (0..nv).map(|_| rng.half(0, 9)).collect(),
            rows,
        };
        check_agreement(&lp, seed_tag);
    }
}

#[test]
fn backend_triple_agreement_on_seeded_lps() {
    // Dense tableau vs revised+dense-eta vs revised+sparse-lu on a
    // fresh seeded population spanning every outcome class.
    let mut rng = SplitMix64(0xD1FF_5EED_0004);
    let mut optimal = 0usize;
    for seed_tag in 0..400u64 {
        let lp = gen_lp(&mut rng);
        if check_triple_agreement(&lp, seed_tag) == "optimal" {
            optimal += 1;
        }
    }
    assert!(optimal >= 80, "only {optimal} optimal instances");
}

#[test]
fn backend_agreement_under_forced_refactorization_cadences() {
    // Tight refactorization intervals force the LU path through many
    // refresh cycles per solve; every cadence must reproduce the dense
    // reference objective exactly (within 1e-6).
    let mut rng = SplitMix64(0xD1FF_5EED_0005);
    for seed_tag in 0..150u64 {
        let lp = gen_lp(&mut rng);
        let dense = DenseBackend.solve(&lp).outcome;
        let dc = outcome_class(&dense);
        for interval in [1, 3, 7] {
            for kind in [FactorizationKind::DenseEta, FactorizationKind::SparseLu] {
                let backend = RevisedConfig::default()
                    .with_factorization(kind)
                    .with_refactor_interval(interval);
                let revised = backend.solve(&lp).outcome;
                assert_eq!(
                    dc,
                    outcome_class(&revised),
                    "seed {seed_tag}: {kind} interval {interval} outcome mismatch"
                );
                if let (LpOutcome::Optimal(d), LpOutcome::Optimal(r)) = (&dense, &revised) {
                    assert!(
                        (d.objective - r.objective).abs() < 1e-6,
                        "seed {seed_tag}: {kind} interval {interval}: dense {} vs revised {}",
                        d.objective,
                        r.objective
                    );
                }
            }
        }
    }
}

#[test]
fn backend_triple_agreement_on_badly_scaled_lps() {
    // Equilibration-hostile instances: scale each row by 10^{-3..3} and
    // each column by 10^{-3..3} (substituting y_j = s_j · x_j, which
    // compensates bounds and objective so the optimal value is
    // unchanged), giving coefficient magnitudes spanning ~1e±6.
    let mut rng = SplitMix64(0xD1FF_5EED_0006);
    let mut optimal = 0usize;
    for seed_tag in 0..200u64 {
        let mut lp = gen_lp(&mut rng);
        let col_scale: Vec<f64> = (0..lp.num_vars)
            .map(|_| 10f64.powi(rng.below(7) as i32 - 3))
            .collect();
        for (j, &s) in col_scale.iter().enumerate() {
            lp.lb[j] *= s;
            lp.ub[j] *= s;
            lp.objective[j] /= s;
        }
        for row in &mut lp.rows {
            let rs = 10f64.powi(rng.below(7) as i32 - 3);
            for (j, c) in &mut row.terms {
                *c = *c / col_scale[*j] * rs;
            }
            row.rhs *= rs;
        }
        if check_triple_agreement(&lp, seed_tag) == "optimal" {
            optimal += 1;
        }
    }
    assert!(optimal >= 40, "only {optimal} optimal instances");
}

#[test]
fn backend_triple_agreement_on_near_degenerate_lps() {
    // Transportation structure with rhs perturbed by ~1e-5: ratio tests
    // see near-ties instead of exact ties, the regime where eta-file
    // drift and pivot-tolerance differences would surface first. The
    // perturbation stays above the 1e-7 feasibility tolerance so every
    // backend resolves the same unique optimum.
    let mut rng = SplitMix64(0xD1FF_5EED_0007);
    for seed_tag in 0..60u64 {
        let k = 2 + rng.below(3) as usize;
        let nv = k * k;
        let mut rows = Vec::new();
        for i in 0..k {
            let eps = (rng.below(5) as f64 - 2.0) * 1e-5;
            rows.push(xring_milp::simplex::LpRow {
                terms: (0..k).map(|j| (i * k + j, 1.0)).collect(),
                relation: Relation::Le,
                rhs: 1.0 + eps,
            });
            rows.push(xring_milp::simplex::LpRow {
                terms: (0..k).map(|j| (j * k + i, 1.0)).collect(),
                relation: Relation::Ge,
                rhs: 1.0 - eps,
            });
        }
        let lp = LpProblem {
            num_vars: nv,
            lb: vec![0.0; nv],
            ub: vec![1.0; nv],
            objective: (0..nv).map(|_| rng.half(0, 9)).collect(),
            rows,
        };
        check_triple_agreement(&lp, seed_tag);
    }
}

#[test]
fn backend_agreement_survives_aborted_dual_feasibility_flips() {
    // Regression: a cold start flips nonbasic variables toward their
    // reduced-cost-preferred bound, then discovers a variable (here x3,
    // cost −3.5, ub = ∞) that cannot flip and falls back to primal
    // phase 1. The earlier flips must not leave `xb` stale, or the
    // solver wrongly reports infeasible. Found by the seeded sweep
    // (seed 13 of `backend_agreement_on_1500_seeded_lps`); also covers
    // duplicated terms for one variable within a row.
    use xring_milp::simplex::LpRow;
    let mk = |merge: bool| {
        let row2_terms = if merge {
            vec![(3usize, -2.5f64), (0, 3.0)]
        } else {
            vec![(3, 0.5), (3, -3.0), (0, 3.0)]
        };
        LpProblem {
            num_vars: 4,
            lb: vec![-2.0, 1.0, -2.0, -0.5],
            ub: vec![0.5, 2.0, 2.0, f64::INFINITY],
            objective: vec![-1.0, -3.5, 0.0, -3.5],
            rows: vec![
                LpRow {
                    terms: vec![(1, 1.0)],
                    relation: Relation::Le,
                    rhs: 3.5,
                },
                LpRow {
                    terms: row2_terms,
                    relation: Relation::Ge,
                    rhs: -2.0,
                },
                LpRow {
                    terms: vec![(3, 0.5)],
                    relation: Relation::Ge,
                    rhs: -3.5,
                },
                LpRow {
                    terms: vec![(1, 1.0)],
                    relation: Relation::Le,
                    rhs: 3.5,
                },
                LpRow {
                    terms: vec![(2, -1.0)],
                    relation: Relation::Le,
                    rhs: 5.5,
                },
                LpRow {
                    terms: vec![(2, -2.0), (0, 1.5)],
                    relation: Relation::Le,
                    rhs: -3.0,
                },
                LpRow {
                    terms: vec![(0, 1.5), (3, 0.5)],
                    relation: Relation::Le,
                    rhs: -0.5,
                },
            ],
        }
    };
    for merge in [true, false] {
        check_agreement(&mk(merge), merge as u64);
    }
}
