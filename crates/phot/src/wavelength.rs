//! WDM wavelength identifiers.

use std::fmt;

/// A WDM channel index (λ₀, λ₁, …).
///
/// WRONoC routing is wavelength-based: a signal keeps its wavelength for
/// its whole life, and two signals interfere only when they share one.
///
/// # Example
///
/// ```
/// use xring_phot::Wavelength;
///
/// let l0 = Wavelength::new(0);
/// assert_eq!(l0.to_string(), "λ0");
/// assert!(l0 < Wavelength::new(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Wavelength(u16);

impl Wavelength {
    /// Creates channel `index`.
    pub const fn new(index: u16) -> Self {
        Wavelength(index)
    }

    /// The channel index.
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Iterator over the first `count` channels.
    pub fn first(count: u16) -> impl Iterator<Item = Wavelength> {
        (0..count).map(Wavelength)
    }
}

impl fmt::Display for Wavelength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

impl From<u16> for Wavelength {
    fn from(i: u16) -> Self {
        Wavelength(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_iteration() {
        let all: Vec<_> = Wavelength::first(4).collect();
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(all[2].index(), 2);
    }
}
