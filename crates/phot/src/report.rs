//! The per-router evaluation report shared by all experiments.

use std::fmt;
use std::time::Duration;

/// Evaluation results for one synthesized router, matching the columns of
/// the paper's Tables I–III.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterReport {
    /// Label for printing (tool/method + router).
    pub label: String,
    /// `#wl`: number of wavelengths used.
    pub num_wavelengths: usize,
    /// `il_w` / `il*_w`: worst-case insertion loss in dB (PDN excluded,
    /// per the tables' definition of `il*`).
    pub worst_il_db: f64,
    /// `L`: path length of the worst-loss signal in mm.
    pub worst_path_len_mm: f64,
    /// `C`: crossings passed by the worst-loss signal.
    pub worst_path_crossings: usize,
    /// `P`: total laser power in W (`None` when no PDN is modelled).
    pub total_power_w: Option<f64>,
    /// `#s`: signals that suffer any first-order noise (`None` when noise
    /// is not evaluated).
    pub noisy_signal_count: Option<usize>,
    /// `SNR_w`: worst-case SNR in dB (`None` when no signal suffers noise,
    /// printed as "–" like the paper).
    pub worst_snr_db: Option<f64>,
    /// Total number of signals routed.
    pub signal_count: usize,
    /// `T`: synthesis/optimization time.
    pub synthesis_time: Duration,
}

impl RouterReport {
    /// Fraction of signals free of first-order noise (the paper's ">98%"
    /// headline metric), if noise was evaluated.
    pub fn noise_free_fraction(&self) -> Option<f64> {
        self.noisy_signal_count.map(|noisy| {
            if self.signal_count == 0 {
                1.0
            } else {
                1.0 - noisy as f64 / self.signal_count as f64
            }
        })
    }

    /// This report with [`synthesis_time`](Self::synthesis_time) zeroed:
    /// every other field is a pure function of the design and the
    /// evaluation parameters, so two normalized reports of the same
    /// design are identical. Used to assert determinism across serial,
    /// parallel and cached synthesis paths.
    pub fn normalized(&self) -> RouterReport {
        RouterReport {
            synthesis_time: Duration::ZERO,
            ..self.clone()
        }
    }

    /// Formats one table row: `#wl  il  L  C  P  #s  SNR  T`.
    pub fn table_row(&self) -> String {
        let p = self
            .total_power_w
            .map(|p| format!("{p:.3}"))
            .unwrap_or_else(|| "-".into());
        let s = self
            .noisy_signal_count
            .map(|s| s.to_string())
            .unwrap_or_else(|| "-".into());
        let snr = self
            .worst_snr_db
            .map(|s| format!("{s:.1}"))
            .unwrap_or_else(|| "-".into());
        format!(
            "{:<24} {:>4} {:>7.2} {:>7.1} {:>4} {:>8} {:>5} {:>7} {:>8.2}",
            self.label,
            self.num_wavelengths,
            self.worst_il_db,
            self.worst_path_len_mm,
            self.worst_path_crossings,
            p,
            s,
            snr,
            self.synthesis_time.as_secs_f64(),
        )
    }

    /// The table header matching [`table_row`](Self::table_row).
    pub fn table_header() -> String {
        format!(
            "{:<24} {:>4} {:>7} {:>7} {:>4} {:>8} {:>5} {:>7} {:>8}",
            "method/router", "#wl", "il_w", "L(mm)", "C", "P(W)", "#s", "SNR_w", "T(s)"
        )
    }
}

impl fmt::Display for RouterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RouterReport {
        RouterReport {
            label: "XRing".into(),
            num_wavelengths: 14,
            worst_il_db: 4.87,
            worst_path_len_mm: 13.6,
            worst_path_crossings: 0,
            total_power_w: Some(0.46),
            noisy_signal_count: Some(2),
            worst_snr_db: Some(35.9),
            signal_count: 240,
            synthesis_time: Duration::from_millis(120),
        }
    }

    #[test]
    fn noise_free_fraction_headline() {
        let r = sample();
        let f = r.noise_free_fraction().expect("noise evaluated");
        assert!(f > 0.98, "fraction = {f}");
    }

    #[test]
    fn table_row_formats_dashes_for_missing() {
        let mut r = sample();
        r.total_power_w = None;
        r.worst_snr_db = None;
        r.noisy_signal_count = None;
        let row = r.table_row();
        assert!(row.contains('-'));
        assert!(!row.is_empty());
    }

    #[test]
    fn display_matches_row() {
        let r = sample();
        assert_eq!(r.to_string(), r.table_row());
    }

    #[test]
    fn normalized_differs_only_in_time() {
        let r = sample();
        let n = r.normalized();
        assert_eq!(n.synthesis_time, Duration::ZERO);
        assert_eq!(
            n,
            RouterReport {
                synthesis_time: Duration::ZERO,
                ..r
            }
        );
    }

    #[test]
    fn zero_signals_is_fully_noise_free() {
        let mut r = sample();
        r.signal_count = 0;
        r.noisy_signal_count = Some(0);
        assert_eq!(r.noise_free_fraction(), Some(1.0));
    }
}
