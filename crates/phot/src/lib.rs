//! Photonic device and performance models for WRONoC routers.
//!
//! Implements Sec. II-B of the XRing paper (DATE 2023): the four insertion
//! loss mechanisms (propagation, drop, through, crossing — plus bends and
//! photodetectors), first-order crosstalk-noise bookkeeping, per-wavelength
//! laser power, and SNR.
//!
//! The crate is layout-agnostic: synthesis crates translate a realized
//! layout into per-signal [`PathElement`] traces and first-order
//! [`noise`] contributions; this crate turns those into dB/mW numbers.
//!
//! # Example
//!
//! ```
//! use xring_phot::{insertion_loss_db, LossParams, PathElement};
//!
//! let params = LossParams::default();
//! let trace = vec![
//!     PathElement::Propagate { length_um: 10_000 }, // 1 cm
//!     PathElement::Crossing,
//!     PathElement::MrrDrop,
//!     PathElement::Photodetector,
//! ];
//! let il = insertion_loss_db(&trace, &params);
//! assert!((il - (0.274 + 0.04 + 0.5 + 0.1)).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod elements;
pub mod noise;
pub mod params;
pub mod power;
pub mod report;
pub mod units;
pub mod wavelength;

pub use budget::LossBreakdown;
pub use elements::{insertion_loss_db, PathElement};
pub use noise::{NoiseLedger, SignalId};
pub use params::{CrosstalkParams, LossParams, PowerParams};
pub use power::{laser_power_mw, total_laser_power_w, PerWavelengthDemand};
pub use report::RouterReport;
pub use units::{db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm};
pub use wavelength::Wavelength;
