//! Signal path traces and the insertion-loss engine.

use crate::params::LossParams;
use crate::units::UM_PER_CM;

/// One loss-incurring element on a signal's path, in traversal order.
///
/// A synthesis backend converts the realized layout of each signal into a
/// trace of these elements; [`insertion_loss_db`] then implements the
/// "total insertion loss = sum of all losses" model of Sec. II-B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathElement {
    /// Travel `length_um` µm along a waveguide (propagation loss).
    Propagate {
        /// Distance travelled in µm.
        length_um: i64,
    },
    /// Pass through a waveguide crossing (crossing loss).
    Crossing,
    /// Couple into an on-resonance MRR — a drop event (drop loss). Occurs
    /// at CSEs/PSEs that redirect the signal and at the receiver MRR.
    MrrDrop,
    /// Pass an off-resonance MRR on the same waveguide (through loss).
    MrrThrough,
    /// Take a 90° waveguide bend (bend loss).
    Bend,
    /// Terminate at a photodetector (detector insertion loss).
    Photodetector,
    /// Pass through one level of a 50/50 Y-splitter in the PDN: 3.01 dB
    /// intrinsic split + excess loss.
    SplitterLevel,
}

/// Intrinsic loss of an ideal 50/50 power split, in dB.
pub const SPLIT_3DB: f64 = 3.010_299_956_639_812;

/// Computes the total insertion loss of a trace, in dB.
///
/// # Example
///
/// ```
/// use xring_phot::{insertion_loss_db, LossParams, PathElement};
///
/// let il = insertion_loss_db(
///     &[PathElement::Propagate { length_um: 20_000 }, PathElement::Bend],
///     &LossParams::default(),
/// );
/// assert!((il - (2.0 * 0.274 + 0.005)).abs() < 1e-12);
/// ```
pub fn insertion_loss_db(trace: &[PathElement], params: &LossParams) -> f64 {
    let mut il = 0.0;
    for e in trace {
        il += match *e {
            PathElement::Propagate { length_um } => {
                params.propagation_db_per_cm * (length_um as f64 / UM_PER_CM)
            }
            PathElement::Crossing => params.crossing_db,
            PathElement::MrrDrop => params.drop_db,
            PathElement::MrrThrough => params.through_db,
            PathElement::Bend => params.bend_db,
            PathElement::Photodetector => params.photodetector_db,
            PathElement::SplitterLevel => SPLIT_3DB + params.splitter_excess_db,
        };
    }
    il
}

/// Summary statistics of a trace that the paper's tables report alongside
/// insertion loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total propagation length in µm.
    pub length_um: i64,
    /// Number of waveguide crossings passed.
    pub crossings: usize,
    /// Number of off-resonance MRRs passed.
    pub mrr_throughs: usize,
    /// Number of drop events.
    pub mrr_drops: usize,
    /// Number of bends.
    pub bends: usize,
}

impl TraceStats {
    /// Computes the stats of a trace.
    pub fn of(trace: &[PathElement]) -> Self {
        let mut s = TraceStats::default();
        for e in trace {
            match *e {
                PathElement::Propagate { length_um } => s.length_um += length_um,
                PathElement::Crossing => s.crossings += 1,
                PathElement::MrrThrough => s.mrr_throughs += 1,
                PathElement::MrrDrop => s.mrr_drops += 1,
                PathElement::Bend => s.bends += 1,
                PathElement::Photodetector | PathElement::SplitterLevel => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_lossless() {
        assert_eq!(insertion_loss_db(&[], &LossParams::default()), 0.0);
    }

    #[test]
    fn each_element_contributes_its_parameter() {
        let p = LossParams::default();
        assert_eq!(
            insertion_loss_db(&[PathElement::Crossing], &p),
            p.crossing_db
        );
        assert_eq!(insertion_loss_db(&[PathElement::MrrDrop], &p), p.drop_db);
        assert_eq!(
            insertion_loss_db(&[PathElement::MrrThrough], &p),
            p.through_db
        );
        assert_eq!(insertion_loss_db(&[PathElement::Bend], &p), p.bend_db);
        assert_eq!(
            insertion_loss_db(&[PathElement::Photodetector], &p),
            p.photodetector_db
        );
        let split = insertion_loss_db(&[PathElement::SplitterLevel], &p);
        assert!((split - (SPLIT_3DB + p.splitter_excess_db)).abs() < 1e-12);
    }

    #[test]
    fn propagation_scales_with_length() {
        let p = LossParams::default();
        let one_cm = insertion_loss_db(&[PathElement::Propagate { length_um: 10_000 }], &p);
        let two_cm = insertion_loss_db(&[PathElement::Propagate { length_um: 20_000 }], &p);
        assert!((two_cm - 2.0 * one_cm).abs() < 1e-12);
        assert!((one_cm - 0.274).abs() < 1e-12);
    }

    #[test]
    fn loss_is_additive_over_concatenation() {
        let p = LossParams::default();
        let a = vec![
            PathElement::Propagate { length_um: 5_000 },
            PathElement::Crossing,
        ];
        let b = vec![PathElement::MrrDrop, PathElement::Photodetector];
        let mut ab = a.clone();
        ab.extend(b.iter().copied());
        let sum = insertion_loss_db(&a, &p) + insertion_loss_db(&b, &p);
        assert!((insertion_loss_db(&ab, &p) - sum).abs() < 1e-12);
    }

    #[test]
    fn trace_stats_counts() {
        let t = vec![
            PathElement::Propagate { length_um: 100 },
            PathElement::Propagate { length_um: 200 },
            PathElement::Crossing,
            PathElement::Crossing,
            PathElement::MrrThrough,
            PathElement::MrrDrop,
            PathElement::Bend,
            PathElement::Photodetector,
        ];
        let s = TraceStats::of(&t);
        assert_eq!(s.length_um, 300);
        assert_eq!(s.crossings, 2);
        assert_eq!(s.mrr_throughs, 1);
        assert_eq!(s.mrr_drops, 1);
        assert_eq!(s.bends, 1);
    }
}
