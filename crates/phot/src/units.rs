//! Power/loss unit conversions.
//!
//! All losses are decibels (dB), absolute powers are milliwatts (mW) or
//! dBm, geometric lengths arrive in µm and are converted to cm inside the
//! propagation-loss computation.

/// Converts a dB ratio to a linear power ratio.
///
/// # Example
///
/// ```
/// use xring_phot::db_to_linear;
/// assert!((db_to_linear(3.0103) - 2.0).abs() < 1e-4);
/// ```
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to dB.
///
/// # Panics
///
/// Panics if `ratio` is not positive.
pub fn linear_to_db(ratio: f64) -> f64 {
    assert!(ratio > 0.0, "power ratio must be positive, got {ratio}");
    10.0 * ratio.log10()
}

/// Converts an absolute power in dBm to mW.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts an absolute power in mW to dBm.
///
/// # Panics
///
/// Panics if `mw` is not positive.
pub fn mw_to_dbm(mw: f64) -> f64 {
    assert!(mw > 0.0, "power must be positive, got {mw}");
    10.0 * mw.log10()
}

/// Micrometres per centimetre (length-unit bridge for propagation loss).
pub const UM_PER_CM: f64 = 10_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        for db in [-40.0, -3.0, 0.0, 2.5, 17.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-12);
        }
        for mw in [0.001, 1.0, 250.0] {
            assert!((dbm_to_mw(mw_to_dbm(mw)) - mw).abs() < 1e-9 * mw.max(1.0));
        }
    }

    #[test]
    fn zero_db_is_unity() {
        assert_eq!(db_to_linear(0.0), 1.0);
        assert_eq!(mw_to_dbm(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_ratio_panics() {
        let _ = linear_to_db(-1.0);
    }
}
