//! Loss, crosstalk and power parameter sets.
//!
//! Defaults follow the parameter sources the paper cites: insertion-loss
//! values from Proton+ \[15\] / ORing \[17\], crosstalk coefficients from
//! Nikdast et al. \[14\], receiver sensitivity from \[15\].

/// Per-mechanism insertion-loss parameters (all dB except propagation).
#[derive(Debug, Clone, PartialEq)]
pub struct LossParams {
    /// Waveguide propagation loss in dB/cm (default 0.274).
    pub propagation_db_per_cm: f64,
    /// Loss per waveguide crossing in dB (default 0.04).
    pub crossing_db: f64,
    /// Loss when a signal is coupled into an on-resonance MRR (drop port),
    /// in dB (default 0.5).
    pub drop_db: f64,
    /// Loss when a signal passes an off-resonance MRR (through port), in
    /// dB (default 0.005).
    pub through_db: f64,
    /// Loss per 90° waveguide bend in dB (default 0.005).
    pub bend_db: f64,
    /// Photodetector insertion loss in dB (default 0.1).
    pub photodetector_db: f64,
    /// Excess (non-splitting) loss of a Y-splitter in dB (default 0.1).
    /// The intrinsic 3.01 dB of a 50/50 split is added separately per
    /// traversed splitter level.
    pub splitter_excess_db: f64,
}

impl Default for LossParams {
    fn default() -> Self {
        LossParams {
            propagation_db_per_cm: 0.274,
            crossing_db: 0.04,
            drop_db: 0.5,
            through_db: 0.005,
            bend_db: 0.005,
            photodetector_db: 0.1,
            splitter_excess_db: 0.1,
        }
    }
}

impl LossParams {
    /// The parameter set used in the paper's Table I experiments
    /// (values as applied by Proton+ \[15\]).
    pub fn proton_plus() -> Self {
        Self::default()
    }

    /// The parameter set of the ORing TVLSI paper \[17\] (used in Tables II
    /// and III): slightly higher crossing loss, same propagation loss.
    pub fn oring() -> Self {
        LossParams {
            crossing_db: 0.05,
            ..Self::default()
        }
    }
}

/// First-order crosstalk coefficients (fraction of power leaked, in dB —
/// all values are negative).
#[derive(Debug, Clone, PartialEq)]
pub struct CrosstalkParams {
    /// Power leaked into the crossing waveguide when a signal passes a
    /// waveguide crossing (default −40 dB, Nikdast et al. \[14\]).
    pub crossing_leak_db: f64,
    /// Power leaked into an off-resonance MRR when a signal passes its
    /// through port (intraband crosstalk, default −25 dB \[14\]).
    pub through_leak_db: f64,
    /// Power continuing past an on-resonance MRR instead of being fully
    /// dropped (default −20 dB \[14\]).
    pub drop_leak_db: f64,
}

impl Default for CrosstalkParams {
    fn default() -> Self {
        CrosstalkParams {
            crossing_leak_db: -40.0,
            through_leak_db: -25.0,
            drop_leak_db: -20.0,
        }
    }
}

impl CrosstalkParams {
    /// The coefficient set of Nikdast et al. \[14\], as used by the paper.
    pub fn nikdast() -> Self {
        Self::default()
    }
}

/// Laser-power model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerParams {
    /// Receiver (photodetector) sensitivity in dBm (default −26.0, \[15\]).
    /// The minimum optical power a detector needs to close the link.
    pub sensitivity_dbm: f64,
    /// Wall-plug efficiency of the laser source as a fraction (default
    /// 1.0 = report optical power; set <1.0 to report electrical power).
    pub laser_efficiency: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            sensitivity_dbm: -26.0,
            laser_efficiency: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_literature_values() {
        let l = LossParams::default();
        assert_eq!(l.propagation_db_per_cm, 0.274);
        assert_eq!(l.crossing_db, 0.04);
        assert_eq!(l.drop_db, 0.5);
        let x = CrosstalkParams::default();
        assert!(x.crossing_leak_db < 0.0 && x.through_leak_db < 0.0 && x.drop_leak_db < 0.0);
        let p = PowerParams::default();
        assert_eq!(p.sensitivity_dbm, -26.0);
    }

    #[test]
    fn oring_preset_differs_in_crossing_loss() {
        assert!(LossParams::oring().crossing_db > LossParams::proton_plus().crossing_db);
    }
}
