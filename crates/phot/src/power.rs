//! Laser-power model.
//!
//! Sec. II-B of the paper: the laser power of a wavelength λₓ is
//! `P^λₓ = 10^((il_w^λₓ + S)/10)` (mW), where `il_w^λₓ` is the worst-case
//! insertion loss among signals on λₓ — including the PDN losses up to the
//! sender when a PDN is modelled — and `S` is the receiver sensitivity in
//! dBm. Total laser power sums over wavelengths (and over independent
//! laser sources, which here means per-wavelength demands already merged
//! by `max` by the caller).

use crate::params::PowerParams;
use crate::units::dbm_to_mw;
use crate::wavelength::Wavelength;
use std::collections::BTreeMap;

/// Worst-case end-to-end loss per wavelength: PDN loss to the sender plus
/// data-path insertion loss to the receiver.
#[derive(Debug, Clone, Default)]
pub struct PerWavelengthDemand {
    worst_total_il_db: BTreeMap<Wavelength, f64>,
}

impl PerWavelengthDemand {
    /// An empty demand table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a signal on `wl` whose end-to-end loss (laser → sender →
    /// detector) is `total_il_db`; keeps the per-wavelength maximum.
    pub fn register(&mut self, wl: Wavelength, total_il_db: f64) {
        let entry = self
            .worst_total_il_db
            .entry(wl)
            .or_insert(f64::NEG_INFINITY);
        if total_il_db > *entry {
            *entry = total_il_db;
        }
    }

    /// Worst registered loss for `wl`, if any signal uses it.
    pub fn worst_il_db(&self, wl: Wavelength) -> Option<f64> {
        self.worst_total_il_db.get(&wl).copied()
    }

    /// Number of wavelengths with at least one registered signal.
    pub fn wavelength_count(&self) -> usize {
        self.worst_total_il_db.len()
    }

    /// Iterates `(wavelength, worst loss)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Wavelength, f64)> + '_ {
        self.worst_total_il_db.iter().map(|(w, il)| (*w, *il))
    }
}

/// Laser power (mW) required for one wavelength with worst-case loss
/// `il_db`, per the paper's formula.
///
/// # Example
///
/// ```
/// use xring_phot::{laser_power_mw, PowerParams};
///
/// let p = laser_power_mw(6.0, &PowerParams::default());
/// // 10^((6 - 26)/10) = 0.01 mW
/// assert!((p - 0.01).abs() < 1e-12);
/// ```
pub fn laser_power_mw(il_db: f64, params: &PowerParams) -> f64 {
    dbm_to_mw(il_db + params.sensitivity_dbm) / params.laser_efficiency
}

/// Total laser power in **watts** for a demand table.
pub fn total_laser_power_w(demand: &PerWavelengthDemand, params: &PowerParams) -> f64 {
    demand
        .iter()
        .map(|(_, il)| laser_power_mw(il, params))
        .sum::<f64>()
        / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_grows_exponentially_with_loss() {
        let p = PowerParams::default();
        let a = laser_power_mw(10.0, &p);
        let b = laser_power_mw(20.0, &p);
        assert!((b / a - 10.0).abs() < 1e-9);
    }

    #[test]
    fn demand_keeps_worst_loss() {
        let mut d = PerWavelengthDemand::new();
        let wl = Wavelength::new(0);
        d.register(wl, 3.0);
        d.register(wl, 7.5);
        d.register(wl, 5.0);
        assert_eq!(d.worst_il_db(wl), Some(7.5));
        assert_eq!(d.wavelength_count(), 1);
    }

    #[test]
    fn total_power_sums_over_wavelengths() {
        let params = PowerParams::default();
        let mut d = PerWavelengthDemand::new();
        d.register(Wavelength::new(0), 6.0);
        d.register(Wavelength::new(1), 6.0);
        let total = total_laser_power_w(&d, &params);
        let single = laser_power_mw(6.0, &params) / 1_000.0;
        assert!((total - 2.0 * single).abs() < 1e-15);
    }

    #[test]
    fn efficiency_scales_power() {
        let optical = laser_power_mw(5.0, &PowerParams::default());
        let electrical = laser_power_mw(
            5.0,
            &PowerParams {
                laser_efficiency: 0.1,
                ..PowerParams::default()
            },
        );
        assert!((electrical / optical - 10.0).abs() < 1e-9);
    }
}
