//! Per-mechanism insertion-loss budgets.
//!
//! Decomposes a signal's total insertion loss into the contributions of
//! each physical mechanism — the standard way photonic designers review
//! where a link budget goes.

use crate::elements::{PathElement, SPLIT_3DB};
use crate::params::LossParams;
use crate::units::UM_PER_CM;
use std::fmt;

/// The insertion loss of one trace, split by mechanism (all dB).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LossBreakdown {
    /// Waveguide propagation.
    pub propagation_db: f64,
    /// Waveguide crossings.
    pub crossing_db: f64,
    /// On-resonance MRR drops.
    pub drop_db: f64,
    /// Off-resonance MRR passes.
    pub through_db: f64,
    /// 90° bends.
    pub bend_db: f64,
    /// Photodetector insertion.
    pub photodetector_db: f64,
    /// PDN splitter levels (3 dB + excess each).
    pub splitter_db: f64,
}

impl LossBreakdown {
    /// Computes the breakdown of a trace.
    ///
    /// # Example
    ///
    /// ```
    /// use xring_phot::{budget::LossBreakdown, LossParams, PathElement};
    ///
    /// let b = LossBreakdown::of(
    ///     &[
    ///         PathElement::Propagate { length_um: 10_000 },
    ///         PathElement::Crossing,
    ///         PathElement::MrrDrop,
    ///     ],
    ///     &LossParams::default(),
    /// );
    /// assert!((b.propagation_db - 0.274).abs() < 1e-12);
    /// assert!((b.total_db() - (0.274 + 0.04 + 0.5)).abs() < 1e-12);
    /// ```
    pub fn of(trace: &[PathElement], params: &LossParams) -> Self {
        let mut b = LossBreakdown::default();
        for e in trace {
            match *e {
                PathElement::Propagate { length_um } => {
                    b.propagation_db +=
                        params.propagation_db_per_cm * (length_um as f64 / UM_PER_CM);
                }
                PathElement::Crossing => b.crossing_db += params.crossing_db,
                PathElement::MrrDrop => b.drop_db += params.drop_db,
                PathElement::MrrThrough => b.through_db += params.through_db,
                PathElement::Bend => b.bend_db += params.bend_db,
                PathElement::Photodetector => b.photodetector_db += params.photodetector_db,
                PathElement::SplitterLevel => {
                    b.splitter_db += SPLIT_3DB + params.splitter_excess_db;
                }
            }
        }
        b
    }

    /// Sum of all mechanisms — equal to
    /// [`insertion_loss_db`](crate::insertion_loss_db) for the same trace.
    pub fn total_db(&self) -> f64 {
        self.propagation_db
            + self.crossing_db
            + self.drop_db
            + self.through_db
            + self.bend_db
            + self.photodetector_db
            + self.splitter_db
    }

    /// The dominant mechanism and its share of the total (0 when the
    /// trace is lossless).
    pub fn dominant(&self) -> (&'static str, f64) {
        let entries = [
            ("propagation", self.propagation_db),
            ("crossing", self.crossing_db),
            ("drop", self.drop_db),
            ("through", self.through_db),
            ("bend", self.bend_db),
            ("photodetector", self.photodetector_db),
            ("splitter", self.splitter_db),
        ];
        let total = self.total_db();
        let &(name, value) = entries
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("losses are never NaN"))
            .expect("non-empty entries");
        if total <= 0.0 {
            (name, 0.0)
        } else {
            (name, value / total)
        }
    }
}

impl fmt::Display for LossBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prop {:.3} + cross {:.3} + drop {:.3} + through {:.3} + bend {:.3} + pd {:.3} + split {:.3} = {:.3} dB",
            self.propagation_db,
            self.crossing_db,
            self.drop_db,
            self.through_db,
            self.bend_db,
            self.photodetector_db,
            self.splitter_db,
            self.total_db()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion_loss_db;

    fn sample_trace() -> Vec<PathElement> {
        vec![
            PathElement::Propagate { length_um: 25_000 },
            PathElement::Bend,
            PathElement::Bend,
            PathElement::Crossing,
            PathElement::MrrThrough,
            PathElement::MrrThrough,
            PathElement::MrrThrough,
            PathElement::MrrDrop,
            PathElement::Photodetector,
        ]
    }

    #[test]
    fn breakdown_total_matches_insertion_loss() {
        let p = LossParams::default();
        let t = sample_trace();
        let b = LossBreakdown::of(&t, &p);
        assert!((b.total_db() - insertion_loss_db(&t, &p)).abs() < 1e-12);
    }

    #[test]
    fn dominant_mechanism_for_long_paths_is_propagation() {
        let p = LossParams::default();
        let t = vec![
            PathElement::Propagate { length_um: 400_000 }, // 40 cm
            PathElement::MrrDrop,
        ];
        let (name, share) = LossBreakdown::of(&t, &p).dominant();
        assert_eq!(name, "propagation");
        assert!(share > 0.9);
    }

    #[test]
    fn dominant_of_empty_trace_is_zero_share() {
        let (_, share) = LossBreakdown::of(&[], &LossParams::default()).dominant();
        assert_eq!(share, 0.0);
    }

    #[test]
    fn display_contains_total() {
        let p = LossParams::default();
        let b = LossBreakdown::of(&sample_trace(), &p);
        let s = b.to_string();
        assert!(s.contains("dB"));
        assert!(s.contains("prop"));
    }
}
