//! First-order crosstalk-noise bookkeeping and SNR.
//!
//! Noise is generated when a *signal* passes a crossing or an MRR (the
//! paper ignores noise-generated noise — second order — as its power is
//! negligible, Sec. II-B). A synthesis backend decides *where* each leak
//! goes and how much it is attenuated before reaching a photodetector on
//! the same wavelength; this module only sums powers and computes SNRs.
//!
//! All powers are *relative* to a common 0 dBm launch power per signal.
//! Because first-order noise at a detector comes only from signals on the
//! **same wavelength** — which share the same per-wavelength launch power —
//! SNR values are independent of the actual launch power, so relative
//! bookkeeping is exact.

use crate::units::db_to_linear;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a signal (sender→receiver pair), assigned by the
/// synthesis backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub u32);

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Accumulates first-order noise contributions per victim signal.
///
/// # Example
///
/// ```
/// use xring_phot::{NoiseLedger, SignalId};
///
/// let mut ledger = NoiseLedger::new();
/// let victim = SignalId(0);
/// ledger.add_contribution(victim, -45.0); // one leak, −45 dB(rel)
/// let snr = ledger.snr_db(victim, 5.0).expect("victim has noise");
/// // signal at −5 dB(rel), noise at −45 dB(rel) → SNR = 40 dB
/// assert!((snr - 40.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NoiseLedger {
    /// Linear (mW, relative to 1 mW launch) noise sums per victim.
    noise_linear: HashMap<SignalId, f64>,
    /// Number of contributions per victim (diagnostics).
    contributions: HashMap<SignalId, usize>,
}

impl NoiseLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one first-order noise contribution reaching `victim`'s
    /// photodetector, with total path gain `power_rel_db` (launch power of
    /// the aggressor = 0 dB; the value is negative: leak coefficient plus
    /// all insertion losses en route).
    pub fn add_contribution(&mut self, victim: SignalId, power_rel_db: f64) {
        *self.noise_linear.entry(victim).or_insert(0.0) += db_to_linear(power_rel_db);
        *self.contributions.entry(victim).or_insert(0) += 1;
    }

    /// Total relative noise power at `victim`'s detector in dB, or `None`
    /// if the victim receives no first-order noise.
    pub fn noise_rel_db(&self, victim: SignalId) -> Option<f64> {
        self.noise_linear.get(&victim).map(|lin| 10.0 * lin.log10())
    }

    /// SNR of `victim` in dB, given the insertion loss of its own data
    /// path (`signal_il_db`, so the signal arrives at −`signal_il_db`
    /// dB(rel)). Returns `None` when the victim has no noise (its SNR is
    /// unbounded; the paper prints "–" in that case).
    pub fn snr_db(&self, victim: SignalId, signal_il_db: f64) -> Option<f64> {
        self.noise_rel_db(victim)
            .map(|noise_db| -signal_il_db - noise_db)
    }

    /// Number of distinct signals that receive any first-order noise
    /// (column `#s` of Tables II/III).
    pub fn affected_signal_count(&self) -> usize {
        self.noise_linear.len()
    }

    /// Number of recorded contributions for `victim`.
    pub fn contribution_count(&self, victim: SignalId) -> usize {
        self.contributions.get(&victim).copied().unwrap_or(0)
    }

    /// Worst (minimum) SNR over `signals`, given each signal's insertion
    /// loss. Returns `None` if no listed signal suffers noise.
    pub fn worst_snr_db<'a, I>(&self, signals: I) -> Option<f64>
    where
        I: IntoIterator<Item = (&'a SignalId, &'a f64)>,
    {
        signals
            .into_iter()
            .filter_map(|(id, il)| self.snr_db(*id, *il))
            .min_by(|a, b| a.partial_cmp(b).expect("SNR is never NaN"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_reports_no_noise() {
        let ledger = NoiseLedger::new();
        assert_eq!(ledger.affected_signal_count(), 0);
        assert_eq!(ledger.noise_rel_db(SignalId(0)), None);
        assert_eq!(ledger.snr_db(SignalId(0), 3.0), None);
    }

    #[test]
    fn contributions_sum_linearly() {
        let mut ledger = NoiseLedger::new();
        let v = SignalId(7);
        ledger.add_contribution(v, -43.0103); // ≈ half of -40 dB
        ledger.add_contribution(v, -43.0103);
        let total = ledger.noise_rel_db(v).expect("has noise");
        assert!((total + 40.0).abs() < 1e-3, "total = {total}");
        assert_eq!(ledger.contribution_count(v), 2);
        assert_eq!(ledger.affected_signal_count(), 1);
    }

    #[test]
    fn snr_matches_formula() {
        // SNR = 10 log10(P_sig / P_noise) = (sig dB) − (noise dB).
        let mut ledger = NoiseLedger::new();
        let v = SignalId(1);
        ledger.add_contribution(v, -50.0);
        let snr = ledger.snr_db(v, 4.0).expect("has noise");
        assert!((snr - 46.0).abs() < 1e-9);
    }

    #[test]
    fn worst_snr_selects_minimum() {
        let mut ledger = NoiseLedger::new();
        ledger.add_contribution(SignalId(0), -50.0);
        ledger.add_contribution(SignalId(1), -30.0);
        let ils: HashMap<SignalId, f64> =
            [(SignalId(0), 2.0), (SignalId(1), 2.0), (SignalId(2), 9.0)].into();
        let worst = ledger.worst_snr_db(ils.iter()).expect("some noise");
        assert!((worst - 28.0).abs() < 1e-9);
    }

    #[test]
    fn more_noise_means_lower_snr() {
        let mut a = NoiseLedger::new();
        a.add_contribution(SignalId(0), -45.0);
        let mut b = a.clone();
        b.add_contribution(SignalId(0), -45.0);
        let snr_a = a.snr_db(SignalId(0), 1.0).expect("noise");
        let snr_b = b.snr_db(SignalId(0), 1.0).expect("noise");
        assert!(snr_b < snr_a);
    }
}
