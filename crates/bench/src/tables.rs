//! Row generators for every table of the paper, plus ablations.
//!
//! Every table/ablation function takes an [`Engine`]: the per-`#wl`
//! sweeps run on its worker pool, and whole-pipeline rows go through its
//! design cache (so e.g. `ablation all` synthesizes shared
//! configurations once).

use std::time::{Duration, Instant};
use xring_baselines::ornoc::ornoc_map;
use xring_baselines::ring_common::realize_ring_baseline;
use xring_baselines::{crossbar_report, synthesize_oring, CrossbarKind, LayoutStyle};
use xring_core::{
    design_pdn, map_signals, open_rings, plan_shortcuts, LpBackendKind, NetworkSpec, RingAlgorithm,
    RingBuilder, RingCycle, RingSpacing, RingStats, SynthesisError, SynthesisOptions,
};
use xring_engine::{Engine, JobError, SynthesisJob};
use xring_geom::Point;
use xring_phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};

/// Runs `count` fallible report closures on the engine's worker pool,
/// dropping failed candidates exactly like the serial
/// `filter_map(|..| ...ok())` sweeps did. Panics inside a task resume
/// here.
fn sweep_reports<F>(engine: &Engine, count: usize, task: F) -> Vec<RouterReport>
where
    F: Fn(usize) -> Result<RouterReport, SynthesisError> + Sync,
{
    engine
        .run_tasks(count, |i| task(i).map_err(JobError::from))
        .into_iter()
        .filter_map(|r| match r {
            Ok(report) => Some(report),
            Err(JobError::Panicked(msg)) => panic!("sweep task panicked: {msg}"),
            Err(_) => None,
        })
        .collect()
}

/// Synthesis options for the paper's tables. The dense reference LP
/// kernel is pinned: the psion floorplans admit several equal-length
/// optimal ring tours, the published IL/SNR figures are tour-sensitive,
/// and the tie-break depends on the kernel's pivoting — so the tables
/// stay on the kernel they were recorded with (objective-level backend
/// equivalence is covered by the differential suite instead).
fn paper_options(wl: usize) -> SynthesisOptions {
    SynthesisOptions::with_wavelengths(wl).with_lp_backend(LpBackendKind::Dense)
}

/// Runs whole-pipeline jobs as an engine batch and unwraps the reports,
/// propagating the first failure in job order.
fn batch_reports(
    engine: &Engine,
    jobs: Vec<SynthesisJob>,
) -> Result<Vec<RouterReport>, SynthesisError> {
    engine
        .run_batch(jobs)
        .outcomes
        .into_iter()
        .map(|outcome| match outcome {
            Ok(out) => Ok(out.report),
            Err(JobError::Synthesis(e)) => Err(e),
            Err(JobError::DeadlineExceeded) => Err(SynthesisError::DeadlineExceeded),
            Err(JobError::Panicked(msg)) => panic!("batch job panicked: {msg}"),
        })
        .collect()
}

/// A network with its (expensive, `#wl`-independent) MILP ring, shared
/// between XRing and ORNoC exactly as the paper does in Sec. IV-B.
#[derive(Debug, Clone)]
pub struct RingContext {
    /// The network.
    pub net: NetworkSpec,
    /// The MILP-constructed ring.
    pub cycle: RingCycle,
    /// Time spent in ring construction.
    pub ring_time: Duration,
    /// Construction statistics.
    pub stats: RingStats,
}

impl RingContext {
    /// Builds the MILP ring for `net`.
    ///
    /// # Errors
    ///
    /// Propagates MILP failures.
    pub fn milp(net: NetworkSpec) -> Result<Self, SynthesisError> {
        let t0 = Instant::now();
        // Dense kernel pinned for the same reason as [`paper_options`].
        let out = RingBuilder::new()
            .with_lp_backend(LpBackendKind::Dense)
            .build(&net)?;
        Ok(RingContext {
            net,
            cycle: out.cycle,
            ring_time: t0.elapsed(),
            stats: out.stats,
        })
    }
}

/// Selection criterion for the `#wl` sweep ("we vary the settings of #wl
/// and pick the one with …", Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickBy {
    /// Minimum worst-case insertion loss (Table I).
    MinIl,
    /// Minimum total laser power (Tables II/III).
    MinPower,
    /// Maximum worst-case SNR, treating noise-free designs as unbounded
    /// SNR (Tables II/III).
    MaxSnr,
}

/// Picks the best report of a sweep under `by`.
pub fn pick_best(reports: Vec<RouterReport>, by: PickBy) -> RouterReport {
    assert!(!reports.is_empty(), "sweep produced no candidates");
    reports
        .into_iter()
        .min_by(|a, b| {
            let key = |r: &RouterReport| match by {
                PickBy::MinIl => r.worst_il_db,
                PickBy::MinPower => r.total_power_w.unwrap_or(f64::INFINITY),
                // Negate so that min == max SNR; None = noise-free = best.
                PickBy::MaxSnr => -r.worst_snr_db.unwrap_or(f64::INFINITY),
            };
            key(a)
                .partial_cmp(&key(b))
                .expect("metrics are never NaN")
                .then(
                    a.total_power_w
                        .unwrap_or(0.0)
                        .partial_cmp(&b.total_power_w.unwrap_or(0.0))
                        .expect("power is never NaN"),
                )
        })
        .expect("non-empty")
}

/// Runs the XRing pipeline (steps 2–4 on a pre-built ring) for one `#wl`.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn xring_report(
    ctx: &RingContext,
    max_wavelengths: usize,
    with_pdn: bool,
    loss: &LossParams,
    xtalk: Option<&CrosstalkParams>,
    power: &PowerParams,
) -> Result<RouterReport, SynthesisError> {
    let t0 = Instant::now();
    let shortcuts = plan_shortcuts(&ctx.net, &ctx.cycle);
    let mut plan = map_signals(&ctx.net, &ctx.cycle, &shortcuts, max_wavelengths, 0)?;
    open_rings(&ctx.cycle, &mut plan, max_wavelengths);
    let pdn = with_pdn.then(|| {
        design_pdn(
            &ctx.net,
            &ctx.cycle,
            &plan,
            &shortcuts,
            loss,
            Point::new(-1_000, -1_000),
        )
    });
    let layout = xring_core::design::realize(
        &ctx.net,
        &ctx.cycle,
        &shortcuts,
        &plan,
        pdn.as_ref(),
        RingSpacing::default(),
    );
    let elapsed = ctx.ring_time + t0.elapsed();
    Ok(layout.evaluate(
        format!("XRing (#wl={max_wavelengths})"),
        loss,
        xtalk,
        power,
        elapsed,
    ))
}

/// Runs ORNoC (on the shared ring) for one `#wl`.
pub fn ornoc_report(
    ctx: &RingContext,
    max_wavelengths: usize,
    with_pdn: bool,
    loss: &LossParams,
    xtalk: Option<&CrosstalkParams>,
    power: &PowerParams,
) -> RouterReport {
    let t0 = Instant::now();
    let plan = ornoc_map(&ctx.net, &ctx.cycle, max_wavelengths);
    let layout = realize_ring_baseline(
        &ctx.net,
        &ctx.cycle,
        &plan,
        loss,
        xtalk.unwrap_or(&CrosstalkParams::nikdast()),
        with_pdn,
        RingSpacing::default(),
    );
    let elapsed = ctx.ring_time + t0.elapsed();
    layout.evaluate(
        format!("ORNoC (#wl={max_wavelengths})"),
        loss,
        xtalk,
        power,
        elapsed,
    )
}

/// Runs ORing for one `#wl`.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn oring_report(
    net: &NetworkSpec,
    max_wavelengths: usize,
    with_pdn: bool,
    loss: &LossParams,
    xtalk: Option<&CrosstalkParams>,
    power: &PowerParams,
) -> Result<RouterReport, SynthesisError> {
    let design = synthesize_oring(
        net,
        max_wavelengths,
        with_pdn,
        loss,
        xtalk.unwrap_or(&CrosstalkParams::nikdast()),
    )?;
    Ok(design.report(format!("ORing (#wl={max_wavelengths})"), loss, xtalk, power))
}

fn wl_candidates(n: usize) -> Vec<usize> {
    match n {
        0..=8 => vec![2, 3, 4, 5, 6, 7, 8],
        9..=16 => vec![4, 6, 8, 10, 12, 14, 16],
        _ => vec![8, 12, 16, 20, 24, 32],
    }
}

/// **Table I**: 8- and 16-node routers *without* PDNs. Returns
/// `(section title, rows)` pairs.
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn table1(engine: &Engine) -> Result<Vec<(String, Vec<RouterReport>)>, SynthesisError> {
    let loss = LossParams::proton_plus();
    let power = PowerParams::default();
    let mut out = Vec::new();
    for (title, net, topro_kind) in [
        (
            "8-node network",
            NetworkSpec::proton_8(),
            CrossbarKind::Gwor,
        ),
        (
            "16-node network",
            NetworkSpec::proton_16(),
            CrossbarKind::Light,
        ),
    ] {
        let n = net.len();
        let mut rows = Vec::new();
        rows.push(crossbar_report(
            CrossbarKind::LambdaRouter,
            LayoutStyle::ProtonPlus,
            &net,
            &loss,
        ));
        rows.push(crossbar_report(
            CrossbarKind::LambdaRouter,
            LayoutStyle::PlanarOnoc,
            &net,
            &loss,
        ));
        rows.push(crossbar_report(topro_kind, LayoutStyle::ToPro, &net, &loss));

        let ctx = RingContext::milp(net.clone())?;
        let wls = wl_candidates(n);
        let ornoc = pick_best(
            sweep_reports(engine, wls.len(), |i| {
                Ok(ornoc_report(&ctx, wls[i], false, &loss, None, &power))
            }),
            PickBy::MinIl,
        );
        rows.push(relabel(ornoc, "ORNoC"));
        let oring = pick_best(
            sweep_reports(engine, wls.len(), |i| {
                oring_report(&net, wls[i], false, &loss, None, &power)
            }),
            PickBy::MinIl,
        );
        rows.push(relabel(oring, "ORing"));
        let xr = pick_best(
            sweep_reports(engine, wls.len(), |i| {
                xring_report(&ctx, wls[i], false, &loss, None, &power)
            }),
            PickBy::MinIl,
        );
        rows.push(relabel(xr, "XRing"));
        out.push((title.to_string(), rows));
    }
    Ok(out)
}

fn relabel(mut r: RouterReport, prefix: &str) -> RouterReport {
    r.label = format!(
        "{prefix} {}",
        r.label
            .split('(')
            .nth(1)
            .map(|s| format!("({s}"))
            .unwrap_or_default()
    );
    if !r.label.contains('(') {
        r.label = prefix.to_string();
    }
    r
}

/// **Table II**: ORNoC vs XRing with PDNs for 8-, 16- and 32-node
/// networks, min-power and max-SNR settings.
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn table2(engine: &Engine) -> Result<Vec<(String, Vec<RouterReport>)>, SynthesisError> {
    let loss = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    let power = PowerParams::default();
    let mut out = Vec::new();
    for (n_label, net) in [
        ("8-node", NetworkSpec::psion_8()),
        ("16-node", NetworkSpec::psion_16()),
        ("32-node", NetworkSpec::psion_32()),
    ] {
        let n = net.len();
        let ctx = RingContext::milp(net.clone())?;
        let wls = wl_candidates(n);
        let ornoc_sweep = sweep_reports(engine, wls.len(), |i| {
            Ok(ornoc_report(
                &ctx,
                wls[i],
                true,
                &loss,
                Some(&xtalk),
                &power,
            ))
        });
        let xring_sweep = sweep_reports(engine, wls.len(), |i| {
            xring_report(&ctx, wls[i], true, &loss, Some(&xtalk), &power)
        });
        for (setting, by) in [
            ("min. power", PickBy::MinPower),
            ("max. SNR", PickBy::MaxSnr),
        ] {
            let rows = vec![
                relabel(pick_best(ornoc_sweep.clone(), by), "ORNoC"),
                relabel(pick_best(xring_sweep.clone(), by), "XRing"),
            ];
            out.push((format!("{setting} for {n_label} networks"), rows));
        }
    }
    Ok(out)
}

/// **Table III**: ORing vs XRing for a 16-node network with PDNs.
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn table3(engine: &Engine) -> Result<Vec<(String, Vec<RouterReport>)>, SynthesisError> {
    let loss = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    let power = PowerParams::default();
    let net = NetworkSpec::psion_16();
    let ctx = RingContext::milp(net.clone())?;
    let wls = wl_candidates(16);
    let oring_sweep = sweep_reports(engine, wls.len(), |i| {
        oring_report(&net, wls[i], true, &loss, Some(&xtalk), &power)
    });
    let xring_sweep = sweep_reports(engine, wls.len(), |i| {
        xring_report(&ctx, wls[i], true, &loss, Some(&xtalk), &power)
    });
    let mut out = Vec::new();
    for (setting, by) in [
        ("min. power", PickBy::MinPower),
        ("max. SNR", PickBy::MaxSnr),
    ] {
        let rows = vec![
            relabel(pick_best(oring_sweep.clone(), by), "ORing"),
            relabel(pick_best(xring_sweep.clone(), by), "XRing"),
        ];
        out.push((format!("The setting for {setting}"), rows));
    }
    Ok(out)
}

/// **Ablation E5**: Step-2 shortcuts on/off (16- and 32-node).
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn ablation_shortcuts(
    engine: &Engine,
) -> Result<Vec<(String, Vec<RouterReport>)>, SynthesisError> {
    let loss = LossParams::oring();
    let mut jobs = Vec::new();
    let mut sections = Vec::new();
    for (label, net, wl) in [
        ("16-node", NetworkSpec::psion_16(), 14),
        ("32-node", NetworkSpec::psion_32(), 24),
    ] {
        sections.push(format!("shortcut ablation, {label}"));
        for (name, shortcuts) in [("with shortcuts", true), ("without shortcuts", false)] {
            let mut job = SynthesisJob::new(
                name,
                net.clone(),
                SynthesisOptions {
                    shortcuts,
                    ..paper_options(wl)
                },
            )
            .without_crosstalk();
            job.loss = loss.clone();
            jobs.push(job);
        }
    }
    let mut reports = batch_reports(engine, jobs)?.into_iter();
    Ok(sections
        .into_iter()
        .map(|title| (title, reports.by_ref().take(2).collect()))
        .collect())
}

/// **Ablation E6**: ring openings + crossing-free PDN vs no openings
/// (16-node).
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn ablation_pdn(engine: &Engine) -> Result<Vec<(String, Vec<RouterReport>)>, SynthesisError> {
    let net = NetworkSpec::psion_16();
    let jobs = [
        ("openings + crossing-free PDN", true),
        ("no openings", false),
    ]
    .into_iter()
    .map(|(name, openings)| {
        let mut job = SynthesisJob::new(
            name,
            net.clone(),
            SynthesisOptions {
                openings,
                ..paper_options(14)
            },
        );
        job.loss = LossParams::oring();
        job.xtalk = Some(CrosstalkParams::nikdast());
        job
    })
    .collect();
    let rows = batch_reports(engine, jobs)?;
    Ok(vec![("PDN/opening ablation, 16-node".to_string(), rows)])
}

/// **Ablation E7**: Step-1 algorithm (MILP vs heuristic vs perimeter).
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn ablation_ring(engine: &Engine) -> Result<Vec<(String, Vec<RouterReport>)>, SynthesisError> {
    let loss = LossParams::oring();
    let mut jobs = Vec::new();
    let mut sections = Vec::new();
    for (label, net, wl) in [
        ("8-node", NetworkSpec::psion_8(), 8),
        ("16-node", NetworkSpec::psion_16(), 14),
        ("32-node", NetworkSpec::psion_32(), 24),
    ] {
        sections.push(format!("ring-construction ablation, {label}"));
        for (name, algorithm) in [
            ("MILP ring", RingAlgorithm::Milp),
            ("heuristic ring", RingAlgorithm::Heuristic),
            ("perimeter ring", RingAlgorithm::Perimeter),
        ] {
            let mut job = SynthesisJob::new(
                name,
                net.clone(),
                SynthesisOptions {
                    ring_algorithm: algorithm,
                    ..paper_options(wl)
                },
            )
            .without_crosstalk();
            job.loss = loss.clone();
            jobs.push(job);
        }
    }
    let mut reports = batch_reports(engine, jobs)?.into_iter();
    Ok(sections
        .into_iter()
        .map(|title| (title, reports.by_ref().take(3).collect()))
        .collect())
}

/// Prints sections of rows in the paper's tabular style.
pub fn print_sections(sections: &[(String, Vec<RouterReport>)]) {
    for (title, rows) in sections {
        println!("== {title} ==");
        println!("{}", RouterReport::table_header());
        for r in rows {
            println!("{r}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wl_candidate_buckets() {
        assert!(wl_candidates(8).contains(&7));
        assert!(wl_candidates(16).contains(&14));
        assert!(wl_candidates(32).contains(&32));
    }

    #[test]
    fn pick_best_min_il() {
        let mk = |il: f64| RouterReport {
            label: format!("il={il}"),
            num_wavelengths: 4,
            worst_il_db: il,
            worst_path_len_mm: 1.0,
            worst_path_crossings: 0,
            total_power_w: Some(il),
            noisy_signal_count: Some(0),
            worst_snr_db: None,
            signal_count: 10,
            synthesis_time: Duration::ZERO,
        };
        let best = pick_best(vec![mk(3.0), mk(1.5), mk(2.0)], PickBy::MinIl);
        assert_eq!(best.worst_il_db, 1.5);
    }

    #[test]
    fn pick_best_max_snr_prefers_noise_free() {
        let mk = |snr: Option<f64>, p: f64| RouterReport {
            label: "x".into(),
            num_wavelengths: 4,
            worst_il_db: 1.0,
            worst_path_len_mm: 1.0,
            worst_path_crossings: 0,
            total_power_w: Some(p),
            noisy_signal_count: Some(usize::from(snr.is_some())),
            worst_snr_db: snr,
            signal_count: 10,
            synthesis_time: Duration::ZERO,
        };
        let best = pick_best(vec![mk(Some(30.0), 0.1), mk(None, 0.2)], PickBy::MaxSnr);
        assert_eq!(best.worst_snr_db, None);
    }

    #[test]
    fn table2_shape() {
        // XRing must be crossing-free and (nearly) noise-free at every
        // size and setting; ORNoC must suffer noise with a finite SNR.
        for (title, rows) in table2(&Engine::new()).expect("table2") {
            let (ornoc, xring) = (&rows[0], &rows[1]);
            assert!(ornoc.label.starts_with("ORNoC"), "{title}");
            assert!(xring.label.starts_with("XRing"), "{title}");
            assert_eq!(xring.worst_path_crossings, 0, "{title}");
            assert!(
                xring.noise_free_fraction().expect("evaluated") > 0.98,
                "{title}"
            );
            assert!(ornoc.noisy_signal_count.expect("evaluated") > 0, "{title}");
            assert!(ornoc.worst_snr_db.expect("noisy").is_finite(), "{title}");
            assert!(xring.worst_il_db < ornoc.worst_il_db, "{title}");
        }
    }

    #[test]
    fn table3_shape() {
        for (title, rows) in table3(&Engine::new()).expect("table3") {
            let (oring, xring) = (&rows[0], &rows[1]);
            assert!(oring.label.starts_with("ORing"), "{title}");
            assert!(xring.label.starts_with("XRing"), "{title}");
            assert_eq!(xring.worst_path_crossings, 0, "{title}");
            assert!(oring.worst_path_crossings > 0, "{title}");
            assert!(
                xring.total_power_w.expect("pdn") <= oring.total_power_w.expect("pdn"),
                "{title}"
            );
        }
    }

    #[test]
    fn ablations_have_expected_directions() {
        let engine = Engine::new();
        // E7: the MILP ring never loses to the perimeter ring.
        for (title, rows) in ablation_ring(&engine).expect("E7") {
            let milp = &rows[0];
            let perimeter = &rows[2];
            assert!(
                milp.worst_il_db <= perimeter.worst_il_db + 1e-9,
                "{title}: {} vs {}",
                milp.worst_il_db,
                perimeter.worst_il_db
            );
        }
        // E6: openings eliminate noisy signals.
        for (_, rows) in ablation_pdn(&engine).expect("E6") {
            let with = &rows[0];
            let without = &rows[1];
            assert!(
                with.noisy_signal_count.expect("evaluated")
                    <= without.noisy_signal_count.expect("evaluated")
            );
            assert_eq!(with.worst_path_crossings, 0);
        }
    }

    #[test]
    fn repeated_ablations_reuse_cached_designs() {
        let engine = Engine::new();
        let first = ablation_pdn(&engine).expect("E6");
        assert_eq!(engine.cache().hits(), 0);
        let second = ablation_pdn(&engine).expect("E6 again");
        assert_eq!(engine.cache().hits(), 2);
        assert_eq!(first[0].1.len(), second[0].1.len());
        for (a, b) in first[0].1.iter().zip(&second[0].1) {
            assert_eq!(a, b, "cached rows must be identical");
        }
    }

    #[test]
    fn table1_shape() {
        // The core claims of Table I: every ring router beats every
        // crossbar on worst-case IL; XRing is the best ring router on the
        // 16-node network (on the tiny regular 8-node grid all ring
        // methods find the same optimum, so there we only require a tie
        // within 0.05 dB); ring routers have zero crossings.
        let sections = table1(&Engine::new()).expect("table1");
        for (si, (title, rows)) in sections.iter().enumerate() {
            assert_eq!(rows.len(), 6, "{title}");
            let crossbars = &rows[..3];
            let rings = &rows[3..];
            let xring = rows.last().expect("xring row");
            assert!(xring.label.starts_with("XRing"));
            assert_eq!(xring.worst_path_crossings, 0);
            for c in crossbars {
                for r in rings {
                    assert!(
                        r.worst_il_db < c.worst_il_db,
                        "{title}: ring {} ({}) not better than crossbar {} ({})",
                        r.label,
                        r.worst_il_db,
                        c.label,
                        c.worst_il_db
                    );
                }
            }
            let tolerance = if si == 0 { 0.05 } else { 1e-9 };
            for r in rings {
                assert!(
                    xring.worst_il_db <= r.worst_il_db + tolerance,
                    "{title}: XRing ({}) loses to {} ({})",
                    xring.worst_il_db,
                    r.label,
                    r.worst_il_db
                );
            }
        }
    }
}
