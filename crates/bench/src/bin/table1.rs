//! Regenerates **Table I**: 8- and 16-node WRONoC routers without PDNs.
//!
//! Run with: `cargo run --release -p xring-bench --bin table1`

use xring_bench::tables::{print_sections, table1};
use xring_engine::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TABLE I — results for 8-, 16-node WRONoC routers without PDNs");
    println!("(crossbar rows are analytic models; see DESIGN.md §2)\n");
    print_sections(&table1(&Engine::new())?);
    Ok(())
}
