//! Runs the design-choice ablations (DESIGN.md E5–E7).
//!
//! Run with: `cargo run --release -p xring-bench --bin ablation -- [shortcuts|pdn|ring|all]`

use xring_bench::tables::{ablation_pdn, ablation_ring, ablation_shortcuts, print_sections};
use xring_engine::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    // One engine for all ablations: shared configurations (e.g. the
    // default 16-node pipeline) are synthesized once.
    let engine = Engine::new();
    if which == "shortcuts" || which == "all" {
        println!("ABLATION E5 — Step 2 (shortcut construction)\n");
        print_sections(&ablation_shortcuts(&engine)?);
    }
    if which == "pdn" || which == "all" {
        println!("ABLATION E6 — Step 3/4 (openings + crossing-free PDN)\n");
        print_sections(&ablation_pdn(&engine)?);
    }
    if which == "ring" || which == "all" {
        println!("ABLATION E7 — Step 1 (ring-construction algorithm)\n");
        print_sections(&ablation_ring(&engine)?);
    }
    Ok(())
}
