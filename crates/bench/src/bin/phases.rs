//! Per-phase timing shares (EXPERIMENTS.md E10): where does synthesis
//! time go as the network grows? Runs the full pipeline for N = 4, 8 and
//! 16 nodes under the `xring-obs` tracer and prints, for each N, the
//! inclusive time and share of every pipeline phase.
//!
//! The same numbers can be reproduced for any single run via the CLI:
//! `xring synth --grid 4x4 --wl 16 --trace out.jsonl`.
//!
//! Run with: `cargo run --release -p xring-bench --bin phases`
//!
//! `--json FILE` additionally writes the inclusive times as a flat
//! regression-report envelope (`{"schema":...,"metrics":{...}}`, keys
//! like `n8_ring_milp_us`) that `regress --compare` can diff against a
//! previous run.

use xring_bench::regress::RegressReport;
use xring_core::{NetworkSpec, SynthesisOptions, Synthesizer};
use xring_obs as obs;
use xring_phot::{CrosstalkParams, LossParams, PowerParams};

/// The phases reported, in pipeline order. `ring-milp` includes the MILP
/// solve and sub-cycle merge; `evaluation` is the loss/crosstalk/power
/// report (the audit's internal evaluation is nested under `audit` and
/// therefore not double-counted here — only top-level shares are shown).
const PHASES: &[&str] = &[
    "ring-milp",
    "shortcut",
    "mapping",
    "opening",
    "pdn",
    "realize",
    "audit",
    "evaluation",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => {
                json_out = Some(it.next().ok_or("--json needs a path")?.clone());
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let mut report = RegressReport::new();
    println!("n,wl,phase,inclusive_us,share_pct");
    for (n, net) in [
        (4usize, NetworkSpec::regular_grid(2, 2, 2_000)?),
        (8, NetworkSpec::proton_8()),
        (16, NetworkSpec::psion_16()),
    ] {
        let wl = n;
        obs::start();
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(wl)).synthesize(&net)?;
        let _report = design.report(
            "phases",
            &LossParams::default(),
            Some(&CrosstalkParams::default()),
            &PowerParams::default(),
        );
        let trace = obs::finish();

        // Share denominators: the whole traced run is the synth span plus
        // the standalone evaluation that follows it.
        let synth = trace.find("synth").ok_or("no synth span recorded")?;
        let eval_outside: u64 = trace
            .spans
            .iter()
            .filter(|s| s.name == "evaluation" && s.parent == 0)
            .map(|s| s.dur_ns)
            .sum();
        let total_ns = synth.dur_ns + eval_outside;
        for phase in PHASES {
            let ns = if *phase == "evaluation" {
                eval_outside
            } else {
                trace.inclusive_ns(phase)
            };
            println!(
                "{n},{wl},{phase},{},{:.1}",
                ns / 1_000,
                100.0 * ns as f64 / total_ns as f64
            );
            report.metrics.insert(
                format!("n{n}_{}_us", phase.replace('-', "_")),
                ns as f64 / 1_000.0,
            );
        }
        println!("{n},{wl},total,{},100.0", total_ns / 1_000);
        report
            .metrics
            .insert(format!("n{n}_total_us"), total_ns as f64 / 1_000.0);
    }
    if let Some(path) = json_out {
        std::fs::write(&path, report.to_json())?;
        eprintln!("phase timings written to {path}");
    }
    Ok(())
}
