//! Per-phase timing shares (EXPERIMENTS.md E10): where does synthesis
//! time go as the network grows? Runs the full pipeline for N = 4, 8 and
//! 16 nodes under the `xring-obs` tracer and prints, for each N, the
//! inclusive time and share of every pipeline phase.
//!
//! The same numbers can be reproduced for any single run via the CLI:
//! `xring synth --grid 4x4 --wl 16 --trace out.jsonl`.
//!
//! Run with: `cargo run --release -p xring-bench --bin phases`

use xring_core::{NetworkSpec, SynthesisOptions, Synthesizer};
use xring_obs as obs;
use xring_phot::{CrosstalkParams, LossParams, PowerParams};

/// The phases reported, in pipeline order. `ring-milp` includes the MILP
/// solve and sub-cycle merge; `evaluation` is the loss/crosstalk/power
/// report (the audit's internal evaluation is nested under `audit` and
/// therefore not double-counted here — only top-level shares are shown).
const PHASES: &[&str] = &[
    "ring-milp",
    "shortcut",
    "mapping",
    "opening",
    "pdn",
    "realize",
    "audit",
    "evaluation",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("n,wl,phase,inclusive_us,share_pct");
    for (n, net) in [
        (4usize, NetworkSpec::regular_grid(2, 2, 2_000)?),
        (8, NetworkSpec::proton_8()),
        (16, NetworkSpec::psion_16()),
    ] {
        let wl = n;
        obs::start();
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(wl)).synthesize(&net)?;
        let _report = design.report(
            "phases",
            &LossParams::default(),
            Some(&CrosstalkParams::default()),
            &PowerParams::default(),
        );
        let trace = obs::finish();

        // Share denominators: the whole traced run is the synth span plus
        // the standalone evaluation that follows it.
        let synth = trace.find("synth").ok_or("no synth span recorded")?;
        let eval_outside: u64 = trace
            .spans
            .iter()
            .filter(|s| s.name == "evaluation" && s.parent == 0)
            .map(|s| s.dur_ns)
            .sum();
        let total_ns = synth.dur_ns + eval_outside;
        for phase in PHASES {
            let ns = if *phase == "evaluation" {
                eval_outside
            } else {
                trace.inclusive_ns(phase)
            };
            println!(
                "{n},{wl},{phase},{},{:.1}",
                ns / 1_000,
                100.0 * ns as f64 / total_ns as f64
            );
        }
        println!("{n},{wl},total,{},100.0", total_ns / 1_000);
    }
    Ok(())
}
