//! Regenerates **Table II**: ORNoC vs XRing with PDNs for 8-, 16- and
//! 32-node networks (min-power and max-SNR settings).
//!
//! Run with: `cargo run --release -p xring-bench --bin table2`

use xring_bench::tables::{print_sections, table2};
use xring_engine::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TABLE II — ORNoC vs XRing for 8-, 16-, 32-node networks (with PDNs)\n");
    let sections = table2(&Engine::new())?;
    print_sections(&sections);
    // Headline claim (E4): >98% of XRing signals suffer no first-order
    // noise.
    for (title, rows) in &sections {
        for r in rows {
            if r.label.starts_with("XRing") {
                if let Some(f) = r.noise_free_fraction() {
                    println!(
                        "headline [{title}]: {:.1}% of XRing signals are free of first-order noise",
                        f * 100.0
                    );
                }
            }
        }
    }
    Ok(())
}
