//! Regenerates **Table III**: ORing vs XRing for a 16-node network with
//! PDNs.
//!
//! Run with: `cargo run --release -p xring-bench --bin table3`

use xring_bench::tables::{print_sections, table3};
use xring_engine::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TABLE III — ORing vs XRing for a 16-node network (with PDNs)\n");
    print_sections(&table3(&Engine::new())?);
    Ok(())
}
