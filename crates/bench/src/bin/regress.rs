//! The pinned performance-regression harness (DESIGN.md §7): runs a
//! fixed suite of synthesis and batch workloads with telemetry off,
//! writes the timings as a flat JSON report, and optionally compares
//! against a previous report, failing on a real wall-time regression.
//!
//! ```text
//! cargo run --release -p xring-bench --bin regress -- --out BENCH_PR5.json
//! cargo run --release -p xring-bench --bin regress -- \
//!     --quick --out /tmp/now.json --compare BENCH_PR5.json    # CI smoke + gate
//! ```
//!
//! Exit code is nonzero when any `_wall_ms` metric slowed by more than
//! 15% *and* more than the 25 ms noise floor.

use std::process::ExitCode;

use xring_bench::regress::{compare, run_suite, RegressReport};

fn main() -> ExitCode {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => return usage("--out needs a path"),
            },
            "--compare" => match it.next() {
                Some(v) => baseline = Some(v.clone()),
                None => return usage("--compare needs a baseline report"),
            },
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    // Required, so a careless invocation cannot silently clobber a
    // committed baseline in the working directory.
    let Some(out) = out else {
        return usage("--out is required");
    };

    eprintln!(
        "running the pinned suite ({})...",
        if quick {
            "quick, 1 repeat"
        } else {
            "3 repeats"
        }
    );
    let report = match run_suite(quick) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (k, v) in &report.metrics {
        println!("{k:<28} {v:.3}");
    }
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("report written to {out}");

    let Some(baseline_path) = baseline else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|text| RegressReport::parse_json(&text))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("\ncomparison against {baseline_path}:");
    let deltas = compare(&baseline, &report);
    let mut regressed = false;
    for d in &deltas {
        regressed |= d.regressed;
        println!("{}", d.render());
    }
    if regressed {
        let breaches: Vec<String> = deltas
            .iter()
            .filter(|d| d.regressed)
            .map(|d| match (d.old, d.new) {
                (Some(old), Some(new)) => format!("{} ({old:.1} -> {new:.1} ms)", d.name),
                _ => d.name.clone(),
            })
            .collect();
        eprintln!(
            "FAIL: wall-time regression past the 15% / 25 ms gate: {}",
            breaches.join(", ")
        );
        ExitCode::FAILURE
    } else {
        eprintln!("PASS: no wall-time regression");
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "error: {err}\n\nUSAGE:\n  regress --out FILE [--quick] [--compare BASELINE.json]\n\n\
         Writes the pinned suite's timings to FILE (required); with\n\
         --compare, prints per-metric deltas and exits nonzero on a\n\
         wall-time regression."
    );
    ExitCode::FAILURE
}
