//! Scaling series (DESIGN.md E8 companion): XRing vs ORNoC metrics as the
//! network grows, printed as CSV for plotting. This is the "figure" the
//! paper's table-only evaluation implies: power, SNR and worst-case IL vs
//! node count.
//!
//! Run with: `cargo run --release -p xring-bench --bin scaling`

use xring_bench::tables::{ornoc_report, xring_report, RingContext};
use xring_core::NetworkSpec;
use xring_phot::{CrosstalkParams, LossParams, PowerParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let loss = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    let power = PowerParams::default();

    println!("n,router,wl,il_db,len_mm,crossings,power_w,noisy,snr_db,time_s");
    for n in [4usize, 8, 12, 16, 20, 24, 28, 32] {
        let cols = (n / 4).max(1);
        let rows = n / cols;
        let net = NetworkSpec::regular_grid(rows, cols, 2_000)?;
        let wl = (n).max(4);
        let ctx = RingContext::milp(net)?;
        let rows_out = [
            xring_report(&ctx, wl, true, &loss, Some(&xtalk), &power)?,
            ornoc_report(&ctx, wl, true, &loss, Some(&xtalk), &power),
        ];
        for r in rows_out {
            let router = if r.label.starts_with("XRing") {
                "xring"
            } else {
                "ornoc"
            };
            println!(
                "{n},{router},{},{:.3},{:.2},{},{:.6},{},{},{:.3}",
                r.num_wavelengths,
                r.worst_il_db,
                r.worst_path_len_mm,
                r.worst_path_crossings,
                r.total_power_w.unwrap_or(f64::NAN),
                r.noisy_signal_count.unwrap_or(0),
                r.worst_snr_db
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "inf".into()),
                r.synthesis_time.as_secs_f64(),
            );
        }
    }
    Ok(())
}
