//! Experiment harness for the XRing reproduction.
//!
//! One function per paper artifact (see DESIGN.md §3):
//!
//! * [`tables::table1`] — Table I: 8-/16-node routers without PDNs.
//! * [`tables::table2`] — Table II: ORNoC vs XRing with PDNs, 8/16/32.
//! * [`tables::table3`] — Table III: ORing vs XRing, 16 nodes, with PDNs.
//! * [`tables::ablation_shortcuts`] / [`tables::ablation_pdn`] /
//!   [`tables::ablation_ring`] — the step-wise ablations of DESIGN.md
//!   E5–E7.
//!
//! The binaries `table1`, `table2`, `table3` and `ablation` print the
//! rows; the Criterion benches under `benches/` time the underlying
//! synthesis flows.

pub mod regress;
pub mod tables;

pub use regress::{compare, run_suite, MetricDelta, RegressReport, REGRESS_SCHEMA};
pub use tables::{
    ablation_pdn, ablation_ring, ablation_shortcuts, table1, table2, table3, RingContext,
};
