//! The pinned regression suite behind `cargo run -p xring-bench --bin
//! regress`: a fixed set of synthesis and batch workloads, timed with
//! telemetry off, written as a flat JSON report that later runs compare
//! against (`regress --compare OLD.json`).
//!
//! The report envelope is deliberately tiny and hand-parsed (the
//! workspace is dependency-free): `{"schema":"...","metrics":{...}}`
//! with every metric a finite number. Only metrics whose key ends in
//! `_wall_ms` gate the comparison; counts (BnB nodes, cache hit rate)
//! are reported for drift visibility but never fail a run, since they
//! are deterministic and a change means the *code* changed, not the
//! machine.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use xring_core::{
    NetworkSpec, RingAlgorithm, RingBuilder, SpareConfig, SynthesisOptions, Synthesizer, Traffic,
};
use xring_engine::{Engine, SynthesisJob};
use xring_serve::{client, ServeConfig, Server};

/// Schema tag of the report envelope. Bump on breaking key changes.
pub const REGRESS_SCHEMA: &str = "xring-regress-v1";

/// A fractional slowdown above which a `_wall_ms` metric fails the
/// comparison (15%).
pub const WALL_REGRESSION_THRESHOLD: f64 = 0.15;

/// Absolute noise floor: a `_wall_ms` metric must also regress by more
/// than this many milliseconds to fail, so micro-benchmarks in the
/// hundreds of microseconds cannot trip the relative gate on scheduler
/// jitter alone.
pub const WALL_NOISE_FLOOR_MS: f64 = 25.0;

/// A flat named-metric report (the `regress` and `phases --json`
/// output).
#[derive(Debug, Clone, PartialEq)]
pub struct RegressReport {
    /// Envelope schema tag.
    pub schema: String,
    /// Metric name → value, serialized in sorted key order.
    pub metrics: BTreeMap<String, f64>,
}

impl RegressReport {
    /// An empty report with the current schema tag.
    pub fn new() -> Self {
        RegressReport {
            schema: REGRESS_SCHEMA.to_owned(),
            metrics: BTreeMap::new(),
        }
    }

    /// Serializes the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, r#"{{"schema":"{}","metrics":{{"#, self.schema);
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Finite guard keeps the envelope parseable: JSON has no
            // NaN/Inf literal.
            let v = if v.is_finite() { *v } else { -1.0 };
            let _ = write!(out, r#""{k}":{v}"#);
        }
        out.push_str("}}\n");
        out
    }

    /// Parses a report envelope produced by [`Self::to_json`] (or the
    /// `phases --json` writer).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed construct.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut schema = None;
        let mut metrics = None;
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            match key.as_str() {
                "schema" => schema = Some(p.string()?),
                "metrics" => {
                    p.expect(b'{')?;
                    let mut map = BTreeMap::new();
                    loop {
                        p.skip_ws();
                        if p.eat(b'}') {
                            break;
                        }
                        let name = p.string()?;
                        p.skip_ws();
                        p.expect(b':')?;
                        p.skip_ws();
                        map.insert(name, p.number()?);
                        p.skip_ws();
                        p.eat(b',');
                    }
                    metrics = Some(map);
                }
                other => return Err(format!("unexpected key {other:?}")),
            }
            p.skip_ws();
            p.eat(b',');
        }
        Ok(RegressReport {
            schema: schema.ok_or("missing schema")?,
            metrics: metrics.ok_or("missing metrics")?,
        })
    }
}

impl Default for RegressReport {
    fn default() -> Self {
        Self::new()
    }
}

/// A byte-walking parser for the report's flat JSON subset (objects,
/// strings without escapes beyond `\"`/`\\`, finite numbers).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    match self.bytes.get(self.pos + 1) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        _ => return Err(format!("unsupported escape at byte {}", self.pos)),
                    }
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(char::from(b));
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// One metric's comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// The metric key.
    pub name: String,
    /// Value in the baseline report (`None` if newly added).
    pub old: Option<f64>,
    /// Value in the new report (`None` if removed).
    pub new: Option<f64>,
    /// Whether this metric fails the gate (only `_wall_ms` metrics can).
    pub regressed: bool,
}

impl MetricDelta {
    /// Formats one comparison row.
    pub fn render(&self) -> String {
        match (self.old, self.new) {
            (Some(old), Some(new)) => {
                let pct = if old.abs() > f64::EPSILON {
                    format!("{:+.1}%", 100.0 * (new - old) / old)
                } else {
                    "n/a".into()
                };
                let mark = if self.regressed { "  REGRESSED" } else { "" };
                format!(
                    "{:<28} {:>12.3} -> {:>12.3}  {}{}",
                    self.name, old, new, pct, mark
                )
            }
            (None, Some(new)) => format!("{:<28} {:>12} -> {:>12.3}  (new)", self.name, "-", new),
            (Some(old), None) => {
                format!("{:<28} {:>12.3} -> {:>12}  (removed)", self.name, old, "-")
            }
            (None, None) => unreachable!("delta without values"),
        }
    }
}

/// Compares two reports metric-by-metric. A `_wall_ms` metric regresses
/// when it slows by more than [`WALL_REGRESSION_THRESHOLD`] *and* more
/// than [`WALL_NOISE_FLOOR_MS`] in absolute terms; everything else is
/// informational.
pub fn compare(baseline: &RegressReport, new: &RegressReport) -> Vec<MetricDelta> {
    let mut names: Vec<&String> = baseline.metrics.keys().chain(new.metrics.keys()).collect();
    names.sort_unstable();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let old = baseline.metrics.get(name).copied();
            let new_v = new.metrics.get(name).copied();
            let regressed = match (old, new_v) {
                (Some(o), Some(n)) => {
                    name.ends_with("_wall_ms")
                        && n > o * (1.0 + WALL_REGRESSION_THRESHOLD)
                        && n - o > WALL_NOISE_FLOOR_MS
                }
                _ => false,
            };
            MetricDelta {
                name: name.clone(),
                old,
                new: new_v,
                regressed,
            }
        })
        .collect()
}

/// Runs the pinned suite. `quick` drops the repeat count to 1 for CI
/// smoke runs; full runs take the median of 3 repeats per timing.
///
/// # Errors
///
/// Propagates the first synthesis failure (the suite's workloads are
/// all feasible, so this indicates a real break).
pub fn run_suite(quick: bool) -> Result<RegressReport, Box<dyn std::error::Error>> {
    let repeats = if quick { 1 } else { 3 };
    let mut report = RegressReport::new();
    report.metrics.insert("repeats".into(), repeats as f64);

    // Warm-start accounting summed over every ring MILP the suite
    // solves: (solves that adopted a parent basis, solves offered one).
    let mut warm = (0usize, 0usize);

    // Serial synthesis wall time, N = 4 / 8 / 16 with #wl = N.
    for (key, n, net) in [
        (
            "synth_n4_wall_ms",
            4usize,
            NetworkSpec::regular_grid(2, 2, 2_000)?,
        ),
        ("synth_n8_wall_ms", 8, NetworkSpec::proton_8()),
        ("synth_n16_wall_ms", 16, NetworkSpec::psion_16()),
    ] {
        let wall = median_ms(repeats, || {
            let design = Synthesizer::new(SynthesisOptions::with_wavelengths(n))
                .synthesize(&net)
                .expect("pinned synthesis workload is feasible");
            assert!(design.provenance.audit.is_clean());
            warm.0 += design.ring_stats.lp_warm_starts;
            warm.1 += design.ring_stats.lp_warm_eligible;
        });
        report.metrics.insert(key.into(), wall);
    }

    // Ring MILP on an irregular 16-node floorplan: the only pinned
    // workload whose branch-and-bound explores a deep tree, so it is
    // what actually times (and counts) warm-started child solves — the
    // regular floorplans above mostly solve at the root.
    {
        let net = NetworkSpec::irregular(16, 8_000, 5)?;
        let wall = median_ms(repeats, || {
            let ring = RingBuilder::new()
                .build(&net)
                .expect("pinned ring workload is feasible");
            warm.0 += ring.stats.lp_warm_starts;
            warm.1 += ring.stats.lp_warm_eligible;
        });
        report.metrics.insert("ring_irr16_wall_ms".into(), wall);
    }
    report.metrics.insert(
        "bnb_warm_start_rate".into(),
        warm.0 as f64 / warm.1.max(1) as f64,
    );

    // Scaling fixtures (ROADMAP N=64–256). Ring MILP on an irregular
    // 64-node floorplan, serially and at 4 solver threads; both walls
    // gate the comparison, and the ratio is reported as drift telemetry
    // (on a single-core host it sits near 1.0, so it cannot gate).
    {
        let net = NetworkSpec::irregular(64, 20_000, 5)?;
        let mut nodes = 0usize;
        let wall1 = median_ms(repeats, || {
            let ring = RingBuilder::new()
                .build(&net)
                .expect("pinned ring workload is feasible");
            nodes = ring.stats.milp_nodes;
            warm.0 += ring.stats.lp_warm_starts;
            warm.1 += ring.stats.lp_warm_eligible;
        });
        let wall4 = median_ms(repeats, || {
            let ring = RingBuilder::new()
                .with_solver_threads(4)
                .build(&net)
                .expect("pinned ring workload is feasible");
            // The parallel search is deterministic: same tree.
            assert_eq!(ring.stats.milp_nodes, nodes);
        });
        report.metrics.insert("ring_irr64_wall_ms".into(), wall1);
        report.metrics.insert("ring_irr64_t4_wall_ms".into(), wall4);
        report
            .metrics
            .insert("bnb_irr64_nodes".into(), nodes as f64);
        report
            .metrics
            .insert("bnb_irr64_speedup_t4".into(), wall1 / wall4);
    }

    // Full 128-node pipeline with the heuristic ring and kNN traffic:
    // the ring MILP at this scale is the scaling item's open half, so
    // this entry pins everything around it (placement, mapping, audit,
    // PDN) at N=128 without the MILP in the loop.
    {
        let net = NetworkSpec::irregular(128, 28_000, 5)?;
        let mut options = SynthesisOptions::with_wavelengths(8);
        options.ring_algorithm = RingAlgorithm::Heuristic;
        options.traffic = Traffic::NearestNeighbors(3);
        let wall = median_ms(repeats, || {
            let design = Synthesizer::new(options.clone())
                .synthesize(&net)
                .expect("pinned synthesis workload is feasible");
            assert!(design.provenance.audit.is_clean());
        });
        report.metrics.insert("synth_irr128_wall_ms".into(), wall);
    }

    // Batch throughput at 1 and 4 workers: 3 distinct jobs submitted
    // twice, so exactly half the jobs hit a fresh engine's cache.
    for (key, tp_key, workers) in [
        ("batch_j1_wall_ms", "batch_j1_jobs_per_s", 1usize),
        ("batch_j4_wall_ms", "batch_j4_jobs_per_s", 4),
    ] {
        let mut walls = Vec::with_capacity(repeats);
        let mut jobs_n = 0usize;
        for _ in 0..repeats {
            let engine = Engine::new().with_workers(workers);
            let jobs = batch_jobs();
            jobs_n = jobs.len();
            let t0 = Instant::now();
            let batch = engine.run_batch(jobs);
            walls.push(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(batch.metrics.failed, 0, "{}", batch.metrics.summary());
            // Determinism metrics from the serial run only: with one
            // worker the duplicate jobs always find the first round's
            // designs cached, whereas parallel workers may race two
            // copies of a key into simultaneous misses.
            if workers == 1 {
                report.metrics.insert(
                    "batch_cache_hit_rate".into(),
                    batch.metrics.cache_hits as f64 / batch.metrics.jobs as f64,
                );
                report
                    .metrics
                    .insert("milp_bnb_nodes".into(), batch.metrics.milp_nodes as f64);
            }
        }
        walls.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));
        let wall = walls[walls.len() / 2];
        report.metrics.insert(key.into(), wall);
        report
            .metrics
            .insert(tp_key.into(), jobs_n as f64 / (wall / 1e3));
    }

    // Device-fault sweep: proton_8 at #wl 8, zero spares against one
    // spare of each class. Times two syntheses (one with the exhaustive
    // survivability proof) plus every enumerated single-fault scenario
    // audited across a 4-worker pool; the margins double as drift
    // sentinels for the repair model.
    {
        let engine = Engine::new().with_workers(4);
        let net = NetworkSpec::proton_8();
        let base = SynthesisOptions::with_wavelengths(8);
        let levels = [SpareConfig::default(), SpareConfig::uniform(1)];
        let mut margins = (0.0f64, 0.0f64);
        let mut scenarios = 0usize;
        let wall = median_ms(repeats, || {
            let sweep = engine
                .fault_sweep(&net, &base, &levels, None)
                .expect("pinned fault-sweep workload is feasible");
            margins = (sweep.points[0].fault_margin, sweep.points[1].fault_margin);
            scenarios = sweep.points.iter().map(|p| p.scenarios).sum();
        });
        report.metrics.insert("fault_sweep_wall_ms".into(), wall);
        report
            .metrics
            .insert("fault_sweep_scenarios".into(), scenarios as f64);
        report
            .metrics
            .insert("fault_margin_spare0".into(), margins.0);
        report
            .metrics
            .insert("fault_margin_spare1".into(), margins.1);
    }

    edit_loop(repeats, &mut report)?;
    obs_overhead(repeats, &mut report);
    serve_load(quick, &mut report)?;
    Ok(report)
}

/// Observability-overhead scenario: the same pinned synthesis timed
/// bare and with a request context attached (what the serve path does
/// per request). Both `_wall_ms` keys ride the comparison gate, so a
/// slowdown in the request-scoped capture path — the dual-sink span
/// recording, the per-thread sink handoff — trips CI without a daemon
/// in the loop. The captured span count is deterministic drift
/// telemetry: it changes only when the pipeline's span structure does.
fn obs_overhead(repeats: usize, report: &mut RegressReport) {
    let net = NetworkSpec::proton_8();
    let options = SynthesisOptions::with_wavelengths(8);
    let untraced = median_ms(repeats, || {
        let design = Synthesizer::new(options.clone())
            .synthesize(&net)
            .expect("pinned obs workload is feasible");
        assert!(design.provenance.audit.is_clean());
    });
    let mut spans = 0usize;
    let traced = median_ms(repeats, || {
        let ctx = xring_obs::RequestCtx::new(xring_obs::RequestId::mint(0xb0b0, 1, 2));
        let scope = ctx.attach();
        let design = Synthesizer::new(options.clone())
            .synthesize(&net)
            .expect("pinned obs workload is feasible");
        assert!(design.provenance.audit.is_clean());
        drop(scope);
        spans = ctx.finish().spans.len();
    });
    assert!(
        spans > 0,
        "request-scoped capture recorded no spans — the sink is not wired"
    );
    report
        .metrics
        .insert("obs_untraced_wall_ms".into(), untraced);
    report.metrics.insert("obs_traced_wall_ms".into(), traced);
    report
        .metrics
        .insert("obs_request_spans".into(), spans as f64);
}

/// Incremental edit-loop scenario on the pinned irregular 16-node
/// floorplan: drop one traffic demand and re-synthesize. The cold
/// reference pays the full pipeline on a fresh engine; the incremental
/// run replays the clean phase prefix (ring MILP, shortcuts — the bulk
/// of the wall) from the engine's phase-artifact store and recomputes
/// only the mapping suffix. Both `_wall_ms` keys gate the comparison;
/// the phase count and byte-identity are deterministic and asserted
/// outright.
fn edit_loop(repeats: usize, report: &mut RegressReport) -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::irregular(16, 8_000, 5)?;
    let options = SynthesisOptions::with_wavelengths(8);
    let mut pairs = options.traffic.pairs(&net);
    pairs.remove(0);
    let mut edited_options = options.clone();
    edited_options.traffic = Traffic::Custom(pairs);
    let base = SynthesisJob::new("edit-base", net.clone(), options);
    let edited = SynthesisJob::new("edit", net, edited_options);

    // Cold reference: full synthesis of the edited spec, nothing cached.
    let mut cold_design = None;
    let cold_wall = median_ms(repeats, || {
        let out = Engine::new()
            .with_workers(1)
            .resynthesize(&edited, &edited)
            .expect("pinned edit workload is feasible");
        cold_design = Some(out.design);
    });
    // Incremental: a cold base run seeds the artifact store (outside
    // the timed section), then the edit replays the clean prefix.
    let mut phases_reused = 0usize;
    let mut inc_design = None;
    let mut engines: Vec<Engine> = (0..repeats)
        .map(|_| {
            let engine = Engine::new().with_workers(1);
            engine
                .resynthesize(&base, &base)
                .expect("pinned edit workload is feasible");
            engine
        })
        .collect();
    let inc_wall = median_ms(repeats, || {
        let engine = engines.pop().expect("one seeded engine per repeat");
        let out = engine
            .resynthesize(&base, &edited)
            .expect("pinned edit workload is feasible");
        phases_reused = out.phases_reused;
        inc_design = Some(out.design);
    });
    // A single-demand edit leaves the ring and shortcut keys clean, so
    // exactly those two phases replay and the assembled design matches
    // a cold synthesis byte for byte.
    assert_eq!(phases_reused, 2, "edit must replay ring + shortcut");
    let (cold_design, inc_design) = (
        cold_design.expect("cold run happened"),
        inc_design.expect("incremental run happened"),
    );
    assert_eq!(
        cold_design.describe(),
        inc_design.describe(),
        "incremental edit must be byte-identical to a cold synthesis"
    );
    report.metrics.insert("edit_cold_wall_ms".into(), cold_wall);
    report
        .metrics
        .insert("edit_incremental_wall_ms".into(), inc_wall);
    report
        .metrics
        .insert("edit_speedup".into(), cold_wall / inc_wall.max(1e-6));
    report
        .metrics
        .insert("edit_phases_reused".into(), phases_reused as f64);
    Ok(())
}

/// Sustained-load scenario against an in-process `xring-serve` daemon:
/// 4 concurrent clients firing `/synth` requests back-to-back over a
/// small spec mix (so the shared cache is exercised after the first
/// round). Reports end-to-end wall, throughput, and client-observed
/// p50/p99 request latency. All `_wall_ms` keys ride the usual
/// comparison gate; the per-request percentiles sit far below
/// [`WALL_NOISE_FLOOR_MS`], so only a catastrophic serving regression
/// (not scheduler jitter) can trip them.
fn serve_load(quick: bool, report: &mut RegressReport) -> Result<(), Box<dyn std::error::Error>> {
    const CLIENTS: usize = 4;
    let per_client = if quick { 8 } else { 25 };
    // Admission sized so the fixed concurrency can never shed: the
    // scenario measures serving speed, not the 429 path (the protocol
    // e2e suite covers shedding).
    let mut server = Server::start(ServeConfig {
        workers: 2,
        max_inflight: CLIENTS,
        queue_depth: 16,
        ..ServeConfig::default()
    })?;
    let addr = server.addr();

    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let wl = [2usize, 4, 8][(c + i) % 3];
                        let body = format!(
                            "{{\"label\": \"load-c{c}-{i}\", \
                             \"net\": {{\"named\": \"proton_8\"}}, \
                             \"options\": {{\"max_wavelengths\": {wl}}}}}"
                        );
                        let t = Instant::now();
                        let (status, resp) = client::http_request(addr, "POST", "/synth", &body)
                            .expect("serve load request reaches the daemon");
                        assert_eq!(status, 200, "non-200 under load: {resp}");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let total = (CLIENTS * per_client) as f64;
    assert_eq!(
        server.metrics().shed(),
        0,
        "load scenario below the admission limit must not shed"
    );
    assert_eq!(server.metrics().ok(), total as u64);
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
    report.metrics.insert("serve_load_wall_ms".into(), wall_ms);
    report
        .metrics
        .insert("serve_req_per_s".into(), total / (wall_ms / 1e3));
    report.metrics.insert("serve_p50_wall_ms".into(), pct(0.50));
    report.metrics.insert("serve_p99_wall_ms".into(), pct(0.99));
    Ok(())
}

/// The batch workload: the paper's 8-node floorplan at `#wl` 2/4/8,
/// submitted twice so the second round exercises the design cache.
fn batch_jobs() -> Vec<SynthesisJob> {
    let net = NetworkSpec::proton_8();
    let mut jobs = Vec::new();
    for round in 0..2 {
        for wl in [2usize, 4, 8] {
            jobs.push(SynthesisJob::new(
                format!("r{round} #wl={wl}"),
                net.clone(),
                SynthesisOptions::with_wavelengths(wl),
            ));
        }
    }
    jobs
}

/// Medians `repeats` timed runs of `f`, in milliseconds.
fn median_ms<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let mut walls: Vec<f64> = (0..repeats)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));
    walls[walls.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, f64)]) -> RegressReport {
        let mut r = RegressReport::new();
        for (k, v) in pairs {
            r.metrics.insert((*k).to_owned(), *v);
        }
        r
    }

    #[test]
    fn json_roundtrips() {
        let r = report(&[("synth_n8_wall_ms", 12.5), ("milp_bnb_nodes", 42.0)]);
        let text = r.to_json();
        assert!(text.starts_with(r#"{"schema":"xring-regress-v1","metrics":{"#));
        let back = RegressReport::parse_json(&text).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RegressReport::parse_json("").is_err());
        assert!(RegressReport::parse_json("{}").is_err());
        assert!(RegressReport::parse_json(r#"{"schema":"x"}"#).is_err());
        assert!(RegressReport::parse_json(r#"{"schema":"x","metrics":{"a":nope}}"#).is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let text = "\n{ \"schema\" : \"s\" ,\n  \"metrics\" : { \"a\\\"b\" : -1.5e2 } }";
        let r = RegressReport::parse_json(text).expect("parses");
        assert_eq!(r.schema, "s");
        assert_eq!(r.metrics["a\"b"], -150.0);
    }

    #[test]
    fn compare_gates_only_wall_metrics() {
        let old = report(&[
            ("synth_n8_wall_ms", 100.0),
            ("milp_bnb_nodes", 10.0),
            ("batch_j1_jobs_per_s", 100.0),
        ]);
        // +50% wall regression (well past floor), nodes doubled,
        // throughput halved: only the wall metric gates.
        let new = report(&[
            ("synth_n8_wall_ms", 150.0),
            ("milp_bnb_nodes", 20.0),
            ("batch_j1_jobs_per_s", 50.0),
        ]);
        let deltas = compare(&old, &new);
        let regressed: Vec<&str> = deltas
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.name.as_str())
            .collect();
        assert_eq!(regressed, vec!["synth_n8_wall_ms"]);
    }

    #[test]
    fn compare_tolerates_noise_under_the_floor() {
        // +100% relative but only +2ms absolute: under the noise floor.
        let old = report(&[("synth_n4_wall_ms", 2.0)]);
        let new = report(&[("synth_n4_wall_ms", 4.0)]);
        assert!(compare(&old, &new).iter().all(|d| !d.regressed));
        // +16% and +32ms: past both gates.
        let old = report(&[("synth_n16_wall_ms", 200.0)]);
        let new = report(&[("synth_n16_wall_ms", 232.0)]);
        assert!(compare(&old, &new).iter().any(|d| d.regressed));
    }

    #[test]
    fn compare_reports_added_and_removed_metrics() {
        let old = report(&[("gone_wall_ms", 10.0)]);
        let new = report(&[("fresh_wall_ms", 10.0)]);
        let deltas = compare(&old, &new);
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| !d.regressed));
        assert!(deltas.iter().any(|d| d.render().contains("(new)")));
        assert!(deltas.iter().any(|d| d.render().contains("(removed)")));
    }

    #[test]
    fn quick_suite_produces_the_pinned_metrics() {
        let r = run_suite(true).expect("suite runs");
        for key in [
            "synth_n4_wall_ms",
            "synth_n8_wall_ms",
            "synth_n16_wall_ms",
            "ring_irr16_wall_ms",
            "batch_j1_wall_ms",
            "batch_j4_wall_ms",
            "batch_j1_jobs_per_s",
            "batch_j4_jobs_per_s",
            "batch_cache_hit_rate",
            "bnb_warm_start_rate",
            "milp_bnb_nodes",
            "ring_irr64_wall_ms",
            "ring_irr64_t4_wall_ms",
            "bnb_irr64_nodes",
            "bnb_irr64_speedup_t4",
            "synth_irr128_wall_ms",
            "fault_sweep_wall_ms",
            "fault_sweep_scenarios",
            "fault_margin_spare0",
            "fault_margin_spare1",
            "edit_cold_wall_ms",
            "edit_incremental_wall_ms",
            "edit_speedup",
            "edit_phases_reused",
            "obs_untraced_wall_ms",
            "obs_traced_wall_ms",
            "obs_request_spans",
            "serve_load_wall_ms",
            "serve_req_per_s",
            "serve_p50_wall_ms",
            "serve_p99_wall_ms",
        ] {
            let v = r
                .metrics
                .get(key)
                .unwrap_or_else(|| panic!("missing {key}"));
            assert!(v.is_finite() && *v >= 0.0, "{key} = {v}");
        }
        assert_eq!(r.metrics["batch_cache_hit_rate"], 0.5);
        // The spared level is proven fully survivable at synthesis time;
        // the zero-spare level necessarily loses demands on MRR drops.
        assert_eq!(r.metrics["fault_margin_spare1"], 1.0);
        assert!(r.metrics["fault_margin_spare0"] < 1.0);
        assert!(r.metrics["fault_sweep_scenarios"] > 0.0);
        // A single-demand edit keeps the ring and shortcut phase keys
        // clean — the incremental run must replay exactly those two.
        assert_eq!(r.metrics["edit_phases_reused"], 2.0);
        assert!(r.metrics["edit_speedup"] > 1.0);
        assert!(r.metrics["obs_request_spans"] >= 5.0);
        // The 64-node ring MILP explores a real tree, deterministically
        // across thread counts (the t4 run asserts the node count).
        assert!(r.metrics["bnb_irr64_nodes"] >= 8.0);
        assert!(r.metrics["bnb_irr64_speedup_t4"] > 0.0);
        // The revised backend (the default) reuses the parent basis on
        // nearly every branch-and-bound child of the irregular ring.
        assert!(
            r.metrics["bnb_warm_start_rate"] > 0.8,
            "warm-start rate {} too low",
            r.metrics["bnb_warm_start_rate"]
        );
        // Same build, same suite: the comparison gate must pass. A
        // single debug-mode repeat can jitter past the 15 % / 25 ms
        // gate under scheduler noise, so allow a retry — a real
        // regression fails every attempt.
        let mut attempts = 0;
        loop {
            let again = run_suite(true).expect("suite runs");
            if compare(&r, &again).iter().all(|d| !d.regressed) {
                break;
            }
            attempts += 1;
            assert!(
                attempts < 3,
                "self-comparison regressed on {attempts} consecutive re-runs"
            );
        }
    }
}
