//! Criterion bench for experiment E8: synthesis runtime vs network size
//! (the paper's "synthesizes a 16-node router including a PDN within one
//! second" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xring_core::{NetworkSpec, RingAlgorithm, SynthesisOptions, Synthesizer};

fn bench_synthesis_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis_time");
    g.sample_size(10);

    for n in [4usize, 8, 12, 16, 20, 24, 32] {
        let cols = (n / 4).max(1);
        let rows = n / cols;
        let net = NetworkSpec::regular_grid(rows, cols, 2_000).expect("grid");
        let wl = n.max(4);
        g.bench_with_input(BenchmarkId::new("milp_full_pipeline", n), &net, |b, net| {
            let synth = Synthesizer::new(SynthesisOptions::with_wavelengths(wl));
            b.iter(|| synth.synthesize(net).expect("synthesis"));
        });
        g.bench_with_input(
            BenchmarkId::new("heuristic_full_pipeline", n),
            &net,
            |b, net| {
                let synth = Synthesizer::new(SynthesisOptions {
                    ring_algorithm: RingAlgorithm::Heuristic,
                    ..SynthesisOptions::with_wavelengths(wl)
                });
                b.iter(|| synth.synthesize(net).expect("synthesis"));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_synthesis_time);
criterion_main!(benches);
