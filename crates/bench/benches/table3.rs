//! Criterion bench regenerating **Table III** (experiment E3): ORing vs
//! XRing with PDNs on the 16-node network.

use criterion::{criterion_group, criterion_main, Criterion};
use xring_bench::tables::{oring_report, print_sections, table3};
use xring_core::NetworkSpec;
use xring_engine::Engine;
use xring_phot::{CrosstalkParams, LossParams, PowerParams};

fn bench_table3(c: &mut Criterion) {
    let engine = Engine::new();
    print_sections(&table3(&engine).expect("table3"));

    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("full_table", |b| {
        // Fresh engine per iteration: time synthesis, not cache hits.
        b.iter(|| table3(&Engine::new()).expect("table3"));
    });
    let net = NetworkSpec::psion_16();
    let loss = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    let power = PowerParams::default();
    g.bench_function("oring_16_with_pdn", |b| {
        b.iter(|| oring_report(&net, 12, true, &loss, Some(&xtalk), &power).expect("oring"));
    });
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
