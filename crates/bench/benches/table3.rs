//! Criterion bench regenerating **Table III** (experiment E3): ORing vs
//! XRing with PDNs on the 16-node network.

use criterion::{criterion_group, criterion_main, Criterion};
use xring_bench::tables::{oring_report, print_sections, table3};
use xring_core::NetworkSpec;
use xring_phot::{CrosstalkParams, LossParams, PowerParams};

fn bench_table3(c: &mut Criterion) {
    print_sections(&table3().expect("table3"));

    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("full_table", |b| {
        b.iter(|| table3().expect("table3"));
    });
    let net = NetworkSpec::psion_16();
    let loss = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    let power = PowerParams::default();
    g.bench_function("oring_16_with_pdn", |b| {
        b.iter(|| oring_report(&net, 12, true, &loss, Some(&xtalk), &power).expect("oring"));
    });
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
