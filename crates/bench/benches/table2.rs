//! Criterion bench regenerating **Table II** (experiment E2): ORNoC vs
//! XRing with PDNs on 8-/16-/32-node networks.

use criterion::{criterion_group, criterion_main, Criterion};
use xring_bench::tables::{ornoc_report, print_sections, table2, xring_report, RingContext};
use xring_core::NetworkSpec;
use xring_engine::Engine;
use xring_phot::{CrosstalkParams, LossParams, PowerParams};

fn bench_table2(c: &mut Criterion) {
    print_sections(&table2(&Engine::new()).expect("table2"));

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);

    for (name, net, wl) in [
        ("8_node", NetworkSpec::psion_8(), 8),
        ("16_node", NetworkSpec::psion_16(), 14),
        ("32_node", NetworkSpec::psion_32(), 24),
    ] {
        let ctx = RingContext::milp(net).expect("ring");
        let loss = LossParams::oring();
        let xtalk = CrosstalkParams::nikdast();
        let power = PowerParams::default();
        g.bench_function(format!("xring_{name}_with_pdn"), |b| {
            b.iter(|| xring_report(&ctx, wl, true, &loss, Some(&xtalk), &power).expect("xring"));
        });
        g.bench_function(format!("ornoc_{name}_with_pdn"), |b| {
            b.iter(|| ornoc_report(&ctx, wl, true, &loss, Some(&xtalk), &power));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
