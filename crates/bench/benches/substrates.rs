//! Micro-benchmarks of the substrates: the MILP solver, the geometry
//! kernel's conflict classification, and the noise-propagation engine.

use criterion::{criterion_group, criterion_main, Criterion};
use xring_core::{NetworkSpec, RingBuilder, SynthesisOptions, Synthesizer};
use xring_geom::{classify_edge_pair, Point, TwoSat};
use xring_milp::{BranchAndBound, LinExpr, Model, Relation};
use xring_phot::{CrosstalkParams, LossParams};

fn bench_milp(c: &mut Criterion) {
    let mut g = c.benchmark_group("milp");
    g.sample_size(10);

    // A 12-city assignment-relaxed TSP-like model (degree + pair
    // constraints), representative of the ring MILP's structure.
    g.bench_function("ring_milp_12", |b| {
        let net = NetworkSpec::regular_grid(3, 4, 1_000).expect("grid");
        b.iter(|| RingBuilder::new().build(&net).expect("ring"));
    });

    g.bench_function("knapsack_30", |b| {
        b.iter(|| {
            let mut m = Model::new();
            let vars: Vec<_> = (0..30).map(|i| m.add_binary(format!("x{i}"))).collect();
            let mut w = LinExpr::new();
            let mut obj = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                w += (v, (i % 7 + 1) as f64);
                obj += (v, -((i % 5 + 1) as f64));
            }
            m.add_constraint(w, Relation::Le, 40.0);
            m.set_objective(obj);
            BranchAndBound::new().solve(&m).expect("feasible")
        });
    });
    g.finish();
}

fn bench_geom(c: &mut Criterion) {
    let mut g = c.benchmark_group("geom");
    g.bench_function("classify_1k_edge_pairs", |b| {
        let pts: Vec<Point> = (0..64)
            .map(|i| Point::new((i % 8) * 997, (i / 8) * 1_003))
            .collect();
        b.iter(|| {
            let mut conflicting = 0usize;
            for i in 0..32 {
                for j in 32..64 {
                    if classify_edge_pair(pts[i], pts[63 - i], pts[j], pts[95 - j]).is_conflicting()
                    {
                        conflicting += 1;
                    }
                }
            }
            conflicting
        });
    });

    g.bench_function("twosat_10k_vars", |b| {
        b.iter(|| {
            let n = 10_000;
            let mut sat = TwoSat::new(n);
            for v in 0..n - 1 {
                sat.add_clause(v, false, v + 1, true);
            }
            sat.force(0, true);
            sat.solve().expect("sat")
        });
    });
    g.finish();
}

fn bench_noise(c: &mut Criterion) {
    let mut g = c.benchmark_group("noise");
    g.sample_size(10);
    let net = NetworkSpec::psion_16();
    let design = Synthesizer::new(SynthesisOptions::with_wavelengths(14))
        .synthesize(&net)
        .expect("synthesized");
    let loss = LossParams::oring();
    let xtalk = CrosstalkParams::nikdast();
    g.bench_function("evaluate_noise_16", |b| {
        b.iter(|| design.layout.evaluate_noise(&loss, &xtalk));
    });
    g.bench_function("trace_all_16", |b| {
        b.iter(|| {
            (0..design.layout.signals.len() as u32)
                .map(|i| design.layout.trace(xring_phot::SignalId(i)).len())
                .sum::<usize>()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_milp, bench_geom, bench_noise);
criterion_main!(benches);
