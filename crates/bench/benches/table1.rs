//! Criterion bench regenerating **Table I** (experiment E1): times the
//! full no-PDN comparison flow per router family and prints the rows once.

use criterion::{criterion_group, criterion_main, Criterion};
use xring_bench::tables::{print_sections, table1, xring_report, RingContext};
use xring_core::NetworkSpec;
use xring_engine::Engine;
use xring_phot::{LossParams, PowerParams};

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated table once so bench logs double as results.
    let engine = Engine::new();
    print_sections(&table1(&engine).expect("table1"));

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);

    g.bench_function("full_table", |b| {
        // Fresh engine per iteration: time synthesis, not cache hits.
        b.iter(|| table1(&Engine::new()).expect("table1"));
    });

    for (name, net, wl) in [
        ("xring_8_no_pdn", NetworkSpec::proton_8(), 7),
        ("xring_16_no_pdn", NetworkSpec::proton_16(), 14),
    ] {
        let ctx = RingContext::milp(net).expect("ring");
        let loss = LossParams::proton_plus();
        let power = PowerParams::default();
        g.bench_function(name, |b| {
            b.iter(|| xring_report(&ctx, wl, false, &loss, None, &power).expect("xring"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
