//! Criterion bench for the design-choice ablations (experiments E5–E7).

use criterion::{criterion_group, criterion_main, Criterion};
use xring_bench::tables::{ablation_pdn, ablation_ring, ablation_shortcuts, print_sections};
use xring_engine::Engine;

fn bench_ablation(c: &mut Criterion) {
    let engine = Engine::new();
    print_sections(&ablation_shortcuts(&engine).expect("E5"));
    print_sections(&ablation_pdn(&engine).expect("E6"));
    print_sections(&ablation_ring(&engine).expect("E7"));

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("shortcuts_e5", |b| {
        // Fresh engines per iteration: time synthesis, not cache hits.
        b.iter(|| ablation_shortcuts(&Engine::new()).expect("E5"));
    });
    g.bench_function("pdn_e6", |b| {
        b.iter(|| ablation_pdn(&Engine::new()).expect("E6"));
    });
    g.bench_function("ring_e7", |b| {
        b.iter(|| ablation_ring(&Engine::new()).expect("E7"));
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
