//! Axis-aligned waveguide segments with exact intersection predicates.

use crate::Point;
use std::fmt;

/// An axis-aligned segment between two points.
///
/// Degenerate (zero-length) segments are allowed; they arise when an
/// L-shaped route degenerates because its endpoints share a coordinate.
///
/// # Example
///
/// ```
/// use xring_geom::{Point, Segment, SegmentIntersection};
///
/// let h = Segment::new(Point::new(0, 5), Point::new(10, 5));
/// let v = Segment::new(Point::new(4, 0), Point::new(4, 9));
/// assert_eq!(
///     h.intersection(&v),
///     SegmentIntersection::Point(Point::new(4, 5))
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    a: Point,
    b: Point,
}

/// Exact classification of how two axis-aligned segments meet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentIntersection {
    /// The segments share no point.
    None,
    /// The segments share exactly one point.
    Point(Point),
    /// The segments are collinear and share a sub-segment of positive
    /// length (a physical waveguide overlap — always illegal).
    Overlap(Segment),
}

impl Segment {
    /// Creates a segment between two points.
    ///
    /// # Panics
    ///
    /// Panics if the points are not axis-aligned (neither x nor y is
    /// shared): only rectilinear waveguides exist in this kernel.
    pub fn new(a: Point, b: Point) -> Self {
        assert!(
            a.is_axis_aligned_with(b),
            "segment endpoints must share an axis: {a} vs {b}"
        );
        Segment { a, b }
    }

    /// First endpoint (as constructed).
    pub fn start(&self) -> Point {
        self.a
    }

    /// Second endpoint (as constructed).
    pub fn end(&self) -> Point {
        self.b
    }

    /// Segment length in µm (Manhattan == Euclidean for axis-aligned).
    pub fn length(&self) -> i64 {
        self.a.manhattan_distance(self.b)
    }

    /// True if this is a zero-length (degenerate) segment.
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// True if this segment is horizontal (constant y). Degenerate segments
    /// count as both horizontal and vertical.
    pub fn is_horizontal(&self) -> bool {
        self.a.y == self.b.y
    }

    /// True if this segment is vertical (constant x).
    pub fn is_vertical(&self) -> bool {
        self.a.x == self.b.x
    }

    /// True if `p` lies on this segment (endpoints included).
    pub fn contains(&self, p: Point) -> bool {
        let (xlo, xhi) = minmax(self.a.x, self.b.x);
        let (ylo, yhi) = minmax(self.a.y, self.b.y);
        // An axis-aligned segment is exactly its bounding box.
        p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi
    }

    /// Exact intersection classification of two axis-aligned segments.
    pub fn intersection(&self, other: &Segment) -> SegmentIntersection {
        let (axlo, axhi) = minmax(self.a.x, self.b.x);
        let (aylo, ayhi) = minmax(self.a.y, self.b.y);
        let (bxlo, bxhi) = minmax(other.a.x, other.b.x);
        let (bylo, byhi) = minmax(other.a.y, other.b.y);

        // Intersect bounding boxes; for axis-aligned segments the
        // intersection of the segments is the intersection of the boxes
        // intersected with both lines, which for any pair of axis-aligned
        // segments is just the box intersection (each segment *is* its box).
        let xlo = axlo.max(bxlo);
        let xhi = axhi.min(bxhi);
        let ylo = aylo.max(bylo);
        let yhi = ayhi.min(byhi);
        if xlo > xhi || ylo > yhi {
            return SegmentIntersection::None;
        }
        if xlo == xhi && ylo == yhi {
            return SegmentIntersection::Point(Point::new(xlo, ylo));
        }
        // A box intersection with positive extent in some axis: possible
        // only when the segments are collinear (both horizontal on the same
        // y, or both vertical on the same x) — a physical overlap.
        SegmentIntersection::Overlap(Segment {
            a: Point::new(xlo, ylo),
            b: Point::new(xhi, yhi),
        })
    }

    /// True if the segments share at least one point.
    pub fn intersects(&self, other: &Segment) -> bool {
        self.intersection(other) != SegmentIntersection::None
    }

    /// True if the segments *properly cross*: they share exactly one point
    /// that is interior to **both** segments (a real waveguide crossing,
    /// not an endpoint contact or a bend).
    pub fn crosses_properly(&self, other: &Segment) -> bool {
        match self.intersection(other) {
            SegmentIntersection::Point(p) => {
                self.point_is_interior(p) && other.point_is_interior(p)
            }
            _ => false,
        }
    }

    /// True if `p` lies on this segment strictly between the endpoints.
    pub fn point_is_interior(&self, p: Point) -> bool {
        self.contains(p) && p != self.a && p != self.b
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} -> {}]", self.a, self.b)
    }
}

fn minmax(a: i64, b: i64) -> (i64, i64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: i64, ay: i64, bx: i64, by: i64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    #[should_panic(expected = "share an axis")]
    fn diagonal_segment_panics() {
        let _ = seg(0, 0, 1, 1);
    }

    #[test]
    fn perpendicular_crossing() {
        let h = seg(0, 5, 10, 5);
        let v = seg(3, 0, 3, 10);
        assert_eq!(
            h.intersection(&v),
            SegmentIntersection::Point(Point::new(3, 5))
        );
        assert!(h.crosses_properly(&v));
    }

    #[test]
    fn t_junction_is_not_proper_crossing() {
        let h = seg(0, 5, 10, 5);
        let v = seg(3, 5, 3, 10); // touches h at its own endpoint
        assert_eq!(
            h.intersection(&v),
            SegmentIntersection::Point(Point::new(3, 5))
        );
        assert!(!h.crosses_properly(&v));
    }

    #[test]
    fn corner_contact_is_not_proper_crossing() {
        let h = seg(0, 0, 5, 0);
        let v = seg(5, 0, 5, 5);
        assert_eq!(
            h.intersection(&v),
            SegmentIntersection::Point(Point::new(5, 0))
        );
        assert!(!h.crosses_properly(&v));
    }

    #[test]
    fn disjoint_parallel() {
        let a = seg(0, 0, 10, 0);
        let b = seg(0, 1, 10, 1);
        assert_eq!(a.intersection(&b), SegmentIntersection::None);
    }

    #[test]
    fn collinear_overlap() {
        let a = seg(0, 0, 10, 0);
        let b = seg(5, 0, 15, 0);
        match a.intersection(&b) {
            SegmentIntersection::Overlap(s) => {
                assert_eq!(s.length(), 5);
                assert!(s.contains(Point::new(7, 0)));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn collinear_endpoint_touch_is_a_point() {
        let a = seg(0, 0, 10, 0);
        let b = seg(10, 0, 20, 0);
        assert_eq!(
            a.intersection(&b),
            SegmentIntersection::Point(Point::new(10, 0))
        );
    }

    #[test]
    fn degenerate_segment_on_segment() {
        let a = seg(0, 0, 10, 0);
        let p = seg(4, 0, 4, 0);
        assert_eq!(
            a.intersection(&p),
            SegmentIntersection::Point(Point::new(4, 0))
        );
        assert!(p.is_degenerate());
    }

    #[test]
    fn contains_and_interior() {
        let a = seg(0, 0, 10, 0);
        assert!(a.contains(Point::new(0, 0)));
        assert!(a.contains(Point::new(10, 0)));
        assert!(a.contains(Point::new(5, 0)));
        assert!(!a.contains(Point::new(5, 1)));
        assert!(a.point_is_interior(Point::new(5, 0)));
        assert!(!a.point_is_interior(Point::new(0, 0)));
    }

    #[test]
    fn orientation_flags() {
        assert!(seg(0, 0, 5, 0).is_horizontal());
        assert!(!seg(0, 0, 5, 0).is_vertical());
        assert!(seg(0, 0, 0, 5).is_vertical());
        let d = seg(3, 3, 3, 3);
        assert!(d.is_horizontal() && d.is_vertical());
    }
}
