//! A 2-SAT solver (implication graph + Tarjan SCC).
//!
//! The ring-construction MILP guarantees that every *pair* of selected
//! edges has a crossing-free option combination, but a globally consistent
//! assignment of one option per edge still has to be found. Encoding each
//! edge's option as a boolean variable and each crossing combination as a
//! forbidden pair yields a 2-SAT instance, solved here in linear time.
//!
//! # Example
//!
//! ```
//! use xring_geom::TwoSat;
//!
//! let mut sat = TwoSat::new(2);
//! // (x0 OR x1) AND (NOT x0 OR x1)  =>  x1 must be true
//! sat.add_clause(0, true, 1, true);
//! sat.add_clause(0, false, 1, true);
//! let solution = sat.solve().expect("satisfiable");
//! assert!(solution.value(1));
//! ```

/// A 2-SAT instance over `n` boolean variables.
#[derive(Debug, Clone)]
pub struct TwoSat {
    n: usize,
    /// Implication graph: 2n literal nodes. Literal `2v` is "v is true",
    /// `2v + 1` is "v is false".
    adj: Vec<Vec<u32>>,
}

/// A satisfying assignment returned by [`TwoSat::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoSatSolution {
    values: Vec<bool>,
}

impl TwoSatSolution {
    /// The value assigned to variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn value(&self, v: usize) -> bool {
        self.values[v]
    }

    /// All assigned values, indexed by variable.
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

fn lit(var: usize, positive: bool) -> u32 {
    (2 * var + usize::from(!positive)) as u32
}

impl TwoSat {
    /// Creates an instance with `n` variables and no clauses.
    pub fn new(n: usize) -> Self {
        TwoSat {
            n,
            adj: vec![Vec::new(); 2 * n],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Adds the clause `(a == a_val) OR (b == b_val)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_clause(&mut self, a: usize, a_val: bool, b: usize, b_val: bool) {
        assert!(a < self.n && b < self.n, "variable out of range");
        // (la OR lb)  ==  (!la -> lb) AND (!lb -> la)
        let la = lit(a, a_val);
        let lb = lit(b, b_val);
        self.adj[(la ^ 1) as usize].push(lb);
        self.adj[(lb ^ 1) as usize].push(la);
    }

    /// Forbids the combination `(a == a_val) AND (b == b_val)`, i.e. adds
    /// the clause `(a != a_val) OR (b != b_val)`.
    pub fn forbid_pair(&mut self, a: usize, a_val: bool, b: usize, b_val: bool) {
        self.add_clause(a, !a_val, b, !b_val);
    }

    /// Forces variable `v` to take `val`.
    pub fn force(&mut self, v: usize, val: bool) {
        assert!(v < self.n, "variable out of range");
        // (v == val) as a one-literal clause: !lit -> lit
        let l = lit(v, val);
        self.adj[(l ^ 1) as usize].push(l);
    }

    /// Solves the instance. Returns `None` when unsatisfiable.
    ///
    /// Runs Tarjan's SCC on the implication graph (iteratively, so deep
    /// graphs cannot overflow the stack) and assigns each variable from
    /// the reverse topological order of its literals' components.
    pub fn solve(&self) -> Option<TwoSatSolution> {
        let m = 2 * self.n;
        let mut index = vec![u32::MAX; m];
        let mut low = vec![0u32; m];
        let mut on_stack = vec![false; m];
        let mut comp = vec![u32::MAX; m];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut next_comp = 0u32;

        // Iterative Tarjan.
        #[derive(Clone, Copy)]
        struct Frame {
            v: u32,
            child_idx: u32,
        }
        let mut call: Vec<Frame> = Vec::new();
        for start in 0..m as u32 {
            if index[start as usize] != u32::MAX {
                continue;
            }
            call.push(Frame {
                v: start,
                child_idx: 0,
            });
            index[start as usize] = next_index;
            low[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some(frame) = call.last_mut() {
                let v = frame.v as usize;
                if (frame.child_idx as usize) < self.adj[v].len() {
                    let w = self.adj[v][frame.child_idx as usize];
                    frame.child_idx += 1;
                    let wu = w as usize;
                    if index[wu] == u32::MAX {
                        index[wu] = next_index;
                        low[wu] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[wu] = true;
                        call.push(Frame { v: w, child_idx: 0 });
                    } else if on_stack[wu] {
                        low[v] = low[v].min(index[wu]);
                    }
                } else {
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp[w as usize] = next_comp;
                            if w as usize == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                    let finished = *frame;
                    call.pop();
                    if let Some(parent) = call.last_mut() {
                        let pv = parent.v as usize;
                        low[pv] = low[pv].min(low[finished.v as usize]);
                    }
                }
            }
        }

        let mut values = vec![false; self.n];
        for v in 0..self.n {
            let pos = comp[2 * v];
            let neg = comp[2 * v + 1];
            if pos == neg {
                return None;
            }
            // Tarjan numbers components in reverse topological order, so a
            // literal whose component id is SMALLER comes LATER in the
            // topological order and should be chosen.
            values[v] = pos < neg;
        }
        Some(TwoSatSolution { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivially_satisfiable() {
        let sat = TwoSat::new(3);
        let s = sat.solve().expect("no clauses is sat");
        assert_eq!(s.values().len(), 3);
    }

    #[test]
    fn forced_variable() {
        let mut sat = TwoSat::new(2);
        sat.force(0, true);
        sat.force(1, false);
        let s = sat.solve().expect("sat");
        assert!(s.value(0));
        assert!(!s.value(1));
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut sat = TwoSat::new(1);
        sat.force(0, true);
        sat.force(0, false);
        assert!(sat.solve().is_none());
    }

    #[test]
    fn implication_chain() {
        // x0 -> x1 -> x2, and x0 forced true.
        let mut sat = TwoSat::new(3);
        sat.add_clause(0, false, 1, true); // !x0 or x1
        sat.add_clause(1, false, 2, true); // !x1 or x2
        sat.force(0, true);
        let s = sat.solve().expect("sat");
        assert!(s.value(0) && s.value(1) && s.value(2));
    }

    #[test]
    fn forbid_pair_semantics() {
        let mut sat = TwoSat::new(2);
        sat.forbid_pair(0, true, 1, true);
        sat.force(0, true);
        let s = sat.solve().expect("sat");
        assert!(s.value(0));
        assert!(!s.value(1));
    }

    #[test]
    fn xor_constraint() {
        // x0 XOR x1: forbid (T,T) and (F,F).
        let mut sat = TwoSat::new(2);
        sat.forbid_pair(0, true, 1, true);
        sat.forbid_pair(0, false, 1, false);
        let s = sat.solve().expect("sat");
        assert_ne!(s.value(0), s.value(1));
    }

    #[test]
    fn unsat_cycle() {
        // x0 != x1, x1 != x2, x2 != x0 — odd anti-cycle, unsat.
        let mut sat = TwoSat::new(3);
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            sat.forbid_pair(a, true, b, true);
            sat.forbid_pair(a, false, b, false);
        }
        assert!(sat.solve().is_none());
    }

    #[test]
    fn satisfying_assignment_satisfies_all_clauses() {
        // Random-ish instance, then verify by brute re-check.
        let clauses = [
            (0, true, 1, false),
            (1, true, 2, true),
            (2, false, 3, true),
            (3, false, 0, false),
            (1, false, 3, true),
        ];
        let mut sat = TwoSat::new(4);
        for &(a, av, b, bv) in &clauses {
            sat.add_clause(a, av, b, bv);
        }
        let s = sat.solve().expect("sat");
        for &(a, av, b, bv) in &clauses {
            assert!(s.value(a) == av || s.value(b) == bv, "clause violated");
        }
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let n = 50_000;
        let mut sat = TwoSat::new(n);
        for v in 0..n - 1 {
            sat.add_clause(v, false, v + 1, true); // x_v -> x_{v+1}
        }
        sat.force(0, true);
        let s = sat.solve().expect("sat");
        assert!(s.value(n - 1));
    }
}
