//! Exact integer points in the chip plane.
//!
//! All coordinates are in **micrometres** (µm). Integer coordinates make
//! every crossing predicate in this crate exact; the photonic loss model
//! converts to mm/cm only when computing dB values.

use std::fmt;
use std::ops::{Add, Sub};

/// A point on the chip plane, in micrometres.
///
/// # Example
///
/// ```
/// use xring_geom::Point;
///
/// let a = Point::new(100, 200);
/// let b = Point::new(400, -200);
/// assert_eq!(a.manhattan_distance(b), 700);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Horizontal coordinate in µm.
    pub x: i64,
    /// Vertical coordinate in µm.
    pub y: i64,
}

impl Point {
    /// Creates a point from µm coordinates.
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Manhattan (L1) distance to `other`, in µm.
    ///
    /// This is the length of any staircase-monotone rectilinear route
    /// between the two points, and in particular of both L-shaped routing
    /// options of [`LRoute`](crate::LRoute).
    pub fn manhattan_distance(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance, used only for reporting (never for predicates).
    pub fn euclidean_distance(self, other: Point) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dy = (self.y - other.y) as f64;
        (dx * dx + dy * dy).sqrt()
    }

    /// The L-corner of the horizontal-first route from `self` to `other`:
    /// travel along x first, then along y.
    pub fn corner_horizontal_first(self, other: Point) -> Point {
        Point::new(other.x, self.y)
    }

    /// The L-corner of the vertical-first route from `self` to `other`:
    /// travel along y first, then along x.
    pub fn corner_vertical_first(self, other: Point) -> Point {
        Point::new(self.x, other.y)
    }

    /// True if the two points share an x or y coordinate (a single straight
    /// axis-aligned segment connects them, and both L options degenerate).
    pub fn is_axis_aligned_with(self, other: Point) -> bool {
        self.x == other.x || self.y == other.y
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(3, -7);
        let b = Point::new(-2, 11);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(a), 0);
        assert_eq!(a.manhattan_distance(b), 5 + 18);
    }

    #[test]
    fn corners_are_on_the_rectangle() {
        let a = Point::new(0, 0);
        let b = Point::new(10, 20);
        assert_eq!(a.corner_horizontal_first(b), Point::new(10, 0));
        assert_eq!(a.corner_vertical_first(b), Point::new(0, 20));
    }

    #[test]
    fn axis_alignment() {
        assert!(Point::new(5, 0).is_axis_aligned_with(Point::new(5, 9)));
        assert!(Point::new(0, 7).is_axis_aligned_with(Point::new(3, 7)));
        assert!(!Point::new(0, 0).is_axis_aligned_with(Point::new(1, 1)));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new(4, 5);
        let b = Point::new(-1, 2);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
    }
}
