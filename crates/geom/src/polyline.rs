//! Rectilinear polylines: realized waveguide paths.

use crate::{LRoute, Point, Segment, SegmentIntersection};

/// An open or closed rectilinear polyline built from axis-aligned segments.
///
/// Ring waveguides, shortcuts and PDN branches are all polylines. The
/// polyline stores its vertex list; consecutive vertices must be
/// axis-aligned.
///
/// # Example
///
/// ```
/// use xring_geom::{Point, Polyline};
///
/// let p = Polyline::open(vec![
///     Point::new(0, 0),
///     Point::new(10, 0),
///     Point::new(10, 10),
/// ]);
/// assert_eq!(p.length(), 20);
/// assert_eq!(p.bend_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Polyline {
    vertices: Vec<Point>,
    closed: bool,
}

impl Polyline {
    /// Creates an open polyline through `vertices`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 vertices are given or if consecutive
    /// vertices are not axis-aligned.
    pub fn open(vertices: Vec<Point>) -> Self {
        Self::build(vertices, false)
    }

    /// Creates a closed polyline (ring): an implicit segment connects the
    /// last vertex back to the first.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 vertices are given, if consecutive vertices
    /// are not axis-aligned, or if the closing segment is not axis-aligned.
    pub fn closed(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "a closed polyline needs >= 3 vertices");
        assert!(
            vertices[vertices.len() - 1].is_axis_aligned_with(vertices[0]),
            "closing segment must be axis-aligned"
        );
        Self::build(vertices, true)
    }

    fn build(vertices: Vec<Point>, closed: bool) -> Self {
        assert!(vertices.len() >= 2, "a polyline needs >= 2 vertices");
        for w in vertices.windows(2) {
            assert!(
                w[0].is_axis_aligned_with(w[1]),
                "consecutive polyline vertices must be axis-aligned: {} vs {}",
                w[0],
                w[1]
            );
        }
        Polyline { vertices, closed }
    }

    /// Builds an open polyline from a chain of L-routes (each route
    /// contributes its corner). Consecutive routes must connect.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty or discontinuous.
    pub fn from_routes(routes: &[LRoute]) -> Self {
        assert!(!routes.is_empty(), "route chain must be non-empty");
        let mut vertices = vec![routes[0].from()];
        for (i, r) in routes.iter().enumerate() {
            if i > 0 {
                assert_eq!(
                    routes[i - 1].to(),
                    r.from(),
                    "route chain must be continuous"
                );
            }
            let c = r.corner();
            if c != *vertices.last().expect("non-empty") && c != r.to() {
                vertices.push(c);
            }
            if r.to() != *vertices.last().expect("non-empty") {
                vertices.push(r.to());
            }
        }
        if vertices.len() == 1 {
            vertices.push(vertices[0]);
        }
        Polyline::build(vertices, false)
    }

    /// The vertices of this polyline.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Whether the polyline is closed (a ring).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// All non-degenerate segments, in order (including the closing
    /// segment for rings).
    pub fn segments(&self) -> Vec<Segment> {
        let mut segs: Vec<Segment> = self
            .vertices
            .windows(2)
            .map(|w| Segment::new(w[0], w[1]))
            .filter(|s| !s.is_degenerate())
            .collect();
        if self.closed {
            let closing = Segment::new(*self.vertices.last().expect("non-empty"), self.vertices[0]);
            if !closing.is_degenerate() {
                segs.push(closing);
            }
        }
        segs
    }

    /// Total length in µm.
    pub fn length(&self) -> i64 {
        self.segments().iter().map(Segment::length).sum()
    }

    /// Number of 90° bends (direction changes at interior vertices; for
    /// closed polylines, every vertex is interior).
    pub fn bend_count(&self) -> usize {
        let segs = self.segments();
        if segs.len() < 2 {
            return 0;
        }
        let mut bends = 0;
        let pairs = if self.closed {
            segs.len()
        } else {
            segs.len() - 1
        };
        for i in 0..pairs {
            let a = &segs[i];
            let b = &segs[(i + 1) % segs.len()];
            if a.is_horizontal() != b.is_horizontal() {
                bends += 1;
            }
        }
        bends
    }

    /// Number of *proper* crossings between this polyline and `other`
    /// (interior-interior intersections of their segments).
    pub fn proper_crossings(&self, other: &Polyline) -> usize {
        let mine = self.segments();
        let theirs = other.segments();
        let mut count = 0;
        for a in &mine {
            for b in &theirs {
                if a.crosses_properly(b) {
                    count += 1;
                }
            }
        }
        count
    }

    /// True if `route` transversally crosses this polyline: used to test
    /// shortcut feasibility ("without crossing any existing ring
    /// waveguide", Sec. III-B). Endpoint contacts (the shortcut attaching
    /// at its own node positions, or a corner grazing the ring) and
    /// collinear overlaps are resolved by offset routing and do not count;
    /// `allowed` lists extra points where even a transversal contact is
    /// permitted (unused under proper-crossing semantics but kept for
    /// explicitness at call sites).
    pub fn route_conflicts(&self, route: &LRoute, allowed: &[Point]) -> bool {
        for sa in route.segments() {
            for sb in self.segments() {
                if sa.crosses_properly(&sb) {
                    if let SegmentIntersection::Point(p) = sa.intersection(&sb) {
                        if allowed.contains(&p) {
                            continue;
                        }
                    }
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouteOption;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn open_polyline_length_and_bends() {
        let pl = Polyline::open(vec![p(0, 0), p(10, 0), p(10, 10), p(20, 10)]);
        assert_eq!(pl.length(), 30);
        assert_eq!(pl.bend_count(), 2);
        assert_eq!(pl.segments().len(), 3);
    }

    #[test]
    fn closed_polyline_includes_closing_segment() {
        let ring = Polyline::closed(vec![p(0, 0), p(10, 0), p(10, 10), p(0, 10)]);
        assert_eq!(ring.length(), 40);
        assert_eq!(ring.segments().len(), 4);
        assert_eq!(ring.bend_count(), 4);
    }

    #[test]
    #[should_panic(expected = "axis-aligned")]
    fn diagonal_vertices_panic() {
        let _ = Polyline::open(vec![p(0, 0), p(5, 5)]);
    }

    #[test]
    fn crossings_between_polylines() {
        let ring = Polyline::closed(vec![p(0, 0), p(10, 0), p(10, 10), p(0, 10)]);
        let chord = Polyline::open(vec![p(-5, 5), p(15, 5)]);
        assert_eq!(ring.proper_crossings(&chord), 2);
    }

    #[test]
    fn route_conflict_with_ring() {
        let ring = Polyline::closed(vec![p(0, 0), p(100, 0), p(100, 100), p(0, 100)]);
        // A chord between two ring vertices, inside the ring: its corner
        // grazes the ring corner at (100, 0), which offset routing
        // resolves — no transversal crossing, no conflict.
        let inside = LRoute::new(p(0, 0), p(100, 100), RouteOption::HorizontalFirst);
        assert!(!ring.route_conflicts(&inside, &[p(0, 0), p(100, 100)]));
        // A route punching straight through the ring boundary conflicts.
        let through = LRoute::new(p(50, 50), p(200, 50), RouteOption::HorizontalFirst);
        assert!(ring.route_conflicts(&through, &[]));
        // A route fully outside the ring does not conflict.
        let outside = LRoute::new(p(200, 0), p(300, 50), RouteOption::HorizontalFirst);
        assert!(!ring.route_conflicts(&outside, &[]));
    }

    #[test]
    fn from_routes_merges_chain() {
        let r1 = LRoute::new(p(0, 0), p(10, 10), RouteOption::HorizontalFirst);
        let r2 = LRoute::new(p(10, 10), p(20, 0), RouteOption::VerticalFirst);
        let pl = Polyline::from_routes(&[r1, r2]);
        assert_eq!(pl.length(), r1.length() + r2.length());
        assert_eq!(pl.vertices().first(), Some(&p(0, 0)));
        assert_eq!(pl.vertices().last(), Some(&p(20, 0)));
    }

    #[test]
    fn degenerate_route_chain() {
        let r1 = LRoute::new(p(0, 0), p(10, 0), RouteOption::HorizontalFirst);
        let pl = Polyline::from_routes(&[r1]);
        assert_eq!(pl.length(), 10);
        assert_eq!(pl.bend_count(), 0);
    }
}
