//! Pairwise edge-conflict classification (Fig. 6(b)–(d) of the paper).
//!
//! Each candidate ring edge between two nodes has two L-shaped routing
//! options. For a pair of edges there are four option combinations; the
//! pair is *conflicting* iff **every** combination produces a crossing, and
//! *conflict-free* otherwise. Conflicting pairs feed constraint (3) of the
//! ring-construction MILP.

use crate::{LRoute, Point, RouteOption};

/// The 2×2 matrix of "does this option combination cross?" for a pair of
/// edges. Index `[i][j]` is the combination (option `i` of edge A, option
/// `j` of edge B) where index 0 is [`RouteOption::HorizontalFirst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptionPairMatrix {
    crossings: [[bool; 2]; 2],
}

impl OptionPairMatrix {
    /// Whether the combination (option of A, option of B) crosses.
    pub fn crosses(&self, a: RouteOption, b: RouteOption) -> bool {
        self.crossings[option_index(a)][option_index(b)]
    }

    /// True if every combination crosses (the pair is conflicting).
    pub fn all_cross(&self) -> bool {
        self.crossings.iter().all(|row| row.iter().all(|&c| c))
    }

    /// True if no combination crosses.
    pub fn none_cross(&self) -> bool {
        self.crossings.iter().all(|row| row.iter().all(|&c| !c))
    }

    /// The crossing-free combinations, as (option of A, option of B) pairs.
    pub fn free_combinations(&self) -> Vec<(RouteOption, RouteOption)> {
        let mut out = Vec::new();
        for a in RouteOption::BOTH {
            for b in RouteOption::BOTH {
                if !self.crosses(a, b) {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

fn option_index(o: RouteOption) -> usize {
    match o {
        RouteOption::HorizontalFirst => 0,
        RouteOption::VerticalFirst => 1,
    }
}

/// Classification of an edge pair for the MILP conflict constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeConflict {
    /// At least one option combination avoids a crossing (Fig. 6(c)).
    ConflictFree(OptionPairMatrix),
    /// Every option combination crosses (Fig. 6(d)); the MILP forbids
    /// selecting both edges.
    Conflicting,
}

impl EdgeConflict {
    /// True for [`EdgeConflict::Conflicting`].
    pub fn is_conflicting(&self) -> bool {
        matches!(self, EdgeConflict::Conflicting)
    }
}

/// Classifies the pair of edges `(a1, a2)` and `(b1, b2)`.
///
/// Endpoint contacts at *shared nodes* do not count as crossings (adjacent
/// ring edges legally join at their common node); every other contact does,
/// including collinear overlaps.
///
/// # Example
///
/// ```
/// use xring_geom::{classify_edge_pair, Point};
///
/// // Two edges whose bounding boxes are disjoint can never cross.
/// let c = classify_edge_pair(
///     Point::new(0, 0), Point::new(10, 10),
///     Point::new(100, 100), Point::new(120, 130),
/// );
/// assert!(!c.is_conflicting());
/// ```
pub fn classify_edge_pair(a1: Point, a2: Point, b1: Point, b2: Point) -> EdgeConflict {
    let mut crossings = [[false; 2]; 2];
    for (i, oa) in RouteOption::BOTH.into_iter().enumerate() {
        let ra = LRoute::new(a1, a2, oa);
        for (j, ob) in RouteOption::BOTH.into_iter().enumerate() {
            let rb = LRoute::new(b1, b2, ob);
            crossings[i][j] = ra.crosses(&rb);
        }
    }
    let matrix = OptionPairMatrix { crossings };
    if matrix.all_cross() {
        EdgeConflict::Conflicting
    } else {
        EdgeConflict::ConflictFree(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn far_apart_edges_are_conflict_free_all_options() {
        match classify_edge_pair(p(0, 0), p(10, 10), p(100, 100), p(150, 150)) {
            EdgeConflict::ConflictFree(m) => assert!(m.none_cross()),
            EdgeConflict::Conflicting => panic!("disjoint edges cannot conflict"),
        }
    }

    #[test]
    fn interleaved_edges_conflict() {
        // A spans (0,0)-(10,10); B spans (5,5)... pick B so that every
        // combination crosses: B from (5,-5) to (5,15) is a vertical line
        // through the middle of A's bounding box, cutting both of A's
        // option paths regardless of B's (degenerate identical) options.
        match classify_edge_pair(p(0, 0), p(10, 10), p(5, -5), p(5, 15)) {
            EdgeConflict::Conflicting => {}
            EdgeConflict::ConflictFree(m) => {
                panic!(
                    "expected conflict, free combos: {:?}",
                    m.free_combinations()
                )
            }
        }
    }

    #[test]
    fn partially_crossing_pair_is_conflict_free() {
        // Fig. 6(c): one combination avoids the crossing.
        // A: (0,0)->(10,10). B: (10,0)->(20,10).
        // A HorizontalFirst goes through (10,0) = B's endpoint (shared? no,
        // (10,0) is B's own node b1) — contact at b1 which is NOT a shared
        // node of the two edges, so it counts as a crossing; but
        // A VerticalFirst via (0,10) stays clear of B's VerticalFirst via
        // (10,10)... (10,10) is A's node a2, shared? a2=(10,10), B's corner
        // lands on it; corner-on-node contact at a2 is not a shared
        // endpoint of B... Let's just assert the classification is
        // conflict-free and at least one combination is free.
        match classify_edge_pair(p(0, 0), p(10, 10), p(30, 0), p(20, 10)) {
            EdgeConflict::ConflictFree(m) => assert!(!m.free_combinations().is_empty()),
            EdgeConflict::Conflicting => panic!("expected conflict-free"),
        }
    }

    #[test]
    fn edges_sharing_a_node_do_not_conflict() {
        // Consecutive ring edges share node (10, 10).
        match classify_edge_pair(p(0, 0), p(10, 10), p(10, 10), p(20, 0)) {
            EdgeConflict::ConflictFree(m) => assert!(!m.free_combinations().is_empty()),
            EdgeConflict::Conflicting => panic!("adjacent edges must be realizable"),
        }
    }

    #[test]
    fn matrix_is_consistent_with_route_crossing() {
        let (a1, a2) = (p(0, 0), p(10, 10));
        let (b1, b2) = (p(0, 10), p(10, 0));
        if let EdgeConflict::ConflictFree(m) = classify_edge_pair(a1, a2, b1, b2) {
            for oa in RouteOption::BOTH {
                for ob in RouteOption::BOTH {
                    let ra = LRoute::new(a1, a2, oa);
                    let rb = LRoute::new(b1, b2, ob);
                    assert_eq!(m.crosses(oa, ob), ra.crosses(&rb));
                }
            }
        }
    }
}
