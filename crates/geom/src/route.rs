//! L-shaped routing options for an edge between two network nodes.
//!
//! Following Fig. 6(b) of the paper, an edge between two nodes is realized
//! as one of two rectilinear L-shapes: route horizontally first and then
//! vertically, or the other way around. Both options have the same length
//! (the Manhattan distance), so the choice only affects crossings.

use crate::{Point, Segment};

/// Which leg of the L-shape is traversed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteOption {
    /// Travel along x to the corner, then along y.
    HorizontalFirst,
    /// Travel along y to the corner, then along x.
    VerticalFirst,
}

impl RouteOption {
    /// Both options, in a fixed order (used when enumerating combinations).
    pub const BOTH: [RouteOption; 2] = [RouteOption::HorizontalFirst, RouteOption::VerticalFirst];

    /// The other option.
    pub fn flipped(self) -> RouteOption {
        match self {
            RouteOption::HorizontalFirst => RouteOption::VerticalFirst,
            RouteOption::VerticalFirst => RouteOption::HorizontalFirst,
        }
    }
}

/// A realized L-shaped route between two points.
///
/// # Example
///
/// ```
/// use xring_geom::{LRoute, Point, RouteOption};
///
/// let r = LRoute::new(Point::new(0, 0), Point::new(10, 20), RouteOption::HorizontalFirst);
/// assert_eq!(r.corner(), Point::new(10, 0));
/// assert_eq!(r.length(), 30);
/// assert_eq!(r.bend_count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LRoute {
    from: Point,
    to: Point,
    option: RouteOption,
}

impl LRoute {
    /// Creates the L-route from `from` to `to` using `option`.
    pub fn new(from: Point, to: Point, option: RouteOption) -> Self {
        LRoute { from, to, option }
    }

    /// Source endpoint.
    pub fn from(&self) -> Point {
        self.from
    }

    /// Destination endpoint.
    pub fn to(&self) -> Point {
        self.to
    }

    /// The option this route realizes.
    pub fn option(&self) -> RouteOption {
        self.option
    }

    /// The corner point of the L (equal to an endpoint when degenerate).
    pub fn corner(&self) -> Point {
        match self.option {
            RouteOption::HorizontalFirst => self.from.corner_horizontal_first(self.to),
            RouteOption::VerticalFirst => self.from.corner_vertical_first(self.to),
        }
    }

    /// Total route length in µm (always the Manhattan distance).
    pub fn length(&self) -> i64 {
        self.from.manhattan_distance(self.to)
    }

    /// Number of 90° bends: 1 for a true L, 0 when the endpoints are
    /// axis-aligned (straight segment) or coincident.
    pub fn bend_count(&self) -> usize {
        if self.from.is_axis_aligned_with(self.to) {
            0
        } else {
            1
        }
    }

    /// The (up to two) non-degenerate segments of this route, in travel
    /// order. Degenerate legs are dropped.
    pub fn segments(&self) -> Vec<Segment> {
        let c = self.corner();
        let mut out = Vec::with_capacity(2);
        let first = Segment::new(self.from, c);
        if !first.is_degenerate() {
            out.push(first);
        }
        let second = Segment::new(c, self.to);
        if !second.is_degenerate() {
            out.push(second);
        }
        if out.is_empty() {
            // from == to: keep a single degenerate segment so that the
            // route still "occupies" its point.
            out.push(Segment::new(self.from, self.to));
        }
        out
    }

    /// True if the two routes **transversally cross**: some segment pair
    /// intersects at a point interior to both segments.
    ///
    /// Endpoint contacts (junctions at shared nodes, corners landing on
    /// another route) and collinear overlaps are *not* crossings: physical
    /// waveguides route at a small offset, so such contacts are resolved
    /// by running alongside rather than through. Only a transversal
    /// crossing forces a physical waveguide crossing — this matches the
    /// paper's Fig. 2(a), whose minimum-length ring runs the return
    /// waveguide parallel to a node column.
    pub fn crosses(&self, other: &LRoute) -> bool {
        for sa in self.segments() {
            for sb in other.segments() {
                if sa.crosses_properly(&sb) {
                    return true;
                }
            }
        }
        false
    }

    /// Count of *proper* crossings between this route and a set of
    /// segments (interior-interior intersections only). Used to count
    /// physical waveguide crossings on a realized layout.
    pub fn proper_crossings_with(&self, segments: &[Segment]) -> usize {
        self.segments()
            .iter()
            .map(|sa| segments.iter().filter(|sb| sa.crosses_properly(sb)).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_straight_route() {
        let r = LRoute::new(
            Point::new(0, 0),
            Point::new(10, 0),
            RouteOption::HorizontalFirst,
        );
        assert_eq!(r.segments().len(), 1);
        assert_eq!(r.bend_count(), 0);
        let r2 = LRoute::new(
            Point::new(0, 0),
            Point::new(10, 0),
            RouteOption::VerticalFirst,
        );
        assert_eq!(r2.segments().len(), 1);
        assert_eq!(r.length(), r2.length());
    }

    #[test]
    fn zero_length_route() {
        let r = LRoute::new(
            Point::new(5, 5),
            Point::new(5, 5),
            RouteOption::HorizontalFirst,
        );
        assert_eq!(r.length(), 0);
        assert_eq!(r.segments().len(), 1);
        assert!(r.segments()[0].is_degenerate());
    }

    #[test]
    fn both_options_same_length_different_corners() {
        let a = Point::new(0, 0);
        let b = Point::new(7, 9);
        let h = LRoute::new(a, b, RouteOption::HorizontalFirst);
        let v = LRoute::new(a, b, RouteOption::VerticalFirst);
        assert_eq!(h.length(), v.length());
        assert_ne!(h.corner(), v.corner());
        assert_eq!(h.corner(), Point::new(7, 0));
        assert_eq!(v.corner(), Point::new(0, 9));
    }

    #[test]
    fn crossing_detection_proper() {
        // Route A: (0,0) -> (10,10) horizontal-first: corner at (10,0)
        // Route B: (5,-5) -> (15,5) vertical-first: corner at (5,5)
        let a = LRoute::new(
            Point::new(0, 0),
            Point::new(10, 10),
            RouteOption::HorizontalFirst,
        );
        let b = LRoute::new(
            Point::new(5, -5),
            Point::new(15, 5),
            RouteOption::VerticalFirst,
        );
        assert!(a.crosses(&b));
    }

    #[test]
    fn shared_endpoint_is_not_a_crossing() {
        // Two ring edges sharing node (10, 0).
        let a = LRoute::new(
            Point::new(0, 0),
            Point::new(10, 0),
            RouteOption::HorizontalFirst,
        );
        let b = LRoute::new(
            Point::new(10, 0),
            Point::new(20, 5),
            RouteOption::HorizontalFirst,
        );
        assert!(!a.crosses(&b));
    }

    #[test]
    fn overlap_is_not_a_crossing() {
        // Both leave (0,0) heading right along y=0: they run side by side
        // at a small offset — no transversal crossing.
        let a = LRoute::new(
            Point::new(0, 0),
            Point::new(10, 0),
            RouteOption::HorizontalFirst,
        );
        let b = LRoute::new(
            Point::new(0, 0),
            Point::new(5, 3),
            RouteOption::HorizontalFirst,
        );
        assert!(!a.crosses(&b));
    }

    #[test]
    fn t_touch_is_not_a_crossing() {
        // B's endpoint lands in the middle of A: a tap/turn-away, which
        // offset routing resolves without crossing A.
        let a = LRoute::new(
            Point::new(0, 0),
            Point::new(10, 0),
            RouteOption::HorizontalFirst,
        );
        let b = LRoute::new(
            Point::new(5, 5),
            Point::new(5, 0),
            RouteOption::VerticalFirst,
        );
        assert!(!a.crosses(&b));
    }

    #[test]
    fn transversal_crossing_detected() {
        // B passes straight through the middle of A.
        let a = LRoute::new(
            Point::new(0, 0),
            Point::new(10, 0),
            RouteOption::HorizontalFirst,
        );
        let b = LRoute::new(
            Point::new(5, -5),
            Point::new(5, 5),
            RouteOption::VerticalFirst,
        );
        assert!(a.crosses(&b));
        assert!(b.crosses(&a));
    }

    #[test]
    fn disjoint_routes_do_not_cross() {
        let a = LRoute::new(
            Point::new(0, 0),
            Point::new(10, 10),
            RouteOption::HorizontalFirst,
        );
        let b = LRoute::new(
            Point::new(100, 100),
            Point::new(120, 140),
            RouteOption::VerticalFirst,
        );
        assert!(!a.crosses(&b));
    }

    #[test]
    fn proper_crossing_count() {
        let r = LRoute::new(
            Point::new(0, 5),
            Point::new(20, 5),
            RouteOption::HorizontalFirst,
        );
        let walls = vec![
            Segment::new(Point::new(5, 0), Point::new(5, 10)),
            Segment::new(Point::new(10, 0), Point::new(10, 10)),
            Segment::new(Point::new(30, 0), Point::new(30, 10)),
        ];
        assert_eq!(r.proper_crossings_with(&walls), 2);
    }

    #[test]
    fn option_flip_roundtrip() {
        assert_eq!(
            RouteOption::HorizontalFirst.flipped().flipped(),
            RouteOption::HorizontalFirst
        );
    }
}
