//! Orthogonal (Manhattan) geometry kernel for wavelength-routed optical
//! ring-router synthesis.
//!
//! This crate provides the geometric substrate used by the XRing synthesis
//! pipeline (DATE 2023):
//!
//! * [`Point`] — exact integer-micrometre coordinates,
//! * [`Segment`] — axis-aligned waveguide segments with exact crossing
//!   predicates (no floating point, no epsilons),
//! * [`LRoute`] — the two L-shaped routing options of an edge between two
//!   nodes (horizontal-then-vertical or vertical-then-horizontal, Fig. 6(b)
//!   of the paper),
//! * [`Polyline`] — rectilinear waveguide paths with crossing detection,
//! * [`conflict`] — the pairwise edge-conflict classification used by the
//!   ring-construction MILP (Fig. 6(c)/(d)),
//! * [`twosat`] — a 2-SAT solver used to pick one routing option per selected
//!   edge so the realized ring is globally crossing-free.
//!
//! # Example
//!
//! ```
//! use xring_geom::{Point, LRoute, RouteOption};
//!
//! let a = Point::new(0, 0);
//! let b = Point::new(3_000, 2_000);
//! let route = LRoute::new(a, b, RouteOption::HorizontalFirst);
//! assert_eq!(route.length(), 5_000); // Manhattan distance in micrometres
//! ```

pub mod conflict;
pub mod point;
pub mod polyline;
pub mod route;
pub mod segment;
pub mod twosat;

pub use conflict::{classify_edge_pair, EdgeConflict, OptionPairMatrix};
pub use point::Point;
pub use polyline::Polyline;
pub use route::{LRoute, RouteOption};
pub use segment::{Segment, SegmentIntersection};
pub use twosat::{TwoSat, TwoSatSolution};
