//! Property-based tests for the geometry kernel.

use proptest::prelude::*;
use xring_geom::{classify_edge_pair, LRoute, Point, Polyline, RouteOption, TwoSat};

fn arb_point() -> impl Strategy<Value = Point> {
    (-1_000i64..1_000, -1_000i64..1_000).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn manhattan_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c));
    }

    #[test]
    fn both_route_options_have_manhattan_length(a in arb_point(), b in arb_point()) {
        for opt in RouteOption::BOTH {
            let r = LRoute::new(a, b, opt);
            prop_assert_eq!(r.length(), a.manhattan_distance(b));
            // Segment lengths sum to the route length.
            let sum: i64 = r.segments().iter().map(|s| s.length()).sum();
            prop_assert_eq!(sum, r.length());
        }
    }

    #[test]
    fn route_crossing_is_symmetric(
        a1 in arb_point(), a2 in arb_point(),
        b1 in arb_point(), b2 in arb_point(),
        oa in prop::bool::ANY, ob in prop::bool::ANY,
    ) {
        let oa = if oa { RouteOption::HorizontalFirst } else { RouteOption::VerticalFirst };
        let ob = if ob { RouteOption::HorizontalFirst } else { RouteOption::VerticalFirst };
        let ra = LRoute::new(a1, a2, oa);
        let rb = LRoute::new(b1, b2, ob);
        prop_assert_eq!(ra.crosses(&rb), rb.crosses(&ra));
    }

    #[test]
    fn conflict_classification_matches_exhaustive_check(
        a1 in arb_point(), a2 in arb_point(),
        b1 in arb_point(), b2 in arb_point(),
    ) {
        let classification = classify_edge_pair(a1, a2, b1, b2);
        let mut all_cross = true;
        for oa in RouteOption::BOTH {
            for ob in RouteOption::BOTH {
                let ra = LRoute::new(a1, a2, oa);
                let rb = LRoute::new(b1, b2, ob);
                if !ra.crosses(&rb) {
                    all_cross = false;
                }
            }
        }
        prop_assert_eq!(classification.is_conflicting(), all_cross);
    }

    #[test]
    fn segment_intersection_symmetric(
        a1 in arb_point(), b1 in arb_point(),
        dx in 0i64..500, dy in 0i64..500,
    ) {
        use xring_geom::Segment;
        // Build two axis-aligned segments.
        let s1 = Segment::new(a1, Point::new(a1.x + dx, a1.y));
        let s2 = Segment::new(b1, Point::new(b1.x, b1.y + dy));
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
        prop_assert_eq!(s1.crosses_properly(&s2), s2.crosses_properly(&s1));
    }

    #[test]
    fn rectangle_ring_has_four_bends(w in 1i64..1_000, h in 1i64..1_000) {
        let ring = Polyline::closed(vec![
            Point::new(0, 0), Point::new(w, 0), Point::new(w, h), Point::new(0, h),
        ]);
        prop_assert_eq!(ring.bend_count(), 4);
        prop_assert_eq!(ring.length(), 2 * (w + h));
    }

    #[test]
    fn twosat_solution_satisfies_random_forbid_instances(
        pairs in prop::collection::vec(((0usize..8, prop::bool::ANY), (0usize..8, prop::bool::ANY)), 0..20)
    ) {
        let mut sat = TwoSat::new(8);
        let mut clauses = Vec::new();
        for ((a, av), (b, bv)) in pairs {
            if a == b { continue; }
            sat.forbid_pair(a, av, b, bv);
            clauses.push((a, av, b, bv));
        }
        if let Some(s) = sat.solve() {
            for (a, av, b, bv) in clauses {
                prop_assert!(!(s.value(a) == av && s.value(b) == bv), "forbidden pair taken");
            }
        }
        // Pure forbid_pair instances with distinct vars are always
        // satisfiable by at most flipping, but we do not assert that —
        // only consistency of returned solutions.
    }
}
