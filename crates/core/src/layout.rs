//! The realized-layout model and evaluation engine.
//!
//! A [`LayoutModel`] is the lowest-level description of a synthesized
//! router: waveguides as ordered station lists, signals as hops across
//! them, plus externally injected noise (e.g. laser light leaking at
//! PDN×ring crossings in the baseline routers). The engine extracts
//! per-signal [`PathElement`] traces, propagates first-order crosstalk
//! noise, and produces the [`RouterReport`] columns of the paper's tables.
//!
//! Both XRing and the ring baselines (ORNoC, ORing) lower to this model,
//! so all routers are evaluated by exactly the same physics.

use crate::netspec::NodeId;
use std::time::Duration;
use xring_phot::{
    insertion_loss_db, total_laser_power_w, CrosstalkParams, LossParams, NoiseLedger, PathElement,
    PerWavelengthDemand, PowerParams, RouterReport, SignalId, Wavelength,
};

/// Index of a waveguide within a [`LayoutModel`].
pub type WaveguideIdx = usize;
/// Index of a station within a waveguide.
pub type StationIdx = usize;

/// Externally injected noise at a crossing: light already travelling on
/// the *other* waveguide of the crossing that leaks into this one.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSource {
    /// Wavelength of the injected light.
    pub wavelength: Wavelength,
    /// Power at the injection point in dB relative to the per-wavelength
    /// laser launch power (already including the leak coefficient).
    pub power_rel_db: f64,
}

/// One element along a waveguide, in travel order.
#[derive(Debug, Clone, PartialEq)]
pub enum Station {
    /// A plain waveguide stretch.
    Segment {
        /// Length in µm.
        length_um: i64,
        /// 90° bends within the stretch.
        bends: u32,
    },
    /// A node's receiver site: one drop MRR per `(wavelength, signal)`
    /// terminating here. Passing signals see each MRR as off-resonance
    /// (through loss).
    NodeTap {
        /// The node whose receivers sit here.
        node: NodeId,
        /// Drop MRRs: signals terminating at this tap.
        drops: Vec<(Wavelength, SignalId)>,
    },
    /// A node's sender site (modulators); lossless for passing traffic in
    /// this model.
    SenderTap {
        /// The node whose senders sit here.
        node: NodeId,
    },
    /// A physical waveguide crossing.
    Crossing {
        /// Noise injected here from the other waveguide (e.g. PDN light).
        injected: Vec<NoiseSource>,
        /// The other side of this crossing, if it is a modelled waveguide:
        /// signals passing here leak into the peer at that station.
        peer: Option<(WaveguideIdx, StationIdx)>,
        /// Off-resonance MRRs sitting at this crossing (the CSEs of merged
        /// shortcuts); passing signals take through loss for each.
        through_mrrs: u32,
    },
    /// A ring opening: light terminates here.
    Opening,
}

/// A waveguide: an ordered station list, optionally closed (ring).
#[derive(Debug, Clone, PartialEq)]
pub struct Waveguide {
    /// True for ring waveguides (stations wrap around).
    pub closed: bool,
    /// Stations in travel order.
    pub stations: Vec<Station>,
}

/// One hop of a signal along a single waveguide, from just after
/// `from_station` up to and including `to_station`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The waveguide travelled.
    pub waveguide: WaveguideIdx,
    /// Station where the signal enters (its `SenderTap`, or the
    /// `Crossing` it was CSE-dropped into).
    pub from_station: StationIdx,
    /// Station where the hop ends (a `NodeTap` for the final hop, a
    /// `Crossing` for a CSE transfer).
    pub to_station: StationIdx,
}

/// A routed signal.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSpec {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Assigned wavelength.
    pub wavelength: Wavelength,
    /// Hops in travel order (1 normally, 2 for CSE-merged shortcuts).
    pub hops: Vec<Hop>,
    /// PDN loss from the laser to this signal's sender, in dB
    /// (0 when no PDN is modelled).
    pub pdn_loss_db: f64,
}

/// A fully realized router layout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LayoutModel {
    /// All waveguides.
    pub waveguides: Vec<Waveguide>,
    /// All signals; `SignalId(i)` refers to `signals[i]`.
    pub signals: Vec<SignalSpec>,
    /// Whether a power distribution network is part of this layout (turns
    /// on laser-power reporting).
    pub pdn_modelled: bool,
}

/// Power floor below which noise streams are abandoned (dB rel.).
const NOISE_FLOOR_DB: f64 = -140.0;

impl LayoutModel {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates the station indices strictly between `from` and `to` on
    /// waveguide `w` (wrapping when closed), then `to` itself.
    fn walk(&self, w: WaveguideIdx, from: StationIdx, to: StationIdx) -> Vec<StationIdx> {
        let wg = &self.waveguides[w];
        let n = wg.stations.len();
        let mut out = Vec::new();
        if wg.closed {
            let mut i = (from + 1) % n;
            loop {
                out.push(i);
                if i == to {
                    break;
                }
                i = (i + 1) % n;
                assert!(out.len() <= n, "hop does not reach target station");
            }
        } else {
            assert!(from < to, "open waveguide hops must go forward");
            out.extend(from + 1..=to);
        }
        out
    }

    /// Structural validation of the whole layout: every hop starts at a
    /// `SenderTap` or `Crossing`, ends at a `NodeTap` (final) or
    /// `Crossing` (CSE transfer), never walks across an `Opening` or a
    /// same-wavelength foreign drop, and every signal's drop MRR is
    /// registered at its final tap.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (si, sig) in self.signals.iter().enumerate() {
            if sig.hops.is_empty() {
                return Err(format!("signal {si} has no hops"));
            }
            let last = sig.hops.len() - 1;
            for (h, hop) in sig.hops.iter().enumerate() {
                let wg = self
                    .waveguides
                    .get(hop.waveguide)
                    .ok_or_else(|| format!("signal {si} hop {h}: bad waveguide"))?;
                let start = wg
                    .stations
                    .get(hop.from_station)
                    .ok_or_else(|| format!("signal {si} hop {h}: bad from_station"))?;
                match (h, start) {
                    (0, Station::SenderTap { .. }) => {}
                    (hh, Station::Crossing { .. }) if hh > 0 => {}
                    _ => {
                        return Err(format!(
                            "signal {si} hop {h} starts at a non-sender station"
                        ))
                    }
                }
                let end = wg
                    .stations
                    .get(hop.to_station)
                    .ok_or_else(|| format!("signal {si} hop {h}: bad to_station"))?;
                match (h == last, end) {
                    (true, Station::NodeTap { drops, .. }) => {
                        if !drops
                            .iter()
                            .any(|(wl, id)| *wl == sig.wavelength && id.0 as usize == si)
                        {
                            return Err(format!("signal {si}: drop MRR missing at its receiver"));
                        }
                    }
                    (false, Station::Crossing { .. }) => {}
                    _ => {
                        return Err(format!(
                            "signal {si} hop {h} ends at the wrong station kind"
                        ))
                    }
                }
                // The walked span must be opening-free and free of
                // same-wavelength foreign drops.
                for idx in self.walk(hop.waveguide, hop.from_station, hop.to_station) {
                    if idx == hop.to_station {
                        continue;
                    }
                    match &wg.stations[idx] {
                        Station::Opening => {
                            return Err(format!("signal {si} hop {h} crosses an opening"))
                        }
                        Station::NodeTap { drops, .. }
                            if drops.iter().any(|(wl, _)| *wl == sig.wavelength) =>
                        {
                            return Err(format!(
                                "signal {si} hop {h} passes a same-wavelength drop"
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(())
    }

    /// Extracts the full element trace of a signal (including the final
    /// drop and photodetector).
    ///
    /// # Panics
    ///
    /// Panics if a hop crosses an [`Station::Opening`] or a same-wavelength
    /// drop MRR before its target (both indicate a mapping bug).
    pub fn trace(&self, id: SignalId) -> Vec<PathElement> {
        let sig = &self.signals[id.0 as usize];
        let mut trace = Vec::new();
        let last_hop = sig.hops.len() - 1;
        for (h, hop) in sig.hops.iter().enumerate() {
            for si in self.walk(hop.waveguide, hop.from_station, hop.to_station) {
                let station = &self.waveguides[hop.waveguide].stations[si];
                let at_target = si == hop.to_station;
                match station {
                    Station::Segment { length_um, bends } => {
                        trace.push(PathElement::Propagate {
                            length_um: *length_um,
                        });
                        for _ in 0..*bends {
                            trace.push(PathElement::Bend);
                        }
                    }
                    Station::NodeTap { drops, .. } => {
                        if at_target {
                            // Final drop happens below.
                        } else {
                            for (wl, other) in drops {
                                debug_assert!(
                                    *wl != sig.wavelength,
                                    "signal {id} passes a same-wavelength drop of {other}"
                                );
                                let _ = other;
                                trace.push(PathElement::MrrThrough);
                            }
                        }
                    }
                    Station::SenderTap { .. } => {}
                    Station::Crossing { through_mrrs, .. } => {
                        if !at_target {
                            trace.push(PathElement::Crossing);
                            for _ in 0..*through_mrrs {
                                trace.push(PathElement::MrrThrough);
                            }
                        }
                    }
                    Station::Opening => {
                        panic!("signal {id} routed across an opening");
                    }
                }
            }
            // Hop termination.
            if h == last_hop {
                trace.push(PathElement::MrrDrop);
                trace.push(PathElement::Photodetector);
            } else {
                // CSE transfer: drop into the MRR at the crossing.
                trace.push(PathElement::MrrDrop);
            }
        }
        trace
    }

    /// Propagates all first-order noise and returns the ledger.
    pub fn evaluate_noise(&self, loss: &LossParams, xtalk: &CrosstalkParams) -> NoiseLedger {
        let mut ledger = NoiseLedger::new();

        // 1. Externally injected sources (PDN light at crossings).
        for (wi, wg) in self.waveguides.iter().enumerate() {
            for (si, st) in wg.stations.iter().enumerate() {
                if let Station::Crossing { injected, .. } = st {
                    for src in injected {
                        self.propagate_stream(
                            wi,
                            si,
                            src.wavelength,
                            src.power_rel_db,
                            None,
                            loss,
                            xtalk,
                            &mut ledger,
                        );
                    }
                }
            }
        }

        // 2. Signal-generated noise: crossing leaks and drop remnants.
        for (i, sig) in self.signals.iter().enumerate() {
            let id = SignalId(i as u32);
            let launch = -sig.pdn_loss_db;
            let mut power = launch;
            let last_hop = sig.hops.len() - 1;
            for (h, hop) in sig.hops.iter().enumerate() {
                for si in self.walk(hop.waveguide, hop.from_station, hop.to_station) {
                    let station = &self.waveguides[hop.waveguide].stations[si];
                    let at_target = si == hop.to_station;
                    match station {
                        Station::Segment { length_um, bends } => {
                            power -= loss.propagation_db_per_cm * (*length_um as f64 / 10_000.0);
                            power -= *bends as f64 * loss.bend_db;
                        }
                        Station::NodeTap { drops, .. } => {
                            if !at_target {
                                power -= drops.len() as f64 * loss.through_db;
                            }
                        }
                        Station::SenderTap { .. } => {}
                        Station::Crossing {
                            peer, through_mrrs, ..
                        } => {
                            if at_target {
                                // CSE transfer handled below.
                            } else {
                                // Leak into the peer waveguide.
                                if let Some((pw, ps)) = peer {
                                    self.propagate_stream(
                                        *pw,
                                        *ps,
                                        sig.wavelength,
                                        power + xtalk.crossing_leak_db,
                                        Some(id),
                                        loss,
                                        xtalk,
                                        &mut ledger,
                                    );
                                }
                                power -= loss.crossing_db;
                                power -= *through_mrrs as f64 * loss.through_db;
                            }
                        }
                        Station::Opening => unreachable!("validated in trace()"),
                    }
                }
                if h == last_hop {
                    // The remnant continuing past the receiver MRR is
                    // removed by the paper's MRR + terminator (Fig. 5(b))
                    // and "will thus not affect the SNR" — no stream.
                } else {
                    // A CSE drop has no terminator: its remnant continues
                    // straight along the entered wire.
                    let remnant = power + xtalk.drop_leak_db;
                    self.propagate_stream(
                        hop.waveguide,
                        hop.to_station,
                        sig.wavelength,
                        remnant,
                        Some(id),
                        loss,
                        xtalk,
                        &mut ledger,
                    );
                    power -= loss.drop_db; // CSE drop loss
                }
            }
        }
        ledger
    }

    /// Walks a noise stream forward from `start` (exclusive), crediting
    /// every same-wavelength drop MRR it meets.
    #[allow(clippy::too_many_arguments)]
    fn propagate_stream(
        &self,
        w: WaveguideIdx,
        start: StationIdx,
        wl: Wavelength,
        mut power: f64,
        exclude: Option<SignalId>,
        loss: &LossParams,
        _xtalk: &CrosstalkParams,
        ledger: &mut NoiseLedger,
    ) {
        let wg = &self.waveguides[w];
        let n = wg.stations.len();
        let mut i = start;
        for _ in 0..n {
            i = if wg.closed {
                (i + 1) % n
            } else if i + 1 < n {
                i + 1
            } else {
                return;
            };
            if wg.closed && i == start {
                return; // one full lap
            }
            if power < NOISE_FLOOR_DB {
                return;
            }
            match &wg.stations[i] {
                Station::Segment { length_um, bends } => {
                    power -= loss.propagation_db_per_cm * (*length_um as f64 / 10_000.0);
                    power -= *bends as f64 * loss.bend_db;
                }
                Station::NodeTap { drops, .. } => {
                    for (dwl, victim) in drops {
                        if *dwl == wl {
                            if Some(*victim) != exclude {
                                ledger.add_contribution(
                                    *victim,
                                    power - loss.drop_db - loss.photodetector_db,
                                );
                            }
                            // The receiver's terminator MRR (Fig. 5(b))
                            // absorbs the rest of the stream.
                            return;
                        }
                        power -= loss.through_db;
                    }
                }
                Station::SenderTap { .. } => {}
                Station::Crossing { through_mrrs, .. } => {
                    power -= loss.crossing_db;
                    power -= *through_mrrs as f64 * loss.through_db;
                }
                Station::Opening => return,
            }
        }
    }

    /// Evaluates the layout into a [`RouterReport`].
    pub fn evaluate(
        &self,
        label: impl Into<String>,
        loss: &LossParams,
        xtalk: Option<&CrosstalkParams>,
        power: &PowerParams,
        synthesis_time: Duration,
    ) -> RouterReport {
        use xring_phot::elements::TraceStats;

        let mut worst_il = f64::NEG_INFINITY;
        let mut worst_stats = TraceStats::default();
        let mut ils: Vec<f64> = Vec::with_capacity(self.signals.len());
        let mut demand = PerWavelengthDemand::new();
        let mut wavelengths: Vec<Wavelength> = Vec::new();

        for (i, sig) in self.signals.iter().enumerate() {
            let trace = self.trace(SignalId(i as u32));
            let il = insertion_loss_db(&trace, loss);
            ils.push(il);
            if il > worst_il {
                worst_il = il;
                worst_stats = TraceStats::of(&trace);
            }
            demand.register(sig.wavelength, il + sig.pdn_loss_db);
            if !wavelengths.contains(&sig.wavelength) {
                wavelengths.push(sig.wavelength);
            }
        }

        let (noisy, worst_snr) = match xtalk {
            Some(x) => {
                let ledger = self.evaluate_noise(loss, x);
                let worst = self
                    .signals
                    .iter()
                    .enumerate()
                    .filter_map(|(i, sig)| {
                        ledger.snr_db(SignalId(i as u32), ils[i] + sig.pdn_loss_db)
                    })
                    .min_by(|a, b| a.partial_cmp(b).expect("SNR is never NaN"));
                (Some(ledger.affected_signal_count()), worst)
            }
            None => (None, None),
        };

        RouterReport {
            label: label.into(),
            num_wavelengths: wavelengths.len(),
            worst_il_db: if worst_il.is_finite() { worst_il } else { 0.0 },
            worst_path_len_mm: worst_stats.length_um as f64 / 1_000.0,
            worst_path_crossings: worst_stats.crossings,
            total_power_w: self
                .pdn_modelled
                .then(|| total_laser_power_w(&demand, power)),
            noisy_signal_count: noisy,
            worst_snr_db: worst_snr,
            signal_count: self.signals.len(),
            synthesis_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A minimal 3-node open-waveguide layout: n0 --1000um-- n1 --1000um-- n2
    /// with one signal n0->n2 on λ0 and one n0->n1 on λ1.
    fn linear_layout() -> LayoutModel {
        let wl0 = Wavelength::new(0);
        let wl1 = Wavelength::new(1);
        let stations = vec![
            Station::SenderTap { node: NodeId(0) }, // 0
            Station::Segment {
                length_um: 1_000,
                bends: 0,
            }, // 1
            Station::NodeTap {
                node: NodeId(1),
                drops: vec![(wl1, SignalId(1))],
            }, // 2
            Station::Segment {
                length_um: 1_000,
                bends: 1,
            }, // 3
            Station::NodeTap {
                node: NodeId(2),
                drops: vec![(wl0, SignalId(0))],
            }, // 4
        ];
        LayoutModel {
            waveguides: vec![Waveguide {
                closed: false,
                stations,
            }],
            signals: vec![
                SignalSpec {
                    from: NodeId(0),
                    to: NodeId(2),
                    wavelength: wl0,
                    hops: vec![Hop {
                        waveguide: 0,
                        from_station: 0,
                        to_station: 4,
                    }],
                    pdn_loss_db: 0.0,
                },
                SignalSpec {
                    from: NodeId(0),
                    to: NodeId(1),
                    wavelength: wl1,
                    hops: vec![Hop {
                        waveguide: 0,
                        from_station: 0,
                        to_station: 2,
                    }],
                    pdn_loss_db: 0.0,
                },
            ],
            pdn_modelled: false,
        }
    }

    #[test]
    fn trace_of_through_signal_counts_passed_mrr() {
        let m = linear_layout();
        let trace = m.trace(SignalId(0));
        // 2 segments, 1 bend, 1 through (n1's MRR on λ1), drop + pd.
        let throughs = trace
            .iter()
            .filter(|e| matches!(e, PathElement::MrrThrough))
            .count();
        assert_eq!(throughs, 1);
        let drops = trace
            .iter()
            .filter(|e| matches!(e, PathElement::MrrDrop))
            .count();
        assert_eq!(drops, 1);
        let len: i64 = trace
            .iter()
            .map(|e| match e {
                PathElement::Propagate { length_um } => *length_um,
                _ => 0,
            })
            .sum();
        assert_eq!(len, 2_000);
    }

    #[test]
    fn short_signal_sees_no_through_loss() {
        let m = linear_layout();
        let trace = m.trace(SignalId(1));
        assert!(trace.iter().all(|e| !matches!(e, PathElement::MrrThrough)));
    }

    #[test]
    fn evaluate_reports_worst_signal() {
        let m = linear_layout();
        let r = m.evaluate(
            "linear",
            &LossParams::default(),
            None,
            &PowerParams::default(),
            Duration::ZERO,
        );
        assert_eq!(r.signal_count, 2);
        assert_eq!(r.num_wavelengths, 2);
        assert!((r.worst_path_len_mm - 2.0).abs() < 1e-9);
        assert_eq!(r.worst_path_crossings, 0);
        assert_eq!(r.total_power_w, None); // no PDN
    }

    #[test]
    fn receiver_remnants_are_terminated() {
        // Two signals on the SAME wavelength, arcs disjoint, same
        // waveguide: s0 = n0->n1, s1 = n1->n2. s0's drop remnant is
        // absorbed by the receiver's MRR + terminator (Fig. 5(b)), so s1
        // stays clean.
        let wl = Wavelength::new(0);
        let stations = vec![
            Station::SenderTap { node: NodeId(0) }, // 0
            Station::Segment {
                length_um: 1_000,
                bends: 0,
            }, // 1
            Station::NodeTap {
                node: NodeId(1),
                drops: vec![(wl, SignalId(0))],
            }, // 2
            Station::SenderTap { node: NodeId(1) }, // 3
            Station::Segment {
                length_um: 1_000,
                bends: 0,
            }, // 4
            Station::NodeTap {
                node: NodeId(2),
                drops: vec![(wl, SignalId(1))],
            }, // 5
        ];
        let m = LayoutModel {
            waveguides: vec![Waveguide {
                closed: false,
                stations,
            }],
            signals: vec![
                SignalSpec {
                    from: NodeId(0),
                    to: NodeId(1),
                    wavelength: wl,
                    hops: vec![Hop {
                        waveguide: 0,
                        from_station: 0,
                        to_station: 2,
                    }],
                    pdn_loss_db: 0.0,
                },
                SignalSpec {
                    from: NodeId(1),
                    to: NodeId(2),
                    wavelength: wl,
                    hops: vec![Hop {
                        waveguide: 0,
                        from_station: 3,
                        to_station: 5,
                    }],
                    pdn_loss_db: 0.0,
                },
            ],
            pdn_modelled: false,
        };
        let ledger = m.evaluate_noise(&LossParams::default(), &CrosstalkParams::default());
        assert_eq!(ledger.affected_signal_count(), 0);
    }

    #[test]
    fn opening_blocks_injected_noise() {
        // An injected stream (PDN-style) upstream of an Opening never
        // reaches receivers behind the opening.
        let wl = Wavelength::new(0);
        let stations = vec![
            Station::SenderTap { node: NodeId(0) }, // 0
            Station::Crossing {
                injected: vec![NoiseSource {
                    wavelength: wl,
                    power_rel_db: -40.0,
                }],
                peer: None,
                through_mrrs: 0,
            }, // 1
            Station::Opening,                       // 2
            Station::Segment {
                length_um: 1_000,
                bends: 0,
            }, // 3
            Station::NodeTap {
                node: NodeId(1),
                drops: vec![(wl, SignalId(0))],
            }, // 4
        ];
        let m = LayoutModel {
            waveguides: vec![Waveguide {
                closed: false,
                stations,
            }],
            signals: vec![SignalSpec {
                from: NodeId(0),
                to: NodeId(1),
                wavelength: wl,
                // The signal enters after the opening (station 2).
                hops: vec![Hop {
                    waveguide: 0,
                    from_station: 2,
                    to_station: 4,
                }],
                pdn_loss_db: 0.0,
            }],
            pdn_modelled: false,
        };
        let ledger = m.evaluate_noise(&LossParams::default(), &CrosstalkParams::default());
        assert_eq!(ledger.affected_signal_count(), 0);
    }

    #[test]
    fn injected_pdn_noise_reaches_downstream_receivers() {
        let wl = Wavelength::new(0);
        let stations = vec![
            Station::SenderTap { node: NodeId(0) },
            Station::Crossing {
                injected: vec![NoiseSource {
                    wavelength: wl,
                    power_rel_db: -40.0,
                }],
                peer: None,
                through_mrrs: 0,
            },
            Station::Segment {
                length_um: 500,
                bends: 0,
            },
            Station::NodeTap {
                node: NodeId(1),
                drops: vec![(wl, SignalId(0))],
            },
        ];
        let m = LayoutModel {
            waveguides: vec![Waveguide {
                closed: false,
                stations,
            }],
            signals: vec![SignalSpec {
                from: NodeId(0),
                to: NodeId(1),
                wavelength: wl,
                hops: vec![Hop {
                    waveguide: 0,
                    from_station: 0,
                    to_station: 3,
                }],
                pdn_loss_db: 1.0,
            }],
            pdn_modelled: true,
        };
        let loss = LossParams::default();
        let ledger = m.evaluate_noise(&loss, &CrosstalkParams::default());
        assert_eq!(ledger.affected_signal_count(), 1);
        let r = m.evaluate(
            "pdn-noise",
            &loss,
            Some(&CrosstalkParams::default()),
            &PowerParams::default(),
            Duration::ZERO,
        );
        assert_eq!(r.noisy_signal_count, Some(1));
        assert!(r.worst_snr_db.expect("noisy") < 100.0);
        assert!(r.total_power_w.expect("pdn modelled") > 0.0);
    }

    #[test]
    fn crossing_peer_leak_reaches_same_wavelength_victim() {
        // Waveguide 0 carries s0 (λ0) across a crossing whose peer is
        // waveguide 1, which carries s1 (λ0) to its receiver downstream of
        // the crossing: s0's leak must corrupt s1.
        let wl = Wavelength::new(0);
        let wg0 = Waveguide {
            closed: false,
            stations: vec![
                Station::SenderTap { node: NodeId(0) },
                Station::Crossing {
                    injected: vec![],
                    peer: Some((1, 1)),
                    through_mrrs: 0,
                },
                Station::NodeTap {
                    node: NodeId(1),
                    drops: vec![(wl, SignalId(0))],
                },
            ],
        };
        let wg1 = Waveguide {
            closed: false,
            stations: vec![
                Station::SenderTap { node: NodeId(2) },
                Station::Crossing {
                    injected: vec![],
                    peer: Some((0, 1)),
                    through_mrrs: 0,
                },
                Station::NodeTap {
                    node: NodeId(3),
                    drops: vec![(wl, SignalId(1))],
                },
            ],
        };
        let m = LayoutModel {
            waveguides: vec![wg0, wg1],
            signals: vec![
                SignalSpec {
                    from: NodeId(0),
                    to: NodeId(1),
                    wavelength: wl,
                    hops: vec![Hop {
                        waveguide: 0,
                        from_station: 0,
                        to_station: 2,
                    }],
                    pdn_loss_db: 0.0,
                },
                SignalSpec {
                    from: NodeId(2),
                    to: NodeId(3),
                    wavelength: wl,
                    hops: vec![Hop {
                        waveguide: 1,
                        from_station: 0,
                        to_station: 2,
                    }],
                    pdn_loss_db: 0.0,
                },
            ],
            pdn_modelled: false,
        };
        let ledger = m.evaluate_noise(&LossParams::default(), &CrosstalkParams::default());
        // Both leak into each other.
        assert_eq!(ledger.affected_signal_count(), 2);
    }

    #[test]
    fn closed_waveguide_walk_wraps() {
        let wl = Wavelength::new(0);
        let stations = vec![
            Station::NodeTap {
                node: NodeId(0),
                drops: vec![(wl, SignalId(0))],
            }, // 0
            Station::SenderTap { node: NodeId(0) }, // 1
            Station::Segment {
                length_um: 700,
                bends: 0,
            }, // 2
            Station::NodeTap {
                node: NodeId(1),
                drops: vec![],
            }, // 3
            Station::SenderTap { node: NodeId(1) }, // 4
            Station::Segment {
                length_um: 300,
                bends: 0,
            }, // 5
        ];
        let m = LayoutModel {
            waveguides: vec![Waveguide {
                closed: true,
                stations,
            }],
            signals: vec![SignalSpec {
                from: NodeId(1),
                to: NodeId(0),
                wavelength: wl,
                // From n1's sender (4) wrapping to n0's tap (0).
                hops: vec![Hop {
                    waveguide: 0,
                    from_station: 4,
                    to_station: 0,
                }],
                pdn_loss_db: 0.0,
            }],
            pdn_modelled: false,
        };
        let trace = m.trace(SignalId(0));
        let len: i64 = trace
            .iter()
            .map(|e| match e {
                PathElement::Propagate { length_um } => *length_um,
                _ => 0,
            })
            .sum();
        assert_eq!(len, 300);
    }
}
