//! Synthesis error type.

use std::error::Error;
use std::fmt;
use xring_milp::SolveError;

/// Errors produced by the XRing synthesis pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The network has fewer than 3 nodes; a ring needs at least 3.
    TooFewNodes {
        /// How many nodes were supplied.
        got: usize,
    },
    /// Two network nodes share the same position.
    DuplicateNodePositions {
        /// Indices of the colliding nodes.
        a: usize,
        /// Indices of the colliding nodes.
        b: usize,
    },
    /// The ring-construction MILP failed.
    RingMilp(SolveError),
    /// A signal could not be mapped within the wavelength budget.
    WavelengthBudgetExceeded {
        /// The configured per-waveguide cap.
        max_wavelengths: usize,
        /// The configured cap on ring waveguides (0 = unlimited).
        max_waveguides: usize,
    },
    /// The synthesis wall-clock budget
    /// ([`SynthesisOptions::deadline`](crate::SynthesisOptions::deadline))
    /// expired before the pipeline completed. Checked cooperatively
    /// between pipeline steps and inside the ring-construction MILP.
    DeadlineExceeded,
    /// Ring construction broke down outside the MILP solver proper
    /// (solution decoding or sub-cycle merging) — a structural failure
    /// that the degradation chain can recover from heuristically.
    RingConstruction {
        /// What broke.
        detail: String,
    },
    /// The post-synthesis auditor rejected the produced design. A design
    /// that fails its audit is never returned; under
    /// [`DegradationPolicy::Allow`](crate::DegradationPolicy::Allow) the
    /// chain falls back, otherwise this error surfaces.
    AuditFailed {
        /// The audit's failure summary.
        summary: String,
    },
    /// Spares were requested
    /// ([`SynthesisOptions::spares`](crate::SynthesisOptions::spares))
    /// but the exhaustive single-fault verification found a scenario the
    /// design does not survive. Non-degradable: falling back to a weaker
    /// ring algorithm cannot make an unsurvivable design survivable.
    SurvivabilityFailed {
        /// Scenarios that passed the post-failure audit.
        survived: usize,
        /// Scenarios enumerated.
        scenarios: usize,
        /// Description of the worst failing scenario.
        scenario: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::TooFewNodes { got } => {
                write!(f, "ring synthesis needs at least 3 nodes, got {got}")
            }
            SynthesisError::DuplicateNodePositions { a, b } => {
                write!(f, "nodes {a} and {b} share the same position")
            }
            SynthesisError::RingMilp(e) => write!(f, "ring-construction MILP failed: {e}"),
            SynthesisError::WavelengthBudgetExceeded {
                max_wavelengths,
                max_waveguides,
            } => write!(
                f,
                "signal mapping exceeded the budget of {max_wavelengths} wavelengths x {max_waveguides} waveguides"
            ),
            SynthesisError::DeadlineExceeded => {
                write!(f, "synthesis deadline expired before the pipeline completed")
            }
            SynthesisError::RingConstruction { detail } => {
                write!(f, "ring construction failed: {detail}")
            }
            SynthesisError::AuditFailed { summary } => {
                write!(f, "design audit failed: {summary}")
            }
            SynthesisError::SurvivabilityFailed {
                survived,
                scenarios,
                scenario,
            } => write!(
                f,
                "design is not single-fault survivable ({survived}/{scenarios} scenarios clean); worst: {scenario}"
            ),
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::RingMilp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for SynthesisError {
    fn from(e: SolveError) -> Self {
        match e {
            // A deadline interrupt inside the MILP is the pipeline's
            // deadline expiring, not a solver failure.
            SolveError::Interrupted { .. } => SynthesisError::DeadlineExceeded,
            e => SynthesisError::RingMilp(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        assert!(SynthesisError::TooFewNodes { got: 2 }
            .to_string()
            .contains("at least 3"));
        assert!(SynthesisError::DuplicateNodePositions { a: 1, b: 4 }
            .to_string()
            .contains("1"));
        let e = SynthesisError::WavelengthBudgetExceeded {
            max_wavelengths: 4,
            max_waveguides: 2,
        };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("2"));
    }

    #[test]
    fn robustness_errors_are_descriptive() {
        let e = SynthesisError::RingConstruction {
            detail: "zero cycles".to_owned(),
        };
        assert!(e.to_string().contains("zero cycles"));
        let e = SynthesisError::AuditFailed {
            summary: "ring-closed-cycle: edge 0 does not chain".to_owned(),
        };
        assert!(e.to_string().contains("audit"));
        assert!(e.to_string().contains("ring-closed-cycle"));
        let e = SynthesisError::SurvivabilityFailed {
            survived: 10,
            scenarios: 12,
            scenario: "segment-break(waveguide 0, edge 3)".to_owned(),
        };
        assert!(e.to_string().contains("10/12"));
        assert!(e.to_string().contains("segment-break"));
    }

    #[test]
    fn milp_errors_chain_as_source() {
        use std::error::Error as _;
        let e = SynthesisError::from(SolveError::Infeasible);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("MILP"));
    }

    #[test]
    fn interrupted_solves_map_to_deadline_exceeded() {
        let e = SynthesisError::from(SolveError::Interrupted { nodes: 3 });
        assert_eq!(e, SynthesisError::DeadlineExceeded);
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthesisError>();
    }
}
