//! Step 4: crossing-free power distribution network design (Sec. III-D).
//!
//! Each ring waveguide gets a complete-binary-tree splitter network over
//! its senders: starting from the opening node's sender and following the
//! transmission direction, neighbouring senders are joined by a waveguide
//! with a 50/50 splitter at its midpoint, then neighbouring splitters are
//! joined, level by level, until one top splitter remains. The PDN
//! waveguides run between the paired ring waveguides (spacing
//! `A₁ + ⌈log₂N⌉·A₂`) and reach the senders through the ring openings, so
//! they cross no ring waveguide. Top splitters of all trees are fed from
//! the off-chip laser through a distribution stage.

use crate::mapping::MappingPlan;
use crate::netspec::{NetworkSpec, NodeId};
use crate::ring::{Direction, RingCycle};
use crate::shortcut::ShortcutPlan;
use std::collections::BTreeMap;
use xring_geom::Point;
use xring_phot::elements::SPLIT_3DB;
use xring_phot::LossParams;

/// Group key for sender-loss lookup: ring waveguide index, or
/// [`SHORTCUT_GROUP`] for the shortcut senders' shared tree.
pub type PdnGroup = usize;

/// The group id used for all shortcut senders.
pub const SHORTCUT_GROUP: PdnGroup = usize::MAX;

/// One splitter tree of the PDN.
#[derive(Debug, Clone, PartialEq)]
pub struct PdnTree {
    /// The group this tree supplies.
    pub group: PdnGroup,
    /// Pairing rounds (= splitter levels) in this tree.
    pub depth: usize,
    /// Number of supplied senders.
    pub leaves: usize,
    /// Total PDN waveguide length in this tree, µm.
    pub length_um: i64,
}

/// The designed PDN.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PdnDesign {
    /// Loss from the laser to each `(group, sender node)`, in dB.
    pub sender_loss_db: BTreeMap<(PdnGroup, u32), f64>,
    /// Per-tree summaries.
    pub trees: Vec<PdnTree>,
    /// Total PDN waveguide length, µm (trees + distribution).
    pub total_length_um: i64,
    /// Ring waveguides the PDN had to cross (indices); empty when every
    /// ring waveguide has an opening.
    pub crossed_waveguides: Vec<usize>,
}

impl PdnDesign {
    /// Laser-to-sender loss for a signal whose first hop starts at `node`
    /// in `group`.
    ///
    /// # Panics
    ///
    /// Panics if the `(group, node)` pair has no sender in this PDN.
    pub fn loss_for(&self, group: PdnGroup, node: NodeId) -> f64 {
        *self
            .sender_loss_db
            .get(&(group, node.0))
            .unwrap_or_else(|| panic!("no PDN sender for group {group} node {node}"))
    }
}

/// Designs the PDN for a mapped plan.
///
/// `laser` is the on-die coupling point of the off-chip laser.
pub fn design_pdn(
    net: &NetworkSpec,
    cycle: &RingCycle,
    plan: &MappingPlan,
    shortcuts: &ShortcutPlan,
    loss: &LossParams,
    laser: Point,
) -> PdnDesign {
    let mut design = PdnDesign::default();
    let mut roots: Vec<(PdnGroup, Point)> = Vec::new();
    // Leaf losses per tree, merged after the distribution stage is known.
    let mut tree_leaf_losses: Vec<(PdnGroup, BTreeMap<u32, LeafCost>)> = Vec::new();

    // Shortcut senders sit at node positions that already host ring
    // senders, and are supplied through the same openings; they join the
    // innermost ring waveguide's tree instead of needing one of their own.
    let shortcut_nodes: Vec<u32> = {
        let mut v: Vec<u32> = shortcuts
            .shortcuts
            .iter()
            .flat_map(|s| [s.a.0, s.b.0])
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    for (wi, wg) in plan.ring_waveguides.iter().enumerate() {
        // Senders on this waveguide.
        let mut sender_nodes: Vec<u32> = wg
            .lanes
            .iter()
            .flat_map(|l| l.arcs.iter().map(|a| cycle.order()[a.from_pos].0))
            .collect();
        if wi == 0 {
            sender_nodes.extend(shortcut_nodes.iter().copied());
        }
        sender_nodes.sort_unstable();
        sender_nodes.dedup();
        if sender_nodes.is_empty() {
            continue;
        }
        // Order leaves starting at the opening node, following the
        // transmission direction.
        let start = wg.opening.unwrap_or(0);
        let n = cycle.len();
        let mut ordered: Vec<(NodeId, Point)> = Vec::new();
        for k in 0..n {
            let pos = match wg.direction {
                Direction::Cw => (start + k) % n,
                Direction::Ccw => (start + n - k % n) % n,
            };
            let node = cycle.order()[pos];
            if sender_nodes.contains(&node.0) {
                ordered.push((node, net.position(node)));
            }
        }
        let (leaf_loss, depth, length, root) = build_tree(&ordered, loss);
        design.trees.push(PdnTree {
            group: wi,
            depth,
            leaves: ordered.len(),
            length_um: length,
        });
        design.total_length_um += length;
        roots.push((wi, root));
        tree_leaf_losses.push((wi, leaf_loss));
        if wg.opening.is_none() {
            design.crossed_waveguides.push(wi);
        }
    }

    // Distribution stage: from the laser to every tree root. The
    // within-tree splitters are 50/50 (paper: "complete binary tree"),
    // but the inter-tree distribution uses ideal asymmetric taps — an
    // even 1:T split costs `10*log10(T)` dB for every tree plus one
    // excess-loss term per tap level. (A 50/50 chain here would make
    // power jump 2x whenever the tree count crosses a power of two,
    // which neither the paper's numbers nor real tap chains show.)
    // Waveguide lengths still follow the geometric binary pairing.
    let mut dist_loss: BTreeMap<PdnGroup, f64> = BTreeMap::new();
    if !roots.is_empty() {
        let items: Vec<(NodeId, Point)> = roots
            .iter()
            .enumerate()
            .map(|(k, (_, p))| (NodeId(k as u32), *p))
            .collect();
        let (per_root, depth, length, super_root) = build_tree(&items, loss);
        design.total_length_um += length;
        let lead = laser.manhattan_distance(super_root);
        design.total_length_um += lead;
        let lead_db = loss.propagation_db_per_cm * (lead as f64 / 10_000.0);
        let even_split_db =
            10.0 * (roots.len() as f64).log10() + depth as f64 * loss.splitter_excess_db;
        for (k, (group, _)) in roots.iter().enumerate() {
            let cost = per_root.get(&(k as u32)).copied().unwrap_or_default();
            dist_loss.insert(*group, even_split_db + cost.propagation_db + lead_db);
        }
    }

    for (group, leaf_loss) in tree_leaf_losses {
        let base = dist_loss.get(&group).copied().unwrap_or(0.0);
        for (node, c) in leaf_loss {
            let total = base + c.total_db(loss);
            design.sender_loss_db.insert((group, node), total);
            // Shortcut senders draw from ring tree 0's leaves.
            if group == 0 && shortcut_nodes.contains(&node) {
                design.sender_loss_db.insert((SHORTCUT_GROUP, node), total);
            }
        }
    }
    design
}

/// Per-leaf cost components of a splitter tree.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LeafCost {
    /// 50/50 splitters passed between the tree root and the leaf.
    pub splits: usize,
    /// Waveguide propagation between the tree root and the leaf, dB.
    pub propagation_db: f64,
}

impl LeafCost {
    /// Total dB with 50/50 splitters.
    pub fn total_db(&self, loss: &LossParams) -> f64 {
        self.splits as f64 * (SPLIT_3DB + loss.splitter_excess_db) + self.propagation_db
    }
}

/// Builds a complete binary splitter tree over ordered leaves. Returns
/// `(per-leaf cost, depth, total waveguide length, root position)`.
fn build_tree(
    leaves: &[(NodeId, Point)],
    loss: &LossParams,
) -> (BTreeMap<u32, LeafCost>, usize, i64, Point) {
    assert!(!leaves.is_empty(), "tree needs at least one leaf");
    // Each level entry: (position, accumulated cost per leaf under it).
    let mut level: Vec<(Point, BTreeMap<u32, LeafCost>)> = leaves
        .iter()
        .map(|(n, p)| (*p, BTreeMap::from([(n.0, LeafCost::default())])))
        .collect();
    let mut depth = 0usize;
    let mut total_len = 0i64;
    while level.len() > 1 {
        depth += 1;
        let mut next: Vec<(Point, BTreeMap<u32, LeafCost>)> =
            Vec::with_capacity(level.len() / 2 + 1);
        let mut iter = level.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => {
                    let mid = Point::new((a.0.x + b.0.x) / 2, (a.0.y + b.0.y) / 2);
                    let mut merged = BTreeMap::new();
                    for (pos, map) in [a, b] {
                        let d = mid.manhattan_distance(pos);
                        total_len += d;
                        let prop = loss.propagation_db_per_cm * (d as f64 / 10_000.0);
                        for (leaf, c) in map {
                            merged.insert(
                                leaf,
                                LeafCost {
                                    splits: c.splits + 1,
                                    propagation_db: c.propagation_db + prop,
                                },
                            );
                        }
                    }
                    next.push((mid, merged));
                }
                None => {
                    // Odd leftover: promoted without a split.
                    next.push(a);
                }
            }
        }
        level = next;
    }
    let (root, costs) = level.pop().expect("root exists");
    (costs, depth, total_len, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::map_signals;
    use crate::opening::open_rings;
    use crate::ring::RingBuilder;
    use crate::shortcut::plan_shortcuts;

    fn full_plan(net: &NetworkSpec, wl: usize) -> (RingCycle, ShortcutPlan, MappingPlan) {
        let ring = RingBuilder::new().build(net).expect("ring");
        let sc = plan_shortcuts(net, &ring.cycle);
        let mut plan = map_signals(net, &ring.cycle, &sc, wl, 0).expect("mapped");
        open_rings(&ring.cycle, &mut plan, wl);
        (ring.cycle, sc, plan)
    }

    #[test]
    fn every_sender_gets_a_loss() {
        let net = NetworkSpec::proton_8();
        let (cycle, sc, plan) = full_plan(&net, 8);
        let pdn = design_pdn(
            &net,
            &cycle,
            &plan,
            &sc,
            &LossParams::default(),
            Point::new(-1_000, -1_000),
        );
        for (wi, wg) in plan.ring_waveguides.iter().enumerate() {
            for lane in &wg.lanes {
                for arc in &lane.arcs {
                    let node = cycle.order()[arc.from_pos];
                    let l = pdn.loss_for(wi, node);
                    assert!(l > 0.0, "sender loss must be positive");
                }
            }
        }
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        let leaves: Vec<(NodeId, Point)> = (0..16)
            .map(|i| (NodeId(i), Point::new(i as i64 * 1_000, 0)))
            .collect();
        let (losses, depth, len, _) = build_tree(&leaves, &LossParams::default());
        assert_eq!(depth, 4); // ceil(log2 16)
        assert_eq!(losses.len(), 16);
        assert!(len > 0);
        // Every leaf passes exactly 4 splitters in a perfect tree:
        // loss >= 4 * 3.01 dB.
        let lp = LossParams::default();
        for c in losses.values() {
            assert_eq!(c.splits, 4);
            assert!(c.total_db(&lp) >= 4.0 * 3.0, "leaf loss too small");
        }
    }

    #[test]
    fn odd_leaf_counts_work() {
        for count in [1u32, 3, 5, 7, 9] {
            let leaves: Vec<(NodeId, Point)> = (0..count)
                .map(|i| (NodeId(i), Point::new(i as i64 * 500, 0)))
                .collect();
            let (losses, depth, _, _) = build_tree(&leaves, &LossParams::default());
            assert_eq!(losses.len(), count as usize);
            assert_eq!(depth, (count as f64).log2().ceil() as usize);
        }
    }

    #[test]
    fn crossing_free_when_all_opened() {
        let net = NetworkSpec::proton_8();
        let (cycle, sc, plan) = full_plan(&net, 8);
        assert!(plan.ring_waveguides.iter().all(|w| w.opening.is_some()));
        let pdn = design_pdn(
            &net,
            &cycle,
            &plan,
            &sc,
            &LossParams::default(),
            Point::new(0, 0),
        );
        assert!(pdn.crossed_waveguides.is_empty());
    }

    #[test]
    fn shortcut_senders_supplied() {
        let net = NetworkSpec::psion_16();
        let (cycle, sc, plan) = full_plan(&net, 14);
        if sc.shortcuts.is_empty() {
            return; // nothing to check on this floorplan
        }
        let pdn = design_pdn(
            &net,
            &cycle,
            &plan,
            &sc,
            &LossParams::default(),
            Point::new(0, 0),
        );
        for s in &sc.shortcuts {
            assert!(pdn.sender_loss_db.contains_key(&(SHORTCUT_GROUP, s.a.0)));
            assert!(pdn.sender_loss_db.contains_key(&(SHORTCUT_GROUP, s.b.0)));
        }
    }

    #[test]
    fn more_senders_mean_more_loss() {
        let small: Vec<(NodeId, Point)> = (0..4)
            .map(|i| (NodeId(i), Point::new(i as i64 * 1_000, 0)))
            .collect();
        let big: Vec<(NodeId, Point)> = (0..32)
            .map(|i| (NodeId(i), Point::new(i as i64 * 1_000, 0)))
            .collect();
        let p = LossParams::default();
        let (ls, _, _, _) = build_tree(&small, &p);
        let (lb, _, _, _) = build_tree(&big, &p);
        let max_small = ls.values().map(|c| c.total_db(&p)).fold(0.0, f64::max);
        let max_big = lb.values().map(|c| c.total_db(&p)).fold(0.0, f64::max);
        assert!(max_big > max_small);
    }
}
