//! Step 3 (first half): signal mapping and wavelength assignment
//! (Sec. III-C).
//!
//! Signals not served by shortcuts are mapped onto ring waveguides in
//! their shorter direction. Following ORing \[17\], each ring waveguide may
//! carry at most `#wl` wavelengths, and one wavelength may be reused by
//! several signals on the same waveguide when their directed arcs do not
//! overlap. When no existing waveguide can take a signal, a new concentric
//! ring waveguide is created.
//!
//! Shortcut-served signals reuse the same wavelength indices (shortcut
//! wires never overlap ring waveguides): plain shortcuts all use λ₀;
//! crossing pairs use λ₀/λ₁ for the direct signals and λ₂/λ₃ for the
//! CSE-routed ones, so no two signals on a shared wire or a crossing ever
//! share a wavelength.

use crate::error::SynthesisError;
use crate::netspec::{NetworkSpec, NodeId};
use crate::ring::{Direction, RingCycle};
use crate::shortcut::ShortcutPlan;
use xring_phot::Wavelength;

/// How a signal is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// Along ring waveguide `waveguide` (index into
    /// [`MappingPlan::ring_waveguides`]), in that waveguide's direction.
    Ring {
        /// Ring waveguide index.
        waveguide: usize,
    },
    /// Directly along shortcut `shortcut`'s corridor.
    ShortcutDirect {
        /// Shortcut index in the [`ShortcutPlan`].
        shortcut: usize,
    },
    /// Entering shortcut `enter`, CSE-dropping at the crossing, exiting on
    /// shortcut `exit` (Fig. 7(b)).
    ShortcutCse {
        /// Shortcut carrying the first hop.
        enter: usize,
        /// Shortcut carrying the second hop.
        exit: usize,
    },
}

/// One mapped signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalRoute {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Assigned wavelength.
    pub wavelength: Wavelength,
    /// Route taken.
    pub kind: RouteKind,
}

/// One arc resident on a wavelength lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneArc {
    /// Global signal index (`SignalId`).
    pub signal: usize,
    /// Cycle position of the source node.
    pub from_pos: usize,
    /// Cycle position of the destination node.
    pub to_pos: usize,
    /// Covered cycle edges, in travel order.
    pub edges: Vec<usize>,
    /// Cycle positions strictly passed through.
    pub interior: Vec<usize>,
}

/// One wavelength lane on a ring waveguide: arcs sharing a wavelength
/// must be pairwise edge-disjoint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Lane {
    /// Resident arcs.
    pub arcs: Vec<LaneArc>,
}

impl Lane {
    /// True when `edges`/`interior` fit on this lane under `opening`.
    pub fn accepts(&self, edges: &[usize], interior: &[usize], opening: Option<usize>) -> bool {
        if let Some(open) = opening {
            if interior.contains(&open) {
                return false;
            }
        }
        self.arcs
            .iter()
            .all(|a| a.edges.iter().all(|e| !edges.contains(e)))
    }
}

/// One concentric ring waveguide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingWaveguide {
    /// Travel direction.
    pub direction: Direction,
    /// Concentric offset level (0 = innermost of its direction).
    pub level: usize,
    /// Cycle position of the ring opening, once Step 3's second half has
    /// chosen one.
    pub opening: Option<usize>,
    /// Wavelength lanes; lane `k` carries wavelength `λk`.
    pub lanes: Vec<Lane>,
}

impl RingWaveguide {
    /// Signals currently assigned to this waveguide (global indices).
    pub fn signals(&self) -> impl Iterator<Item = usize> + '_ {
        self.lanes
            .iter()
            .flat_map(|l| l.arcs.iter().map(|a| a.signal))
    }
}

/// The complete signal mapping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MappingPlan {
    /// All signal routes; index `i` is `SignalId(i)`.
    pub routes: Vec<SignalRoute>,
    /// All ring waveguides.
    pub ring_waveguides: Vec<RingWaveguide>,
}

impl MappingPlan {
    /// Highest number of wavelengths on any single waveguide (the
    /// effective `#wl`), also counting shortcut wavelength usage.
    pub fn wavelengths_used(&self) -> usize {
        let ring_max = self
            .ring_waveguides
            .iter()
            .map(|w| w.lanes.len())
            .max()
            .unwrap_or(0);
        let shortcut_max = self
            .routes
            .iter()
            .filter(|r| !matches!(r.kind, RouteKind::Ring { .. }))
            .map(|r| r.wavelength.index() as usize + 1)
            .max()
            .unwrap_or(0);
        ring_max.max(shortcut_max)
    }

    /// Number of ring waveguides per direction `(cw, ccw)`.
    pub fn waveguide_counts(&self) -> (usize, usize) {
        let cw = self
            .ring_waveguides
            .iter()
            .filter(|w| w.direction == Direction::Cw)
            .count();
        (cw, self.ring_waveguides.len() - cw)
    }

    /// Consistency check: every lane is edge-disjoint, every ring route
    /// points at a waveguide that holds its arc, and no arc passes an
    /// opening. Used by tests and `debug_assert`s.
    pub fn validate(&self) -> Result<(), String> {
        for (wi, wg) in self.ring_waveguides.iter().enumerate() {
            for (li, lane) in wg.lanes.iter().enumerate() {
                for (ai, a) in lane.arcs.iter().enumerate() {
                    if let Some(open) = wg.opening {
                        if a.interior.contains(&open) {
                            return Err(format!(
                                "waveguide {wi} lane {li}: arc of signal {} passes opening {open}",
                                a.signal
                            ));
                        }
                    }
                    for b in &lane.arcs[ai + 1..] {
                        if a.edges.iter().any(|e| b.edges.contains(e)) {
                            return Err(format!(
                                "waveguide {wi} lane {li}: signals {} and {} overlap",
                                a.signal, b.signal
                            ));
                        }
                    }
                }
            }
        }
        for (si, r) in self.routes.iter().enumerate() {
            if let RouteKind::Ring { waveguide } = r.kind {
                let wg = &self.ring_waveguides[waveguide];
                let li = r.wavelength.index() as usize;
                if li >= wg.lanes.len() || !wg.lanes[li].arcs.iter().any(|a| a.signal == si) {
                    return Err(format!("signal {si} not resident on its lane"));
                }
            }
        }
        Ok(())
    }
}

/// Maps all-to-all traffic given the ring and the shortcut plan.
///
/// # Errors
///
/// [`SynthesisError::WavelengthBudgetExceeded`] when `max_waveguides`
/// (0 = unlimited) and `max_wavelengths` cannot accommodate the traffic.
///
/// # Panics
///
/// Panics if `max_wavelengths == 0`.
pub fn map_signals(
    net: &NetworkSpec,
    cycle: &RingCycle,
    shortcuts: &ShortcutPlan,
    max_wavelengths: usize,
    max_waveguides: usize,
) -> Result<MappingPlan, SynthesisError> {
    map_signals_with_traffic(
        net,
        cycle,
        shortcuts,
        &crate::traffic::Traffic::AllToAll,
        max_wavelengths,
        max_waveguides,
    )
}

/// [`map_signals`] generalized to an arbitrary [`Traffic`] pattern
/// (extension beyond the paper's all-to-all workload).
///
/// # Errors
///
/// As for [`map_signals`].
///
/// # Panics
///
/// Panics if `max_wavelengths == 0`.
///
/// [`Traffic`]: crate::traffic::Traffic
pub fn map_signals_with_traffic(
    net: &NetworkSpec,
    cycle: &RingCycle,
    shortcuts: &ShortcutPlan,
    traffic: &crate::traffic::Traffic,
    max_wavelengths: usize,
    max_waveguides: usize,
) -> Result<MappingPlan, SynthesisError> {
    assert!(max_wavelengths >= 1, "need at least one wavelength");
    let mut plan = MappingPlan::default();

    // Split traffic into shortcut-served and ring-bound.
    let cse_allowed = max_wavelengths >= 4;
    let mut ring_jobs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut shortcut_routes: Vec<SignalRoute> = Vec::new();
    for (from, to) in traffic.pairs(net) {
        match classify_shortcut_route(shortcuts, from, to, cse_allowed) {
            Some((kind, wl)) => shortcut_routes.push(SignalRoute {
                from,
                to,
                wavelength: wl,
                kind,
            }),
            None => ring_jobs.push((from, to)),
        }
    }

    // Map ring signals, longest arcs first (they are hardest to place).
    let mut jobs: Vec<(NodeId, NodeId, usize, usize, Direction, i64)> = ring_jobs
        .into_iter()
        .map(|(from, to)| {
            let fa = cycle.position_of(from);
            let fb = cycle.position_of(to);
            let cw = cycle.arc_length(fa, fb, Direction::Cw);
            let ccw = cycle.arc_length(fa, fb, Direction::Ccw);
            let dir = if cw <= ccw {
                Direction::Cw
            } else {
                Direction::Ccw
            };
            (from, to, fa, fb, dir, cw.min(ccw))
        })
        .collect();
    jobs.sort_by_key(|&(from, to, _, _, _, len)| (std::cmp::Reverse(len), from, to));

    let mut ring_routes: Vec<SignalRoute> = Vec::with_capacity(jobs.len());
    for (from, to, fa, fb, dir, _) in jobs {
        let signal_idx = ring_routes.len();
        let edges = cycle.arc_edges(fa, fb, dir);
        let interior = cycle.interior_positions(fa, fb, dir);
        let arc = LaneArc {
            signal: signal_idx,
            from_pos: fa,
            to_pos: fb,
            edges,
            interior,
        };
        let Some((wi, wl)) = place_arc(
            &mut plan.ring_waveguides,
            dir,
            arc,
            max_wavelengths,
            max_waveguides,
        ) else {
            return Err(SynthesisError::WavelengthBudgetExceeded {
                max_wavelengths,
                max_waveguides,
            });
        };
        ring_routes.push(SignalRoute {
            from,
            to,
            wavelength: wl,
            kind: RouteKind::Ring { waveguide: wi },
        });
    }

    // Ring routes come first so lane arcs reference global signal ids
    // directly; shortcut routes follow.
    plan.routes = ring_routes;
    plan.routes.extend(shortcut_routes);
    debug_assert_eq!(plan.validate(), Ok(()));
    Ok(plan)
}

/// Shortcut service classification with the paper's wavelength rules.
fn classify_shortcut_route(
    shortcuts: &ShortcutPlan,
    from: NodeId,
    to: NodeId,
    cse_allowed: bool,
) -> Option<(RouteKind, Wavelength)> {
    for (i, s) in shortcuts.shortcuts.iter().enumerate() {
        if (s.a == from && s.b == to) || (s.b == from && s.a == to) {
            let wl = match s.crossing_partner {
                None => Wavelength::new(0),
                Some(p) => {
                    if i < p {
                        Wavelength::new(0)
                    } else {
                        Wavelength::new(1)
                    }
                }
            };
            return Some((RouteKind::ShortcutDirect { shortcut: i }, wl));
        }
        if !cse_allowed {
            continue;
        }
        if let Some(p) = s.crossing_partner {
            let t = &shortcuts.shortcuts[p];
            // The CSE serves exactly the swapped pairs of Fig. 7(b): the
            // forward wires couple `s.a → t.b`, the reverse wires couple
            // `s.b → t.a` (and the loop visits the partner's iteration
            // for the opposite orientations).
            let serves = (s.a == from && t.b == to) || (s.b == from && t.a == to);
            if serves {
                // λ2 for the pair containing the lower shortcut's `a`
                // endpoint, λ3 for the pair containing its `b` endpoint.
                let lower_a_pair = if i < p { s.a == from } else { t.a == to };
                let wl = if lower_a_pair {
                    Wavelength::new(2)
                } else {
                    Wavelength::new(3)
                };
                return Some((RouteKind::ShortcutCse { enter: i, exit: p }, wl));
            }
        }
    }
    None
}

/// Places an arc on the first fitting (waveguide, lane); creates lanes and
/// waveguides as the budget allows. Returns `(waveguide index, wavelength)`.
fn place_arc(
    waveguides: &mut Vec<RingWaveguide>,
    dir: Direction,
    arc: LaneArc,
    max_wavelengths: usize,
    max_waveguides: usize,
) -> Option<(usize, Wavelength)> {
    // Best fit: among accepting lanes, pick the one whose residents
    // already cover the most edges — packing arcs densely so fewer
    // waveguides are needed (fewer waveguides = shorter outer rings and
    // smaller PDN trees, which is what the paper's #wl sweep optimizes).
    let mut best: Option<(usize, usize, usize)> = None; // (covered, wi, li)
    for (wi, wg) in waveguides.iter().enumerate() {
        if wg.direction != dir {
            continue;
        }
        for (li, lane) in wg.lanes.iter().enumerate() {
            if lane.accepts(&arc.edges, &arc.interior, wg.opening) {
                let covered: usize = lane.arcs.iter().map(|a| a.edges.len()).sum();
                if best.map(|(c, _, _)| covered > c).unwrap_or(true) {
                    best = Some((covered, wi, li));
                }
            }
        }
    }
    if let Some((_, wi, li)) = best {
        waveguides[wi].lanes[li].arcs.push(arc);
        return Some((wi, Wavelength::new(li as u16)));
    }
    // Otherwise a new lane on the fullest waveguide with headroom.
    let fullest = waveguides
        .iter()
        .enumerate()
        .filter(|(_, w)| w.direction == dir && w.lanes.len() < max_wavelengths)
        .max_by_key(|(wi, w)| (w.lanes.len(), usize::MAX - wi))
        .map(|(wi, _)| wi);
    if let Some(wi) = fullest {
        let li = waveguides[wi].lanes.len();
        waveguides[wi].lanes.push(Lane { arcs: vec![arc] });
        return Some((wi, Wavelength::new(li as u16)));
    }
    if max_waveguides == 0 || waveguides.len() < max_waveguides {
        let level = waveguides.iter().filter(|w| w.direction == dir).count();
        waveguides.push(RingWaveguide {
            direction: dir,
            level,
            opening: None,
            lanes: vec![Lane { arcs: vec![arc] }],
        });
        return Some((waveguides.len() - 1, Wavelength::new(0)));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingBuilder;
    use crate::shortcut::{plan_shortcuts, ShortcutPlan};

    fn setup(n8: bool) -> (NetworkSpec, RingCycle, ShortcutPlan) {
        let net = if n8 {
            NetworkSpec::proton_8()
        } else {
            NetworkSpec::psion_16()
        };
        let ring = RingBuilder::new().build(&net).expect("ring");
        let sc = plan_shortcuts(&net, &ring.cycle);
        (net, ring.cycle, sc)
    }

    #[test]
    fn all_signals_mapped_and_valid() {
        let (net, cycle, sc) = setup(true);
        let plan = map_signals(&net, &cycle, &sc, 8, 0).expect("mapped");
        assert_eq!(plan.routes.len(), net.signal_count());
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn wavelength_cap_respected() {
        let (net, cycle, sc) = setup(true);
        for cap in [2, 4, 8] {
            let plan = map_signals(&net, &cycle, &sc, cap, 0).expect("mapped");
            for wg in &plan.ring_waveguides {
                assert!(wg.lanes.len() <= cap);
            }
            assert!(plan.wavelengths_used() <= cap.max(4));
        }
    }

    #[test]
    fn tight_waveguide_budget_errors() {
        let (net, cycle, sc) = setup(true);
        let err = map_signals(&net, &cycle, &sc, 1, 1);
        assert!(matches!(
            err,
            Err(SynthesisError::WavelengthBudgetExceeded { .. })
        ));
    }

    #[test]
    fn smaller_cap_needs_more_waveguides() {
        let (net, cycle, sc) = setup(false);
        let small = map_signals(&net, &cycle, &sc, 4, 0).expect("mapped");
        let large = map_signals(&net, &cycle, &sc, 16, 0).expect("mapped");
        assert!(small.ring_waveguides.len() >= large.ring_waveguides.len());
    }

    #[test]
    fn ring_routes_take_shorter_direction() {
        let (net, cycle, sc) = setup(true);
        let plan = map_signals(&net, &cycle, &ShortcutPlan::empty(), 8, 0).expect("mapped");
        let _ = sc;
        for r in &plan.routes {
            if let RouteKind::Ring { waveguide } = r.kind {
                let dir = plan.ring_waveguides[waveguide].direction;
                let fa = cycle.position_of(r.from);
                let fb = cycle.position_of(r.to);
                let len = cycle.arc_length(fa, fb, dir);
                let other = cycle.arc_length(fa, fb, dir.reversed());
                assert!(len <= other, "signal took the longer way around");
            }
        }
    }

    #[test]
    fn shortcut_wavelength_rules() {
        let (net, cycle, sc) = setup(false);
        let plan = map_signals(&net, &cycle, &sc, 16, 0).expect("mapped");
        for r in &plan.routes {
            match r.kind {
                RouteKind::ShortcutDirect { shortcut } => {
                    let s = &sc.shortcuts[shortcut];
                    if s.crossing_partner.is_none() {
                        assert_eq!(r.wavelength, Wavelength::new(0));
                    } else {
                        assert!(r.wavelength.index() <= 1);
                    }
                }
                RouteKind::ShortcutCse { .. } => {
                    assert!(r.wavelength.index() >= 2 && r.wavelength.index() <= 3);
                }
                RouteKind::Ring { .. } => {}
            }
        }
    }

    #[test]
    fn lane_reuse_happens() {
        // With a generous cap there should still be some wavelength reuse
        // (more arcs than lanes on at least one waveguide).
        let (_, cycle, _) = setup(false);
        let net = NetworkSpec::psion_16();
        let plan = map_signals(&net, &cycle, &ShortcutPlan::empty(), 16, 0).expect("mapped");
        let reused = plan
            .ring_waveguides
            .iter()
            .flat_map(|w| &w.lanes)
            .any(|l| l.arcs.len() > 1);
        assert!(reused, "expected some wavelength reuse");
    }
}
