//! Tour heuristics: nearest-neighbour construction + 2-opt improvement.
//!
//! Used (a) to warm-start the ring-construction MILP with an incumbent and
//! (b) as a standalone ring builder for the Step-1 ablation (DESIGN.md E7)
//! and for networks too large for exact solving.

use crate::netspec::{NetworkSpec, NodeId};

/// Builds a tour with the nearest-neighbour heuristic starting at node 0.
pub fn nearest_neighbor_tour(net: &NetworkSpec) -> Vec<NodeId> {
    let n = net.len();
    let mut visited = vec![false; n];
    let mut tour = Vec::with_capacity(n);
    let mut cur = NodeId(0);
    visited[0] = true;
    tour.push(cur);
    for _ in 1..n {
        let next = net
            .node_ids()
            .filter(|id| !visited[id.index()])
            .min_by_key(|id| (net.distance(cur, *id), id.index()))
            .expect("unvisited node exists");
        visited[next.index()] = true;
        tour.push(next);
        cur = next;
    }
    tour
}

/// Total (closed) tour length in µm.
pub fn tour_length(net: &NetworkSpec, tour: &[NodeId]) -> i64 {
    let n = tour.len();
    (0..n)
        .map(|i| net.distance(tour[i], tour[(i + 1) % n]))
        .sum()
}

/// Improves a tour with 2-opt moves until no improving move exists.
///
/// 2-opt reverses tour segments; for Manhattan metrics it untangles most
/// crossings as a side effect, which also helps the geometric
/// realizability of the resulting ring.
pub fn two_opt(net: &NetworkSpec, tour: &mut [NodeId]) {
    let n = tour.len();
    if n < 4 {
        return;
    }
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n - 1 {
            for k in i + 1..n {
                // Reversing tour[i+1..=k] replaces edges (i,i+1) and
                // (k,k+1) with (i,k) and (i+1,k+1).
                let a = tour[i];
                let b = tour[(i + 1) % n];
                let c = tour[k];
                let d = tour[(k + 1) % n];
                if (i + 1) % n == k || (k + 1) % n == i {
                    continue;
                }
                let before = net.distance(a, b) + net.distance(c, d);
                let after = net.distance(a, c) + net.distance(b, d);
                if after < before {
                    tour[i + 1..=k].reverse();
                    improved = true;
                }
            }
        }
    }
}

/// Nearest-neighbour + 2-opt in one call.
pub fn heuristic_tour(net: &NetworkSpec) -> Vec<NodeId> {
    let mut tour = nearest_neighbor_tour(net);
    two_opt(net, &mut tour);
    tour
}

/// The "perimeter order" tour: nodes sorted by angle around the centroid
/// (ties by distance). This is how ORing's manual designs order a regular
/// grid; used as the naive-ring ablation baseline.
pub fn perimeter_tour(net: &NetworkSpec) -> Vec<NodeId> {
    let n = net.len() as f64;
    let cx = net.positions().iter().map(|p| p.x as f64).sum::<f64>() / n;
    let cy = net.positions().iter().map(|p| p.y as f64).sum::<f64>() / n;
    let mut ids: Vec<NodeId> = net.node_ids().collect();
    ids.sort_by(|a, b| {
        let pa = net.position(*a);
        let pb = net.position(*b);
        let ta = (pa.y as f64 - cy).atan2(pa.x as f64 - cx);
        let tb = (pb.y as f64 - cy).atan2(pb.x as f64 - cx);
        ta.partial_cmp(&tb)
            .expect("angles are finite")
            .then(a.index().cmp(&b.index()))
    });
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nn_tour_visits_every_node_once() {
        let net = NetworkSpec::proton_16();
        let tour = nearest_neighbor_tour(&net);
        assert_eq!(tour.len(), 16);
        let mut seen = [false; 16];
        for id in &tour {
            assert!(!seen[id.index()], "node visited twice");
            seen[id.index()] = true;
        }
    }

    #[test]
    fn two_opt_never_worsens() {
        let net = NetworkSpec::irregular(14, 12_000, 7).expect("valid");
        let mut tour = nearest_neighbor_tour(&net);
        let before = tour_length(&net, &tour);
        two_opt(&net, &mut tour);
        let after = tour_length(&net, &tour);
        assert!(after <= before, "2-opt worsened {before} -> {after}");
    }

    #[test]
    fn grid_tour_is_near_optimal() {
        // On a 4x4 grid with pitch p, the optimal closed tour has length
        // 16p; NN + 2-opt should land within ~12%.
        let net = NetworkSpec::regular_grid(4, 4, 1_000).expect("valid");
        let tour = heuristic_tour(&net);
        let len = tour_length(&net, &tour);
        assert!(len >= 16_000, "below optimum is impossible: {len}");
        assert!(len <= 18_000, "heuristic too far from optimum: {len}");
    }

    #[test]
    fn perimeter_tour_is_a_permutation() {
        let net = NetworkSpec::psion_16();
        let tour = perimeter_tour(&net);
        let mut idx: Vec<usize> = tour.iter().map(|n| n.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn tour_length_of_square() {
        let net = NetworkSpec::regular_grid(2, 2, 500).expect("valid");
        let tour = vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2)];
        assert_eq!(tour_length(&net, &tour), 2_000);
    }
}
