//! Step 2: shortcut construction (Sec. III-B).
//!
//! Nodes that are physically close but far apart along the ring get
//! dedicated point-to-point waveguides ("shortcuts"). A shortcut between
//! nodes `a` and `b` consists of two wires (a's sender → b's receiver and
//! b's sender → a's receiver) and is *feasible* when it can be realized as
//! an L-route that does not touch any ring waveguide. Each node may join
//! at most one shortcut; a shortcut may cross at most one other shortcut,
//! in which case the crossing is implemented as a CSE that additionally
//! serves the "swapped" node pairs (Fig. 7).

use crate::netspec::{NetworkSpec, NodeId};
use crate::ring::{Direction, RingCycle};
use xring_geom::{LRoute, Point, Polyline, RouteOption};

/// A selected shortcut between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Shortcut {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Realized corridor geometry (both wires run parallel along it).
    pub route: LRoute,
    /// Corridor length in µm (= Manhattan distance).
    pub length_um: i64,
    /// The gain `g(a, b)` of the paper: ring path saved, in µm.
    pub gain_um: i64,
    /// Index of the crossing partner in the plan, when this shortcut is
    /// CSE-merged with another.
    pub crossing_partner: Option<usize>,
    /// Distance along this corridor (from `a`) to the crossing point with
    /// the partner, when any.
    pub crossing_at_um: Option<i64>,
}

/// The result of shortcut planning.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShortcutPlan {
    /// Selected shortcuts.
    pub shortcuts: Vec<Shortcut>,
}

impl ShortcutPlan {
    /// No shortcuts (Step 2 disabled).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The shortcut (if any) incident to `node`.
    pub fn shortcut_of(&self, node: NodeId) -> Option<usize> {
        self.shortcuts
            .iter()
            .position(|s| s.a == node || s.b == node)
    }

    /// All node pairs served *directly* by shortcuts, plus the CSE-merged
    /// swapped pairs, as unordered pairs.
    pub fn served_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::new();
        for (i, s) in self.shortcuts.iter().enumerate() {
            pairs.push((s.a, s.b));
            if let Some(p) = s.crossing_partner {
                if p > i {
                    let t = &self.shortcuts[p];
                    // CSE serves the swapped combinations (Fig. 7(b)).
                    pairs.push((s.a, t.b));
                    pairs.push((t.a, s.b));
                }
            }
        }
        pairs
    }
}

/// Plans shortcuts for a realized ring.
///
/// Follows the paper: collect feasible options, compute gains, sort by
/// gain, select greedily subject to (a) one shortcut per node, (b) at most
/// one crossing partner per shortcut, (c) non-negative gain.
pub fn plan_shortcuts(net: &NetworkSpec, cycle: &RingCycle) -> ShortcutPlan {
    let ring = cycle.polyline();

    // 1. Collect feasible candidates with positive gain.
    let gain_span = xring_obs::span("shortcut-gain");
    struct Candidate {
        a: NodeId,
        b: NodeId,
        route: LRoute,
        length_um: i64,
        gain_um: i64,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    let n = net.len() as u32;
    for i in 0..n {
        for j in i + 1..n {
            let (a, b) = (NodeId(i), NodeId(j));
            let pa = net.position(a);
            let pb = net.position(b);
            let Some(route) = feasible_route(pa, pb, &ring) else {
                continue;
            };
            let length = pa.manhattan_distance(pb);
            let (fa, fb) = (cycle.position_of(a), cycle.position_of(b));
            let ring_len = cycle
                .arc_length(fa, fb, Direction::Cw)
                .min(cycle.arc_length(fa, fb, Direction::Ccw));
            let gain = ring_len - length;
            if gain > 0 {
                candidates.push(Candidate {
                    a,
                    b,
                    route,
                    length_um: length,
                    gain_um: gain,
                });
            }
        }
    }

    xring_obs::counter("shortcut.candidates", candidates.len() as u64);
    drop(gain_span);

    // 2. Greedy selection by descending gain (CSE merges included).
    let _select_span = xring_obs::span("shortcut-select");
    candidates.sort_by_key(|c| (std::cmp::Reverse(c.gain_um), c.a, c.b));
    let mut plan = ShortcutPlan::empty();
    for c in candidates {
        if plan.shortcut_of(c.a).is_some() || plan.shortcut_of(c.b).is_some() {
            continue; // at most one shortcut per node
        }
        // Count crossings with already selected shortcuts.
        let crossing_with: Vec<usize> = plan
            .shortcuts
            .iter()
            .enumerate()
            .filter(|(_, s)| c.route.crosses(&s.route))
            .map(|(k, _)| k)
            .collect();
        match crossing_with.as_slice() {
            [] => {
                plan.shortcuts.push(Shortcut {
                    a: c.a,
                    b: c.b,
                    route: c.route,
                    length_um: c.length_um,
                    gain_um: c.gain_um,
                    crossing_partner: None,
                    crossing_at_um: None,
                });
            }
            [k] => {
                let k = *k;
                if plan.shortcuts[k].crossing_partner.is_some() {
                    continue; // partner already has a crossing
                }
                // CSE merge requires exactly one crossing point.
                let _cse_span = xring_obs::span("cse-merge");
                let Some((at_new, at_old)) = single_crossing(&c.route, &plan.shortcuts[k].route)
                else {
                    continue;
                };
                xring_obs::counter("shortcut.cse_merges", 1);
                let new_idx = plan.shortcuts.len();
                plan.shortcuts[k].crossing_partner = Some(new_idx);
                plan.shortcuts[k].crossing_at_um = Some(at_old);
                plan.shortcuts.push(Shortcut {
                    a: c.a,
                    b: c.b,
                    route: c.route,
                    length_um: c.length_um,
                    gain_um: c.gain_um,
                    crossing_partner: Some(k),
                    crossing_at_um: Some(at_new),
                });
            }
            _ => continue, // would cross 2+ shortcuts
        }
    }
    xring_obs::counter("shortcut.selected", plan.shortcuts.len() as u64);
    plan
}

/// Finds an L-route between `a` and `b` that touches the ring only at its
/// endpoints, preferring the option with that property.
fn feasible_route(a: Point, b: Point, ring: &Polyline) -> Option<LRoute> {
    for opt in RouteOption::BOTH {
        let r = LRoute::new(a, b, opt);
        if !ring.route_conflicts(&r, &[a, b]) {
            return Some(r);
        }
    }
    None
}

/// If the two routes share exactly one point, returns the along-route
/// distances `(on r1, on r2)` to it.
fn single_crossing(r1: &LRoute, r2: &LRoute) -> Option<(i64, i64)> {
    use xring_geom::SegmentIntersection;
    let mut hits: Vec<Point> = Vec::new();
    for s1 in r1.segments() {
        for s2 in r2.segments() {
            match s1.intersection(&s2) {
                SegmentIntersection::Point(p) => {
                    if !hits.contains(&p) {
                        hits.push(p);
                    }
                }
                SegmentIntersection::Overlap(_) => return None,
                SegmentIntersection::None => {}
            }
        }
    }
    if hits.len() != 1 {
        return None;
    }
    Some((distance_along(r1, hits[0]), distance_along(r2, hits[0])))
}

/// Distance from the start of `route` to point `p` (which must lie on it).
fn distance_along(route: &LRoute, p: Point) -> i64 {
    let mut acc = 0i64;
    for seg in route.segments() {
        if seg.contains(p) {
            return acc + seg.start().manhattan_distance(p);
        }
        acc += seg.length();
    }
    panic!("point {p} does not lie on route");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingBuilder;

    #[test]
    fn no_shortcuts_on_a_square() {
        // 4 nodes on a square: every pair is adjacent or diagonal; the
        // diagonal chord cannot be routed without its corner landing on
        // the ring, and ring paths are short anyway.
        let net = NetworkSpec::regular_grid(2, 2, 1_000).expect("valid");
        let out = RingBuilder::new().build(&net).expect("ring");
        let plan = plan_shortcuts(&net, &out.cycle);
        assert!(plan.shortcuts.is_empty(), "got {:?}", plan.shortcuts);
    }

    #[test]
    fn serpentine_ring_gets_shortcuts() {
        // A 4x4 grid ring is a boustrophedon; nodes on opposite sides of
        // a serpentine fold are close in space but far along the ring.
        let net = NetworkSpec::psion_16();
        let out = RingBuilder::new().build(&net).expect("ring");
        let plan = plan_shortcuts(&net, &out.cycle);
        assert!(
            !plan.shortcuts.is_empty(),
            "16-node serpentine should admit shortcuts"
        );
        for s in &plan.shortcuts {
            assert!(s.gain_um > 0);
            assert_eq!(s.length_um, net.distance(s.a, s.b));
        }
    }

    #[test]
    fn one_shortcut_per_node() {
        let net = NetworkSpec::psion_16();
        let out = RingBuilder::new().build(&net).expect("ring");
        let plan = plan_shortcuts(&net, &out.cycle);
        let mut used = std::collections::HashSet::new();
        for s in &plan.shortcuts {
            assert!(used.insert(s.a), "{} in two shortcuts", s.a);
            assert!(used.insert(s.b), "{} in two shortcuts", s.b);
        }
    }

    #[test]
    fn crossing_partners_are_mutual_and_single() {
        let net = NetworkSpec::psion_32();
        let out = RingBuilder::new()
            .with_algorithm(crate::ring::RingAlgorithm::Heuristic)
            .build(&net)
            .expect("ring");
        let plan = plan_shortcuts(&net, &out.cycle);
        for (i, s) in plan.shortcuts.iter().enumerate() {
            if let Some(p) = s.crossing_partner {
                assert_eq!(plan.shortcuts[p].crossing_partner, Some(i));
                assert!(s.crossing_at_um.expect("has crossing") >= 0);
                assert!(s.crossing_at_um.expect("has crossing") <= s.length_um);
            }
        }
        // No shortcut crosses a non-partner.
        for i in 0..plan.shortcuts.len() {
            for j in i + 1..plan.shortcuts.len() {
                let si = &plan.shortcuts[i];
                let sj = &plan.shortcuts[j];
                if si.crossing_partner != Some(j) && si.route.crosses(&sj.route) {
                    panic!("shortcut {i} crosses non-partner {j}");
                }
            }
        }
    }

    #[test]
    fn shortcut_gain_is_real_ring_savings() {
        let net = NetworkSpec::psion_16();
        let out = RingBuilder::new().build(&net).expect("ring");
        let plan = plan_shortcuts(&net, &out.cycle);
        for s in &plan.shortcuts {
            let (fa, fb) = (out.cycle.position_of(s.a), out.cycle.position_of(s.b));
            let best_ring = out
                .cycle
                .arc_length(fa, fb, Direction::Cw)
                .min(out.cycle.arc_length(fa, fb, Direction::Ccw));
            assert_eq!(s.gain_um, best_ring - s.length_um);
        }
    }

    #[test]
    fn served_pairs_includes_cse_swaps() {
        let mut plan = ShortcutPlan::empty();
        let r1 = LRoute::new(
            Point::new(0, 0),
            Point::new(10, 10),
            RouteOption::HorizontalFirst,
        );
        let r2 = LRoute::new(
            Point::new(0, 10),
            Point::new(10, 0),
            RouteOption::HorizontalFirst,
        );
        plan.shortcuts.push(Shortcut {
            a: NodeId(0),
            b: NodeId(1),
            route: r1,
            length_um: 20,
            gain_um: 5,
            crossing_partner: Some(1),
            crossing_at_um: Some(10),
        });
        plan.shortcuts.push(Shortcut {
            a: NodeId(2),
            b: NodeId(3),
            route: r2,
            length_um: 20,
            gain_um: 5,
            crossing_partner: Some(0),
            crossing_at_um: Some(10),
        });
        let pairs = plan.served_pairs();
        assert!(pairs.contains(&(NodeId(0), NodeId(1))));
        assert!(pairs.contains(&(NodeId(2), NodeId(3))));
        assert!(pairs.contains(&(NodeId(0), NodeId(3))));
        assert!(pairs.contains(&(NodeId(2), NodeId(1))));
    }
}
