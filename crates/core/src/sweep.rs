//! `#wl` sweeps: the operating-point search of the paper's Sec. IV
//! ("we vary the settings of #wl and pick the one with the minimum power
//! / maximum SNR"), packaged as a library API.

use crate::design::{DegradationLevel, XRingDesign};
use crate::error::SynthesisError;
use crate::netspec::NetworkSpec;
use crate::synth::{SynthesisOptions, Synthesizer};
use xring_phot::{CrosstalkParams, LossParams, PowerParams, RouterReport};

/// Selection criterion for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepObjective {
    /// Minimize worst-case insertion loss (Table I's criterion).
    MinInsertionLoss,
    /// Minimize total laser power (Tables II/III).
    MinPower,
    /// Maximize worst-case SNR; noise-free designs rank best.
    MaxSnr,
}

/// One evaluated sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The `#wl` setting.
    pub wavelengths: usize,
    /// Its evaluation.
    pub report: RouterReport,
    /// The synthesized design itself, carried so that the sweep winner
    /// never has to be re-synthesized (see [`synthesize_best`]).
    pub design: XRingDesign,
    /// How far synthesis degraded at this point (mirrors the design's
    /// provenance, surfaced here so sweep consumers can filter or report
    /// without digging into the design).
    pub degradation: DegradationLevel,
    /// How the point's ring MILP converged (mirrors
    /// `design.ring_stats.convergence`; `None` when telemetry was off
    /// or the ring came from a heuristic).
    pub milp_convergence: Option<crate::ConvergenceSummary>,
}

/// The result of a sweep: every feasible point plus the winner's index.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// All evaluated points, in ascending `#wl` order.
    pub points: Vec<SweepPoint>,
    /// Index into [`points`](Self::points) of the best point under the
    /// requested objective.
    pub best: usize,
}

impl SweepResult {
    /// The winning point.
    pub fn best_point(&self) -> &SweepPoint {
        &self.points[self.best]
    }
}

/// Sweeps `#wl` over `candidates` for `net` and picks the best point.
///
/// `base` carries everything except `max_wavelengths`, which the sweep
/// overrides per candidate. Candidates whose mapping fails (budget
/// exhaustion) are skipped.
///
/// # Errors
///
/// [`SynthesisError::WavelengthBudgetExceeded`] when *no* candidate is
/// feasible; other synthesis errors are propagated from the first
/// candidate that raises them.
///
/// # Example
///
/// ```
/// use xring_core::{sweep_wavelengths, NetworkSpec, SweepObjective, SynthesisOptions};
/// use xring_phot::{CrosstalkParams, LossParams, PowerParams};
///
/// let net = NetworkSpec::proton_8();
/// let result = sweep_wavelengths(
///     &net,
///     SynthesisOptions::with_wavelengths(8),
///     &[2, 4, 8],
///     SweepObjective::MinPower,
///     &LossParams::default(),
///     Some(&CrosstalkParams::default()),
///     &PowerParams::default(),
/// )?;
/// assert_eq!(result.points.len(), 3);
/// # Ok::<(), xring_core::SynthesisError>(())
/// ```
pub fn sweep_wavelengths(
    net: &NetworkSpec,
    base: SynthesisOptions,
    candidates: &[usize],
    objective: SweepObjective,
    loss: &LossParams,
    xtalk: Option<&CrosstalkParams>,
    power: &PowerParams,
) -> Result<SweepResult, SynthesisError> {
    assert!(!candidates.is_empty(), "sweep needs candidates");
    let mut points = Vec::new();
    for &wl in candidates {
        let options = SynthesisOptions {
            max_wavelengths: wl,
            ..base.clone()
        };
        match Synthesizer::new(options).synthesize(net) {
            Ok(design) => {
                let report = design.report(format!("#wl={wl}"), loss, xtalk, power);
                let degradation = design.provenance.degradation;
                let milp_convergence = design.ring_stats.convergence.clone();
                points.push(SweepPoint {
                    wavelengths: wl,
                    report,
                    design,
                    degradation,
                    milp_convergence,
                });
            }
            Err(SynthesisError::WavelengthBudgetExceeded { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    if points.is_empty() {
        return Err(SynthesisError::WavelengthBudgetExceeded {
            max_wavelengths: *candidates.iter().max().expect("non-empty"),
            max_waveguides: base.max_waveguides,
        });
    }
    let best = pick_best_index(&points, objective);
    Ok(SweepResult { points, best })
}

/// Returns the best design found by a sweep. The design is taken straight
/// from the winning [`SweepPoint`] — nothing is synthesized twice.
///
/// # Example
///
/// Pick the lowest-power 8-node design among `#wl ∈ {4, 8}`:
///
/// ```
/// use xring_core::{synthesize_best, NetworkSpec, SweepObjective, SynthesisOptions};
/// use xring_phot::{CrosstalkParams, LossParams, PowerParams};
///
/// let design = synthesize_best(
///     &NetworkSpec::proton_8(),
///     SynthesisOptions::default(),
///     &[4, 8],
///     SweepObjective::MinPower,
///     &LossParams::default(),
///     Some(&CrosstalkParams::default()),
///     &PowerParams::default(),
/// )?;
/// assert_eq!(design.layout.signals.len(), 56);
/// assert!(design.provenance.audit.is_clean());
/// # Ok::<(), xring_core::SynthesisError>(())
/// ```
///
/// # Errors
///
/// As for [`sweep_wavelengths`].
pub fn synthesize_best(
    net: &NetworkSpec,
    base: SynthesisOptions,
    candidates: &[usize],
    objective: SweepObjective,
    loss: &LossParams,
    xtalk: Option<&CrosstalkParams>,
    power: &PowerParams,
) -> Result<XRingDesign, SynthesisError> {
    let SweepResult { mut points, best } =
        sweep_wavelengths(net, base, candidates, objective, loss, xtalk, power)?;
    Ok(points.swap_remove(best).design)
}

/// Index of the best point under `objective` (shared with the parallel
/// sweep in `xring-engine`, which must pick identically to the serial
/// path).
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn pick_best_index(points: &[SweepPoint], objective: SweepObjective) -> usize {
    let key = |r: &RouterReport| match objective {
        SweepObjective::MinInsertionLoss => r.worst_il_db,
        SweepObjective::MinPower => r.total_power_w.unwrap_or(f64::INFINITY),
        SweepObjective::MaxSnr => -r.worst_snr_db.unwrap_or(f64::INFINITY),
    };
    points
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            key(&a.report)
                .partial_cmp(&key(&b.report))
                .expect("metrics are never NaN")
        })
        .map(|(i, _)| i)
        .expect("non-empty points")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(objective: SweepObjective) -> SweepResult {
        let net = NetworkSpec::proton_8();
        sweep_wavelengths(
            &net,
            SynthesisOptions::with_wavelengths(8),
            &[2, 4, 8],
            objective,
            &LossParams::default(),
            Some(&CrosstalkParams::default()),
            &PowerParams::default(),
        )
        .expect("sweep succeeds")
    }

    #[test]
    fn all_candidates_evaluated() {
        let r = run(SweepObjective::MinPower);
        assert_eq!(r.points.len(), 3);
        assert_eq!(
            r.points.iter().map(|p| p.wavelengths).collect::<Vec<_>>(),
            vec![2, 4, 8]
        );
    }

    #[test]
    fn best_point_minimizes_its_objective() {
        let r = run(SweepObjective::MinPower);
        let best = r.best_point().report.total_power_w.expect("pdn");
        for p in &r.points {
            assert!(best <= p.report.total_power_w.expect("pdn") + 1e-15);
        }
        let r = run(SweepObjective::MinInsertionLoss);
        let best = r.best_point().report.worst_il_db;
        for p in &r.points {
            assert!(best <= p.report.worst_il_db + 1e-12);
        }
    }

    #[test]
    fn sweep_points_carry_their_designs() {
        let r = run(SweepObjective::MinPower);
        for p in &r.points {
            assert_eq!(p.degradation, DegradationLevel::Exact);
            assert!(p.design.provenance.audit.is_clean());
            assert_eq!(p.design.layout.signals.len(), p.report.signal_count);
            // The carried design re-evaluates to the carried report.
            let again = p.design.report(
                format!("#wl={}", p.wavelengths),
                &LossParams::default(),
                Some(&CrosstalkParams::default()),
                &PowerParams::default(),
            );
            assert_eq!(again, p.report);
        }
    }

    #[test]
    fn synthesize_best_returns_the_winning_design() {
        let net = NetworkSpec::proton_8();
        let design = synthesize_best(
            &net,
            SynthesisOptions::with_wavelengths(8),
            &[2, 4, 8],
            SweepObjective::MinPower,
            &LossParams::default(),
            None,
            &PowerParams::default(),
        )
        .expect("synthesis succeeds");
        assert_eq!(design.layout.signals.len(), 56);
    }

    #[test]
    fn infeasible_candidates_are_skipped() {
        let net = NetworkSpec::proton_8();
        let base = SynthesisOptions {
            max_waveguides: 4,
            ..SynthesisOptions::with_wavelengths(8)
        };
        // #wl=1 with only 4 waveguides cannot route 56 signals, but
        // #wl=8 can — the sweep must skip the former and succeed.
        let r = sweep_wavelengths(
            &net,
            base,
            &[1, 8],
            SweepObjective::MinInsertionLoss,
            &LossParams::default(),
            None,
            &PowerParams::default(),
        )
        .expect("sweep succeeds");
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].wavelengths, 8);
    }
}
