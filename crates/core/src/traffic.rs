//! Traffic patterns (extension beyond the paper's all-to-all assumption).
//!
//! The paper evaluates all-to-all traffic only ("a node sends signals to
//! all other nodes except for itself"). Real MPSoCs often have sparser
//! communication graphs; synthesizing only the needed signals reduces
//! wavelengths, waveguides and laser power. [`Traffic`] plugs into
//! [`map_signals_with_traffic`](crate::mapping::map_signals_with_traffic)
//! and [`SynthesisOptions::traffic`](crate::SynthesisOptions).

use crate::netspec::{NetworkSpec, NodeId};
use crate::variation::SplitMix64;

/// Which `(source, destination)` pairs communicate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Traffic {
    /// Every node sends to every other node (the paper's workload).
    #[default]
    AllToAll,
    /// An explicit list of directed pairs (deduplicated, self-pairs
    /// ignored).
    Custom(Vec<(NodeId, NodeId)>),
    /// Each node talks to its `k` nearest neighbours (by Manhattan
    /// distance), a common locality-dominated NoC workload.
    NearestNeighbors(usize),
    /// `hotspots` seed-chosen hot nodes (memory controllers, I/O hubs):
    /// every other node sends to every hot node, and the hot nodes talk
    /// among themselves. Deterministic per `(hotspots, seed, net)`; the
    /// same seed always picks the same hot set.
    Hotspot {
        /// How many hot nodes to draw (clamped to the network size).
        hotspots: usize,
        /// SplitMix64 seed for the hot-node draw.
        seed: u64,
    },
    /// A seeded fixed-point-free permutation: each node sends to exactly
    /// one other node (a classic synthetic NoC stressor). Always `n`
    /// pairs, deterministic per `(seed, net)`.
    Permutation {
        /// SplitMix64 seed for the Fisher–Yates shuffle.
        seed: u64,
    },
}

impl Traffic {
    /// The directed pairs of this pattern on `net`, in deterministic
    /// order, without self-pairs or duplicates.
    pub fn pairs(&self, net: &NetworkSpec) -> Vec<(NodeId, NodeId)> {
        match self {
            Traffic::AllToAll => net.signal_pairs(),
            Traffic::Custom(list) => {
                let mut out = Vec::new();
                for &(a, b) in list {
                    if a != b
                        && a.index() < net.len()
                        && b.index() < net.len()
                        && !out.contains(&(a, b))
                    {
                        out.push((a, b));
                    }
                }
                out
            }
            Traffic::NearestNeighbors(k) => {
                let mut out = Vec::new();
                for a in net.node_ids() {
                    let mut others: Vec<NodeId> = net.node_ids().filter(|b| *b != a).collect();
                    others.sort_by_key(|b| (net.distance(a, *b), b.index()));
                    for b in others.into_iter().take(*k) {
                        out.push((a, b));
                    }
                }
                out
            }
            Traffic::Hotspot { hotspots, seed } => {
                let hot = hot_nodes(net.len(), *hotspots, *seed);
                let mut out = Vec::new();
                for a in net.node_ids() {
                    for &b in &hot {
                        if a != b {
                            out.push((a, b));
                        }
                    }
                }
                out
            }
            Traffic::Permutation { seed } => {
                let targets = derangement(net.len(), *seed);
                net.node_ids()
                    .map(|a| (a, NodeId(targets[a.index()] as u32)))
                    // Only a 1-node net can leave a fixed point; drop it
                    // rather than emit a self-pair.
                    .filter(|(a, b)| a != b)
                    .collect()
            }
        }
    }

    /// Number of signals this pattern produces on `net`.
    pub fn signal_count(&self, net: &NetworkSpec) -> usize {
        self.pairs(net).len()
    }
}

/// Draws `hotspots` distinct node ids from `0..n` via a seeded partial
/// Fisher–Yates shuffle, returned in ascending id order.
fn hot_nodes(n: usize, hotspots: usize, seed: u64) -> Vec<NodeId> {
    let take = hotspots.min(n);
    let mut rng = SplitMix64::new(seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in 0..take {
        let j = i + (rng.next_u64() as usize) % (n - i);
        ids.swap(i, j);
    }
    let mut hot: Vec<NodeId> = ids[..take].iter().map(|&i| NodeId(i)).collect();
    hot.sort_unstable();
    hot
}

/// A seeded fixed-point-free permutation of `0..n` (`out[i] != i` for
/// every `i`, so no node ever sends to itself): full Fisher–Yates
/// shuffle, then fixed points are repaired by rotating them among
/// themselves (or swapping a lone fixed point with its neighbour).
fn derangement(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SplitMix64::new(seed);
    let mut out: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next_u64() as usize) % (i + 1);
        out.swap(i, j);
    }
    let fixed: Vec<usize> = (0..n).filter(|&i| out[i] == i).collect();
    match fixed.len() {
        0 => {}
        1 => {
            // Swap the lone fixed point with any other slot; both end up
            // displaced because n >= 2 here (n < 2 has no fixed-point-free
            // permutation at all and `pairs` yields nothing useful anyway).
            let i = fixed[0];
            let j = if i == 0 { n - 1 } else { i - 1 };
            out.swap(i, j);
        }
        _ => {
            // Rotate the fixed points among themselves: each one now maps
            // to a different fixed point, never back to itself.
            let first = out[fixed[0]];
            for w in fixed.windows(2) {
                out[w[0]] = out[w[1]];
            }
            out[*fixed.last().expect("non-empty")] = first;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_matches_netspec() {
        let net = NetworkSpec::proton_8();
        assert_eq!(Traffic::AllToAll.pairs(&net), net.signal_pairs());
        assert_eq!(Traffic::AllToAll.signal_count(&net), 56);
    }

    #[test]
    fn custom_filters_garbage() {
        let net = NetworkSpec::proton_8();
        let t = Traffic::Custom(vec![
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(1)),   // self: dropped
            (NodeId(0), NodeId(1)),   // duplicate: dropped
            (NodeId(0), NodeId(200)), // out of range: dropped
            (NodeId(2), NodeId(3)),
        ]);
        assert_eq!(
            t.pairs(&net),
            vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]
        );
    }

    #[test]
    fn nearest_neighbors_is_local() {
        let net = NetworkSpec::regular_grid(2, 4, 1_000).expect("valid");
        let t = Traffic::NearestNeighbors(2);
        let pairs = t.pairs(&net);
        assert_eq!(pairs.len(), 8 * 2);
        // Every chosen destination is at most 2 grid steps away.
        for (a, b) in pairs {
            assert!(net.distance(a, b) <= 2_000, "{a}->{b} too far");
        }
    }

    #[test]
    fn nearest_neighbors_caps_at_n_minus_1() {
        let net = NetworkSpec::regular_grid(2, 2, 500).expect("valid");
        let t = Traffic::NearestNeighbors(99);
        assert_eq!(t.signal_count(&net), 4 * 3);
    }

    #[test]
    fn hotspot_pair_count_is_exact() {
        let net = NetworkSpec::proton_8();
        for h in 1..=4usize {
            let t = Traffic::Hotspot {
                hotspots: h,
                seed: 11,
            };
            // (n - h) cold senders hit every hot node, plus hot<->hot.
            assert_eq!(t.signal_count(&net), (8 - h) * h + h * (h - 1));
        }
        // Clamped to the network size: degenerates to all-to-all counts.
        let t = Traffic::Hotspot {
            hotspots: 99,
            seed: 11,
        };
        assert_eq!(t.signal_count(&net), 8 * 7);
    }

    #[test]
    fn hotspot_is_deterministic_and_seed_sensitive() {
        let net = NetworkSpec::psion_16();
        let t = |seed| Traffic::Hotspot { hotspots: 3, seed };
        assert_eq!(t(7).pairs(&net), t(7).pairs(&net));
        // 3 hot nodes out of 16: some seed in a short scan must pick a
        // different hot set.
        assert!(
            (1..10).any(|s| t(s).pairs(&net) != t(0).pairs(&net)),
            "hot-node draw ignores the seed"
        );
        // Every destination is one of exactly 3 hot nodes.
        let mut dests: Vec<NodeId> = t(7).pairs(&net).into_iter().map(|(_, b)| b).collect();
        dests.sort_unstable();
        dests.dedup();
        assert_eq!(dests.len(), 3);
    }

    #[test]
    fn permutation_is_a_fixed_point_free_bijection() {
        for n in [3usize, 4, 8, 16] {
            let net = NetworkSpec::irregular(n, 10_000, 3).expect("valid");
            for seed in 0..20u64 {
                let pairs = Traffic::Permutation { seed }.pairs(&net);
                assert_eq!(pairs.len(), n, "seed {seed}: not n pairs");
                let mut sources: Vec<NodeId> = pairs.iter().map(|p| p.0).collect();
                let mut dests: Vec<NodeId> = pairs.iter().map(|p| p.1).collect();
                sources.sort_unstable();
                sources.dedup();
                dests.sort_unstable();
                dests.dedup();
                assert_eq!(sources.len(), n, "seed {seed}: sources not unique");
                assert_eq!(dests.len(), n, "seed {seed}: not a bijection");
                assert!(
                    pairs.iter().all(|(a, b)| a != b),
                    "seed {seed}: fixed point"
                );
            }
        }
    }

    #[test]
    fn permutation_is_deterministic_and_seed_sensitive() {
        let net = NetworkSpec::proton_8();
        let t = |seed| Traffic::Permutation { seed };
        assert_eq!(t(42).pairs(&net), t(42).pairs(&net));
        assert!(
            (1..10).any(|s| t(s).pairs(&net) != t(0).pairs(&net)),
            "permutation ignores the seed"
        );
    }
}
