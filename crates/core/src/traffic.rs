//! Traffic patterns (extension beyond the paper's all-to-all assumption).
//!
//! The paper evaluates all-to-all traffic only ("a node sends signals to
//! all other nodes except for itself"). Real MPSoCs often have sparser
//! communication graphs; synthesizing only the needed signals reduces
//! wavelengths, waveguides and laser power. [`Traffic`] plugs into
//! [`map_signals_with_traffic`](crate::mapping::map_signals_with_traffic)
//! and [`SynthesisOptions::traffic`](crate::SynthesisOptions).

use crate::netspec::{NetworkSpec, NodeId};

/// Which `(source, destination)` pairs communicate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Traffic {
    /// Every node sends to every other node (the paper's workload).
    #[default]
    AllToAll,
    /// An explicit list of directed pairs (deduplicated, self-pairs
    /// ignored).
    Custom(Vec<(NodeId, NodeId)>),
    /// Each node talks to its `k` nearest neighbours (by Manhattan
    /// distance), a common locality-dominated NoC workload.
    NearestNeighbors(usize),
}

impl Traffic {
    /// The directed pairs of this pattern on `net`, in deterministic
    /// order, without self-pairs or duplicates.
    pub fn pairs(&self, net: &NetworkSpec) -> Vec<(NodeId, NodeId)> {
        match self {
            Traffic::AllToAll => net.signal_pairs(),
            Traffic::Custom(list) => {
                let mut out = Vec::new();
                for &(a, b) in list {
                    if a != b
                        && a.index() < net.len()
                        && b.index() < net.len()
                        && !out.contains(&(a, b))
                    {
                        out.push((a, b));
                    }
                }
                out
            }
            Traffic::NearestNeighbors(k) => {
                let mut out = Vec::new();
                for a in net.node_ids() {
                    let mut others: Vec<NodeId> = net.node_ids().filter(|b| *b != a).collect();
                    others.sort_by_key(|b| (net.distance(a, *b), b.index()));
                    for b in others.into_iter().take(*k) {
                        out.push((a, b));
                    }
                }
                out
            }
        }
    }

    /// Number of signals this pattern produces on `net`.
    pub fn signal_count(&self, net: &NetworkSpec) -> usize {
        self.pairs(net).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_matches_netspec() {
        let net = NetworkSpec::proton_8();
        assert_eq!(Traffic::AllToAll.pairs(&net), net.signal_pairs());
        assert_eq!(Traffic::AllToAll.signal_count(&net), 56);
    }

    #[test]
    fn custom_filters_garbage() {
        let net = NetworkSpec::proton_8();
        let t = Traffic::Custom(vec![
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(1)),   // self: dropped
            (NodeId(0), NodeId(1)),   // duplicate: dropped
            (NodeId(0), NodeId(200)), // out of range: dropped
            (NodeId(2), NodeId(3)),
        ]);
        assert_eq!(
            t.pairs(&net),
            vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]
        );
    }

    #[test]
    fn nearest_neighbors_is_local() {
        let net = NetworkSpec::regular_grid(2, 4, 1_000).expect("valid");
        let t = Traffic::NearestNeighbors(2);
        let pairs = t.pairs(&net);
        assert_eq!(pairs.len(), 8 * 2);
        // Every chosen destination is at most 2 grid steps away.
        for (a, b) in pairs {
            assert!(net.distance(a, b) <= 2_000, "{a}->{b} too far");
        }
    }

    #[test]
    fn nearest_neighbors_caps_at_n_minus_1() {
        let net = NetworkSpec::regular_grid(2, 2, 500).expect("valid");
        let t = Traffic::NearestNeighbors(99);
        assert_eq!(t.signal_count(&net), 4 * 3);
    }
}
