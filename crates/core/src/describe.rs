//! Human-readable design documents.
//!
//! [`XRingDesign::describe`] renders the synthesized router as a text
//! report — ring order, per-waveguide lane occupancy, shortcuts, openings
//! and PDN trees — the artifact a designer reviews before tape-out.

use crate::design::XRingDesign;
use crate::mapping::RouteKind;
use crate::pdn::SHORTCUT_GROUP;
use crate::ring::Direction;
use std::fmt::Write as _;

impl XRingDesign {
    /// Renders a multi-section text report of the design.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let w = &mut out;

        writeln!(
            w,
            "XRing design — {} nodes, {} signals",
            self.net.len(),
            self.layout.signals.len()
        )
        .expect("string writes cannot fail");
        writeln!(w, "=================================================").expect("write");

        // Ring.
        writeln!(w, "\n[ring]").expect("write");
        let order: Vec<String> = self.cycle.order().iter().map(|n| n.to_string()).collect();
        writeln!(w, "  order    : {}", order.join(" -> ")).expect("write");
        writeln!(
            w,
            "  perimeter: {:.2} mm ({} residual crossings)",
            self.cycle.perimeter() as f64 / 1_000.0,
            self.cycle.residual_crossings()
        )
        .expect("write");
        writeln!(
            w,
            "  milp     : {} nodes, {} lazy cuts, {} sub-cycle merges",
            self.ring_stats.milp_nodes, self.ring_stats.lazy_cuts, self.ring_stats.subcycles_merged
        )
        .expect("write");

        // Waveguides.
        writeln!(w, "\n[ring waveguides]").expect("write");
        for (wi, wg) in self.plan.ring_waveguides.iter().enumerate() {
            let dir = match wg.direction {
                Direction::Cw => "cw ",
                Direction::Ccw => "ccw",
            };
            let arcs: usize = wg.lanes.iter().map(|l| l.arcs.len()).sum();
            let opening = wg
                .opening
                .map(|p| format!("open@{}", self.cycle.order()[p]))
                .unwrap_or_else(|| "UNOPENED".into());
            writeln!(
                w,
                "  wg{wi:<2} {dir} level {:<2} lanes {:<2} arcs {:<3} {opening}",
                wg.level,
                wg.lanes.len(),
                arcs
            )
            .expect("write");
        }

        // Shortcuts.
        writeln!(w, "\n[shortcuts]").expect("write");
        if self.shortcuts.shortcuts.is_empty() {
            writeln!(w, "  (none)").expect("write");
        }
        for (i, s) in self.shortcuts.shortcuts.iter().enumerate() {
            let partner = s
                .crossing_partner
                .map(|p| format!(", CSE with #{p}"))
                .unwrap_or_default();
            writeln!(
                w,
                "  #{i}: {} <-> {}  len {:.2} mm, gain {:.2} mm{partner}",
                s.a,
                s.b,
                s.length_um as f64 / 1_000.0,
                s.gain_um as f64 / 1_000.0
            )
            .expect("write");
        }

        // Route mix.
        let mut ring_routes = 0usize;
        let mut direct = 0usize;
        let mut cse = 0usize;
        for r in &self.plan.routes {
            match r.kind {
                RouteKind::Ring { .. } => ring_routes += 1,
                RouteKind::ShortcutDirect { .. } => direct += 1,
                RouteKind::ShortcutCse { .. } => cse += 1,
            }
        }
        writeln!(w, "\n[signals]").expect("write");
        writeln!(
            w,
            "  ring {} / shortcut {} / CSE {} (total {})",
            ring_routes,
            direct,
            cse,
            self.plan.routes.len()
        )
        .expect("write");
        writeln!(w, "  wavelengths used: {}", self.plan.wavelengths_used()).expect("write");

        // PDN.
        writeln!(w, "\n[pdn]").expect("write");
        match &self.pdn {
            None => writeln!(w, "  (not synthesized)").expect("write"),
            Some(p) => {
                for t in &p.trees {
                    let group = if t.group == SHORTCUT_GROUP {
                        "shortcuts".to_string()
                    } else {
                        format!("wg{}", t.group)
                    };
                    writeln!(
                        w,
                        "  tree {group:<9} {} leaves, depth {}, {:.2} mm",
                        t.leaves,
                        t.depth,
                        t.length_um as f64 / 1_000.0
                    )
                    .expect("write");
                }
                writeln!(
                    w,
                    "  total waveguide: {:.2} mm, crossed waveguides: {}",
                    p.total_length_um as f64 / 1_000.0,
                    p.crossed_waveguides.len()
                )
                .expect("write");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{NetworkSpec, SynthesisOptions, Synthesizer};

    #[test]
    fn describe_covers_every_section() {
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&NetworkSpec::proton_8())
            .expect("synthesis succeeds");
        let doc = design.describe();
        for section in [
            "[ring]",
            "[ring waveguides]",
            "[shortcuts]",
            "[signals]",
            "[pdn]",
        ] {
            assert!(doc.contains(section), "missing {section}\n{doc}");
        }
        // Every waveguide appears.
        for wi in 0..design.plan.ring_waveguides.len() {
            assert!(doc.contains(&format!("wg{wi}")), "missing wg{wi}");
        }
        assert!(doc.contains("tree"), "pdn trees listed");
    }

    #[test]
    fn describe_without_pdn_says_so() {
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8).without_pdn())
            .synthesize(&NetworkSpec::proton_8())
            .expect("synthesis succeeds");
        assert!(design.describe().contains("(not synthesized)"));
    }

    #[test]
    fn describe_mentions_cse_partners_when_present() {
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(16))
            .synthesize(&NetworkSpec::psion_32())
            .expect("synthesis succeeds");
        let doc = design.describe();
        let has_pair = design
            .shortcuts
            .shortcuts
            .iter()
            .any(|s| s.crossing_partner.is_some());
        assert_eq!(doc.contains("CSE with"), has_pair);
    }
}
