//! Monte-Carlo fabrication-variation analysis (extension; the paper
//! evaluates nominal parameters only).
//!
//! Fabricated photonic components deviate from their nominal losses;
//! a synthesized router should keep its laser-power budget and SNR
//! margins under that variation. [`monte_carlo`] re-evaluates a design
//! under randomly perturbed [`LossParams`] and summarizes the spread.

use crate::design::XRingDesign;
use xring_phot::{CrosstalkParams, LossParams, PowerParams};

/// SplitMix64 (Steele et al., public-domain algorithm): a tiny 64-bit
/// PRNG with excellent statistical quality, kept in-crate so no RNG
/// dependency is needed. Shared by Monte-Carlo variation analysis, the
/// MILP objective-perturbation retry, and the engine's deterministic
/// fault-injection plans.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (every seed is valid).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Relative (multiplicative) 1σ variation per loss mechanism.
///
/// Each sample multiplies the nominal parameter by `exp(σ·z)` with
/// `z ~ N(0, 1)` — losses stay positive and the median stays nominal.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationSpec {
    /// σ of propagation loss (default 0.10).
    pub propagation: f64,
    /// σ of crossing loss (default 0.15).
    pub crossing: f64,
    /// σ of MRR drop loss (default 0.15).
    pub drop: f64,
    /// σ of MRR through loss (default 0.20).
    pub through: f64,
    /// RNG seed (results are deterministic per seed).
    pub seed: u64,
}

impl Default for VariationSpec {
    fn default() -> Self {
        VariationSpec {
            propagation: 0.10,
            crossing: 0.15,
            drop: 0.15,
            through: 0.20,
            seed: 0xC0FFEE,
        }
    }
}

/// Summary statistics over the Monte-Carlo samples.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationSummary {
    /// Number of samples evaluated.
    pub samples: usize,
    /// Mean of the worst-case insertion loss, dB.
    pub il_mean_db: f64,
    /// Standard deviation of the worst-case insertion loss, dB.
    pub il_std_db: f64,
    /// Maximum observed worst-case insertion loss, dB.
    pub il_max_db: f64,
    /// Mean total laser power, W (None when the design has no PDN).
    pub power_mean_w: Option<f64>,
    /// Maximum total laser power, W.
    pub power_max_w: Option<f64>,
    /// Minimum observed worst-case SNR, dB (None when no sample had any
    /// noisy signal).
    pub snr_min_db: Option<f64>,
}

/// Runs `samples` Monte-Carlo evaluations of `design` under `spec`.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn monte_carlo(
    design: &XRingDesign,
    nominal: &LossParams,
    xtalk: &CrosstalkParams,
    power: &PowerParams,
    spec: &VariationSpec,
    samples: usize,
) -> VariationSummary {
    assert!(samples > 0, "need at least one sample");
    let mut rng = SplitMix64::new(spec.seed);
    // Box-Muller-free normal: sum of 12 uniforms − 6 is N(0,1) to good
    // approximation (Irwin–Hall).
    let normal =
        move |rng: &mut SplitMix64| -> f64 { (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0 };

    let mut ils = Vec::with_capacity(samples);
    let mut powers = Vec::with_capacity(samples);
    let mut snr_min: Option<f64> = None;

    for _ in 0..samples {
        let perturbed = LossParams {
            propagation_db_per_cm: nominal.propagation_db_per_cm
                * (spec.propagation * normal(&mut rng)).exp(),
            crossing_db: nominal.crossing_db * (spec.crossing * normal(&mut rng)).exp(),
            drop_db: nominal.drop_db * (spec.drop * normal(&mut rng)).exp(),
            through_db: nominal.through_db * (spec.through * normal(&mut rng)).exp(),
            ..nominal.clone()
        };
        let report = design
            .layout
            .evaluate("mc", &perturbed, Some(xtalk), power, design.elapsed);
        ils.push(report.worst_il_db);
        if let Some(p) = report.total_power_w {
            powers.push(p);
        }
        if let Some(s) = report.worst_snr_db {
            snr_min = Some(snr_min.map_or(s, |m: f64| m.min(s)));
        }
    }

    let mean = ils.iter().sum::<f64>() / samples as f64;
    let var = ils.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples as f64;
    VariationSummary {
        samples,
        il_mean_db: mean,
        il_std_db: var.sqrt(),
        il_max_db: ils.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        power_mean_w: (!powers.is_empty())
            .then(|| powers.iter().sum::<f64>() / powers.len() as f64),
        power_max_w: (!powers.is_empty())
            .then(|| powers.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
        snr_min_db: snr_min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkSpec, SynthesisOptions, Synthesizer};

    fn design() -> XRingDesign {
        Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&NetworkSpec::proton_8())
            .expect("synthesis succeeds")
    }

    #[test]
    fn summary_is_deterministic_per_seed() {
        let d = design();
        let run = || {
            monte_carlo(
                &d,
                &LossParams::default(),
                &CrosstalkParams::default(),
                &PowerParams::default(),
                &VariationSpec::default(),
                32,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let d = design();
        let base = VariationSpec::default();
        let a = monte_carlo(
            &d,
            &LossParams::default(),
            &CrosstalkParams::default(),
            &PowerParams::default(),
            &base,
            32,
        );
        let b = monte_carlo(
            &d,
            &LossParams::default(),
            &CrosstalkParams::default(),
            &PowerParams::default(),
            &VariationSpec { seed: 1, ..base },
            32,
        );
        assert_ne!(a.il_mean_db, b.il_mean_db);
    }

    #[test]
    fn mean_tracks_nominal_and_max_exceeds_mean() {
        let d = design();
        let nominal = LossParams::default();
        let s = monte_carlo(
            &d,
            &nominal,
            &CrosstalkParams::default(),
            &PowerParams::default(),
            &VariationSpec::default(),
            128,
        );
        let nominal_report =
            d.layout
                .evaluate("nom", &nominal, None, &PowerParams::default(), d.elapsed);
        // Multiplicative lognormal-ish perturbation keeps the mean within
        // ~15% of nominal and the max strictly above the mean.
        assert!(
            (s.il_mean_db - nominal_report.worst_il_db).abs() < 0.15 * nominal_report.worst_il_db,
            "mean {} vs nominal {}",
            s.il_mean_db,
            nominal_report.worst_il_db
        );
        assert!(s.il_max_db > s.il_mean_db);
        assert!(s.il_std_db > 0.0);
        assert!(s.power_max_w.expect("pdn") >= s.power_mean_w.expect("pdn"));
    }

    #[test]
    fn zero_variation_collapses_the_spread() {
        let d = design();
        let s = monte_carlo(
            &d,
            &LossParams::default(),
            &CrosstalkParams::default(),
            &PowerParams::default(),
            &VariationSpec {
                propagation: 0.0,
                crossing: 0.0,
                drop: 0.0,
                through: 0.0,
                seed: 3,
            },
            16,
        );
        assert!(s.il_std_db < 1e-12);
        assert!((s.il_max_db - s.il_mean_db).abs() < 1e-12);
    }
}
