//! Post-synthesis design auditing (robustness layer).
//!
//! Synthesis — exact or degraded — must never hand out a design that
//! silently violates the paper's structural contract. The auditor
//! re-derives every invariant the pipeline is supposed to guarantee
//! (Sec. III) from the finished artifacts alone:
//!
//! * the Step-1 ring is a **single closed cycle** visiting every node
//!   exactly once, with consecutive L-routes chained end to end;
//! * the selected L-routes have **no undeclared crossings**: a geometric
//!   recount must match the cycle's own residual counter, which is zero
//!   unless the 2-SAT fallback was taken on an adversarial placement;
//! * every traffic demand is **served exactly once** and the Step-3
//!   wavelength assignment is conflict-free (arc-disjoint lanes, no
//!   arcs across openings);
//! * the realized layout is **well-formed** and index-aligned with the
//!   mapping plan;
//! * evaluated loss/SNR/power figures are **finite and physically
//!   plausible**.
//!
//! Verdicts are recorded per invariant in an [`AuditReport`], carried in
//! the design's [`Provenance`](crate::design::Provenance) and re-checked
//! by the engine before a design is cached or served from the cache.

use crate::design::XRingDesign;
use crate::layout::LayoutModel;
use crate::mapping::MappingPlan;
use crate::netspec::{NetworkSpec, NodeId};
use crate::ring::RingCycle;
use crate::traffic::Traffic;
use std::collections::HashSet;
use std::fmt;
use xring_phot::{LossParams, PowerParams, RouterReport};

/// Loosest credible worst-case insertion loss, dB. A path losing more
/// than this is below any photodetector sensitivity floor and indicates
/// a corrupted layout rather than a lossy one.
const MAX_IL_DB: f64 = 200.0;
/// Loosest credible worst-case path length, mm (a 10 m waveguide on a
/// die means broken geometry).
const MAX_PATH_MM: f64 = 10_000.0;
/// Loosest credible total laser power, W.
const MAX_POWER_W: f64 = 1.0e6;

/// One paper-implied invariant checked by the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// The ring is one closed cycle visiting every node exactly once,
    /// with edge `i` ending where edge `i+1` starts.
    RingClosedCycle,
    /// The ring's geometric crossing count (re-counted from the
    /// L-routes) matches what the cycle declares — zero in the normal
    /// case, the greedy fallback's residual otherwise. No crossing may
    /// go undeclared.
    RingCrossingFree,
    /// Every traffic demand is served by exactly one route; no route
    /// serves a demand outside the pattern.
    DemandsServedOnce,
    /// The wavelength assignment is conflict-free
    /// ([`MappingPlan::validate`]).
    WavelengthConflictFree,
    /// The layout is well-formed ([`LayoutModel::validate`]) and
    /// index-aligned with the mapping plan.
    LayoutWellFormed,
    /// Evaluated loss/SNR/power values are finite and within physical
    /// bounds.
    PhysicalBounds,
}

impl Invariant {
    /// Stable kebab-case name (used in messages and event streams).
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::RingClosedCycle => "ring-closed-cycle",
            Invariant::RingCrossingFree => "ring-crossing-free",
            Invariant::DemandsServedOnce => "demands-served-once",
            Invariant::WavelengthConflictFree => "wavelength-conflict-free",
            Invariant::LayoutWellFormed => "layout-well-formed",
            Invariant::PhysicalBounds => "physical-bounds",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The auditor's verdict on one invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Which invariant was checked.
    pub invariant: Invariant,
    /// Whether it holds.
    pub passed: bool,
    /// Failure detail (empty when the invariant holds).
    pub detail: String,
}

/// A structured audit result: one [`Verdict`] per checked invariant.
///
/// An empty report means the design was **never audited** and is treated
/// as dirty ([`is_clean`](Self::is_clean) returns `false`) — the
/// robustness contract is "zero unaudited designs", not "innocent until
/// proven guilty".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Per-invariant verdicts, in check order.
    pub verdicts: Vec<Verdict>,
}

impl AuditReport {
    /// A report with no verdicts (an unaudited design).
    pub fn empty() -> Self {
        Self::default()
    }

    /// True when at least one invariant was checked.
    pub fn is_audited(&self) -> bool {
        !self.verdicts.is_empty()
    }

    /// True when the design was audited and every invariant holds.
    pub fn is_clean(&self) -> bool {
        self.is_audited() && self.verdicts.iter().all(|v| v.passed)
    }

    /// The failed verdicts.
    pub fn failures(&self) -> impl Iterator<Item = &Verdict> {
        self.verdicts.iter().filter(|v| !v.passed)
    }

    /// One line: either `N invariants hold` or the failure list.
    pub fn summary(&self) -> String {
        if !self.is_audited() {
            return "design not audited".to_owned();
        }
        if self.is_clean() {
            return format!("{} invariants hold", self.verdicts.len());
        }
        let fails: Vec<String> = self
            .failures()
            .map(|v| format!("{}: {}", v.invariant, v.detail))
            .collect();
        fails.join("; ")
    }

    fn push(&mut self, invariant: Invariant, result: Result<(), String>) {
        self.verdicts.push(match result {
            Ok(()) => Verdict {
                invariant,
                passed: true,
                detail: String::new(),
            },
            Err(detail) => Verdict {
                invariant,
                passed: false,
                detail,
            },
        });
    }

    /// Merges `other` into this report with **last-write-wins per
    /// invariant**: when both reports carry a verdict for the same
    /// invariant, `other`'s verdict replaces this report's in place
    /// (check order preserved); invariants only `other` checked are
    /// appended in `other`'s order. A report therefore never holds two
    /// verdicts for one invariant after a merge — re-auditing a design
    /// and merging the fresh report supersedes stale verdicts instead
    /// of shadowing them.
    pub fn merge(&mut self, other: AuditReport) {
        for verdict in other.verdicts {
            match self
                .verdicts
                .iter_mut()
                .find(|v| v.invariant == verdict.invariant)
            {
                Some(slot) => *slot = verdict,
                None => self.verdicts.push(verdict),
            }
        }
    }
}

fn check_ring_closed(net: &NetworkSpec, cycle: &RingCycle) -> Result<(), String> {
    let n = cycle.len();
    if n != net.len() {
        return Err(format!("ring visits {n} of {} nodes", net.len()));
    }
    let mut seen = vec![false; net.len()];
    for id in cycle.order() {
        if id.index() >= net.len() {
            return Err(format!("{id} is not a network node"));
        }
        if seen[id.index()] {
            return Err(format!("{id} visited twice"));
        }
        seen[id.index()] = true;
    }
    // Edge i must start at order[i] and end where edge i+1 starts.
    for i in 0..n {
        let r = cycle.edge_route(i);
        if r.from() != net.position(cycle.order()[i]) {
            return Err(format!("edge {i} does not start at its node"));
        }
        let next = cycle.edge_route((i + 1) % n);
        if r.to() != next.from() {
            return Err(format!("edge {i} does not chain into edge {}", (i + 1) % n));
        }
    }
    if cycle.perimeter() <= 0 {
        return Err("ring has non-positive perimeter".to_owned());
    }
    Ok(())
}

fn check_ring_crossing_free(cycle: &RingCycle) -> Result<(), String> {
    // Re-count geometrically instead of trusting the cached counter.
    let n = cycle.len();
    let mut crossings = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            if cycle.edge_route(i).crosses(cycle.edge_route(j)) {
                crossings += 1;
            }
        }
    }
    // Residual crossings are legitimate only when the cycle *declares*
    // them (the 2-SAT fallback on adversarial placements); the invariant
    // is that no crossing goes undeclared.
    if crossings != cycle.residual_crossings() {
        return Err(format!(
            "recounted {crossings} ring crossings, cycle claims {}",
            cycle.residual_crossings()
        ));
    }
    Ok(())
}

fn check_demands_served(plan: &MappingPlan, expected: &[(NodeId, NodeId)]) -> Result<(), String> {
    let mut served: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(plan.routes.len());
    for r in &plan.routes {
        if r.from == r.to {
            return Err(format!("route {} -> {} is a self-loop", r.from, r.to));
        }
        if !served.insert((r.from, r.to)) {
            return Err(format!("demand {} -> {} served twice", r.from, r.to));
        }
    }
    let wanted: HashSet<(NodeId, NodeId)> = expected.iter().copied().collect();
    for d in &wanted {
        if !served.contains(d) {
            return Err(format!("demand {} -> {} not served", d.0, d.1));
        }
    }
    for s in &served {
        if !wanted.contains(s) {
            return Err(format!("route {} -> {} serves no demand", s.0, s.1));
        }
    }
    Ok(())
}

fn check_layout_aligned(plan: &MappingPlan, layout: &LayoutModel) -> Result<(), String> {
    layout.validate()?;
    if layout.signals.len() != plan.routes.len() {
        return Err(format!(
            "layout realizes {} of {} routes",
            layout.signals.len(),
            plan.routes.len()
        ));
    }
    for (i, (sig, route)) in layout.signals.iter().zip(&plan.routes).enumerate() {
        if sig.from != route.from || sig.to != route.to || sig.wavelength != route.wavelength {
            return Err(format!("layout signal {i} disagrees with its route"));
        }
    }
    Ok(())
}

/// Audits the structural invariants of a `(ring, mapping, layout)`
/// triple against the traffic demands in `expected`. Shared by XRing
/// designs and the baseline ring routers.
pub fn audit_structure(
    net: &NetworkSpec,
    cycle: &RingCycle,
    plan: &MappingPlan,
    layout: &LayoutModel,
    expected: &[(NodeId, NodeId)],
) -> AuditReport {
    let mut report = AuditReport::empty();
    report.push(Invariant::RingClosedCycle, check_ring_closed(net, cycle));
    report.push(Invariant::RingCrossingFree, check_ring_crossing_free(cycle));
    report.push(
        Invariant::DemandsServedOnce,
        check_demands_served(plan, expected),
    );
    report.push(Invariant::WavelengthConflictFree, plan.validate());
    report.push(
        Invariant::LayoutWellFormed,
        check_layout_aligned(plan, layout),
    );
    report
}

/// Checks the physical-bounds invariant of an evaluated report: every
/// figure of merit finite and inside generous physical limits.
pub fn audit_report_bounds(report: &RouterReport) -> Verdict {
    let mut problems: Vec<String> = Vec::new();
    if !report.worst_il_db.is_finite() || !(0.0..=MAX_IL_DB).contains(&report.worst_il_db) {
        problems.push(format!("worst IL {} dB out of bounds", report.worst_il_db));
    }
    if !report.worst_path_len_mm.is_finite()
        || !(0.0..=MAX_PATH_MM).contains(&report.worst_path_len_mm)
    {
        problems.push(format!(
            "worst path {} mm out of bounds",
            report.worst_path_len_mm
        ));
    }
    if let Some(p) = report.total_power_w {
        // Zero is legitimate: a router serving empty traffic carries no
        // signals and needs no laser power.
        if !p.is_finite() || !(0.0..=MAX_POWER_W).contains(&p) {
            problems.push(format!("total power {p} W out of bounds"));
        }
    }
    if let Some(snr) = report.worst_snr_db {
        if !snr.is_finite() {
            problems.push(format!("worst SNR {snr} dB not finite"));
        }
    }
    if let Some(noisy) = report.noisy_signal_count {
        if noisy > report.signal_count {
            problems.push(format!(
                "{noisy} noisy signals exceed {} total",
                report.signal_count
            ));
        }
    }
    match problems.is_empty() {
        true => Verdict {
            invariant: Invariant::PhysicalBounds,
            passed: true,
            detail: String::new(),
        },
        false => Verdict {
            invariant: Invariant::PhysicalBounds,
            passed: false,
            detail: problems.join("; "),
        },
    }
}

/// Audits a full XRing design: the structural invariants plus the
/// physical bounds of a loss-only evaluation under `loss`.
pub fn audit_design(design: &XRingDesign, traffic: &Traffic, loss: &LossParams) -> AuditReport {
    let _span = xring_obs::span("audit");
    let expected = traffic.pairs(&design.net);
    let mut report = audit_structure(
        &design.net,
        &design.cycle,
        &design.plan,
        &design.layout,
        &expected,
    );
    let evaluated = design.report("audit", loss, None, &PowerParams::default());
    report.verdicts.push(audit_report_bounds(&evaluated));
    // Attribute the verdict to the enclosing span so request-scoped
    // traces (the serve flight recorder) can read it without re-auditing.
    match report.is_clean() {
        true => xring_obs::counter("audit.clean", 1),
        false => xring_obs::counter("audit.violations", 1),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthesisOptions, Synthesizer};

    fn clean_design() -> XRingDesign {
        Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&NetworkSpec::proton_8())
            .expect("synthesized")
    }

    #[test]
    fn synthesized_design_audits_clean() {
        let d = clean_design();
        let report = audit_design(&d, &Traffic::AllToAll, &LossParams::default());
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(report.verdicts.len(), 6);
        assert!(report.summary().contains("6 invariants hold"));
    }

    #[test]
    fn empty_report_is_not_clean() {
        let r = AuditReport::empty();
        assert!(!r.is_audited());
        assert!(!r.is_clean());
        assert!(r.summary().contains("not audited"));
    }

    #[test]
    fn missing_demand_is_caught() {
        let d = clean_design();
        let mut plan = d.plan.clone();
        plan.routes.pop();
        let err =
            check_demands_served(&plan, &Traffic::AllToAll.pairs(&d.net)).expect_err("must fail");
        assert!(err.contains("not served"), "{err}");
    }

    #[test]
    fn duplicate_demand_is_caught() {
        let d = clean_design();
        let mut plan = d.plan.clone();
        let dup = plan.routes[0];
        plan.routes.push(dup);
        let err =
            check_demands_served(&plan, &Traffic::AllToAll.pairs(&d.net)).expect_err("must fail");
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn misaligned_layout_is_caught() {
        // Perturb the plan (not the layout): the layout still validates
        // on its own, so only the index-alignment check can catch it.
        let d = clean_design();
        let mut plan = d.plan.clone();
        let wl = plan.routes[0].wavelength;
        plan.routes[0].wavelength = xring_phot::Wavelength::new(wl.index() + 1);
        let err = check_layout_aligned(&plan, &d.layout).expect_err("must fail");
        assert!(err.contains("disagrees"), "{err}");
    }

    #[test]
    fn truncated_layout_is_caught() {
        let d = clean_design();
        let mut layout = d.layout.clone();
        layout.signals.clear();
        let report = audit_structure(
            &d.net,
            &d.cycle,
            &d.plan,
            &layout,
            &Traffic::AllToAll.pairs(&d.net),
        );
        assert!(!report.is_clean());
        let fail = report.failures().next().expect("one failure");
        assert_eq!(fail.invariant, Invariant::LayoutWellFormed);
    }

    #[test]
    fn non_finite_report_values_are_caught() {
        let d = clean_design();
        let mut report = d.report("x", &LossParams::default(), None, &PowerParams::default());
        report.worst_il_db = f64::NAN;
        let v = audit_report_bounds(&report);
        assert!(!v.passed);
        assert!(v.detail.contains("IL"), "{}", v.detail);

        let mut report = d.report("x", &LossParams::default(), None, &PowerParams::default());
        report.total_power_w = Some(f64::INFINITY);
        assert!(!audit_report_bounds(&report).passed);
    }

    #[test]
    fn zero_power_empty_router_is_within_bounds() {
        // An empty-traffic router carries no signals: its total laser
        // power is 0 (often formatted -0), which must pass.
        let d = clean_design();
        let mut report = d.report("x", &LossParams::default(), None, &PowerParams::default());
        report.total_power_w = Some(-0.0);
        assert!(audit_report_bounds(&report).passed);
        report.total_power_w = Some(-1e-3);
        assert!(!audit_report_bounds(&report).passed);
    }

    #[test]
    fn invariant_names_are_stable() {
        assert_eq!(Invariant::RingClosedCycle.name(), "ring-closed-cycle");
        assert_eq!(Invariant::PhysicalBounds.to_string(), "physical-bounds");
    }

    fn verdict(invariant: Invariant, passed: bool, detail: &str) -> Verdict {
        Verdict {
            invariant,
            passed,
            detail: detail.to_owned(),
        }
    }

    #[test]
    fn merge_replaces_duplicate_invariants_last_write_wins() {
        let mut base = AuditReport {
            verdicts: vec![
                verdict(Invariant::RingClosedCycle, true, ""),
                verdict(Invariant::DemandsServedOnce, false, "stale failure"),
            ],
        };
        let fresh = AuditReport {
            verdicts: vec![
                verdict(Invariant::DemandsServedOnce, true, ""),
                verdict(Invariant::PhysicalBounds, true, ""),
            ],
        };
        base.merge(fresh);
        // No duplicate invariant survives the merge...
        assert_eq!(base.verdicts.len(), 3);
        // ...the re-checked verdict replaced the stale one in place...
        assert_eq!(base.verdicts[1].invariant, Invariant::DemandsServedOnce);
        assert!(base.verdicts[1].passed);
        assert!(base.verdicts[1].detail.is_empty());
        // ...and new invariants were appended after the existing order.
        assert_eq!(base.verdicts[2].invariant, Invariant::PhysicalBounds);
        assert!(base.is_clean());
    }

    #[test]
    fn merge_last_write_wins_can_also_dirty_a_clean_report() {
        let mut base = AuditReport {
            verdicts: vec![verdict(Invariant::LayoutWellFormed, true, "")],
        };
        base.merge(AuditReport {
            verdicts: vec![verdict(
                Invariant::LayoutWellFormed,
                false,
                "re-check failed",
            )],
        });
        assert_eq!(base.verdicts.len(), 1);
        assert!(!base.is_clean());
        assert_eq!(base.failures().count(), 1);
    }

    #[test]
    fn merge_with_empty_reports_is_a_no_op_in_both_directions() {
        let mut empty = AuditReport::empty();
        let full = AuditReport {
            verdicts: vec![verdict(Invariant::RingCrossingFree, true, "")],
        };
        empty.merge(full.clone());
        assert_eq!(empty, full);
        let mut full2 = full.clone();
        full2.merge(AuditReport::empty());
        assert_eq!(full2, full);
    }
}
