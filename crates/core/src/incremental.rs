//! Incremental re-synthesis: phase-keyed artifacts and dirty-suffix
//! recompute.
//!
//! The pipeline's phases (ring construction, shortcut planning, signal
//! mapping, ring opening, PDN design) form a linear DAG: each phase
//! consumes the spec, a subset of the options, and the artifacts of the
//! phases before it. Because every phase is deterministic, a phase's
//! output is fully determined by a *content hash of its actual inputs* —
//! the [`PhaseKeys`] of a `(spec, options)` pair. An edited spec shares
//! the keys of every phase whose inputs did not change, so re-synthesis
//! only recomputes the *dirty suffix* of the DAG and replays the clean
//! prefix from an [`ArtifactStore`].
//!
//! When the ring phase itself is dirty (a node moved, the LP backend
//! changed), the MILP can still be seeded with the previous solution's
//! exported [`Basis`] via the `warm_hint` argument of
//! [`Synthesizer::synthesize_incremental`] — the solver adopts it when
//! compatible and silently solves cold otherwise, so a stale hint is
//! always safe. A warm-started MILP may tie-break between equal-length
//! tours differently from a cold solve; reused artifacts, by contrast,
//! are replayed verbatim and keep the output bit-identical.
//!
//! Every assembled design still passes the full post-synthesis audit. If
//! the audit rejects a design assembled from cached artifacts (e.g. a
//! corrupted cache entry), the artifacts involved are evicted and the
//! request falls back to a cold [`Synthesizer::synthesize`] run.

use crate::design::{realize, Provenance, XRingDesign};
use crate::error::SynthesisError;
use crate::mapping::MappingPlan;
use crate::netspec::NetworkSpec;
use crate::opening::{open_rings, OpeningStats};
use crate::pdn::{design_pdn, PdnDesign};
use crate::ring::{RingBuilder, RingCycle, RingStats};
use crate::shortcut::{plan_shortcuts, Shortcut, ShortcutPlan};
use crate::synth::{DegradationPolicy, SynthesisOptions, Synthesizer};
use crate::traffic::Traffic;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;
use xring_milp::Basis;

/// One artifact-producing phase of the synthesis pipeline, in DAG order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhaseId {
    /// Step 1: ring waveguide construction (the MILP).
    Ring,
    /// Step 2: shortcut planning.
    Shortcut,
    /// Step 3 (first half): signal mapping (pre-opening plan).
    Mapping,
    /// Step 3 (second half): ring opening (post-opening plan).
    Opening,
    /// Step 4: power distribution network.
    Pdn,
}

impl PhaseId {
    /// Every phase, in pipeline order.
    pub const ALL: [PhaseId; 5] = [
        PhaseId::Ring,
        PhaseId::Shortcut,
        PhaseId::Mapping,
        PhaseId::Opening,
        PhaseId::Pdn,
    ];

    /// Stable name, matching the obs span emitted when the phase is
    /// recomputed.
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseId::Ring => "ring-milp",
            PhaseId::Shortcut => "shortcut",
            PhaseId::Mapping => "mapping",
            PhaseId::Opening => "opening",
            PhaseId::Pdn => "pdn",
        }
    }

    /// Domain-separation tag mixed into this phase's key.
    fn tag(self) -> u64 {
        match self {
            PhaseId::Ring => 1,
            PhaseId::Shortcut => 2,
            PhaseId::Mapping => 3,
            PhaseId::Opening => 4,
            PhaseId::Pdn => 5,
        }
    }

    /// Obs counter bumped when this phase is replayed from the store.
    pub fn hit_counter(self) -> &'static str {
        match self {
            PhaseId::Ring => "incremental.hit.ring-milp",
            PhaseId::Shortcut => "incremental.hit.shortcut",
            PhaseId::Mapping => "incremental.hit.mapping",
            PhaseId::Opening => "incremental.hit.opening",
            PhaseId::Pdn => "incremental.hit.pdn",
        }
    }

    /// Obs counter bumped when this phase must be recomputed.
    pub fn miss_counter(self) -> &'static str {
        match self {
            PhaseId::Ring => "incremental.miss.ring-milp",
            PhaseId::Shortcut => "incremental.miss.shortcut",
            PhaseId::Mapping => "incremental.miss.mapping",
            PhaseId::Opening => "incremental.miss.opening",
            PhaseId::Pdn => "incremental.miss.pdn",
        }
    }
}

/// A streaming FNV-1a (64-bit) content hasher for phase keys.
///
/// Phase keys must be *stable content hashes*: the same inputs always
/// produce the same key within a process and across processes (no
/// `DefaultHasher` seeding), and every write is length- or
/// domain-separated so concatenation ambiguities cannot collide.
///
/// # Example
///
/// ```
/// use xring_core::incremental::PhaseKeyer;
///
/// let a = PhaseKeyer::new(7).str("mapping").u64(16).finish();
/// let b = PhaseKeyer::new(7).str("mapping").u64(16).finish();
/// let c = PhaseKeyer::new(7).str("mapping").u64(17).finish();
/// assert_eq!(a, b, "identical inputs hash identically");
/// assert_ne!(a, c, "any changed input produces a different key");
/// ```
#[derive(Debug, Clone)]
pub struct PhaseKeyer {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl PhaseKeyer {
    /// Starts a keyer seeded with a domain-separation `tag` (use one tag
    /// per phase so equal payloads in different phases never collide).
    pub fn new(tag: u64) -> Self {
        PhaseKeyer { state: FNV_OFFSET }.u64(tag)
    }

    /// Mixes raw bytes (length-prefixed).
    pub fn bytes(mut self, b: &[u8]) -> Self {
        self = self.raw(&(b.len() as u64).to_le_bytes());
        self.raw(b)
    }

    /// Mixes a `u64`.
    pub fn u64(self, v: u64) -> Self {
        self.raw(&v.to_le_bytes())
    }

    /// Mixes an `i64`.
    pub fn i64(self, v: i64) -> Self {
        self.raw(&v.to_le_bytes())
    }

    /// Mixes an `f64` by bit pattern.
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Mixes a boolean.
    pub fn bool(self, v: bool) -> Self {
        self.raw(&[v as u8])
    }

    /// Mixes a string (length-prefixed UTF-8 bytes).
    pub fn str(self, s: &str) -> Self {
        self.bytes(s.as_bytes())
    }

    /// Chains an upstream phase key into this one.
    pub fn key(self, upstream: u64) -> Self {
        self.u64(upstream)
    }

    /// The final 64-bit key.
    pub fn finish(self) -> u64 {
        self.state
    }

    fn raw(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }
}

/// The resolved phase keys of a `(spec, options)` pair.
///
/// Each key covers exactly the inputs its phase reads — the spec subset,
/// the option subset, and the keys of its upstream phases (key chaining:
/// a dirty upstream key transitively dirties every phase after it).
/// Wall-clock controls ([`SynthesisOptions::deadline`]) are deliberately
/// excluded: they bound the solve, they do not change its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseKeys {
    /// Step 1 key: node positions + ring algorithm + LP backend +
    /// pricing rule + factorization kind.
    pub ring: u64,
    /// Step 2 key: ring key + the `shortcuts` toggle.
    pub shortcut: u64,
    /// Step 3a key: upstream keys + traffic + wavelength/waveguide caps.
    pub mapping: u64,
    /// Step 3b key: mapping key + the `openings` toggle.
    pub opening: u64,
    /// Step 4 key: upstream keys + the `pdn` toggle + loss params + laser.
    pub pdn: u64,
}

impl PhaseKeys {
    /// Computes all five keys for `(net, options)`.
    pub fn compute(net: &NetworkSpec, o: &SynthesisOptions) -> PhaseKeys {
        let mut ring = PhaseKeyer::new(PhaseId::Ring.tag())
            .u64(net.len() as u64)
            .str(ring_algorithm_name(o));
        for p in net.positions() {
            ring = ring.i64(p.x).i64(p.y);
        }
        // Pricing and factorization change pivot sequences, which can
        // tie-break alternate optima differently, so they key the ring
        // phase. `solver_threads` does not: the parallel search is
        // deterministic across thread counts.
        let ring = ring
            .str(o.lp_backend.as_str())
            .str(o.pricing.as_str())
            .str(o.factorization.as_str())
            .finish();

        let shortcut = PhaseKeyer::new(PhaseId::Shortcut.tag())
            .key(ring)
            .bool(o.shortcuts)
            .finish();

        let effective_wavelengths = o.max_wavelengths.saturating_sub(o.spares.k_wavelengths);
        let mut mapping = PhaseKeyer::new(PhaseId::Mapping.tag())
            .key(ring)
            .key(shortcut)
            .u64(effective_wavelengths as u64)
            .u64(o.max_waveguides as u64);
        mapping = hash_traffic(mapping, &o.traffic);
        let mapping = mapping.finish();

        let opening = PhaseKeyer::new(PhaseId::Opening.tag())
            .key(mapping)
            .bool(o.openings)
            .finish();

        let pdn = PhaseKeyer::new(PhaseId::Pdn.tag())
            .key(ring)
            .key(shortcut)
            .key(opening)
            .bool(o.pdn)
            .f64(o.loss.propagation_db_per_cm)
            .f64(o.loss.crossing_db)
            .f64(o.loss.drop_db)
            .f64(o.loss.through_db)
            .f64(o.loss.bend_db)
            .f64(o.loss.photodetector_db)
            .f64(o.loss.splitter_excess_db)
            .i64(o.laser.x)
            .i64(o.laser.y)
            .finish();

        PhaseKeys {
            ring,
            shortcut,
            mapping,
            opening,
            pdn,
        }
    }

    /// The key of one phase.
    pub fn of(&self, phase: PhaseId) -> u64 {
        match phase {
            PhaseId::Ring => self.ring,
            PhaseId::Shortcut => self.shortcut,
            PhaseId::Mapping => self.mapping,
            PhaseId::Opening => self.opening,
            PhaseId::Pdn => self.pdn,
        }
    }

    /// Phases whose keys differ between `self` and `other` — the dirty
    /// set a re-synthesis must recompute (always a suffix of the DAG,
    /// by key chaining, except for the independent PDN inputs).
    pub fn dirty_against(&self, other: &PhaseKeys) -> Vec<PhaseId> {
        PhaseId::ALL
            .into_iter()
            .filter(|p| self.of(*p) != other.of(*p))
            .collect()
    }
}

/// The incremental path only runs exact, unperturbed attempts, so the
/// ring key covers the requested algorithm (degraded attempts never
/// produce artifacts).
fn ring_algorithm_name(o: &SynthesisOptions) -> &'static str {
    match o.ring_algorithm {
        crate::ring::RingAlgorithm::Milp => "milp",
        crate::ring::RingAlgorithm::Heuristic => "heuristic",
        crate::ring::RingAlgorithm::Perimeter => "perimeter",
    }
}

fn hash_traffic(k: PhaseKeyer, traffic: &Traffic) -> PhaseKeyer {
    match traffic {
        Traffic::AllToAll => k.str("all-to-all"),
        Traffic::Custom(pairs) => {
            let mut k = k.str("custom").u64(pairs.len() as u64);
            for (a, b) in pairs {
                k = k.u64(u64::from(a.0)).u64(u64::from(b.0));
            }
            k
        }
        Traffic::NearestNeighbors(n) => k.str("nearest").u64(*n as u64),
        Traffic::Hotspot { hotspots, seed } => k.str("hotspot").u64(*hotspots as u64).u64(*seed),
        Traffic::Permutation { seed } => k.str("permutation").u64(*seed),
    }
}

/// Step-1 artifact: the realized ring plus the basis that proved it.
#[derive(Debug, Clone)]
pub struct RingArtifact {
    /// The realized ring cycle.
    pub cycle: RingCycle,
    /// Construction statistics of the producing solve.
    pub stats: RingStats,
    /// Exported LP basis for warm-starting a ring-dirty re-solve.
    pub basis: Option<Basis>,
}

/// Step-2 artifact.
#[derive(Debug, Clone)]
pub struct ShortcutArtifact {
    /// The planned shortcuts (empty when Step 2 was disabled).
    pub plan: ShortcutPlan,
}

/// Step-3a artifact: the *pre-opening* signal mapping.
#[derive(Debug, Clone)]
pub struct MappingArtifact {
    /// The mapped plan before any ring was opened.
    pub plan: MappingPlan,
}

/// Step-3b artifact: the post-opening plan and its statistics.
#[derive(Debug, Clone)]
pub struct OpeningArtifact {
    /// The plan after the opening pass mutated it.
    pub plan: MappingPlan,
    /// What the pass did.
    pub stats: OpeningStats,
}

/// Step-4 artifact.
#[derive(Debug, Clone)]
pub struct PdnArtifact {
    /// The designed PDN (`None` when Step 4 was disabled).
    pub pdn: Option<PdnDesign>,
}

/// One persisted phase output.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // heap payloads dominate (see approx_bytes); boxing would only hide the inline part
pub enum PhaseArtifact {
    /// Step 1.
    Ring(RingArtifact),
    /// Step 2.
    Shortcut(ShortcutArtifact),
    /// Step 3a.
    Mapping(MappingArtifact),
    /// Step 3b.
    Opening(OpeningArtifact),
    /// Step 4.
    Pdn(PdnArtifact),
}

impl PhaseArtifact {
    /// Which phase produced this artifact.
    pub fn phase(&self) -> PhaseId {
        match self {
            PhaseArtifact::Ring(_) => PhaseId::Ring,
            PhaseArtifact::Shortcut(_) => PhaseId::Shortcut,
            PhaseArtifact::Mapping(_) => PhaseId::Mapping,
            PhaseArtifact::Opening(_) => PhaseId::Opening,
            PhaseArtifact::Pdn(_) => PhaseId::Pdn,
        }
    }

    /// Approximate heap footprint, for byte-budgeted stores.
    pub fn approx_bytes(&self) -> usize {
        let base = std::mem::size_of::<Self>();
        base + match self {
            PhaseArtifact::Ring(a) => {
                // order + position_of + one L-route per edge.
                a.cycle.len() * 96 + a.basis.as_ref().map_or(0, Basis::approx_bytes)
            }
            PhaseArtifact::Shortcut(a) => a.plan.shortcuts.len() * std::mem::size_of::<Shortcut>(),
            PhaseArtifact::Mapping(a) => plan_bytes(&a.plan),
            PhaseArtifact::Opening(a) => plan_bytes(&a.plan),
            PhaseArtifact::Pdn(a) => a.pdn.as_ref().map_or(0, |p| {
                p.sender_loss_db.len() * 32 + p.trees.len() * 40 + p.crossed_waveguides.len() * 8
            }),
        }
    }
}

fn plan_bytes(plan: &MappingPlan) -> usize {
    let mut bytes = plan.routes.len() * std::mem::size_of::<crate::mapping::SignalRoute>();
    for wg in &plan.ring_waveguides {
        bytes += 64;
        for lane in &wg.lanes {
            bytes += 24;
            for arc in &lane.arcs {
                bytes += 80 + (arc.edges.len() + arc.interior.len()) * 8;
            }
        }
    }
    bytes
}

/// Persistence for phase artifacts, keyed by `(phase, content key)`.
///
/// Implementations must return exactly what was stored (or nothing):
/// [`Synthesizer::synthesize_incremental`] audits every assembled design
/// and falls back to a cold run when a store returns garbage, but a
/// well-behaved store keeps the fast path fast. All methods take `&self`;
/// implementations handle their own locking.
pub trait ArtifactStore {
    /// Looks up the artifact of `phase` with content key `key`.
    fn get_artifact(&self, phase: PhaseId, key: u64) -> Option<PhaseArtifact>;
    /// Persists an artifact (may overwrite an existing entry, may also
    /// decline to store — e.g. when over budget).
    fn put_artifact(&self, phase: PhaseId, key: u64, artifact: PhaseArtifact);
    /// Drops an artifact, if present (used when an assembled design
    /// fails its audit).
    fn evict_artifact(&self, phase: PhaseId, key: u64);
}

/// A plain in-memory [`ArtifactStore`] (unbounded; tests and CLI use —
/// the engine's byte-budgeted cache is the production store).
#[derive(Debug, Default)]
pub struct MemoryArtifactStore {
    map: Mutex<HashMap<(PhaseId, u64), PhaseArtifact>>,
}

impl MemoryArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.map.lock().expect("store lock").len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ArtifactStore for MemoryArtifactStore {
    fn get_artifact(&self, phase: PhaseId, key: u64) -> Option<PhaseArtifact> {
        self.map
            .lock()
            .expect("store lock")
            .get(&(phase, key))
            .cloned()
    }

    fn put_artifact(&self, phase: PhaseId, key: u64, artifact: PhaseArtifact) {
        self.map
            .lock()
            .expect("store lock")
            .insert((phase, key), artifact);
    }

    fn evict_artifact(&self, phase: PhaseId, key: u64) {
        self.map.lock().expect("store lock").remove(&(phase, key));
    }
}

/// What an incremental run reused, recomputed and fell back on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncrementalReport {
    /// Phases replayed verbatim from the store.
    pub hits: Vec<PhaseId>,
    /// Phases recomputed (the dirty suffix).
    pub misses: Vec<PhaseId>,
    /// Whether the recomputed ring MILP was offered a warm basis.
    pub ring_warm_offered: bool,
    /// Whether an artifact-assembled design failed its audit and the
    /// request was re-run as a cold synthesis.
    pub fell_back_cold: bool,
}

impl IncrementalReport {
    /// Number of phases served from the store.
    pub fn phases_reused(&self) -> usize {
        self.hits.len()
    }

    /// True when `phase` was replayed from the store.
    pub fn reused(&self, phase: PhaseId) -> bool {
        self.hits.contains(&phase)
    }
}

impl Synthesizer {
    /// Re-synthesizes `net`, replaying clean phases from `store` and
    /// recomputing only the dirty suffix of the phase DAG.
    ///
    /// Phase keys are content hashes of each phase's actual inputs
    /// ([`PhaseKeys::compute`]); a phase whose key is present in `store`
    /// is replayed verbatim, which keeps the assembled design
    /// bit-identical to a cold run of the same `(net, options)`. Phases
    /// recomputed here persist their artifacts back into `store`. When
    /// the ring phase is dirty, `warm_hint` (a [`Basis`] exported by a
    /// previous solve, see [`crate::ring::RingOutcome::basis`]) seeds the
    /// MILP's root relaxation; an incompatible hint is ignored by the
    /// backend, so passing a stale basis is always safe.
    ///
    /// Every assembled design passes the same audit (and, with spares
    /// provisioned, the same survivability verification) as a cold run.
    /// If the audit rejects a design built from cached artifacts, the
    /// artifacts are evicted and the request falls back to a cold
    /// [`Synthesizer::synthesize`] (reported via
    /// [`IncrementalReport::fell_back_cold`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SynthesisError`] exactly like [`Self::synthesize`]
    /// once the fallback (when taken) is exhausted.
    pub fn synthesize_incremental(
        &self,
        net: &NetworkSpec,
        store: &dyn ArtifactStore,
        warm_hint: Option<&Basis>,
    ) -> Result<(XRingDesign, IncrementalReport), SynthesisError> {
        let mut report = IncrementalReport::default();
        // A forced-heuristic pipeline bypasses the artifact store
        // entirely: phase keys hash the *requested* options, so its
        // (heuristic) artifacts would collide with exact-keyed ones.
        if self.options().degradation == DegradationPolicy::ForceHeuristic {
            report.misses = PhaseId::ALL.to_vec();
            return self.synthesize(net).map(|d| (d, report));
        }
        // A corrupt artifact can make assembly panic (e.g. a cached ring
        // realized on a different floorplan leaves the layout internally
        // inconsistent). Contain the panic and treat it as an audit
        // rejection so the cold fallback below still protects the caller.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.incremental_attempt(net, store, warm_hint, &mut report)
        }))
        .unwrap_or_else(|_| {
            Err(SynthesisError::AuditFailed {
                summary: "incremental assembly panicked (corrupt artifact?)".to_owned(),
            })
        });
        match attempt {
            Ok(design) => Ok((design, report)),
            Err(err) => {
                // A design assembled from cached artifacts that fails its
                // audit may be the cache's fault, not the spec's: evict
                // the artifacts involved and prove it with a cold run.
                let assembled_from_cache = !report.hits.is_empty();
                if assembled_from_cache && matches!(err, SynthesisError::AuditFailed { .. }) {
                    let keys = PhaseKeys::compute(net, self.options());
                    for phase in PhaseId::ALL {
                        store.evict_artifact(phase, keys.of(phase));
                    }
                    xring_obs::counter("incremental.fallbacks", 1);
                    report.fell_back_cold = true;
                    report.hits.clear();
                    report.misses = PhaseId::ALL.to_vec();
                    return self.synthesize(net).map(|d| (d, report));
                }
                // The incremental attempt only ever runs the exact
                // pipeline; under an `Allow` policy a degradable failure
                // (deadline expiry, MILP trouble) must still reach the
                // fallback chain, exactly as a plain `synthesize` would.
                if self.options().degradation == DegradationPolicy::Allow
                    && crate::synth::degradable(&err)
                {
                    report.fell_back_cold = true;
                    report.hits.clear();
                    report.misses = PhaseId::ALL.to_vec();
                    return self.synthesize(net).map(|d| (d, report));
                }
                Err(err)
            }
        }
    }

    /// One incremental assembly pass: replay clean phases, recompute
    /// dirty ones, audit the result.
    fn incremental_attempt(
        &self,
        net: &NetworkSpec,
        store: &dyn ArtifactStore,
        warm_hint: Option<&Basis>,
        report: &mut IncrementalReport,
    ) -> Result<XRingDesign, SynthesisError> {
        let _span = xring_obs::span("synth-incremental");
        let t0 = Instant::now();
        let o = self.options();
        let keys = PhaseKeys::compute(net, o);
        let deadline = o.deadline.map(|budget| t0 + budget);
        let check_deadline = || match deadline {
            Some(d) if Instant::now() >= d => Err(SynthesisError::DeadlineExceeded),
            _ => Ok(()),
        };
        let record = |phase: PhaseId, hit: bool, report: &mut IncrementalReport| {
            if hit {
                xring_obs::counter("incremental.phase_hits", 1);
                xring_obs::counter(phase.hit_counter(), 1);
                report.hits.push(phase);
            } else {
                xring_obs::counter("incremental.phase_misses", 1);
                xring_obs::counter(phase.miss_counter(), 1);
                report.misses.push(phase);
            }
        };

        // Step 1: ring construction.
        check_deadline()?;
        let ring = match store.get_artifact(PhaseId::Ring, keys.ring) {
            Some(PhaseArtifact::Ring(a)) => {
                record(PhaseId::Ring, true, report);
                a
            }
            _ => {
                record(PhaseId::Ring, false, report);
                report.ring_warm_offered = warm_hint.is_some();
                let outcome = {
                    let _s = xring_obs::span("ring-milp");
                    RingBuilder::new()
                        .with_algorithm(o.ring_algorithm)
                        .with_deadline(deadline)
                        .with_lp_backend(o.lp_backend)
                        .with_solver_threads(o.solver_threads)
                        .with_pricing(o.pricing)
                        .with_factorization(o.factorization)
                        .with_warm_basis(warm_hint.cloned())
                        .build(net)?
                };
                let artifact = RingArtifact {
                    cycle: outcome.cycle,
                    stats: outcome.stats,
                    basis: outcome.basis,
                };
                store.put_artifact(
                    PhaseId::Ring,
                    keys.ring,
                    PhaseArtifact::Ring(artifact.clone()),
                );
                artifact
            }
        };

        // Step 2: shortcuts.
        check_deadline()?;
        let shortcuts = match store.get_artifact(PhaseId::Shortcut, keys.shortcut) {
            Some(PhaseArtifact::Shortcut(a)) => {
                record(PhaseId::Shortcut, true, report);
                a.plan
            }
            _ => {
                record(PhaseId::Shortcut, false, report);
                let plan = if o.shortcuts {
                    let _s = xring_obs::span("shortcut");
                    plan_shortcuts(net, &ring.cycle)
                } else {
                    ShortcutPlan::empty()
                };
                store.put_artifact(
                    PhaseId::Shortcut,
                    keys.shortcut,
                    PhaseArtifact::Shortcut(ShortcutArtifact { plan: plan.clone() }),
                );
                plan
            }
        };

        // Step 3a: mapping. The budget check precedes the cache: a spec
        // whose spares exhaust the wavelength budget fails identically
        // hot or cold.
        check_deadline()?;
        let effective_wavelengths = o.max_wavelengths.saturating_sub(o.spares.k_wavelengths);
        if o.spares.k_wavelengths > 0 && effective_wavelengths == 0 {
            return Err(SynthesisError::WavelengthBudgetExceeded {
                max_wavelengths: o.max_wavelengths,
                max_waveguides: o.max_waveguides,
            });
        }
        let mapped = match store.get_artifact(PhaseId::Mapping, keys.mapping) {
            Some(PhaseArtifact::Mapping(a)) => {
                record(PhaseId::Mapping, true, report);
                a.plan
            }
            _ => {
                record(PhaseId::Mapping, false, report);
                let plan = {
                    let _s = xring_obs::span("mapping");
                    crate::mapping::map_signals_with_traffic(
                        net,
                        &ring.cycle,
                        &shortcuts,
                        &o.traffic,
                        effective_wavelengths,
                        o.max_waveguides,
                    )?
                };
                store.put_artifact(
                    PhaseId::Mapping,
                    keys.mapping,
                    PhaseArtifact::Mapping(MappingArtifact { plan: plan.clone() }),
                );
                plan
            }
        };

        // Step 3b: openings.
        check_deadline()?;
        let (plan, opening_stats) = match store.get_artifact(PhaseId::Opening, keys.opening) {
            Some(PhaseArtifact::Opening(a)) => {
                record(PhaseId::Opening, true, report);
                (a.plan, a.stats)
            }
            _ => {
                record(PhaseId::Opening, false, report);
                let mut plan = mapped;
                let stats = if o.openings {
                    let _s = xring_obs::span("opening");
                    open_rings(&ring.cycle, &mut plan, effective_wavelengths)
                } else {
                    OpeningStats::default()
                };
                store.put_artifact(
                    PhaseId::Opening,
                    keys.opening,
                    PhaseArtifact::Opening(OpeningArtifact {
                        plan: plan.clone(),
                        stats: stats.clone(),
                    }),
                );
                (plan, stats)
            }
        };

        // Step 4: PDN.
        check_deadline()?;
        let pdn = match store.get_artifact(PhaseId::Pdn, keys.pdn) {
            Some(PhaseArtifact::Pdn(a)) => {
                record(PhaseId::Pdn, true, report);
                a.pdn
            }
            _ => {
                record(PhaseId::Pdn, false, report);
                let pdn = o.pdn.then(|| {
                    let _s = xring_obs::span("pdn");
                    design_pdn(net, &ring.cycle, &plan, &shortcuts, &o.loss, o.laser)
                });
                store.put_artifact(
                    PhaseId::Pdn,
                    keys.pdn,
                    PhaseArtifact::Pdn(PdnArtifact { pdn: pdn.clone() }),
                );
                pdn
            }
        };

        // Assembly, audit and (with spares) survivability verification
        // run exactly as in a cold synthesis.
        let layout = {
            let _s = xring_obs::span("realize");
            realize(net, &ring.cycle, &shortcuts, &plan, pdn.as_ref(), o.spacing)
        };
        let mut design = XRingDesign {
            net: net.clone(),
            cycle: ring.cycle,
            shortcuts,
            plan,
            pdn,
            layout,
            ring_stats: ring.stats,
            opening_stats,
            elapsed: t0.elapsed(),
            provenance: Provenance::default(),
        };

        xring_obs::record_hist("synth.incremental.wall_us", t0.elapsed().as_micros() as u64);

        let audit = crate::audit::audit_design(&design, &o.traffic, &o.loss);
        if !audit.is_clean() {
            return Err(SynthesisError::AuditFailed {
                summary: audit.summary(),
            });
        }
        if o.spares.any() {
            let _s = xring_obs::span("survivability-verify");
            let protected = crate::fault::protected_single_faults(&design, o.spares);
            let surv = crate::fault::verify_faults(&design, &protected, o, None);
            if !surv.fully_survivable() {
                return Err(SynthesisError::SurvivabilityFailed {
                    survived: surv.survived,
                    scenarios: surv.scenarios,
                    scenario: surv
                        .worst
                        .unwrap_or_else(|| "unidentified scenario".to_owned()),
                });
            }
        }
        design.provenance = Provenance {
            degradation: crate::design::DegradationLevel::Exact,
            fallback_reason: None,
            audit,
        };
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netspec::NodeId;
    use xring_geom::Point;

    fn opts() -> SynthesisOptions {
        SynthesisOptions::with_wavelengths(8)
    }

    #[test]
    fn phase_keys_are_deterministic() {
        let net = NetworkSpec::proton_8();
        assert_eq!(
            PhaseKeys::compute(&net, &opts()),
            PhaseKeys::compute(&net, &opts())
        );
    }

    #[test]
    fn node_move_dirties_every_phase() {
        let net = NetworkSpec::proton_8();
        let mut positions = net.positions().to_vec();
        positions[3] = Point::new(positions[3].x + 100, positions[3].y);
        let moved = NetworkSpec::new(positions).expect("valid");
        let a = PhaseKeys::compute(&net, &opts());
        let b = PhaseKeys::compute(&moved, &opts());
        assert_eq!(a.dirty_against(&b), PhaseId::ALL.to_vec());
    }

    #[test]
    fn traffic_edit_dirties_only_mapping_suffix() {
        let net = NetworkSpec::proton_8();
        let a = PhaseKeys::compute(&net, &opts());
        let edited = SynthesisOptions {
            traffic: Traffic::NearestNeighbors(3),
            ..opts()
        };
        let b = PhaseKeys::compute(&net, &edited);
        assert_eq!(
            a.dirty_against(&b),
            vec![PhaseId::Mapping, PhaseId::Opening, PhaseId::Pdn]
        );
    }

    #[test]
    fn loss_edit_dirties_only_pdn() {
        let net = NetworkSpec::proton_8();
        let a = PhaseKeys::compute(&net, &opts());
        let mut o = opts();
        o.loss.crossing_db += 0.01;
        let b = PhaseKeys::compute(&net, &o);
        assert_eq!(a.dirty_against(&b), vec![PhaseId::Pdn]);
    }

    #[test]
    fn solver_knob_edits_dirty_the_ring_but_threads_do_not() {
        let net = NetworkSpec::proton_8();
        let a = PhaseKeys::compute(&net, &opts());
        let b = PhaseKeys::compute(&net, &opts().with_pricing(crate::PricingKind::Devex));
        assert_eq!(a.dirty_against(&b), PhaseId::ALL.to_vec());
        let c = PhaseKeys::compute(
            &net,
            &opts().with_factorization(crate::FactorizationKind::DenseEta),
        );
        assert_eq!(a.dirty_against(&c), PhaseId::ALL.to_vec());
        // The parallel search is deterministic: thread count cannot
        // change the result, so it must not dirty any phase.
        let d = PhaseKeys::compute(&net, &opts().with_solver_threads(8));
        assert_eq!(a.dirty_against(&d), vec![]);
    }

    #[test]
    fn deadline_does_not_dirty_anything() {
        let net = NetworkSpec::proton_8();
        let a = PhaseKeys::compute(&net, &opts());
        let b = PhaseKeys::compute(
            &net,
            &opts().with_deadline(std::time::Duration::from_secs(5)),
        );
        assert_eq!(a.dirty_against(&b), vec![]);
    }

    #[test]
    fn incremental_cold_then_hot_reuses_every_phase() {
        let net = NetworkSpec::proton_8();
        let store = MemoryArtifactStore::new();
        let synth = Synthesizer::new(opts());
        let (cold, r0) = synth
            .synthesize_incremental(&net, &store, None)
            .expect("cold run");
        assert_eq!(r0.misses.len(), 5);
        assert_eq!(store.len(), 5);
        let (hot, r1) = synth
            .synthesize_incremental(&net, &store, None)
            .expect("hot run");
        assert_eq!(r1.hits.len(), 5);
        assert!(r1.misses.is_empty());
        assert_eq!(cold.describe(), hot.describe());
    }

    #[test]
    fn incremental_matches_cold_synthesize_bit_for_bit() {
        let net = NetworkSpec::proton_8();
        let store = MemoryArtifactStore::new();
        let synth = Synthesizer::new(opts());
        let (incremental, _) = synth
            .synthesize_incremental(&net, &store, None)
            .expect("incremental");
        let cold = synth.synthesize(&net).expect("cold");
        assert_eq!(incremental.describe(), cold.describe());
        assert_eq!(incremental.cycle, cold.cycle);
        assert_eq!(incremental.plan, cold.plan);
        assert_eq!(incremental.pdn, cold.pdn);
    }

    #[test]
    fn demand_edit_recomputes_only_mapping_suffix() {
        let net = NetworkSpec::proton_8();
        let store = MemoryArtifactStore::new();
        let synth = Synthesizer::new(opts());
        synth
            .synthesize_incremental(&net, &store, None)
            .expect("seed run");
        let edited = Synthesizer::new(SynthesisOptions {
            traffic: Traffic::Custom(
                net.signal_pairs()
                    .into_iter()
                    .filter(|(a, b)| !(a.0 == 0 && b.0 == 1))
                    .collect(),
            ),
            ..opts()
        });
        let (design, report) = edited
            .synthesize_incremental(&net, &store, None)
            .expect("edited run");
        assert_eq!(report.hits, vec![PhaseId::Ring, PhaseId::Shortcut]);
        assert_eq!(
            report.misses,
            vec![PhaseId::Mapping, PhaseId::Opening, PhaseId::Pdn]
        );
        // The edited design matches a cold synthesis of the edited spec.
        let cold = edited.synthesize(&net).expect("cold");
        assert_eq!(design.describe(), cold.describe());
        assert_eq!(design.plan, cold.plan);
    }

    #[test]
    fn corrupt_ring_artifact_falls_back_to_cold_synthesis() {
        let net = NetworkSpec::proton_8();
        let store = MemoryArtifactStore::new();
        let synth = Synthesizer::new(opts());
        synth
            .synthesize_incremental(&net, &store, None)
            .expect("seed run");
        // Swap the ring artifact for one realized on a different network:
        // the assembled design cannot pass its audit.
        let other = NetworkSpec::irregular(8, 6_000, 99).expect("valid");
        let wrong = RingBuilder::new().build(&other).expect("ring");
        let keys = PhaseKeys::compute(&net, synth.options());
        store.put_artifact(
            PhaseId::Ring,
            keys.ring,
            PhaseArtifact::Ring(RingArtifact {
                cycle: wrong.cycle,
                stats: wrong.stats,
                basis: None,
            }),
        );
        let (design, report) = synth
            .synthesize_incremental(&net, &store, None)
            .expect("fallback");
        assert!(report.fell_back_cold);
        assert!(design.provenance.audit.is_clean());
        let cold = synth.synthesize(&net).expect("cold");
        assert_eq!(design.describe(), cold.describe());
    }

    #[test]
    fn node_move_warm_start_matches_cold_objective() {
        let net = NetworkSpec::proton_8();
        let store = MemoryArtifactStore::new();
        let synth = Synthesizer::new(opts());
        let (_, _) = synth
            .synthesize_incremental(&net, &store, None)
            .expect("seed run");
        let keys = PhaseKeys::compute(&net, synth.options());
        let basis = match store.get_artifact(PhaseId::Ring, keys.ring) {
            Some(PhaseArtifact::Ring(a)) => a.basis,
            _ => panic!("ring artifact missing"),
        };
        let mut positions = net.positions().to_vec();
        positions[5] = Point::new(positions[5].x + 200, positions[5].y + 100);
        let moved = NetworkSpec::new(positions).expect("valid");
        let (design, report) = synth
            .synthesize_incremental(&moved, &store, basis.as_ref())
            .expect("moved run");
        assert!(report.misses.contains(&PhaseId::Ring));
        assert_eq!(report.ring_warm_offered, basis.is_some());
        // Alternate optima may differ in tour, never in objective.
        let cold = synth.synthesize(&moved).expect("cold");
        assert_eq!(
            design.ring_stats.milp_objective,
            cold.ring_stats.milp_objective
        );
        assert!(design.provenance.audit.is_clean());
    }

    #[test]
    fn memory_store_round_trips_artifacts() {
        let store = MemoryArtifactStore::new();
        assert!(store.is_empty());
        store.put_artifact(
            PhaseId::Shortcut,
            7,
            PhaseArtifact::Shortcut(ShortcutArtifact {
                plan: ShortcutPlan::empty(),
            }),
        );
        assert_eq!(store.len(), 1);
        assert!(matches!(
            store.get_artifact(PhaseId::Shortcut, 7),
            Some(PhaseArtifact::Shortcut(_))
        ));
        assert!(store.get_artifact(PhaseId::Ring, 7).is_none());
        store.evict_artifact(PhaseId::Shortcut, 7);
        assert!(store.is_empty());
    }

    #[test]
    fn artifact_bytes_scale_with_contents() {
        let net = NetworkSpec::psion_16();
        let store = MemoryArtifactStore::new();
        Synthesizer::new(SynthesisOptions::with_wavelengths(14))
            .synthesize_incremental(&net, &store, None)
            .expect("run");
        let keys = PhaseKeys::compute(&net, &SynthesisOptions::with_wavelengths(14));
        for phase in PhaseId::ALL {
            let artifact = store
                .get_artifact(phase, keys.of(phase))
                .expect("artifact stored");
            assert!(
                artifact.approx_bytes() >= std::mem::size_of::<PhaseArtifact>(),
                "{phase:?} bytes too small"
            );
        }
    }

    #[test]
    fn custom_traffic_key_covers_pair_identity() {
        let net = NetworkSpec::proton_8();
        let t1 = SynthesisOptions {
            traffic: Traffic::Custom(vec![(NodeId(0), NodeId(1))]),
            ..opts()
        };
        let t2 = SynthesisOptions {
            traffic: Traffic::Custom(vec![(NodeId(0), NodeId(2))]),
            ..opts()
        };
        assert_ne!(
            PhaseKeys::compute(&net, &t1).mapping,
            PhaseKeys::compute(&net, &t2).mapping
        );
    }
}
