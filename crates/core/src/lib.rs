//! XRing: crosstalk-aware synthesis of wavelength-routed optical ring
//! routers (reproduction of Zheng et al., DATE 2023).
//!
//! The pipeline follows the paper's four steps:
//!
//! 1. [`ring`] — ring waveguide construction: a modified-TSP MILP over
//!    directed node-pair edges, with lazily separated geometric conflict
//!    constraints and heuristic sub-cycle merging (Sec. III-A).
//! 2. [`shortcut`] — shortcuts between nodes suffering long ring detours,
//!    with CSE merging of crossing shortcuts (Sec. III-B).
//! 3. [`mapping`] + [`opening`] — #wl-capped wavelength assignment with
//!    arc-disjoint reuse, then ring openings at minimum-traffic nodes
//!    (Sec. III-C).
//! 4. [`pdn`] — a crossing-free binary-splitter-tree power distribution
//!    network threaded through the openings (Sec. III-D).
//!
//! [`synth::Synthesizer`] drives the whole flow; [`layout`] holds the
//! realized-layout model and the loss/crosstalk/power evaluation engine
//! shared with the baseline routers.
//!
//! # Example
//!
//! ```
//! use xring_core::{NetworkSpec, SynthesisOptions, Synthesizer};
//! use xring_phot::{CrosstalkParams, LossParams, PowerParams};
//!
//! let net = NetworkSpec::proton_8();
//! let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
//!     .synthesize(&net)?;
//! let report = design.report(
//!     "XRing/8",
//!     &LossParams::default(),
//!     Some(&CrosstalkParams::default()),
//!     &PowerParams::default(),
//! );
//! assert!(report.noise_free_fraction().expect("noise evaluated") > 0.9);
//! # Ok::<(), xring_core::SynthesisError>(())
//! ```

pub mod audit;
pub mod describe;
pub mod design;
pub mod error;
pub mod fault;
pub mod heuristics;
pub mod incremental;
pub mod layout;
pub mod mapping;
pub mod netspec;
pub mod opening;
pub mod pdn;
pub mod ring;
pub mod shortcut;
pub mod sweep;
pub mod synth;
pub mod traffic;
pub mod variation;

pub use audit::{audit_design, audit_report_bounds, audit_structure, AuditReport, Invariant};
pub use design::{DegradationLevel, Provenance, RingSpacing, XRingDesign};
pub use error::SynthesisError;
pub use fault::{
    apply_fault, audit_degraded, audit_design_under_fault, enumerate_single_faults,
    protected_single_faults, verify_faults, verify_single_fault_survivability, DegradedDesign,
    DeviceFault, FaultAudit, RepairSummary, SpareConfig, SurvivabilityReport,
};
pub use incremental::{
    ArtifactStore, IncrementalReport, MappingArtifact, MemoryArtifactStore, OpeningArtifact,
    PdnArtifact, PhaseArtifact, PhaseId, PhaseKeyer, PhaseKeys, RingArtifact, ShortcutArtifact,
};
pub use layout::{Hop, LayoutModel, NoiseSource, Station, Waveguide};
pub use mapping::{map_signals, map_signals_with_traffic, MappingPlan, RouteKind, SignalRoute};
pub use netspec::{NetworkSpec, NodeId};
pub use opening::{open_rings, OpeningStats};
pub use pdn::{design_pdn, PdnDesign, SHORTCUT_GROUP};
pub use ring::{Direction, RingAlgorithm, RingBuilder, RingCycle, RingOutcome, RingStats};
pub use shortcut::{plan_shortcuts, Shortcut, ShortcutPlan};
pub use sweep::{
    pick_best_index, sweep_wavelengths, synthesize_best, SweepObjective, SweepPoint, SweepResult,
};
pub use synth::{DegradationPolicy, SynthesisOptions, Synthesizer};
pub use traffic::Traffic;
pub use variation::{monte_carlo, SplitMix64, VariationSpec, VariationSummary};
pub use xring_milp::{Basis, ConvergenceSummary, FactorizationKind, LpBackendKind, PricingKind};
