//! The end-to-end synthesis pipeline.

use crate::design::{realize, DegradationLevel, Provenance, RingSpacing, XRingDesign};
use crate::error::SynthesisError;
use crate::fault::SpareConfig;
use crate::netspec::NetworkSpec;
use crate::opening::open_rings;
use crate::pdn::design_pdn;
use crate::ring::{RingAlgorithm, RingBuilder};
use crate::shortcut::{plan_shortcuts, ShortcutPlan};
use crate::traffic::Traffic;
use std::time::{Duration, Instant};
use xring_geom::Point;
use xring_milp::{FactorizationKind, LpBackendKind, PricingKind};
use xring_phot::LossParams;

/// Seed of the deterministic objective perturbation used by the
/// degradation chain's retry step (see
/// [`RingBuilder::with_objective_perturbation`]).
const RETRY_PERTURBATION_SEED: u64 = 0x5EED_0FFA_11BA_CC01;

/// Whether [`Synthesizer::synthesize`] may fall back when exact synthesis
/// fails. The fallback chain is
/// `ExactMilp → RetryWithPerturbation → HeuristicRing → Err`, and every
/// produced design records the level reached in its
/// [`Provenance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationPolicy {
    /// Never degrade: any failure surfaces as its [`SynthesisError`]
    /// (the default — existing callers see unchanged behaviour).
    #[default]
    Forbid,
    /// Walk the fallback chain on recoverable failures (MILP failure,
    /// deadline expiry, ring-construction breakdown, audit rejection).
    /// Non-recoverable failures (invalid network, wavelength budget
    /// exhaustion) still surface immediately.
    Allow,
    /// Skip the MILP entirely and build the ring heuristically; the
    /// design always records [`DegradationLevel::Heuristic`].
    ForceHeuristic,
}

impl DegradationPolicy {
    /// Stable lowercase name (the CLI flag spelling).
    pub fn as_str(&self) -> &'static str {
        match self {
            DegradationPolicy::Forbid => "forbid",
            DegradationPolicy::Allow => "allow",
            DegradationPolicy::ForceHeuristic => "force-heuristic",
        }
    }
}

impl std::str::FromStr for DegradationPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "forbid" => Ok(DegradationPolicy::Forbid),
            "allow" => Ok(DegradationPolicy::Allow),
            "force-heuristic" => Ok(DegradationPolicy::ForceHeuristic),
            other => Err(format!(
                "unknown degradation policy '{other}' (expected forbid, allow or force-heuristic)"
            )),
        }
    }
}

/// Configuration of the synthesis pipeline. The defaults reproduce the
/// full XRing flow; individual steps can be disabled for ablations.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Step-1 algorithm.
    pub ring_algorithm: RingAlgorithm,
    /// `#wl`: maximum wavelengths per ring waveguide.
    pub max_wavelengths: usize,
    /// Maximum ring waveguides (0 = unlimited).
    pub max_waveguides: usize,
    /// Enable Step 2 (shortcut construction).
    pub shortcuts: bool,
    /// Enable ring openings (second half of Step 3).
    pub openings: bool,
    /// Enable Step 4 (PDN synthesis); when false, reports omit laser
    /// power, matching Table I's no-PDN comparison.
    pub pdn: bool,
    /// Ring-pair spacing constants.
    pub spacing: RingSpacing,
    /// On-die coupling point of the off-chip laser.
    pub laser: Point,
    /// Which node pairs communicate (default: the paper's all-to-all).
    pub traffic: Traffic,
    /// Loss parameters (used during PDN design; evaluation may use the
    /// same or another set).
    pub loss: LossParams,
    /// Wall-clock budget for the whole pipeline (`None` = unbounded).
    /// Checked cooperatively between steps and, most importantly, once
    /// per node inside the ring-construction branch-and-bound; expiry
    /// aborts with [`SynthesisError::DeadlineExceeded`]. The budget does
    /// not change the result of a synthesis that completes within it.
    pub deadline: Option<Duration>,
    /// Whether failures may degrade to the fallback chain (default:
    /// [`DegradationPolicy::Forbid`]). The heuristic recovery step runs
    /// with the deadline waived — the budget is already spent and the
    /// heuristic is fast and bounded.
    pub degradation: DegradationPolicy,
    /// LP backend for the ring MILP's relaxations (default: the revised
    /// simplex with warm starts; [`LpBackendKind::Dense`] is the
    /// reference tableau). The degradation chain's perturbed retry
    /// also switches to the dense backend, so a numerical failure in
    /// one LP kernel is never retried on the same kernel.
    pub lp_backend: LpBackendKind,
    /// Worker threads for the ring MILP's per-round node-batch LP
    /// solves (default 1). The search is deterministic: every setting
    /// produces the same design, objective, and progress stream — only
    /// wall-clock time changes.
    pub solver_threads: usize,
    /// Pricing rule for the revised simplex's primal phases (default
    /// Dantzig). Ignored by the dense reference backend.
    pub pricing: PricingKind,
    /// Basis factorization for the revised simplex (default sparse LU
    /// with bounded eta updates). Ignored by the dense backend.
    pub factorization: FactorizationKind,
    /// Spare resources for single-device-fault survivability (default:
    /// none). With `k_wavelengths > 0`, signal mapping is confined to
    /// `max_wavelengths - k_wavelengths` channels so the top `k` stay
    /// dark for repairs; with any spare provisioned, synthesis
    /// exhaustively verifies every single-fault scenario through the
    /// post-failure auditor and fails with
    /// [`SynthesisError::SurvivabilityFailed`] rather than return an
    /// unsurvivable design (see [`crate::fault`]).
    pub spares: SpareConfig,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            ring_algorithm: RingAlgorithm::Milp,
            max_wavelengths: 16,
            max_waveguides: 0,
            shortcuts: true,
            openings: true,
            pdn: true,
            spacing: RingSpacing::default(),
            laser: Point::new(-1_000, -1_000),
            traffic: Traffic::AllToAll,
            loss: LossParams::default(),
            deadline: None,
            degradation: DegradationPolicy::default(),
            lp_backend: LpBackendKind::default(),
            solver_threads: 1,
            pricing: PricingKind::default(),
            factorization: FactorizationKind::default(),
            spares: SpareConfig::default(),
        }
    }
}

impl SynthesisOptions {
    /// The full XRing pipeline with `#wl = max_wavelengths`.
    pub fn with_wavelengths(max_wavelengths: usize) -> Self {
        SynthesisOptions {
            max_wavelengths,
            ..Self::default()
        }
    }

    /// Table-I style options: no PDN (and hence no power column).
    pub fn without_pdn(mut self) -> Self {
        self.pdn = false;
        self
    }

    /// Caps the pipeline's wall-clock time (see
    /// [`deadline`](Self::deadline)).
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Sets the degradation policy (see [`DegradationPolicy`]).
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Self {
        self.degradation = policy;
        self
    }

    /// Selects the LP backend (see [`lp_backend`](Self::lp_backend)).
    pub fn with_lp_backend(mut self, backend: LpBackendKind) -> Self {
        self.lp_backend = backend;
        self
    }

    /// Sets the MILP solver thread count (see
    /// [`solver_threads`](Self::solver_threads); minimum 1).
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = threads.max(1);
        self
    }

    /// Selects the simplex pricing rule (see [`pricing`](Self::pricing)).
    pub fn with_pricing(mut self, pricing: PricingKind) -> Self {
        self.pricing = pricing;
        self
    }

    /// Selects the basis factorization (see
    /// [`factorization`](Self::factorization)).
    pub fn with_factorization(mut self, factorization: FactorizationKind) -> Self {
        self.factorization = factorization;
        self
    }

    /// Reserves spare resources for single-fault survivability (see
    /// [`spares`](Self::spares)).
    pub fn with_spares(mut self, spares: SpareConfig) -> Self {
        self.spares = spares;
        self
    }
}

/// The XRing synthesizer.
///
/// # Example
///
/// ```
/// use xring_core::{NetworkSpec, Synthesizer, SynthesisOptions};
///
/// let net = NetworkSpec::proton_8();
/// let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
///     .synthesize(&net)?;
/// assert_eq!(design.layout.signals.len(), 56);
/// # Ok::<(), xring_core::SynthesisError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Synthesizer {
    options: SynthesisOptions,
}

impl Synthesizer {
    /// Creates a synthesizer with the given options.
    pub fn new(options: SynthesisOptions) -> Self {
        Synthesizer { options }
    }

    /// The configured options.
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// Runs the full pipeline on `net`.
    ///
    /// Under the default [`DegradationPolicy::Forbid`] a failure in any
    /// step surfaces directly. Under [`DegradationPolicy::Allow`] a
    /// recoverable failure walks the fallback chain
    /// `ExactMilp → RetryWithPerturbation → HeuristicRing → Err`; the
    /// level reached is recorded in the design's
    /// [`Provenance`]. Every returned design
    /// — exact or degraded — has passed the post-synthesis audit
    /// ([`crate::audit`]); a design the auditor rejects is never
    /// returned.
    ///
    /// # Errors
    ///
    /// Propagates [`SynthesisError`] from any step (MILP failure,
    /// wavelength budget exhaustion, audit rejection) once the policy's
    /// chain is exhausted.
    pub fn synthesize(&self, net: &NetworkSpec) -> Result<XRingDesign, SynthesisError> {
        match self.options.degradation {
            DegradationPolicy::Forbid => self.synthesize_attempt(net, &Attempt::requested(self)),
            DegradationPolicy::ForceHeuristic => self.synthesize_attempt(
                net,
                &Attempt {
                    algorithm: RingAlgorithm::Heuristic,
                    perturbation: None,
                    lp_backend: self.options.lp_backend,
                    waive_deadline: false,
                    level: DegradationLevel::Heuristic,
                    reason: Some("forced by degradation policy".to_owned()),
                },
            ),
            DegradationPolicy::Allow => {
                let err = match self.synthesize_attempt(net, &Attempt::requested(self)) {
                    Ok(design) => return Ok(design),
                    Err(e) => e,
                };
                if !degradable(&err) {
                    return Err(err);
                }
                // Retry the MILP with a perturbed objective — unless the
                // deadline is already spent (a retry would just expire
                // again) or the request never used the MILP.
                if !matches!(err, SynthesisError::DeadlineExceeded)
                    && self.options.ring_algorithm == RingAlgorithm::Milp
                {
                    xring_obs::counter("degradation.retries", 1);
                    // The retry switches both the search path (perturbed
                    // objective) and the LP kernel (dense reference
                    // backend): a numerical failure is never replayed on
                    // the kernel that produced it.
                    let retry = Attempt {
                        algorithm: RingAlgorithm::Milp,
                        perturbation: Some(RETRY_PERTURBATION_SEED),
                        lp_backend: LpBackendKind::Dense,
                        waive_deadline: false,
                        level: DegradationLevel::RetriedPerturbed,
                        reason: Some(err.to_string()),
                    };
                    if let Ok(design) = self.synthesize_attempt(net, &retry) {
                        return Ok(design);
                    }
                }
                // Last resort: heuristic ring, deadline waived (the
                // budget is spent; the heuristic is fast and bounded).
                xring_obs::counter("degradation.heuristic_fallbacks", 1);
                self.synthesize_attempt(
                    net,
                    &Attempt {
                        algorithm: RingAlgorithm::Heuristic,
                        perturbation: None,
                        lp_backend: self.options.lp_backend,
                        waive_deadline: true,
                        level: DegradationLevel::Heuristic,
                        reason: Some(err.to_string()),
                    },
                )
            }
        }
    }

    /// Runs the four pipeline steps once under `attempt`'s overrides,
    /// audits the result, and stamps its provenance. A design that fails
    /// its audit is discarded and reported as
    /// [`SynthesisError::AuditFailed`].
    fn synthesize_attempt(
        &self,
        net: &NetworkSpec,
        attempt: &Attempt,
    ) -> Result<XRingDesign, SynthesisError> {
        let _span = xring_obs::span_labelled("synth", attempt.level.as_str());
        let t0 = Instant::now();
        let o = &self.options;
        let deadline = if attempt.waive_deadline {
            None
        } else {
            o.deadline.map(|budget| t0 + budget)
        };
        let check_deadline = || match deadline {
            Some(d) if Instant::now() >= d => Err(SynthesisError::DeadlineExceeded),
            _ => Ok(()),
        };

        // Step 1: ring construction.
        check_deadline()?;
        let ring = {
            let _s = xring_obs::span("ring-milp");
            RingBuilder::new()
                .with_algorithm(attempt.algorithm)
                .with_deadline(deadline)
                .with_objective_perturbation(attempt.perturbation)
                .with_lp_backend(attempt.lp_backend)
                .with_solver_threads(o.solver_threads)
                .with_pricing(o.pricing)
                .with_factorization(o.factorization)
                .build(net)?
        };

        // Step 2: shortcuts.
        check_deadline()?;
        let shortcuts = if o.shortcuts {
            let _s = xring_obs::span("shortcut");
            plan_shortcuts(net, &ring.cycle)
        } else {
            ShortcutPlan::empty()
        };

        // Step 3: mapping + openings. Spare wavelengths are reserved by
        // mapping into a reduced budget: the top `k_wavelengths` channels
        // stay dark until a fault repair claims them.
        check_deadline()?;
        let effective_wavelengths = o.max_wavelengths.saturating_sub(o.spares.k_wavelengths);
        if o.spares.k_wavelengths > 0 && effective_wavelengths == 0 {
            return Err(SynthesisError::WavelengthBudgetExceeded {
                max_wavelengths: o.max_wavelengths,
                max_waveguides: o.max_waveguides,
            });
        }
        let mut plan = {
            let _s = xring_obs::span("mapping");
            crate::mapping::map_signals_with_traffic(
                net,
                &ring.cycle,
                &shortcuts,
                &o.traffic,
                effective_wavelengths,
                o.max_waveguides,
            )?
        };
        let opening_stats = if o.openings {
            let _s = xring_obs::span("opening");
            open_rings(&ring.cycle, &mut plan, effective_wavelengths)
        } else {
            Default::default()
        };

        // Step 4: PDN.
        check_deadline()?;
        let pdn = o.pdn.then(|| {
            let _s = xring_obs::span("pdn");
            design_pdn(net, &ring.cycle, &plan, &shortcuts, &o.loss, o.laser)
        });

        let layout = {
            let _s = xring_obs::span("realize");
            realize(net, &ring.cycle, &shortcuts, &plan, pdn.as_ref(), o.spacing)
        };
        let mut design = XRingDesign {
            net: net.clone(),
            cycle: ring.cycle,
            shortcuts,
            plan,
            pdn,
            layout,
            ring_stats: ring.stats,
            opening_stats,
            elapsed: t0.elapsed(),
            provenance: Provenance::default(),
        };

        xring_obs::record_hist("synth.wall_us", t0.elapsed().as_micros() as u64);

        // Audit before release: a dirty design is never returned.
        let audit = crate::audit::audit_design(&design, &o.traffic, &o.loss);
        if !audit.is_clean() {
            return Err(SynthesisError::AuditFailed {
                summary: audit.summary(),
            });
        }
        // With spares provisioned, prove the design survives every
        // single device fault the spare config protects against before
        // releasing it.
        if o.spares.any() {
            let _s = xring_obs::span("survivability-verify");
            let protected = crate::fault::protected_single_faults(&design, o.spares);
            let surv = crate::fault::verify_faults(&design, &protected, o, None);
            if !surv.fully_survivable() {
                return Err(SynthesisError::SurvivabilityFailed {
                    survived: surv.survived,
                    scenarios: surv.scenarios,
                    scenario: surv
                        .worst
                        .unwrap_or_else(|| "unidentified scenario".to_owned()),
                });
            }
        }
        design.provenance = Provenance {
            degradation: attempt.level,
            fallback_reason: attempt.reason.clone(),
            audit,
        };
        Ok(design)
    }
}

/// One run of the pipeline within the fallback chain.
struct Attempt {
    algorithm: RingAlgorithm,
    perturbation: Option<u64>,
    lp_backend: LpBackendKind,
    waive_deadline: bool,
    level: DegradationLevel,
    reason: Option<String>,
}

impl Attempt {
    /// The as-requested attempt (no overrides).
    fn requested(synth: &Synthesizer) -> Attempt {
        Attempt {
            algorithm: synth.options.ring_algorithm,
            perturbation: None,
            lp_backend: synth.options.lp_backend,
            waive_deadline: false,
            level: DegradationLevel::Exact,
            reason: None,
        }
    }
}

/// True when the fallback chain can recover from `e`: solver failures,
/// deadline expiry, construction breakdown and audit rejection are
/// recoverable; spec-level errors (too few nodes, duplicate positions,
/// wavelength budget exhaustion) are not — a different ring cannot fix
/// them honestly.
pub(crate) fn degradable(e: &SynthesisError) -> bool {
    matches!(
        e,
        SynthesisError::RingMilp(_)
            | SynthesisError::DeadlineExceeded
            | SynthesisError::RingConstruction { .. }
            | SynthesisError::AuditFailed { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xring_phot::{CrosstalkParams, PowerParams};

    #[test]
    fn full_pipeline_8_nodes() {
        let net = NetworkSpec::proton_8();
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&net)
            .expect("synthesized");
        let report = design.report(
            "XRing",
            &LossParams::default(),
            Some(&CrosstalkParams::default()),
            &PowerParams::default(),
        );
        assert_eq!(report.signal_count, 56);
        assert!(report.worst_il_db > 0.0);
        assert!(report.total_power_w.expect("pdn modelled") > 0.0);
    }

    #[test]
    fn no_pdn_mode_omits_power() {
        let net = NetworkSpec::proton_8();
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8).without_pdn())
            .synthesize(&net)
            .expect("synthesized");
        let report = design.report(
            "XRing",
            &LossParams::default(),
            None,
            &PowerParams::default(),
        );
        assert_eq!(report.total_power_w, None);
    }

    #[test]
    fn shortcut_ablation_increases_worst_il_on_16_nodes() {
        // "Shortcuts do not hurt worst IL" is a property of the
        // particular minimum-length tour the MILP returns, and psion_16
        // has several (the backends tie-break differently among equal
        // 32000-µm optima). Pin the dense reference backend so the
        // ablation compares the tour this test has always measured;
        // cross-backend objective equality is covered by the
        // lp_backend differential suite.
        let net = NetworkSpec::psion_16();
        let base = SynthesisOptions::with_wavelengths(14).with_lp_backend(LpBackendKind::Dense);
        let with = Synthesizer::new(base.clone())
            .synthesize(&net)
            .expect("with shortcuts");
        let without = Synthesizer::new(SynthesisOptions {
            shortcuts: false,
            ..base
        })
        .synthesize(&net)
        .expect("without shortcuts");
        let loss = LossParams::default();
        let p = PowerParams::default();
        let r_with = with.report("with", &loss, None, &p);
        let r_without = without.report("without", &loss, None, &p);
        assert!(
            r_with.worst_il_db <= r_without.worst_il_db + 1e-9,
            "shortcuts should not hurt: {} vs {}",
            r_with.worst_il_db,
            r_without.worst_il_db
        );
    }

    #[test]
    fn expired_deadline_aborts_synthesis() {
        let net = NetworkSpec::proton_8();
        let options = SynthesisOptions::with_wavelengths(8).with_deadline(Duration::ZERO);
        match Synthesizer::new(options).synthesize(&net) {
            Err(SynthesisError::DeadlineExceeded) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
    }

    #[test]
    fn exact_synthesis_records_clean_exact_provenance() {
        let net = NetworkSpec::proton_8();
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&net)
            .expect("synthesized");
        let p = &design.provenance;
        assert_eq!(p.degradation, crate::design::DegradationLevel::Exact);
        assert_eq!(p.fallback_reason, None);
        assert!(p.audit.is_clean(), "{}", p.audit.summary());
    }

    #[test]
    fn tiny_deadline_with_allow_policy_falls_back_to_heuristic() {
        // Satellite requirement: DeadlineExceeded triggers the heuristic
        // fallback and yields an audited, provenance-marked design.
        let net = NetworkSpec::proton_8();
        let options = SynthesisOptions::with_wavelengths(8)
            .with_deadline(Duration::ZERO)
            .with_degradation(DegradationPolicy::Allow);
        let design = Synthesizer::new(options)
            .synthesize(&net)
            .expect("fallback must produce a design");
        let p = &design.provenance;
        assert_eq!(p.degradation, crate::design::DegradationLevel::Heuristic);
        assert!(
            p.fallback_reason
                .as_deref()
                .unwrap_or("")
                .contains("deadline"),
            "{:?}",
            p.fallback_reason
        );
        assert!(p.audit.is_clean(), "{}", p.audit.summary());
        assert_eq!(design.layout.signals.len(), 56);
    }

    #[test]
    fn force_heuristic_policy_always_marks_heuristic_provenance() {
        let net = NetworkSpec::proton_8();
        let options = SynthesisOptions::with_wavelengths(8)
            .with_degradation(DegradationPolicy::ForceHeuristic);
        let design = Synthesizer::new(options).synthesize(&net).expect("ok");
        let p = &design.provenance;
        assert_eq!(p.degradation, crate::design::DegradationLevel::Heuristic);
        assert!(p.audit.is_clean());
        // Forcing the heuristic must match a direct heuristic-ring run.
        let direct = Synthesizer::new(SynthesisOptions {
            ring_algorithm: RingAlgorithm::Heuristic,
            ..SynthesisOptions::with_wavelengths(8)
        })
        .synthesize(&net)
        .expect("ok");
        assert_eq!(design.cycle, direct.cycle);
    }

    #[test]
    fn allow_policy_does_not_change_successful_exact_synthesis() {
        let net = NetworkSpec::proton_8();
        let exact = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&net)
            .expect("ok");
        let allowed = Synthesizer::new(
            SynthesisOptions::with_wavelengths(8).with_degradation(DegradationPolicy::Allow),
        )
        .synthesize(&net)
        .expect("ok");
        assert_eq!(exact.cycle, allowed.cycle);
        assert_eq!(exact.plan, allowed.plan);
        assert_eq!(
            allowed.provenance.degradation,
            crate::design::DegradationLevel::Exact
        );
    }

    #[test]
    fn non_degradable_errors_surface_even_under_allow() {
        // Wavelength budget exhaustion is a spec-level error the chain
        // must not mask with a heuristic ring.
        let net = NetworkSpec::psion_16();
        let options = SynthesisOptions {
            max_wavelengths: 1,
            max_waveguides: 1,
            ..SynthesisOptions::default()
        }
        .with_degradation(DegradationPolicy::Allow);
        match Synthesizer::new(options).synthesize(&net) {
            Err(SynthesisError::WavelengthBudgetExceeded { .. }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn degradation_policy_round_trips_through_strings() {
        for policy in [
            DegradationPolicy::Forbid,
            DegradationPolicy::Allow,
            DegradationPolicy::ForceHeuristic,
        ] {
            assert_eq!(policy.as_str().parse::<DegradationPolicy>(), Ok(policy));
        }
        assert!("exact".parse::<DegradationPolicy>().is_err());
    }

    #[test]
    fn lp_backend_defaults_to_revised_and_round_trips() {
        assert_eq!(
            SynthesisOptions::default().lp_backend,
            LpBackendKind::Revised
        );
        for kind in [LpBackendKind::Dense, LpBackendKind::Revised] {
            assert_eq!(kind.as_str().parse::<LpBackendKind>(), Ok(kind));
        }
        assert!("tableau".parse::<LpBackendKind>().is_err());
    }

    #[test]
    fn lp_backends_synthesize_identical_designs() {
        // The backend is an implementation detail of the relaxation
        // solver: both must produce the same ring and mapping.
        let net = NetworkSpec::proton_8();
        let revised = Synthesizer::new(
            SynthesisOptions::with_wavelengths(8).with_lp_backend(LpBackendKind::Revised),
        )
        .synthesize(&net)
        .expect("ok");
        let dense = Synthesizer::new(
            SynthesisOptions::with_wavelengths(8).with_lp_backend(LpBackendKind::Dense),
        )
        .synthesize(&net)
        .expect("ok");
        assert_eq!(revised.cycle, dense.cycle);
        assert_eq!(revised.plan, dense.plan);
    }

    #[test]
    fn generous_deadline_matches_unbounded_result() {
        let net = NetworkSpec::proton_8();
        let bounded = Synthesizer::new(
            SynthesisOptions::with_wavelengths(8).with_deadline(Duration::from_secs(3_600)),
        )
        .synthesize(&net)
        .expect("completes within budget");
        let unbounded = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&net)
            .expect("completes");
        assert_eq!(bounded.cycle, unbounded.cycle);
        assert_eq!(bounded.plan, unbounded.plan);
    }

    #[test]
    fn openings_reduce_noisy_signals() {
        let net = NetworkSpec::psion_16();
        let base = SynthesisOptions::with_wavelengths(14);
        let with = Synthesizer::new(base.clone()).synthesize(&net).expect("ok");
        let without = Synthesizer::new(SynthesisOptions {
            openings: false,
            ..base
        })
        .synthesize(&net)
        .expect("ok");
        let loss = LossParams::default();
        let xt = CrosstalkParams::default();
        let p = PowerParams::default();
        let r_with = with.report("with", &loss, Some(&xt), &p);
        let r_without = without.report("without", &loss, Some(&xt), &p);
        assert!(
            r_with.noisy_signal_count.expect("evaluated")
                <= r_without.noisy_signal_count.expect("evaluated")
        );
    }
}
