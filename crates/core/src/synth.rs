//! The end-to-end synthesis pipeline.

use crate::design::{realize, RingSpacing, XRingDesign};
use crate::error::SynthesisError;
use crate::netspec::NetworkSpec;
use crate::opening::open_rings;
use crate::pdn::design_pdn;
use crate::ring::{RingAlgorithm, RingBuilder};
use crate::shortcut::{plan_shortcuts, ShortcutPlan};
use crate::traffic::Traffic;
use std::time::{Duration, Instant};
use xring_geom::Point;
use xring_phot::LossParams;

/// Configuration of the synthesis pipeline. The defaults reproduce the
/// full XRing flow; individual steps can be disabled for ablations.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Step-1 algorithm.
    pub ring_algorithm: RingAlgorithm,
    /// `#wl`: maximum wavelengths per ring waveguide.
    pub max_wavelengths: usize,
    /// Maximum ring waveguides (0 = unlimited).
    pub max_waveguides: usize,
    /// Enable Step 2 (shortcut construction).
    pub shortcuts: bool,
    /// Enable ring openings (second half of Step 3).
    pub openings: bool,
    /// Enable Step 4 (PDN synthesis); when false, reports omit laser
    /// power, matching Table I's no-PDN comparison.
    pub pdn: bool,
    /// Ring-pair spacing constants.
    pub spacing: RingSpacing,
    /// On-die coupling point of the off-chip laser.
    pub laser: Point,
    /// Which node pairs communicate (default: the paper's all-to-all).
    pub traffic: Traffic,
    /// Loss parameters (used during PDN design; evaluation may use the
    /// same or another set).
    pub loss: LossParams,
    /// Wall-clock budget for the whole pipeline (`None` = unbounded).
    /// Checked cooperatively between steps and, most importantly, once
    /// per node inside the ring-construction branch-and-bound; expiry
    /// aborts with [`SynthesisError::DeadlineExceeded`]. The budget does
    /// not change the result of a synthesis that completes within it.
    pub deadline: Option<Duration>,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            ring_algorithm: RingAlgorithm::Milp,
            max_wavelengths: 16,
            max_waveguides: 0,
            shortcuts: true,
            openings: true,
            pdn: true,
            spacing: RingSpacing::default(),
            laser: Point::new(-1_000, -1_000),
            traffic: Traffic::AllToAll,
            loss: LossParams::default(),
            deadline: None,
        }
    }
}

impl SynthesisOptions {
    /// The full XRing pipeline with `#wl = max_wavelengths`.
    pub fn with_wavelengths(max_wavelengths: usize) -> Self {
        SynthesisOptions {
            max_wavelengths,
            ..Self::default()
        }
    }

    /// Table-I style options: no PDN (and hence no power column).
    pub fn without_pdn(mut self) -> Self {
        self.pdn = false;
        self
    }

    /// Caps the pipeline's wall-clock time (see
    /// [`deadline`](Self::deadline)).
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }
}

/// The XRing synthesizer.
///
/// # Example
///
/// ```
/// use xring_core::{NetworkSpec, Synthesizer, SynthesisOptions};
///
/// let net = NetworkSpec::proton_8();
/// let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
///     .synthesize(&net)?;
/// assert_eq!(design.layout.signals.len(), 56);
/// # Ok::<(), xring_core::SynthesisError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Synthesizer {
    options: SynthesisOptions,
}

impl Synthesizer {
    /// Creates a synthesizer with the given options.
    pub fn new(options: SynthesisOptions) -> Self {
        Synthesizer { options }
    }

    /// The configured options.
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// Runs the full pipeline on `net`.
    ///
    /// # Errors
    ///
    /// Propagates [`SynthesisError`] from any step (MILP failure,
    /// wavelength budget exhaustion).
    pub fn synthesize(&self, net: &NetworkSpec) -> Result<XRingDesign, SynthesisError> {
        let t0 = Instant::now();
        let o = &self.options;
        let deadline = o.deadline.map(|budget| t0 + budget);
        let check_deadline = || match deadline {
            Some(d) if Instant::now() >= d => Err(SynthesisError::DeadlineExceeded),
            _ => Ok(()),
        };

        // Step 1: ring construction.
        check_deadline()?;
        let ring = RingBuilder::new()
            .with_algorithm(o.ring_algorithm)
            .with_deadline(deadline)
            .build(net)?;

        // Step 2: shortcuts.
        check_deadline()?;
        let shortcuts = if o.shortcuts {
            plan_shortcuts(net, &ring.cycle)
        } else {
            ShortcutPlan::empty()
        };

        // Step 3: mapping + openings.
        check_deadline()?;
        let mut plan = crate::mapping::map_signals_with_traffic(
            net,
            &ring.cycle,
            &shortcuts,
            &o.traffic,
            o.max_wavelengths,
            o.max_waveguides,
        )?;
        let opening_stats = if o.openings {
            open_rings(&ring.cycle, &mut plan, o.max_wavelengths)
        } else {
            Default::default()
        };

        // Step 4: PDN.
        check_deadline()?;
        let pdn = o
            .pdn
            .then(|| design_pdn(net, &ring.cycle, &plan, &shortcuts, &o.loss, o.laser));

        let layout = realize(net, &ring.cycle, &shortcuts, &plan, pdn.as_ref(), o.spacing);
        Ok(XRingDesign {
            net: net.clone(),
            cycle: ring.cycle,
            shortcuts,
            plan,
            pdn,
            layout,
            ring_stats: ring.stats,
            opening_stats,
            elapsed: t0.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xring_phot::{CrosstalkParams, PowerParams};

    #[test]
    fn full_pipeline_8_nodes() {
        let net = NetworkSpec::proton_8();
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&net)
            .expect("synthesized");
        let report = design.report(
            "XRing",
            &LossParams::default(),
            Some(&CrosstalkParams::default()),
            &PowerParams::default(),
        );
        assert_eq!(report.signal_count, 56);
        assert!(report.worst_il_db > 0.0);
        assert!(report.total_power_w.expect("pdn modelled") > 0.0);
    }

    #[test]
    fn no_pdn_mode_omits_power() {
        let net = NetworkSpec::proton_8();
        let design = Synthesizer::new(SynthesisOptions::with_wavelengths(8).without_pdn())
            .synthesize(&net)
            .expect("synthesized");
        let report = design.report(
            "XRing",
            &LossParams::default(),
            None,
            &PowerParams::default(),
        );
        assert_eq!(report.total_power_w, None);
    }

    #[test]
    fn shortcut_ablation_increases_worst_il_on_16_nodes() {
        let net = NetworkSpec::psion_16();
        let base = SynthesisOptions::with_wavelengths(14);
        let with = Synthesizer::new(base.clone())
            .synthesize(&net)
            .expect("with shortcuts");
        let without = Synthesizer::new(SynthesisOptions {
            shortcuts: false,
            ..base
        })
        .synthesize(&net)
        .expect("without shortcuts");
        let loss = LossParams::default();
        let p = PowerParams::default();
        let r_with = with.report("with", &loss, None, &p);
        let r_without = without.report("without", &loss, None, &p);
        assert!(
            r_with.worst_il_db <= r_without.worst_il_db + 1e-9,
            "shortcuts should not hurt: {} vs {}",
            r_with.worst_il_db,
            r_without.worst_il_db
        );
    }

    #[test]
    fn expired_deadline_aborts_synthesis() {
        let net = NetworkSpec::proton_8();
        let options = SynthesisOptions::with_wavelengths(8).with_deadline(Duration::ZERO);
        match Synthesizer::new(options).synthesize(&net) {
            Err(SynthesisError::DeadlineExceeded) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_matches_unbounded_result() {
        let net = NetworkSpec::proton_8();
        let bounded = Synthesizer::new(
            SynthesisOptions::with_wavelengths(8).with_deadline(Duration::from_secs(3_600)),
        )
        .synthesize(&net)
        .expect("completes within budget");
        let unbounded = Synthesizer::new(SynthesisOptions::with_wavelengths(8))
            .synthesize(&net)
            .expect("completes");
        assert_eq!(bounded.cycle, unbounded.cycle);
        assert_eq!(bounded.plan, unbounded.plan);
    }

    #[test]
    fn openings_reduce_noisy_signals() {
        let net = NetworkSpec::psion_16();
        let base = SynthesisOptions::with_wavelengths(14);
        let with = Synthesizer::new(base.clone()).synthesize(&net).expect("ok");
        let without = Synthesizer::new(SynthesisOptions {
            openings: false,
            ..base
        })
        .synthesize(&net)
        .expect("ok");
        let loss = LossParams::default();
        let xt = CrosstalkParams::default();
        let p = PowerParams::default();
        let r_with = with.report("with", &loss, Some(&xt), &p);
        let r_without = without.report("without", &loss, Some(&xt), &p);
        assert!(
            r_with.noisy_signal_count.expect("evaluated")
                <= r_without.noisy_signal_count.expect("evaluated")
        );
    }
}
