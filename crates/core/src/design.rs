//! Realization: lowering a mapped plan to a [`LayoutModel`] and packaging
//! the final [`XRingDesign`].

use crate::audit::AuditReport;
use crate::layout::{Hop, LayoutModel, NoiseSource, Station, StationIdx, Waveguide};
use crate::mapping::{MappingPlan, RouteKind};
use crate::netspec::NetworkSpec;
use crate::opening::OpeningStats;
use crate::pdn::{PdnDesign, SHORTCUT_GROUP};
use crate::ring::{Direction, RingCycle, RingStats};
use crate::shortcut::ShortcutPlan;
use std::collections::HashMap;
use std::time::Duration;
use xring_phot::{CrosstalkParams, LossParams, PowerParams, RouterReport, SignalId, Wavelength};

/// Geometry constants for concentric ring spacing (Sec. III-D): the
/// spacing between paired ring waveguides is `A₁ + ⌈log₂N⌉·A₂` where `A₁`
/// is the modulator width and `A₂` the splitter width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingSpacing {
    /// Modulator width `A₁` in µm.
    pub a1_um: i64,
    /// Splitter width `A₂` in µm.
    pub a2_um: i64,
}

impl Default for RingSpacing {
    fn default() -> Self {
        RingSpacing {
            a1_um: 50,
            a2_um: 20,
        }
    }
}

impl RingSpacing {
    /// The pair spacing for an `n`-node network, µm.
    pub fn spacing_um(&self, n: usize) -> i64 {
        let log = (usize::BITS - (n.max(2) - 1).leading_zeros()) as i64; // ceil(log2 n)
        self.a1_um + log * self.a2_um
    }
}

/// How far synthesis had to degrade from the exact, as-requested flow to
/// produce a design (Sec. III pipeline with the fallback chain
/// `ExactMilp → RetryWithPerturbation → HeuristicRing → Err`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationLevel {
    /// The as-requested synthesis succeeded on the first attempt.
    #[default]
    Exact,
    /// The exact attempt failed, but a MILP retry with a deterministically
    /// perturbed objective succeeded. The result is still an optimal ring
    /// up to the ≤ 1e-6 relative objective tilt.
    RetriedPerturbed,
    /// Exact synthesis (and any retry) failed; the ring was built by the
    /// nearest-neighbour + 2-opt heuristic instead of the MILP.
    Heuristic,
}

impl DegradationLevel {
    /// Stable lowercase name (used in metrics and event streams).
    pub fn as_str(&self) -> &'static str {
        match self {
            DegradationLevel::Exact => "exact",
            DegradationLevel::RetriedPerturbed => "retried",
            DegradationLevel::Heuristic => "heuristic",
        }
    }
}

/// How a design came to be: its degradation level, the failure that
/// forced any degradation, and the audit verdicts it was released with.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Provenance {
    /// How far synthesis degraded to produce this design.
    pub degradation: DegradationLevel,
    /// The error that triggered degradation (`None` at
    /// [`DegradationLevel::Exact`]).
    pub fallback_reason: Option<String>,
    /// The post-synthesis audit this design was released with. Always
    /// audited and clean for designs returned by
    /// [`Synthesizer::synthesize`](crate::Synthesizer::synthesize).
    pub audit: AuditReport,
}

/// A fully synthesized XRing router.
#[derive(Debug, Clone)]
pub struct XRingDesign {
    /// The input network.
    pub net: NetworkSpec,
    /// The Step-1 ring.
    pub cycle: RingCycle,
    /// The Step-2 shortcut plan.
    pub shortcuts: ShortcutPlan,
    /// The Step-3 mapping (with openings applied).
    pub plan: MappingPlan,
    /// The Step-4 PDN, when synthesized.
    pub pdn: Option<PdnDesign>,
    /// The realized layout, ready for evaluation.
    pub layout: LayoutModel,
    /// Ring-construction statistics.
    pub ring_stats: RingStats,
    /// Opening statistics.
    pub opening_stats: OpeningStats,
    /// Wall-clock synthesis time.
    pub elapsed: Duration,
    /// How the design was produced (degradation level + audit verdicts).
    pub provenance: Provenance,
}

impl XRingDesign {
    /// Evaluates the design into a table row.
    pub fn report(
        &self,
        label: impl Into<String>,
        loss: &LossParams,
        xtalk: Option<&CrosstalkParams>,
        power: &PowerParams,
    ) -> RouterReport {
        let _span = xring_obs::span("evaluation");
        self.layout
            .evaluate(label, loss, xtalk, power, self.elapsed)
    }
}

/// Lowers the plan to stations and hops.
pub fn realize(
    _net: &NetworkSpec,
    cycle: &RingCycle,
    shortcuts: &ShortcutPlan,
    plan: &MappingPlan,
    pdn: Option<&PdnDesign>,
    spacing: RingSpacing,
) -> LayoutModel {
    let mut layout = LayoutModel::new();
    let n = cycle.len();
    let perimeter = cycle.perimeter().max(1);
    let pair_spacing = spacing.spacing_um(n);

    // Per-waveguide station index of each node's tap and sender.
    let mut tap_idx: Vec<HashMap<u32, StationIdx>> = Vec::new();
    let mut sender_idx: Vec<HashMap<u32, StationIdx>> = Vec::new();

    // --- Ring waveguides. ---
    for (wi, wg) in plan.ring_waveguides.iter().enumerate() {
        let mut stations: Vec<Station> = Vec::with_capacity(3 * n + 2);
        let mut taps = HashMap::new();
        let mut senders = HashMap::new();

        // Receiver drops per position on this waveguide.
        let mut drops_at: Vec<Vec<(Wavelength, SignalId)>> = vec![Vec::new(); n];
        for (li, lane) in wg.lanes.iter().enumerate() {
            for arc in &lane.arcs {
                drops_at[arc.to_pos]
                    .push((Wavelength::new(li as u16), SignalId(arc.signal as u32)));
            }
        }

        // Travel sequence of cycle positions.
        let seq: Vec<usize> = match wg.direction {
            Direction::Cw => (0..n).collect(),
            Direction::Ccw => (0..n).map(|k| (n - k) % n).collect(),
        };
        // Concentric offset: outer rings are longer; distribute the extra
        // perimeter proportionally over edges.
        let extra_perimeter = 8 * pair_spacing * wi as i64;

        for (k, &pos) in seq.iter().enumerate() {
            let node = cycle.order()[pos];
            taps.insert(node.0, stations.len());
            stations.push(Station::NodeTap {
                node,
                drops: std::mem::take(&mut drops_at[pos]),
            });
            if wg.opening == Some(pos) {
                stations.push(Station::Opening);
            }
            senders.insert(node.0, stations.len());
            stations.push(Station::SenderTap { node });
            // Segment to the next node in travel order.
            let next_pos = seq[(k + 1) % n];
            let edge = match wg.direction {
                Direction::Cw => pos,
                Direction::Ccw => next_pos,
            };
            let base = cycle.edge_length(edge);
            let scaled = base + base * extra_perimeter / perimeter;
            stations.push(Station::Segment {
                length_um: scaled,
                bends: cycle.bends_on_edge(edge) as u32,
            });
        }

        layout.waveguides.push(Waveguide {
            closed: true,
            stations,
        });
        tap_idx.push(taps);
        sender_idx.push(senders);
        let _ = wi;
    }

    // Unopened ring waveguides with a PDN: the PDN crosses them once; the
    // crossing injects laser light of every wavelength the waveguide
    // carries (approximation documented in DESIGN.md).
    if let Some(p) = pdn {
        for &wi in &p.crossed_waveguides {
            let wavelengths: Vec<Wavelength> = (0..plan.ring_waveguides[wi].lanes.len())
                .map(|li| Wavelength::new(li as u16))
                .collect();
            let min_sender_loss = p
                .sender_loss_db
                .iter()
                .filter(|((g, _), _)| *g == wi)
                .map(|(_, l)| *l)
                .fold(f64::INFINITY, f64::min);
            let at_crossing_db = if min_sender_loss.is_finite() {
                -(min_sender_loss - 3.0).max(0.0)
            } else {
                0.0
            };
            let injected = wavelengths
                .into_iter()
                .map(|wavelength| NoiseSource {
                    wavelength,
                    power_rel_db: at_crossing_db - 40.0,
                })
                .collect();
            layout.waveguides[wi].stations.push(Station::Crossing {
                injected,
                peer: None,
                through_mrrs: 0,
            });
        }
    }

    // --- Shortcut wires: two per corridor (forward a→b, reverse b→a). ---
    // wire index maps: (shortcut, forward?) -> (waveguide idx, crossing station idx option)
    let mut wire_of: HashMap<(usize, bool), usize> = HashMap::new();
    let mut wire_crossing: HashMap<(usize, bool), StationIdx> = HashMap::new();

    for (si, s) in shortcuts.shortcuts.iter().enumerate() {
        for forward in [true, false] {
            let (from_node, to_node) = if forward { (s.a, s.b) } else { (s.b, s.a) };
            let total = s.length_um;
            let mut stations: Vec<Station> = Vec::new();
            stations.push(Station::SenderTap { node: from_node });
            let bends = s.route.bend_count() as u32;
            match s.crossing_at_um {
                Some(at) => {
                    let d1 = if forward { at } else { total - at };
                    let d2 = total - d1;
                    // Attach the corridor's bend to the longer stretch
                    // (the exact corner position does not change loss).
                    let (b1, b2) = if d1 >= d2 { (bends, 0) } else { (0, bends) };
                    stations.push(Station::Segment {
                        length_um: d1,
                        bends: b1,
                    });
                    wire_crossing.insert((si, forward), stations.len());
                    stations.push(Station::Crossing {
                        injected: Vec::new(),
                        peer: None, // patched below
                        through_mrrs: 2,
                    });
                    stations.push(Station::Segment {
                        length_um: d2,
                        bends: b2,
                    });
                }
                None => {
                    stations.push(Station::Segment {
                        length_um: total,
                        bends,
                    });
                }
            }
            stations.push(Station::NodeTap {
                node: to_node,
                drops: Vec::new(), // filled below
            });
            wire_of.insert((si, forward), layout.waveguides.len());
            layout.waveguides.push(Waveguide {
                closed: false,
                stations,
            });
        }
    }
    // Patch crossing peers: forward↔forward and reverse↔reverse of
    // partner corridors.
    for (si, s) in shortcuts.shortcuts.iter().enumerate() {
        if let Some(pi) = s.crossing_partner {
            if pi < si {
                continue; // handled from the lower index
            }
            for forward in [true, false] {
                let wa = wire_of[&(si, forward)];
                let wb = wire_of[&(pi, forward)];
                let sa = wire_crossing[&(si, forward)];
                let sb = wire_crossing[&(pi, forward)];
                if let Station::Crossing { peer, .. } = &mut layout.waveguides[wa].stations[sa] {
                    *peer = Some((wb, sb));
                }
                if let Station::Crossing { peer, .. } = &mut layout.waveguides[wb].stations[sb] {
                    *peer = Some((wa, sa));
                }
            }
        }
    }

    // --- Signals. ---
    for (gsi, route) in plan.routes.iter().enumerate() {
        let pdn_loss_db = match (pdn, route.kind) {
            (None, _) => 0.0,
            (Some(p), RouteKind::Ring { waveguide }) => p.loss_for(waveguide, route.from),
            (Some(p), _) => p.loss_for(SHORTCUT_GROUP, route.from),
        };
        let hops = match route.kind {
            RouteKind::Ring { waveguide } => {
                vec![Hop {
                    waveguide,
                    from_station: sender_idx[waveguide][&route.from.0],
                    to_station: tap_idx[waveguide][&route.to.0],
                }]
            }
            RouteKind::ShortcutDirect { shortcut } => {
                let forward = shortcuts.shortcuts[shortcut].a == route.from;
                let w = wire_of[&(shortcut, forward)];
                let last = layout.waveguides[w].stations.len() - 1;
                vec![Hop {
                    waveguide: w,
                    from_station: 0,
                    to_station: last,
                }]
            }
            RouteKind::ShortcutCse { enter, exit } => {
                let fwd1 = shortcuts.shortcuts[enter].a == route.from;
                let fwd2 = shortcuts.shortcuts[exit].b == route.to;
                debug_assert_eq!(fwd1, fwd2, "CSE service must stay on same-parity wires");
                let w1 = wire_of[&(enter, fwd1)];
                let w2 = wire_of[&(exit, fwd2)];
                let c1 = wire_crossing[&(enter, fwd1)];
                let c2 = wire_crossing[&(exit, fwd2)];
                let last = layout.waveguides[w2].stations.len() - 1;
                vec![
                    Hop {
                        waveguide: w1,
                        from_station: 0,
                        to_station: c1,
                    },
                    Hop {
                        waveguide: w2,
                        from_station: c2,
                        to_station: last,
                    },
                ]
            }
        };
        // Register the receiver drop at the final tap.
        let last_hop = hops.last().expect("signal has hops");
        if let Station::NodeTap { drops, .. } =
            &mut layout.waveguides[last_hop.waveguide].stations[last_hop.to_station]
        {
            drops.push((route.wavelength, SignalId(gsi as u32)));
        } else {
            panic!("signal {gsi} does not terminate at a NodeTap");
        }
        layout.signals.push(crate::layout::SignalSpec {
            from: route.from,
            to: route.to,
            wavelength: route.wavelength,
            hops,
            pdn_loss_db,
        });
    }

    layout.pdn_modelled = pdn.is_some();
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::map_signals;
    use crate::opening::open_rings;
    use crate::pdn::design_pdn;
    use crate::ring::RingBuilder;
    use crate::shortcut::plan_shortcuts;
    use xring_geom::Point;

    #[test]
    fn spacing_formula() {
        let s = RingSpacing::default();
        assert_eq!(s.spacing_um(8), 50 + 3 * 20);
        assert_eq!(s.spacing_um(16), 50 + 4 * 20);
        assert_eq!(s.spacing_um(17), 50 + 5 * 20);
        assert_eq!(s.spacing_um(32), 50 + 5 * 20);
    }

    #[test]
    fn realize_8_node_and_trace_all() {
        let net = NetworkSpec::proton_8();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let sc = plan_shortcuts(&net, &ring.cycle);
        let mut plan = map_signals(&net, &ring.cycle, &sc, 8, 0).expect("mapped");
        open_rings(&ring.cycle, &mut plan, 8);
        let pdn = design_pdn(
            &net,
            &ring.cycle,
            &plan,
            &sc,
            &LossParams::default(),
            Point::new(-1_000, -1_000),
        );
        let layout = realize(
            &net,
            &ring.cycle,
            &sc,
            &plan,
            Some(&pdn),
            RingSpacing::default(),
        );
        assert_eq!(layout.signals.len(), net.signal_count());
        // Every signal must produce a finite trace ending in a detector.
        for i in 0..layout.signals.len() {
            let trace = layout.trace(SignalId(i as u32));
            assert!(matches!(
                trace.last(),
                Some(xring_phot::PathElement::Photodetector)
            ));
        }
    }

    #[test]
    fn ring_signal_lengths_match_arcs() {
        let net = NetworkSpec::proton_8();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let sc = ShortcutPlan::empty();
        let plan = map_signals(&net, &ring.cycle, &sc, 8, 0).expect("mapped");
        let layout = realize(&net, &ring.cycle, &sc, &plan, None, RingSpacing::default());
        for (i, route) in plan.routes.iter().enumerate() {
            let RouteKind::Ring { waveguide } = route.kind else {
                continue;
            };
            let wg = &plan.ring_waveguides[waveguide];
            // Only level-0 waveguides have unscaled lengths.
            if waveguide != 0 {
                continue;
            }
            let fa = ring.cycle.position_of(route.from);
            let fb = ring.cycle.position_of(route.to);
            let expect = ring.cycle.arc_length(fa, fb, wg.direction);
            let trace = layout.trace(SignalId(i as u32));
            let got: i64 = trace
                .iter()
                .map(|e| match e {
                    xring_phot::PathElement::Propagate { length_um } => *length_um,
                    _ => 0,
                })
                .sum();
            assert_eq!(got, expect, "signal {i} length mismatch");
        }
    }

    #[test]
    fn outer_rings_are_longer() {
        let net = NetworkSpec::psion_16();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let sc = ShortcutPlan::empty();
        let plan = map_signals(&net, &ring.cycle, &sc, 2, 0).expect("mapped");
        assert!(plan.ring_waveguides.len() >= 2, "need multiple rings");
        let layout = realize(&net, &ring.cycle, &sc, &plan, None, RingSpacing::default());
        let ring_len = |w: &Waveguide| -> i64 {
            w.stations
                .iter()
                .map(|s| match s {
                    Station::Segment { length_um, .. } => *length_um,
                    _ => 0,
                })
                .sum()
        };
        let l0 = ring_len(&layout.waveguides[0]);
        let l1 = ring_len(&layout.waveguides[1]);
        assert!(l1 > l0, "outer ring not longer: {l0} vs {l1}");
    }

    #[test]
    fn cse_signals_have_two_hops() {
        // Find a floorplan producing a crossing pair; psion_32 with the
        // heuristic ring usually does. Skip silently if not.
        let net = NetworkSpec::psion_32();
        let ring = RingBuilder::new()
            .with_algorithm(crate::ring::RingAlgorithm::Heuristic)
            .build(&net)
            .expect("ring");
        let sc = plan_shortcuts(&net, &ring.cycle);
        if !sc.shortcuts.iter().any(|s| s.crossing_partner.is_some()) {
            return;
        }
        let mut plan = map_signals(&net, &ring.cycle, &sc, 16, 0).expect("mapped");
        open_rings(&ring.cycle, &mut plan, 16);
        let layout = realize(&net, &ring.cycle, &sc, &plan, None, RingSpacing::default());
        let mut cse_seen = false;
        for (i, r) in plan.routes.iter().enumerate() {
            if matches!(r.kind, RouteKind::ShortcutCse { .. }) {
                cse_seen = true;
                assert_eq!(layout.signals[i].hops.len(), 2);
                let trace = layout.trace(SignalId(i as u32));
                let drops = trace
                    .iter()
                    .filter(|e| matches!(e, xring_phot::PathElement::MrrDrop))
                    .count();
                assert_eq!(drops, 2, "CSE + receiver drops");
            }
        }
        assert!(cse_seen);
    }
}
