//! Step 1: ring waveguide construction (Sec. III-A).
//!
//! Models the connection problem as a *modified travelling salesman*
//! problem: find a minimum-length cycle visiting every node once such that
//! the selected edges can be realized as L-shaped waveguides without
//! crossings. The MILP uses constraints (1)–(3) and objective (4) of the
//! paper; connectivity is deliberately **not** modelled (it would need
//! exponentially many sub-tour constraints), and resulting sub-cycles are
//! merged heuristically (Fig. 6(e)/(f)). Conflict constraints (3) are
//! separated lazily instead of enumerated up front — an equivalent but
//! much smaller formulation.
//!
//! After an order is found, a 2-SAT instance assigns one L-route option
//! per edge so the realized ring is globally crossing-free.

use crate::error::SynthesisError;
use crate::heuristics::{heuristic_tour, perimeter_tour, tour_length};
use crate::netspec::{NetworkSpec, NodeId};
use crate::variation::SplitMix64;
use xring_geom::{classify_edge_pair, LRoute, Point, Polyline, RouteOption, TwoSat};
use xring_milp::{
    progress, Basis, BranchAndBound, ConvergenceCollector, ConvergenceSummary, FactorizationKind,
    LinExpr, LpBackendKind, Model, PricingKind, Relation, VarId,
};

/// Travel direction on a ring waveguide. `Cw` follows the cycle order,
/// `Ccw` opposes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follows the cycle order (`order\[0\] → order\[1\] → …`).
    Cw,
    /// Opposes the cycle order.
    Ccw,
}

impl Direction {
    /// The opposite direction.
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Cw => Direction::Ccw,
            Direction::Ccw => Direction::Cw,
        }
    }
}

/// Which algorithm constructs the node order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingAlgorithm {
    /// The paper's MILP (exact modified-TSP with lazy conflicts), warm
    /// started by [`heuristic_tour`].
    Milp,
    /// Nearest-neighbour + 2-opt only (ablation / large networks).
    Heuristic,
    /// Naive centroid-angle perimeter order (ablation baseline).
    Perimeter,
}

/// Statistics from ring construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RingStats {
    /// Branch-and-bound nodes (0 for heuristic algorithms).
    pub milp_nodes: usize,
    /// LP relaxations solved (0 for heuristic algorithms).
    pub lp_solves: usize,
    /// LP solves that adopted the parent node's basis (warm starts).
    pub lp_warm_starts: usize,
    /// LP solves that were *offered* a parent basis — the denominator
    /// for the warm-start rate (only root and post-recovery solves are
    /// excluded).
    pub lp_warm_eligible: usize,
    /// Lazy conflict constraints separated.
    pub lazy_cuts: usize,
    /// Objective value of the MILP's optimal edge assignment — the total
    /// Manhattan length *before* sub-cycle merging (0.0 for heuristic
    /// algorithms). Backend-independent: alternate optimal assignments
    /// can merge into different final tours, but this value must agree
    /// across LP kernels.
    pub milp_objective: f64,
    /// Sub-cycles merged after optimization.
    pub subcycles_merged: usize,
    /// True when the global 2-SAT option assignment was infeasible and a
    /// greedy crossing-minimizing fallback realized the geometry.
    pub twosat_fallback: bool,
    /// How the MILP solve converged (time to first incumbent, time to
    /// 1% gap, final gap). `Some` only when the ring was built by the
    /// MILP **and** telemetry was on — tracing enabled
    /// (`xring_obs::start`) or a solver-progress sink installed
    /// (`--solver-log`); `None` otherwise, so the telemetry-off hot
    /// path stays unchanged.
    pub convergence: Option<ConvergenceSummary>,
}

/// A realized ring: the node visiting order plus one L-route per edge.
#[derive(Debug, Clone, PartialEq)]
pub struct RingCycle {
    order: Vec<NodeId>,
    position_of: Vec<usize>,
    routes: Vec<LRoute>,
    /// Residual crossings between ring edges (0 unless the 2-SAT fallback
    /// was taken).
    residual_crossings: usize,
}

impl RingCycle {
    /// Realizes the geometry for a node order: picks one routing option
    /// per edge via 2-SAT so that no two ring edges cross; falls back to
    /// a greedy crossing-minimizing assignment when the pairwise-feasible
    /// order admits no global assignment.
    pub fn from_order(net: &NetworkSpec, order: Vec<NodeId>) -> (Self, bool) {
        let n = order.len();
        assert!(n >= 3, "a ring needs at least 3 nodes");
        let endpoints: Vec<(Point, Point)> = (0..n)
            .map(|i| (net.position(order[i]), net.position(order[(i + 1) % n])))
            .collect();

        // 2-SAT: variable i == true  <=>  edge i routes VerticalFirst.
        let mut sat = TwoSat::new(n);
        for i in 0..n {
            for j in i + 1..n {
                let (a1, a2) = endpoints[i];
                let (b1, b2) = endpoints[j];
                for (oi, oa) in RouteOption::BOTH.into_iter().enumerate() {
                    for (oj, ob) in RouteOption::BOTH.into_iter().enumerate() {
                        let ra = LRoute::new(a1, a2, oa);
                        let rb = LRoute::new(b1, b2, ob);
                        if ra.crosses(&rb) {
                            sat.forbid_pair(i, oi == 1, j, oj == 1);
                        }
                    }
                }
            }
        }

        let (options, fallback) = match sat.solve() {
            Some(sol) => {
                let opts: Vec<RouteOption> = (0..n)
                    .map(|i| {
                        if sol.value(i) {
                            RouteOption::VerticalFirst
                        } else {
                            RouteOption::HorizontalFirst
                        }
                    })
                    .collect();
                (opts, false)
            }
            None => (greedy_options(&endpoints), true),
        };

        let routes: Vec<LRoute> = (0..n)
            .map(|i| LRoute::new(endpoints[i].0, endpoints[i].1, options[i]))
            .collect();
        let residual_crossings = count_crossings(&routes);

        let mut position_of = vec![usize::MAX; net.len()];
        for (pos, id) in order.iter().enumerate() {
            position_of[id.index()] = pos;
        }

        (
            RingCycle {
                order,
                position_of,
                routes,
                residual_crossings,
            },
            fallback,
        )
    }

    /// The cyclic node order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The cycle position of a node (index into [`order`](Self::order)).
    ///
    /// # Panics
    ///
    /// Panics if the node is not on the ring.
    pub fn position_of(&self, node: NodeId) -> usize {
        let pos = self.position_of[node.index()];
        assert!(pos != usize::MAX, "{node} is not on the ring");
        pos
    }

    /// The realized route of edge `i` (`order[i] → order[i+1 mod n]`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn edge_route(&self, i: usize) -> &LRoute {
        &self.routes[i]
    }

    /// Length of edge `i` in µm.
    pub fn edge_length(&self, i: usize) -> i64 {
        self.routes[i].length()
    }

    /// Total ring perimeter in µm.
    pub fn perimeter(&self) -> i64 {
        self.routes.iter().map(LRoute::length).sum()
    }

    /// Residual crossings between ring edges (0 in the normal case).
    pub fn residual_crossings(&self) -> usize {
        self.residual_crossings
    }

    /// The edges covered when travelling from cycle position `from` to
    /// cycle position `to` in direction `dir`. Edge `i` connects
    /// positions `i` and `i+1 (mod n)`.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (a signal never targets its own node).
    pub fn arc_edges(&self, from: usize, to: usize, dir: Direction) -> Vec<usize> {
        assert_ne!(from, to, "degenerate arc");
        let n = self.len();
        let mut edges = Vec::new();
        match dir {
            Direction::Cw => {
                let mut p = from;
                while p != to {
                    edges.push(p);
                    p = (p + 1) % n;
                }
            }
            Direction::Ccw => {
                let mut p = from;
                while p != to {
                    p = (p + n - 1) % n;
                    edges.push(p);
                }
            }
        }
        edges
    }

    /// Length in µm of the arc from `from` to `to` in direction `dir`.
    pub fn arc_length(&self, from: usize, to: usize, dir: Direction) -> i64 {
        self.arc_edges(from, to, dir)
            .iter()
            .map(|&e| self.edge_length(e))
            .sum()
    }

    /// The interior cycle positions strictly between `from` and `to` when
    /// travelling in `dir` (nodes passed through).
    pub fn interior_positions(&self, from: usize, to: usize, dir: Direction) -> Vec<usize> {
        let n = self.len();
        let mut out = Vec::new();
        let mut p = from;
        loop {
            p = match dir {
                Direction::Cw => (p + 1) % n,
                Direction::Ccw => (p + n - 1) % n,
            };
            if p == to {
                break;
            }
            out.push(p);
        }
        out
    }

    /// Number of 90° bends on edge `i` plus the junction turn entering
    /// edge `i+1`.
    pub fn bends_on_edge(&self, i: usize) -> usize {
        let n = self.len();
        let internal = self.routes[i].bend_count();
        // Junction turn at the node between edge i and edge i+1: compare
        // the arrival direction of edge i with the departure direction of
        // edge i+1.
        let next = (i + 1) % n;
        let arrive_horizontal = {
            let r = &self.routes[i];
            let c = r.corner();
            if c == r.to() {
                // Degenerate: single segment.
                r.from().y == r.to().y
            } else {
                c.y == r.to().y
            }
        };
        let depart_horizontal = {
            let r = &self.routes[next];
            let c = r.corner();
            if c == r.from() {
                r.from().y == r.to().y
            } else {
                c.y == r.from().y
            }
        };
        internal + usize::from(arrive_horizontal != depart_horizontal)
    }

    /// The closed polyline of the realized ring (for feasibility checks
    /// against shortcuts and the PDN).
    pub fn polyline(&self) -> Polyline {
        let n = self.len();
        let mut vertices = Vec::with_capacity(2 * n);
        for r in &self.routes {
            vertices.push(r.from());
            let c = r.corner();
            if c != r.from() && c != r.to() {
                vertices.push(c);
            }
        }
        // Drop consecutive duplicates that arise from degenerate routes.
        vertices.dedup();
        if vertices.len() >= 2 && vertices[0] == *vertices.last().expect("non-empty") {
            vertices.pop();
        }
        Polyline::closed(vertices)
    }
}

fn greedy_options(endpoints: &[(Point, Point)]) -> Vec<RouteOption> {
    let n = endpoints.len();
    let mut options = vec![RouteOption::HorizontalFirst; n];
    for i in 0..n {
        let mut best = (usize::MAX, RouteOption::HorizontalFirst);
        for opt in RouteOption::BOTH {
            let ri = LRoute::new(endpoints[i].0, endpoints[i].1, opt);
            let crossings = (0..i)
                .filter(|&j| {
                    let rj = LRoute::new(endpoints[j].0, endpoints[j].1, options[j]);
                    ri.crosses(&rj)
                })
                .count();
            if crossings < best.0 {
                best = (crossings, opt);
            }
        }
        options[i] = best.1;
    }
    options
}

fn count_crossings(routes: &[LRoute]) -> usize {
    let mut count = 0;
    for i in 0..routes.len() {
        for j in i + 1..routes.len() {
            if routes[i].crosses(&routes[j]) {
                count += 1;
            }
        }
    }
    count
}

/// Builds the ring (Step 1).
#[derive(Debug, Clone)]
pub struct RingBuilder {
    algorithm: RingAlgorithm,
    max_milp_nodes: usize,
    deadline: Option<std::time::Instant>,
    objective_perturbation: Option<u64>,
    lp_backend: LpBackendKind,
    warm_basis: Option<Basis>,
    solver_threads: usize,
    pricing: PricingKind,
    factorization: FactorizationKind,
}

impl Default for RingBuilder {
    fn default() -> Self {
        RingBuilder {
            algorithm: RingAlgorithm::Milp,
            max_milp_nodes: 50_000,
            deadline: None,
            objective_perturbation: None,
            lp_backend: LpBackendKind::default(),
            warm_basis: None,
            solver_threads: 1,
            pricing: PricingKind::default(),
            factorization: FactorizationKind::default(),
        }
    }
}

/// The output of ring construction.
#[derive(Debug, Clone)]
pub struct RingOutcome {
    /// The realized ring.
    pub cycle: RingCycle,
    /// Construction statistics.
    pub stats: RingStats,
    /// The LP basis exported from the MILP node that proved the final
    /// incumbent (MILP algorithm on a basis-capable backend only). Feed
    /// it back through [`RingBuilder::with_warm_basis`] to warm-start a
    /// re-solve after a spec edit.
    pub basis: Option<Basis>,
}

impl RingBuilder {
    /// A builder running the paper's MILP.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the construction algorithm.
    pub fn with_algorithm(mut self, algorithm: RingAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Caps branch-and-bound nodes (MILP algorithm only).
    pub fn with_max_milp_nodes(mut self, max: usize) -> Self {
        self.max_milp_nodes = max;
        self
    }

    /// Sets a cooperative wall-clock deadline for the MILP search (see
    /// [`BranchAndBound::with_deadline`]); expiry surfaces as
    /// [`SynthesisError::DeadlineExceeded`]. The heuristic algorithms run
    /// to completion regardless — they are fast and have no node loop to
    /// interrupt.
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Perturbs each MILP objective coefficient by a deterministic,
    /// seed-derived relative factor in `[1, 1 + 1e-6)` (MILP algorithm
    /// only). Used by the degradation chain's retry step: the tiny tilt
    /// breaks objective ties and steers branch-and-bound down a different
    /// search path after a numerical failure, while keeping any optimum
    /// within a negligible length of the unperturbed one. The warm-start
    /// incumbent is skipped when perturbing, both because its objective
    /// would no longer match and because the retry *wants* a fresh
    /// search. `None` (the default) solves the exact objective.
    pub fn with_objective_perturbation(mut self, seed: Option<u64>) -> Self {
        self.objective_perturbation = seed;
        self
    }

    /// Selects the LP backend the MILP relaxations run on (see
    /// [`LpBackendKind`]). The default revised simplex warm-starts child
    /// nodes from the parent basis; [`LpBackendKind::Dense`] is the
    /// slower reference tableau.
    pub fn with_lp_backend(mut self, backend: LpBackendKind) -> Self {
        self.lp_backend = backend;
        self
    }

    /// Sets the worker-thread count for the MILP's per-round node-batch
    /// LP solves (default 1, minimum 1). Deterministic: the design and
    /// objective are identical at every setting.
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = threads.max(1);
        self
    }

    /// Selects the revised backend's pricing rule (see
    /// [`xring_milp::PricingKind`]).
    pub fn with_pricing(mut self, pricing: PricingKind) -> Self {
        self.pricing = pricing;
        self
    }

    /// Selects the revised backend's basis factorization (see
    /// [`xring_milp::FactorizationKind`]).
    pub fn with_factorization(mut self, factorization: FactorizationKind) -> Self {
        self.factorization = factorization;
        self
    }

    /// Seeds the MILP root relaxation with a basis exported by an
    /// earlier build ([`RingOutcome::basis`]) — the incremental
    /// re-synthesis path after a node move. The model must have the same
    /// node count (same variable space); an incompatible basis is
    /// rejected by the backend and the root solves cold, so offering a
    /// stale basis is always safe. Ignored by the heuristic algorithms.
    pub fn with_warm_basis(mut self, basis: Option<Basis>) -> Self {
        self.warm_basis = basis;
        self
    }

    /// Constructs the ring for `net`.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::RingMilp`] when the MILP solver fails
    /// unrecoverably, [`SynthesisError::RingConstruction`] when solution
    /// decoding or sub-cycle merging breaks down (the heuristic
    /// algorithms cannot fail).
    pub fn build(&self, net: &NetworkSpec) -> Result<RingOutcome, SynthesisError> {
        match self.algorithm {
            RingAlgorithm::Perimeter => {
                let (cycle, fb) = RingCycle::from_order(net, perimeter_tour(net));
                Ok(RingOutcome {
                    cycle,
                    stats: RingStats {
                        twosat_fallback: fb,
                        ..RingStats::default()
                    },
                    basis: None,
                })
            }
            RingAlgorithm::Heuristic => {
                let (cycle, fb) = RingCycle::from_order(net, heuristic_tour(net));
                Ok(RingOutcome {
                    cycle,
                    stats: RingStats {
                        twosat_fallback: fb,
                        ..RingStats::default()
                    },
                    basis: None,
                })
            }
            RingAlgorithm::Milp => self.build_milp(net),
        }
    }

    #[allow(clippy::needless_range_loop)] // index loops mirror the b_ij matrix notation
    fn build_milp(&self, net: &NetworkSpec) -> Result<RingOutcome, SynthesisError> {
        let n = net.len();
        let mut model = Model::new();

        // One binary per directed edge.
        let mut var: Vec<Vec<Option<VarId>>> = vec![vec![None; n]; n];
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * (n - 1));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    var[i][j] = Some(model.add_binary(format!("b_{i}_{j}")));
                    edges.push((i, j));
                }
            }
        }
        let v = |i: usize, j: usize| -> Result<VarId, SynthesisError> {
            var[i][j].ok_or_else(|| SynthesisError::RingConstruction {
                detail: format!("edge variable b_{i}_{j} missing from the model"),
            })
        };

        // Constraint (1): every vertex has exactly one incoming and one
        // outgoing selected edge.
        for i in 0..n {
            let outgoing: Vec<VarId> = (0..n)
                .filter(|&j| j != i)
                .map(|j| v(i, j))
                .collect::<Result<_, _>>()?;
            let incoming: Vec<VarId> = (0..n)
                .filter(|&j| j != i)
                .map(|j| v(j, i))
                .collect::<Result<_, _>>()?;
            model.add_constraint(LinExpr::sum(outgoing), Relation::Eq, 1.0);
            model.add_constraint(LinExpr::sum(incoming), Relation::Eq, 1.0);
        }
        // Constraint (2): no 2-cycles.
        for i in 0..n {
            for j in i + 1..n {
                model.add_constraint(LinExpr::sum([v(i, j)?, v(j, i)?]), Relation::Le, 1.0);
            }
        }
        // Objective (4): total Manhattan length, optionally tilted by a
        // deterministic relative perturbation (degradation retry).
        let mut obj = LinExpr::new();
        for &(i, j) in &edges {
            let mut coeff = net.distance(NodeId(i as u32), NodeId(j as u32)) as f64;
            if let Some(seed) = self.objective_perturbation {
                coeff *= perturbation_factor(seed, i, j);
            }
            obj += (v(i, j)?, coeff);
        }
        model.set_objective(obj);

        // Warm start with the heuristic tour when it is conflict-free and
        // the objective is exact (a perturbed retry wants a fresh search).
        let tour = heuristic_tour(net);
        let mut solver = BranchAndBound::new()
            .with_max_nodes(self.max_milp_nodes)
            .with_deadline(self.deadline)
            .with_lp_backend(self.lp_backend)
            .with_solver_threads(self.solver_threads)
            .with_pricing(self.pricing)
            .with_factorization(self.factorization);
        if let Some(basis) = &self.warm_basis {
            solver = solver.with_root_basis(basis.clone());
        }
        if self.objective_perturbation.is_none() && tour_is_conflict_free(net, &tour) {
            let mut values = vec![0.0f64; model.num_vars()];
            for k in 0..n {
                let a = tour[k].index();
                let b = tour[(k + 1) % n].index();
                values[v(a, b)?.index()] = 1.0;
            }
            solver = solver.with_incumbent(values, tour_length(net, &tour) as f64);
        }

        // Lazy separation of conflict constraints (3).
        let net_clone = net.clone();
        let var_snapshot: Vec<Vec<Option<VarId>>> = var.clone();
        let separate = move |values: &[f64]| {
            let mut selected: Vec<(usize, usize)> = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if let Some(vid) = var_snapshot[i][j] {
                        if values[vid.index()] > 0.5 {
                            selected.push((i, j));
                        }
                    }
                }
            }
            let mut cuts = Vec::new();
            for a in 0..selected.len() {
                for b in a + 1..selected.len() {
                    let (i1, j1) = selected[a];
                    let (i2, j2) = selected[b];
                    if i1 == i2 || i1 == j2 || j1 == i2 || j1 == j2 {
                        continue; // edges sharing a node never conflict
                    }
                    let c = classify_edge_pair(
                        net_clone.position(NodeId(i1 as u32)),
                        net_clone.position(NodeId(j1 as u32)),
                        net_clone.position(NodeId(i2 as u32)),
                        net_clone.position(NodeId(j2 as u32)),
                    );
                    if c.is_conflicting() {
                        // Forbid both directed orientations of the
                        // conflicting geometric pair at once. Selected
                        // pairs always have i != j, so both variables
                        // exist; an absent one (impossible by
                        // construction) just skips the cut rather than
                        // panicking the worker.
                        if let (Some(e1), Some(e2)) = (var_snapshot[i1][j1], var_snapshot[i2][j2]) {
                            cuts.push((LinExpr::sum([e1, e2]), Relation::Le, 1.0));
                        }
                    }
                }
            }
            cuts
        };

        // Attach the convergence collector only when someone can see
        // its output (a trace or a --solver-log sink); otherwise the
        // solve keeps the plain one-relaxed-load telemetry-off path.
        let mut collector =
            (xring_obs::enabled() || progress::sink_enabled()).then(ConvergenceCollector::new);
        let solution = match collector.as_mut() {
            Some(collector) => solver.solve_with_lazy_observed(&model, separate, collector)?,
            None => solver.solve_with_lazy(&model, separate)?,
        };
        let convergence = collector.map(ConvergenceCollector::finish);

        // Decode selected edges into successor pointers.
        let mut succ = vec![usize::MAX; n];
        for &(i, j) in &edges {
            if solution.is_set(v(i, j)?) {
                succ[i] = j;
            }
        }
        if let Some(orphan) = (0..n).find(|&i| succ[i] == usize::MAX) {
            return Err(SynthesisError::RingConstruction {
                detail: format!("node {orphan} has no outgoing edge in the MILP solution"),
            });
        }

        // Extract sub-cycles (Fig. 6(e)).
        let mut cycles: Vec<Vec<usize>> = Vec::new();
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut cyc = vec![start];
            seen[start] = true;
            let mut cur = succ[start];
            while cur != start {
                seen[cur] = true;
                cyc.push(cur);
                cur = succ[cur];
            }
            cycles.push(cyc);
        }

        // Merge sub-cycles (Fig. 6(f)).
        let merge_span = xring_obs::span("subcycle-merge");
        let mut merged = 0usize;
        let order = merge_cycles(net, &mut cycles, &mut merged)?;
        xring_obs::counter("ring.subcycles_merged", merged as u64);
        drop(merge_span);

        let (cycle, fb) = RingCycle::from_order(net, order);
        let stats = RingStats {
            milp_nodes: solution.stats().nodes,
            lp_solves: solution.stats().lp_solves,
            lp_warm_starts: solution.stats().warm_starts,
            lp_warm_eligible: solution.stats().warm_eligible,
            lazy_cuts: solution.stats().lazy_constraints,
            milp_objective: solution.objective(),
            subcycles_merged: merged,
            twosat_fallback: fb,
            convergence,
        };
        Ok(RingOutcome {
            cycle,
            stats,
            basis: solution.into_basis(),
        })
    }
}

/// True when no pair of tour edges is geometrically conflicting.
fn tour_is_conflict_free(net: &NetworkSpec, tour: &[NodeId]) -> bool {
    let n = tour.len();
    for a in 0..n {
        for b in a + 1..n {
            let (i1, j1) = (tour[a], tour[(a + 1) % n]);
            let (i2, j2) = (tour[b], tour[(b + 1) % n]);
            if i1 == i2 || i1 == j2 || j1 == i2 || j1 == j2 {
                continue;
            }
            if classify_edge_pair(
                net.position(i1),
                net.position(j1),
                net.position(i2),
                net.position(j2),
            )
            .is_conflicting()
            {
                return false;
            }
        }
    }
    true
}

/// Deterministic relative perturbation factor for the objective
/// coefficient of edge `(i, j)` under `seed`: `1 + 1e-6 * u` with
/// `u ∈ [0, 1)` drawn from a SplitMix64 stream keyed on the edge, so the
/// factor is independent of iteration order.
fn perturbation_factor(seed: u64, i: usize, j: usize) -> f64 {
    let edge_key = ((i as u64) << 32 | j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    1.0 + 1.0e-6 * SplitMix64::new(seed ^ edge_key).next_f64()
}

/// Repeatedly combines the two cycles admitting the cheapest conflict-free
/// 2-exchange until one cycle remains, then returns its node order.
fn merge_cycles(
    net: &NetworkSpec,
    cycles: &mut Vec<Vec<usize>>,
    merged: &mut usize,
) -> Result<Vec<NodeId>, SynthesisError> {
    if cycles.is_empty() {
        return Err(SynthesisError::RingConstruction {
            detail: "MILP solution decoded to zero cycles".to_owned(),
        });
    }
    while cycles.len() > 1 {
        // Current full edge set (for conflict checks of candidate edges).
        let all_edges: Vec<(usize, usize)> = cycles
            .iter()
            .flat_map(|c| (0..c.len()).map(move |k| (c[k], c[(k + 1) % c.len()])))
            .collect();

        let mut best: Option<(i64, usize, usize, usize, usize, bool)> = None;
        // Try merging cycle pairs (ca, cb) by replacing edge (a,b) in ca
        // and (c,d) in cb with (a,d) and (c,b).
        for ca in 0..cycles.len() {
            for cb in ca + 1..cycles.len() {
                for ea in 0..cycles[ca].len() {
                    for eb in 0..cycles[cb].len() {
                        let a = cycles[ca][ea];
                        let b = cycles[ca][(ea + 1) % cycles[ca].len()];
                        let c = cycles[cb][eb];
                        let d = cycles[cb][(eb + 1) % cycles[cb].len()];
                        let dist =
                            |x: usize, y: usize| net.distance(NodeId(x as u32), NodeId(y as u32));
                        let delta = dist(a, d) + dist(c, b) - dist(a, b) - dist(c, d);
                        let free =
                            edges_conflict_free(net, (a, d), (c, b), &all_edges, (a, b), (c, d));
                        match &best {
                            Some((bd, .., bfree)) => {
                                // Prefer conflict-free merges; among equal
                                // feasibility, prefer smaller delta.
                                if (free && !bfree) || (free == *bfree && delta < *bd) {
                                    best = Some((delta, ca, cb, ea, eb, free));
                                }
                            }
                            None => best = Some((delta, ca, cb, ea, eb, free)),
                        }
                    }
                }
            }
        }
        let Some((_, ca, cb, ea, eb, _)) = best else {
            return Err(SynthesisError::RingConstruction {
                detail: "sub-cycle merge found no 2-exchange candidate".to_owned(),
            });
        };
        // Stitch: ca = [.., a] ++ [d, .. rotate cb ..] ++ [.., back to ca]
        let cyc_b = cycles.remove(cb);
        let cyc_a = &mut cycles[ca];
        let mut stitched = Vec::with_capacity(cyc_a.len() + cyc_b.len());
        // Walk ca from position ea+1 ... around to ea (so it ends at a).
        for k in 0..cyc_a.len() {
            stitched.push(cyc_a[(ea + 1 + k) % cyc_a.len()]);
        }
        // stitched currently ends with a (element at ea). Insert cb
        // starting at d (= eb+1) around to c (= eb).
        for k in 0..cyc_b.len() {
            stitched.push(cyc_b[(eb + 1 + k) % cyc_b.len()]);
        }
        *cyc_a = stitched;
        *merged += 1;
    }
    Ok(cycles[0].iter().map(|&i| NodeId(i as u32)).collect())
}

/// True if the two replacement edges are conflict-free against each other
/// and against every retained edge.
fn edges_conflict_free(
    net: &NetworkSpec,
    e1: (usize, usize),
    e2: (usize, usize),
    all_edges: &[(usize, usize)],
    removed1: (usize, usize),
    removed2: (usize, usize),
) -> bool {
    let pos = |i: usize| net.position(NodeId(i as u32));
    let disjoint =
        |x: (usize, usize), y: (usize, usize)| x.0 != y.0 && x.0 != y.1 && x.1 != y.0 && x.1 != y.1;
    let conflicting = |x: (usize, usize), y: (usize, usize)| {
        disjoint(x, y)
            && classify_edge_pair(pos(x.0), pos(x.1), pos(y.0), pos(y.1)).is_conflicting()
    };
    if conflicting(e1, e2) {
        return false;
    }
    for &e in all_edges {
        if e == removed1 || e == removed2 {
            continue;
        }
        if conflicting(e1, e) || conflicting(e2, e) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid_cycle(net: &NetworkSpec, cycle: &RingCycle) {
        assert_eq!(cycle.len(), net.len());
        let mut seen = vec![false; net.len()];
        for id in cycle.order() {
            assert!(!seen[id.index()], "node repeated in cycle");
            seen[id.index()] = true;
        }
    }

    #[test]
    fn milp_ring_on_square() {
        let net = NetworkSpec::regular_grid(2, 2, 1_000).expect("valid");
        let out = RingBuilder::new().build(&net).expect("solved");
        assert_valid_cycle(&net, &out.cycle);
        assert_eq!(out.cycle.perimeter(), 4_000);
        assert_eq!(out.cycle.residual_crossings(), 0);
    }

    #[test]
    fn milp_ring_on_3x3_grid_is_optimal() {
        // Odd grid: optimal closed rectilinear tour visiting all 9 cells
        // has length 10 * pitch.
        let net = NetworkSpec::regular_grid(3, 3, 1_000).expect("valid");
        let out = RingBuilder::new().build(&net).expect("solved");
        assert_valid_cycle(&net, &out.cycle);
        assert!(
            out.cycle.perimeter() <= 10_000,
            "perimeter {} exceeds optimum",
            out.cycle.perimeter()
        );
        assert_eq!(out.cycle.residual_crossings(), 0);
    }

    #[test]
    fn milp_matches_or_beats_heuristic() {
        let net = NetworkSpec::irregular(9, 8_000, 11).expect("valid");
        let milp = RingBuilder::new().build(&net).expect("milp");
        let heur = RingBuilder::new()
            .with_algorithm(RingAlgorithm::Heuristic)
            .build(&net)
            .expect("heuristic");
        assert_valid_cycle(&net, &milp.cycle);
        // The MILP optimum is over crossing-free edge selections and may
        // then pay extra length in sub-cycle merging; when no merge was
        // needed, it must not lose to the (conflict-unchecked) heuristic
        // by more than the conflict penalty — and with zero merges and a
        // conflict-free heuristic incumbent, it must win outright.
        if milp.stats.subcycles_merged == 0 {
            assert!(
                milp.cycle.perimeter() <= heur.cycle.perimeter(),
                "milp {} vs heuristic {}",
                milp.cycle.perimeter(),
                heur.cycle.perimeter()
            );
        }
    }

    #[test]
    fn ring_on_proton_8() {
        let net = NetworkSpec::proton_8();
        let out = RingBuilder::new().build(&net).expect("solved");
        assert_valid_cycle(&net, &out.cycle);
        // 2x4 grid, pitch 1.5mm: optimal tour = 8 edges = 12 mm.
        assert_eq!(out.cycle.perimeter(), 12_000);
        assert_eq!(out.cycle.residual_crossings(), 0);
    }

    #[test]
    fn perturbed_objective_still_finds_an_optimal_ring() {
        // The perturbation is ≤ 1e-6 relative while tour lengths differ by
        // ≥ 1 µm, so a perturbed solve must land on a tour of exactly
        // optimal length — just possibly a different one.
        let net = NetworkSpec::proton_8();
        let plain = RingBuilder::new().build(&net).expect("solved");
        let perturbed = RingBuilder::new()
            .with_objective_perturbation(Some(0xDEAD_BEEF))
            .build(&net)
            .expect("solved");
        assert_valid_cycle(&net, &perturbed.cycle);
        assert_eq!(perturbed.cycle.perimeter(), plain.cycle.perimeter());
        assert_eq!(perturbed.cycle.residual_crossings(), 0);
    }

    #[test]
    fn arc_edges_cw_and_ccw() {
        let net = NetworkSpec::regular_grid(2, 2, 1_000).expect("valid");
        let out = RingBuilder::new().build(&net).expect("solved");
        let c = &out.cycle;
        let cw = c.arc_edges(0, 2, Direction::Cw);
        assert_eq!(cw, vec![0, 1]);
        let ccw = c.arc_edges(0, 2, Direction::Ccw);
        assert_eq!(ccw, vec![3, 2]);
        assert_eq!(
            c.arc_length(0, 2, Direction::Cw) + c.arc_length(2, 0, Direction::Cw),
            c.perimeter()
        );
    }

    #[test]
    fn interior_positions_excludes_endpoints() {
        let net = NetworkSpec::proton_8();
        let out = RingBuilder::new().build(&net).expect("solved");
        let ints = out.cycle.interior_positions(0, 3, Direction::Cw);
        assert_eq!(ints, vec![1, 2]);
        assert_eq!(
            out.cycle.interior_positions(0, 1, Direction::Cw),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn polyline_length_matches_perimeter() {
        let net = NetworkSpec::proton_8();
        let out = RingBuilder::new().build(&net).expect("solved");
        assert_eq!(out.cycle.polyline().length(), out.cycle.perimeter());
    }

    #[test]
    fn perimeter_algorithm_gives_valid_ring() {
        let net = NetworkSpec::psion_16();
        let out = RingBuilder::new()
            .with_algorithm(RingAlgorithm::Perimeter)
            .build(&net)
            .expect("built");
        assert_valid_cycle(&net, &out.cycle);
    }

    #[test]
    fn position_of_inverts_order() {
        let net = NetworkSpec::proton_8();
        let out = RingBuilder::new().build(&net).expect("solved");
        for (pos, id) in out.cycle.order().iter().enumerate() {
            assert_eq!(out.cycle.position_of(*id), pos);
        }
    }
}
