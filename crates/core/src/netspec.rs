//! Network specifications: node identities, positions and floorplans.
//!
//! The paper evaluates on 8-, 16- and 32-node networks using the node
//! locations of Proton+ \[15\] (Table I) and PSION+ \[20\] (Table II), with a
//! 32-node extension of the latter. The exact coordinates are not
//! published; [`NetworkSpec::proton_8`] etc. reconstruct grids whose pitch
//! reproduces the published ring perimeters (see DESIGN.md §2).

use crate::error::SynthesisError;
use std::fmt;
use xring_geom::Point;

/// Identifier of a network node (processing cluster / hub).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the spec's node list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A network to synthesize a router for: node positions on the optical
/// layer, plus all-to-all traffic (every node sends to every other node,
/// as in the paper's experiments).
///
/// # Example
///
/// ```
/// use xring_core::NetworkSpec;
///
/// let net = NetworkSpec::regular_grid(4, 4, 2_000)?;
/// assert_eq!(net.len(), 16);
/// assert_eq!(net.signal_count(), 16 * 15);
/// # Ok::<(), xring_core::SynthesisError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    positions: Vec<Point>,
}

impl NetworkSpec {
    /// Creates a spec from explicit positions (µm).
    ///
    /// # Errors
    ///
    /// [`SynthesisError::TooFewNodes`] for fewer than 3 nodes, or
    /// [`SynthesisError::DuplicateNodePositions`] when two nodes coincide.
    pub fn new(positions: Vec<Point>) -> Result<Self, SynthesisError> {
        if positions.len() < 3 {
            return Err(SynthesisError::TooFewNodes {
                got: positions.len(),
            });
        }
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                if positions[i] == positions[j] {
                    return Err(SynthesisError::DuplicateNodePositions { a: i, b: j });
                }
            }
        }
        Ok(NetworkSpec { positions })
    }

    /// A `rows x cols` grid with the given pitch (µm), node 0 at the
    /// origin, row-major order.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn regular_grid(rows: usize, cols: usize, pitch_um: i64) -> Result<Self, SynthesisError> {
        let mut positions = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                positions.push(Point::new(c as i64 * pitch_um, r as i64 * pitch_um));
            }
        }
        NetworkSpec::new(positions)
    }

    /// The 8-node floorplan used in Table I (Proton+ \[15\] node locations):
    /// a 2x4 grid whose pitch reproduces the published path lengths.
    pub fn proton_8() -> Self {
        Self::regular_grid(2, 4, 1_500).expect("static floorplan is valid")
    }

    /// The 16-node floorplan used in Table I (Proton+ \[15\]): 4x4 grid,
    /// 3.6 mm pitch (ring perimeter ≈ 57.6 mm, matching the published
    /// worst path lengths).
    pub fn proton_16() -> Self {
        Self::regular_grid(4, 4, 3_600).expect("static floorplan is valid")
    }

    /// The 8-node floorplan of Table II (PSION+ \[20\] locations).
    pub fn psion_8() -> Self {
        Self::regular_grid(2, 4, 1_500).expect("static floorplan is valid")
    }

    /// The 16-node floorplan of Table II/III (PSION+ \[20\] / ORing \[17\]
    /// locations): 4x4 grid, 2.0 mm pitch (perimeter 32 mm).
    pub fn psion_16() -> Self {
        Self::regular_grid(4, 4, 2_000).expect("static floorplan is valid")
    }

    /// The 32-node network of Table II: the 16-node floorplan extended in
    /// both node count and die dimension (4x8 grid, enlarged pitch).
    pub fn psion_32() -> Self {
        Self::regular_grid(4, 8, 4_000).expect("static floorplan is valid")
    }

    /// A pseudo-random irregular placement on a `die_um` square,
    /// deterministic in `seed` (nodes snapped to a 100 µm grid, collisions
    /// re-drawn).
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new).
    pub fn irregular(n: usize, die_um: i64, seed: u64) -> Result<Self, SynthesisError> {
        // Small xorshift so the crate needs no RNG dependency.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cells = (die_um / 100).max(1) as u64;
        let mut positions: Vec<Point> = Vec::with_capacity(n);
        while positions.len() < n {
            let x = (next() % cells) as i64 * 100;
            let y = (next() % cells) as i64 * 100;
            let p = Point::new(x, y);
            if !positions.contains(&p) {
                positions.push(p);
            }
        }
        NetworkSpec::new(positions)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Always false (a valid spec has ≥ 3 nodes).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// All node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// All positions in node order.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Number of signals under all-to-all traffic: `N(N-1)`.
    pub fn signal_count(&self) -> usize {
        self.len() * (self.len() - 1)
    }

    /// All `(source, destination)` pairs under all-to-all traffic.
    pub fn signal_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let n = self.len() as u32;
        let mut pairs = Vec::with_capacity(self.signal_count());
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    pairs.push((NodeId(i), NodeId(j)));
                }
            }
        }
        pairs
    }

    /// Manhattan distance between two nodes, µm.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn distance(&self, a: NodeId, b: NodeId) -> i64 {
        self.position(a).manhattan_distance(self.position(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_positions() {
        let net = NetworkSpec::regular_grid(2, 3, 100).expect("valid");
        assert_eq!(net.len(), 6);
        assert_eq!(net.position(NodeId(0)), Point::new(0, 0));
        assert_eq!(net.position(NodeId(5)), Point::new(200, 100));
    }

    #[test]
    fn too_few_nodes_rejected() {
        let err = NetworkSpec::new(vec![Point::new(0, 0), Point::new(1, 0)]);
        assert!(matches!(err, Err(SynthesisError::TooFewNodes { got: 2 })));
    }

    #[test]
    fn duplicate_positions_rejected() {
        let err = NetworkSpec::new(vec![Point::new(0, 0), Point::new(5, 5), Point::new(0, 0)]);
        assert!(matches!(
            err,
            Err(SynthesisError::DuplicateNodePositions { a: 0, b: 2 })
        ));
    }

    #[test]
    fn floorplans_have_paper_sizes() {
        assert_eq!(NetworkSpec::proton_8().len(), 8);
        assert_eq!(NetworkSpec::proton_16().len(), 16);
        assert_eq!(NetworkSpec::psion_16().len(), 16);
        assert_eq!(NetworkSpec::psion_32().len(), 32);
    }

    #[test]
    fn all_to_all_pairs() {
        let net = NetworkSpec::proton_8();
        let pairs = net.signal_pairs();
        assert_eq!(pairs.len(), 56);
        assert!(pairs.iter().all(|(a, b)| a != b));
    }

    #[test]
    fn irregular_is_deterministic_and_collision_free() {
        let a = NetworkSpec::irregular(12, 10_000, 42).expect("valid");
        let b = NetworkSpec::irregular(12, 10_000, 42).expect("valid");
        assert_eq!(a, b);
        let c = NetworkSpec::irregular(12, 10_000, 43).expect("valid");
        assert_ne!(a, c);
    }

    #[test]
    fn distance_is_manhattan() {
        let net = NetworkSpec::regular_grid(2, 2, 1_000).expect("valid");
        assert_eq!(net.distance(NodeId(0), NodeId(3)), 2_000);
    }
}
