//! Device-fault models and post-failure auditing.
//!
//! The paper assumes every MRR and waveguide segment works forever. This
//! module models the three single-device failure modes of a wavelength-
//! routed ring router and answers, for a finished [`XRingDesign`], the
//! question *"what does this design still deliver after a device dies?"*:
//!
//! * [`DeviceFault::MrrDrop`] — one receiver drop MRR stops resonating;
//!   its signal can no longer be extracted at the destination.
//! * [`DeviceFault::SegmentBreak`] — one segment of one ring waveguide
//!   physically breaks; every signal whose arc crosses that segment loses
//!   its path.
//! * [`DeviceFault::WavelengthLoss`] — one WDM channel becomes unusable
//!   chip-wide (a failed laser line or comb tooth); every signal on that
//!   wavelength goes dark.
//!
//! [`apply_fault`] produces the *degraded design*: the fault is repaired
//! from spare resources when [`SynthesisOptions::spares`] provisioned
//! them, and demands that cannot be repaired are honestly dropped.
//! [`audit_design_under_fault`] then re-runs the full structural audit
//! (demands served, conflict freedom, layout well-formedness, physical
//! bounds) against the *original* traffic contract and reports the
//! post-failure SNR and served-demand fraction.
//! [`verify_single_fault_survivability`] exhaustively enumerates every
//! single-fault scenario ([`enumerate_single_faults`]) through that
//! auditor; the synthesizer runs it whenever spares are requested, so a
//! design returned with `spares.k >= 1` is *proven* to survive any single
//! device fault.
//!
//! # Repair model
//!
//! * **Spare MRRs** (`k_mrrs >= 1`): each receiver site is provisioned
//!   with a spare drop ring parked off-resonance; an MRR drop is absorbed
//!   by tuning the spare onto the victim's channel. The layout is
//!   unchanged (the parked ring's residual through-loss is below the
//!   modeling floor), so the degraded design equals the original.
//! * **Spare wavelengths** (`k_wavelengths >= 1`): synthesis maps traffic
//!   into `max_wavelengths - k_wavelengths` lanes, keeping the top `k`
//!   channels dark. A wavelength loss migrates every lane on the failed
//!   channel to a fresh spare lane (arc structure intact, so conflict
//!   freedom is preserved by construction) and retunes shortcut signals
//!   to a spare channel that is conflict-free on their wires. A segment
//!   break evicts the crossing arcs and re-places them on other
//!   same-direction waveguides — into existing lanes where they fit,
//!   else into the reserved spare lanes, else onto a dark protection
//!   waveguide materialized for the repair.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

use crate::audit::{audit_report_bounds, audit_structure, AuditReport};
use crate::design::{realize, XRingDesign};
use crate::layout::{LayoutModel, Station};
use crate::mapping::{Lane, LaneArc, MappingPlan, RingWaveguide, RouteKind, SignalRoute};
use crate::netspec::NodeId;
use crate::ring::{Direction, RingCycle};
use crate::shortcut::ShortcutPlan;
use crate::synth::SynthesisOptions;
use xring_phot::{CrosstalkParams, PowerParams, Wavelength};

/// Spare resources reserved at synthesis time so single device faults
/// are repairable (see [`SynthesisOptions::spares`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpareConfig {
    /// Spare WDM channels per waveguide: traffic is mapped into
    /// `max_wavelengths - k_wavelengths` lanes and the top `k` channels
    /// stay dark until a repair needs them.
    pub k_wavelengths: usize,
    /// Spare receiver drop MRRs per site, parked off-resonance.
    pub k_mrrs: usize,
}

impl SpareConfig {
    /// The same spare count for every resource class.
    pub fn uniform(k: usize) -> Self {
        SpareConfig {
            k_wavelengths: k,
            k_mrrs: k,
        }
    }

    /// True when any spare resource is provisioned.
    pub fn any(&self) -> bool {
        self.k_wavelengths > 0 || self.k_mrrs > 0
    }
}

impl fmt::Display for SpareConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k_wl={} k_mrr={}", self.k_wavelengths, self.k_mrrs)
    }
}

/// One single-device fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceFault {
    /// The receiver drop MRR of signal `signal` (index into
    /// [`MappingPlan::routes`]) stops resonating.
    MrrDrop {
        /// Global signal index.
        signal: usize,
    },
    /// Cycle edge `edge` of ring waveguide `waveguide` breaks; no light
    /// crosses that segment on that waveguide any more.
    SegmentBreak {
        /// Ring waveguide index.
        waveguide: usize,
        /// Broken cycle edge (edge `i` joins cycle positions `i` and
        /// `i + 1 mod n`).
        edge: usize,
    },
    /// WDM channel `wavelength` is lost chip-wide.
    WavelengthLoss {
        /// Failed channel index.
        wavelength: u16,
    },
}

impl DeviceFault {
    /// Stable kebab-case class name for logs, counters and assertions.
    pub fn class(&self) -> &'static str {
        match self {
            DeviceFault::MrrDrop { .. } => "mrr-drop",
            DeviceFault::SegmentBreak { .. } => "segment-break",
            DeviceFault::WavelengthLoss { .. } => "wavelength-loss",
        }
    }
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceFault::MrrDrop { signal } => write!(f, "mrr-drop(signal {signal})"),
            DeviceFault::SegmentBreak { waveguide, edge } => {
                write!(f, "segment-break(waveguide {waveguide}, edge {edge})")
            }
            DeviceFault::WavelengthLoss { wavelength } => {
                write!(f, "wavelength-loss(λ{wavelength})")
            }
        }
    }
}

/// Every single-fault scenario of `design`: one MRR drop per signal, one
/// segment break per (ring waveguide × cycle edge), one wavelength loss
/// per channel in use. The exhaustive set
/// [`verify_single_fault_survivability`] walks.
pub fn enumerate_single_faults(design: &XRingDesign) -> Vec<DeviceFault> {
    let mut out = Vec::new();
    for signal in 0..design.plan.routes.len() {
        out.push(DeviceFault::MrrDrop { signal });
    }
    let n = design.cycle.len();
    for waveguide in 0..design.plan.ring_waveguides.len() {
        for edge in 0..n {
            out.push(DeviceFault::SegmentBreak { waveguide, edge });
        }
    }
    for wavelength in 0..design.plan.wavelengths_used() {
        out.push(DeviceFault::WavelengthLoss {
            wavelength: wavelength as u16,
        });
    }
    out
}

/// What a repair consumed, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairSummary {
    /// MRR drops absorbed by a parked spare ring.
    pub spare_mrrs: usize,
    /// Signals retuned to a spare wavelength channel.
    pub retuned_signals: usize,
    /// Arcs evicted from a broken segment and re-placed elsewhere.
    pub moved_arcs: usize,
    /// Dark protection waveguides materialized for the repair.
    pub protection_waveguides: usize,
    /// Demands that could not be repaired and were dropped.
    pub dropped_demands: usize,
}

/// A design with one [`DeviceFault`] applied (and repaired from spares
/// where possible).
#[derive(Debug, Clone)]
pub struct DegradedDesign {
    /// The post-fault design. When the fault was fully absorbed without
    /// touching any structure (`unchanged`), this is a plain clone.
    pub design: XRingDesign,
    /// The fault that was applied.
    pub fault: DeviceFault,
    /// What the repair consumed.
    pub repair: RepairSummary,
    /// Demands lost to the fault (empty when fully repaired).
    pub lost: Vec<(NodeId, NodeId)>,
    /// True when the degraded design is structurally identical to the
    /// original (the fault touched nothing, or a spare absorbed it in
    /// place); lets auditors share one audit across such scenarios.
    pub unchanged: bool,
}

/// Applies `fault` to `design`, repairing from the spare resources in
/// `options.spares` where possible. Demands that cannot be repaired are
/// dropped (and reported in [`DegradedDesign::lost`]) rather than left
/// silently broken — the post-fault audit then fails demands-served,
/// which is the honest outcome.
pub fn apply_fault(
    design: &XRingDesign,
    fault: DeviceFault,
    options: &SynthesisOptions,
) -> DegradedDesign {
    match fault {
        DeviceFault::MrrDrop { signal } if signal < design.plan.routes.len() => {
            if options.spares.k_mrrs >= 1 {
                return DegradedDesign {
                    design: design.clone(),
                    fault,
                    repair: RepairSummary {
                        spare_mrrs: 1,
                        ..Default::default()
                    },
                    lost: Vec::new(),
                    unchanged: true,
                };
            }
            let dead: BTreeSet<usize> = [signal].into_iter().collect();
            let (plan, lost) = strip_routes(design.plan.clone(), &dead);
            let degraded = with_plan(design, plan, design.pdn.clone(), options);
            DegradedDesign {
                design: degraded,
                fault,
                repair: RepairSummary {
                    dropped_demands: lost.len(),
                    ..Default::default()
                },
                lost,
                unchanged: false,
            }
        }
        DeviceFault::SegmentBreak { waveguide, edge }
            if waveguide < design.plan.ring_waveguides.len() && edge < design.cycle.len() =>
        {
            apply_segment_break(design, waveguide, edge, options)
        }
        DeviceFault::WavelengthLoss { wavelength } => {
            apply_wavelength_loss(design, wavelength, options)
        }
        // Out-of-range coordinates address no device: nothing degrades.
        _ => DegradedDesign {
            design: design.clone(),
            fault,
            repair: RepairSummary::default(),
            lost: Vec::new(),
            unchanged: true,
        },
    }
}

fn apply_wavelength_loss(
    design: &XRingDesign,
    wavelength: u16,
    options: &SynthesisOptions,
) -> DegradedDesign {
    let fault = DeviceFault::WavelengthLoss { wavelength };
    let failed = Wavelength::new(wavelength);
    let affected: Vec<usize> = (0..design.plan.routes.len())
        .filter(|&si| design.plan.routes[si].wavelength == failed)
        .collect();
    if affected.is_empty() {
        return DegradedDesign {
            design: design.clone(),
            fault,
            repair: RepairSummary::default(),
            lost: Vec::new(),
            unchanged: true,
        };
    }
    if options.spares.k_wavelengths == 0 {
        let dead: BTreeSet<usize> = affected.into_iter().collect();
        let (plan, lost) = strip_routes(design.plan.clone(), &dead);
        let degraded = with_plan(design, plan, design.pdn.clone(), options);
        return DegradedDesign {
            design: degraded,
            fault,
            repair: RepairSummary {
                dropped_demands: lost.len(),
                ..Default::default()
            },
            lost,
            unchanged: false,
        };
    }

    let mut plan = design.plan.clone();
    let mut retuned = 0usize;
    // Ring lanes: migrate each waveguide's failed lane wholesale to a
    // fresh spare lane. The arcs keep their relative structure, so
    // edge-disjointness and opening avoidance carry over; the vacated
    // lane stays (empty) so other lane indices remain stable. The spare
    // index is strictly below `max_wavelengths` because mapping used only
    // `max_wavelengths - k_wavelengths` lanes.
    for wi in 0..plan.ring_waveguides.len() {
        let li = wavelength as usize;
        let taken = {
            let wg = &mut plan.ring_waveguides[wi];
            if li < wg.lanes.len() && !wg.lanes[li].arcs.is_empty() {
                Some(std::mem::take(&mut wg.lanes[li].arcs))
            } else {
                None
            }
        };
        if let Some(arcs) = taken {
            let spare = plan.ring_waveguides[wi].lanes.len();
            for arc in &arcs {
                plan.routes[arc.signal].wavelength = Wavelength::new(spare as u16);
                retuned += 1;
            }
            plan.ring_waveguides[wi].lanes.push(Lane { arcs });
        }
    }
    // Shortcut signals on the failed channel: retune to a spare channel
    // that no wire-sharing (or crossing-coupled) neighbour uses.
    let mut dead: BTreeSet<usize> = BTreeSet::new();
    let shortcut_victims: Vec<usize> = affected
        .iter()
        .copied()
        .filter(|&si| !matches!(plan.routes[si].kind, RouteKind::Ring { .. }))
        .collect();
    for si in shortcut_victims {
        match spare_shortcut_channel(&plan, &design.shortcuts, si, failed, options) {
            Some(c) => {
                plan.routes[si].wavelength = c;
                retuned += 1;
            }
            None => {
                dead.insert(si);
            }
        }
    }
    let dropped = dead.len();
    let (plan, lost) = strip_routes(plan, &dead);
    let degraded = with_plan(design, plan, design.pdn.clone(), options);
    DegradedDesign {
        design: degraded,
        fault,
        repair: RepairSummary {
            retuned_signals: retuned,
            dropped_demands: dropped,
            ..Default::default()
        },
        lost,
        unchanged: false,
    }
}

fn apply_segment_break(
    design: &XRingDesign,
    waveguide: usize,
    edge: usize,
    options: &SynthesisOptions,
) -> DegradedDesign {
    let fault = DeviceFault::SegmentBreak { waveguide, edge };
    let mut victims: Vec<LaneArc> = design.plan.ring_waveguides[waveguide]
        .lanes
        .iter()
        .flat_map(|lane| lane.arcs.iter().filter(|a| a.edges.contains(&edge)))
        .cloned()
        .collect();
    if victims.is_empty() {
        // No arc crosses the broken segment: the break is physically
        // real but behaviourally invisible.
        return DegradedDesign {
            design: design.clone(),
            fault,
            repair: RepairSummary::default(),
            lost: Vec::new(),
            unchanged: true,
        };
    }

    let mut plan = design.plan.clone();
    for lane in &mut plan.ring_waveguides[waveguide].lanes {
        lane.arcs.retain(|a| !a.edges.contains(&edge));
    }
    let dir = plan.ring_waveguides[waveguide].direction;
    // Longest-first, like the original best-fit mapping.
    victims.sort_by_key(|a| std::cmp::Reverse(a.edges.len()));
    let base_waveguides = plan.ring_waveguides.len();
    let mut moves: Vec<(usize, usize)> = Vec::new(); // (signal, new waveguide)
    let mut dead: BTreeSet<usize> = BTreeSet::new();
    for arc in &victims {
        match place_displaced(&mut plan, waveguide, dir, arc, options) {
            Some((nwi, nli)) => {
                plan.routes[arc.signal].kind = RouteKind::Ring { waveguide: nwi };
                plan.routes[arc.signal].wavelength = Wavelength::new(nli as u16);
                moves.push((arc.signal, nwi));
            }
            None => {
                dead.insert(arc.signal);
            }
        }
    }
    let protection = plan.ring_waveguides.len() - base_waveguides;

    // PDN patch: a moved sender now modulates onto a waveguide its PDN
    // branch never fed. The physical repair taps the existing branch at
    // the same site, so the branch loss carries over; clone it under the
    // new (waveguide, node) key so `loss_for` stays total.
    let mut pdn = design.pdn.clone();
    if let Some(p) = &mut pdn {
        for &(signal, nwi) in &moves {
            let from = plan.routes[signal].from;
            if !p.sender_loss_db.contains_key(&(nwi, from.0)) {
                let carried = p
                    .sender_loss_db
                    .get(&(waveguide, from.0))
                    .copied()
                    .unwrap_or(0.0);
                p.sender_loss_db.insert((nwi, from.0), carried);
            }
        }
    }

    let dropped = dead.len();
    let (plan, lost) = strip_routes(plan, &dead);
    let mut degraded = with_plan(design, plan, pdn, options);
    // Mark the physical break in the layout: an Opening right before the
    // broken Segment station, so any hop that (incorrectly) still crossed
    // it would fail layout validation.
    insert_break_opening(&mut degraded.layout, &degraded.cycle, dir, waveguide, edge);
    DegradedDesign {
        design: degraded,
        fault,
        repair: RepairSummary {
            moved_arcs: moves.len(),
            protection_waveguides: protection,
            dropped_demands: dropped,
            ..Default::default()
        },
        lost,
        unchanged: false,
    }
}

/// Re-places an arc evicted from broken waveguide `broken`: first an
/// existing accepting lane on another same-direction waveguide, then a
/// fresh lane within the *full* wavelength budget (the reserved spare
/// channels exist exactly for this), finally — when spares are
/// provisioned — a dark protection waveguide materialized for the
/// repair. Returns the new `(waveguide, lane)` or `None` when the arc
/// cannot be re-placed.
fn place_displaced(
    plan: &mut MappingPlan,
    broken: usize,
    dir: Direction,
    arc: &LaneArc,
    options: &SynthesisOptions,
) -> Option<(usize, usize)> {
    for (wi, wg) in plan.ring_waveguides.iter_mut().enumerate() {
        if wi == broken || wg.direction != dir {
            continue;
        }
        for (li, lane) in wg.lanes.iter_mut().enumerate() {
            if lane.accepts(&arc.edges, &arc.interior, wg.opening) {
                lane.arcs.push(arc.clone());
                return Some((wi, li));
            }
        }
    }
    for (wi, wg) in plan.ring_waveguides.iter_mut().enumerate() {
        if wi == broken || wg.direction != dir || wg.lanes.len() >= options.max_wavelengths {
            continue;
        }
        if let Some(open) = wg.opening {
            if arc.interior.contains(&open) {
                continue;
            }
        }
        wg.lanes.push(Lane {
            arcs: vec![arc.clone()],
        });
        return Some((wi, wg.lanes.len() - 1));
    }
    if !options.spares.any() {
        return None;
    }
    if options.max_waveguides != 0 && plan.ring_waveguides.len() >= options.max_waveguides {
        return None;
    }
    let level = plan
        .ring_waveguides
        .iter()
        .filter(|w| w.direction == dir)
        .count();
    plan.ring_waveguides.push(RingWaveguide {
        direction: dir,
        level,
        opening: None,
        lanes: vec![Lane {
            arcs: vec![arc.clone()],
        }],
    });
    Some((plan.ring_waveguides.len() - 1, 0))
}

/// The wires `(shortcut index, forward?)` a shortcut-routed signal
/// travels.
fn shortcut_wires(route: &SignalRoute, shortcuts: &ShortcutPlan) -> Vec<(usize, bool)> {
    match route.kind {
        RouteKind::Ring { .. } => Vec::new(),
        RouteKind::ShortcutDirect { shortcut } => {
            let fwd = shortcuts.shortcuts[shortcut].a == route.from;
            vec![(shortcut, fwd)]
        }
        RouteKind::ShortcutCse { enter, exit } => {
            let fwd = shortcuts.shortcuts[enter].a == route.from;
            vec![(enter, fwd), (exit, fwd)]
        }
    }
}

/// True when the two wire sets share a physical wire (same shortcut,
/// same direction of travel). Signals that merely ride crossing-partner
/// shortcuts are *not* coupled: the original mapping co-assigns one
/// channel across a crossing pair (both CSE routes of a corridor share
/// λ2), so a shared channel on partner wires is valid by construction —
/// only a shared wire forces distinct channels.
fn wires_coupled(a: &[(usize, bool)], b: &[(usize, bool)]) -> bool {
    a.iter()
        .any(|&(s, f)| b.iter().any(|&(t, g)| s == t && f == g))
}

/// A spare channel for shortcut signal `si` after channel `failed` died:
/// the lowest reserved spare index no coupled neighbour currently uses.
fn spare_shortcut_channel(
    plan: &MappingPlan,
    shortcuts: &ShortcutPlan,
    si: usize,
    failed: Wavelength,
    options: &SynthesisOptions,
) -> Option<Wavelength> {
    let mine = shortcut_wires(&plan.routes[si], shortcuts);
    let lo = options
        .max_wavelengths
        .saturating_sub(options.spares.k_wavelengths);
    for c in lo..options.max_wavelengths {
        let candidate = Wavelength::new(c as u16);
        if candidate == failed {
            continue;
        }
        let clear = plan.routes.iter().enumerate().all(|(sj, r)| {
            sj == si
                || r.wavelength != candidate
                || matches!(r.kind, RouteKind::Ring { .. })
                || !wires_coupled(&mine, &shortcut_wires(r, shortcuts))
        });
        if clear {
            return Some(candidate);
        }
    }
    None
}

/// Removes the routes in `dead` from `plan`, remapping every surviving
/// arc's global signal index, and returns the lost demand pairs.
fn strip_routes(
    mut plan: MappingPlan,
    dead: &BTreeSet<usize>,
) -> (MappingPlan, Vec<(NodeId, NodeId)>) {
    let mut lost = Vec::new();
    let mut remap = vec![usize::MAX; plan.routes.len()];
    let mut routes = Vec::with_capacity(plan.routes.len() - dead.len());
    for (si, r) in plan.routes.iter().enumerate() {
        if dead.contains(&si) {
            lost.push((r.from, r.to));
        } else {
            remap[si] = routes.len();
            routes.push(*r);
        }
    }
    for wg in &mut plan.ring_waveguides {
        for lane in &mut wg.lanes {
            lane.arcs.retain(|a| !dead.contains(&a.signal));
            for arc in &mut lane.arcs {
                arc.signal = remap[arc.signal];
            }
        }
    }
    plan.routes = routes;
    (plan, lost)
}

/// A clone of `design` carrying `plan`/`pdn` with the layout re-realized
/// from them.
fn with_plan(
    design: &XRingDesign,
    plan: MappingPlan,
    pdn: Option<crate::pdn::PdnDesign>,
    options: &SynthesisOptions,
) -> XRingDesign {
    let layout = realize(
        &design.net,
        &design.cycle,
        &design.shortcuts,
        &plan,
        pdn.as_ref(),
        options.spacing,
    );
    XRingDesign {
        plan,
        pdn,
        layout,
        ..design.clone()
    }
}

/// Inserts an [`Station::Opening`] immediately before the Segment
/// station of `edge` on ring waveguide `wi`, shifting the hop indices of
/// every signal on that waveguide past the insertion point. Surviving
/// signals never traverse the broken segment, so their (shifted) spans
/// stay opening-free and layout validation still passes; a signal that
/// *did* cross it would now fail validation — the break is self-checking.
fn insert_break_opening(
    layout: &mut LayoutModel,
    cycle: &RingCycle,
    dir: Direction,
    wi: usize,
    edge: usize,
) {
    let n = cycle.len();
    let seq: Vec<usize> = match dir {
        Direction::Cw => (0..n).collect(),
        Direction::Ccw => (0..n).map(|k| (n - k) % n).collect(),
    };
    let mut seg = 0usize;
    let mut insert_at = None;
    for (idx, station) in layout.waveguides[wi].stations.iter().enumerate() {
        if matches!(station, Station::Segment { .. }) {
            // The k-th Segment in travel order covers cycle edge seq[k]
            // (clockwise) or the edge into the next position
            // (counter-clockwise) — mirroring `realize`.
            let e = match dir {
                Direction::Cw => seq[seg],
                Direction::Ccw => seq[(seg + 1) % n],
            };
            if e == edge {
                insert_at = Some(idx);
                break;
            }
            seg += 1;
        }
    }
    let at = insert_at.expect("every cycle edge has a Segment station on a ring waveguide");
    layout.waveguides[wi].stations.insert(at, Station::Opening);
    for sig in &mut layout.signals {
        for hop in &mut sig.hops {
            if hop.waveguide == wi {
                if hop.from_station >= at {
                    hop.from_station += 1;
                }
                if hop.to_station >= at {
                    hop.to_station += 1;
                }
            }
        }
    }
}

/// The outcome of auditing one degraded design against the original
/// traffic contract.
#[derive(Debug, Clone)]
pub struct FaultAudit {
    /// The fault scenario.
    pub fault: DeviceFault,
    /// What the repair consumed.
    pub repair: RepairSummary,
    /// The structural + physical-bounds audit of the degraded design.
    pub report: AuditReport,
    /// Demands the original traffic contract expects.
    pub demands_expected: usize,
    /// Demands the degraded design still serves.
    pub demands_served: usize,
    /// Worst post-failure SNR (present when crosstalk was evaluated).
    pub post_snr_db: Option<f64>,
    /// True when the audit is clean and no demand was lost.
    pub survived: bool,
}

impl FaultAudit {
    /// Served demands as a fraction of the expected demands (1.0 for an
    /// empty contract).
    pub fn served_fraction(&self) -> f64 {
        if self.demands_expected == 0 {
            1.0
        } else {
            self.demands_served as f64 / self.demands_expected as f64
        }
    }
}

/// Audits an already-degraded design. Exposed so sweep drivers can apply
/// once and audit without re-deriving the fault.
pub fn audit_degraded(
    degraded: &DegradedDesign,
    options: &SynthesisOptions,
    xtalk: Option<&CrosstalkParams>,
) -> FaultAudit {
    let d = &degraded.design;
    let expected = options.traffic.pairs(&d.net);
    let mut report = audit_structure(&d.net, &d.cycle, &d.plan, &d.layout, &expected);
    let evaluated = d.report("fault-audit", &options.loss, xtalk, &PowerParams::default());
    report.verdicts.push(audit_report_bounds(&evaluated));
    let survived = report.is_clean() && degraded.lost.is_empty();
    FaultAudit {
        fault: degraded.fault,
        repair: degraded.repair,
        demands_expected: expected.len(),
        demands_served: d.plan.routes.len(),
        post_snr_db: evaluated.worst_snr_db,
        survived,
        report,
    }
}

/// Applies `fault` to `design` and audits the degraded design against
/// the original traffic contract under `options`. Pass `xtalk` to also
/// evaluate post-failure SNR (loss-only otherwise — much cheaper, which
/// matters when enumerating thousands of scenarios).
pub fn audit_design_under_fault(
    design: &XRingDesign,
    fault: DeviceFault,
    options: &SynthesisOptions,
    xtalk: Option<&CrosstalkParams>,
) -> FaultAudit {
    let degraded = apply_fault(design, fault, options);
    audit_degraded(&degraded, options, xtalk)
}

/// Aggregate of an exhaustive single-fault sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivabilityReport {
    /// Scenarios enumerated.
    pub scenarios: usize,
    /// Scenarios whose post-failure audit was clean with every demand
    /// served.
    pub survived: usize,
    /// Lowest served-demand fraction across scenarios.
    pub min_served_fraction: f64,
    /// Worst post-failure SNR observed (when crosstalk was evaluated).
    pub worst_post_snr_db: Option<f64>,
    /// Description of the worst failing scenario, when any failed.
    pub worst: Option<String>,
}

impl SurvivabilityReport {
    /// Fraction of scenarios survived (the *fault margin*; 1.0 when no
    /// scenario exists).
    pub fn fault_margin(&self) -> f64 {
        if self.scenarios == 0 {
            1.0
        } else {
            self.survived as f64 / self.scenarios as f64
        }
    }

    /// True when every enumerated single fault is survivable.
    pub fn fully_survivable(&self) -> bool {
        self.survived == self.scenarios
    }
}

/// The single-fault scenarios `spares` claims to protect against: MRR
/// drops when `k_mrrs > 0`; wavelength losses *and* segment breaks when
/// `k_wavelengths > 0` (both repairs draw on the reserved spare
/// channels). The synthesizer gates release on exactly this set — a
/// partial spare config (say MRR spares only) is not rejected for fault
/// classes it never promised to cover.
pub fn protected_single_faults(design: &XRingDesign, spares: SpareConfig) -> Vec<DeviceFault> {
    enumerate_single_faults(design)
        .into_iter()
        .filter(|f| match f {
            DeviceFault::MrrDrop { .. } => spares.k_mrrs > 0,
            DeviceFault::SegmentBreak { .. } | DeviceFault::WavelengthLoss { .. } => {
                spares.k_wavelengths > 0
            }
        })
        .collect()
}

/// Exhaustively audits every single-fault scenario of `design` —
/// [`enumerate_single_faults`], all classes, regardless of spare
/// provisioning. This is the honest sweep metric: a zero-spare design
/// reports its true (sub-unit) fault margin here.
pub fn verify_single_fault_survivability(
    design: &XRingDesign,
    options: &SynthesisOptions,
    xtalk: Option<&CrosstalkParams>,
) -> SurvivabilityReport {
    verify_faults(design, &enumerate_single_faults(design), options, xtalk)
}

/// Audits the given fault scenarios of `design`. Scenarios whose repair
/// leaves the design untouched share one audit.
pub fn verify_faults(
    design: &XRingDesign,
    faults: &[DeviceFault],
    options: &SynthesisOptions,
    xtalk: Option<&CrosstalkParams>,
) -> SurvivabilityReport {
    let _span = xring_obs::span("survivability");
    let mut unchanged_memo: Option<FaultAudit> = None;
    let mut survived = 0usize;
    let mut min_served = 1.0f64;
    let mut worst_snr: Option<f64> = None;
    let mut worst: Option<String> = None;
    for fault in faults {
        let t0 = Instant::now();
        let degraded = apply_fault(design, *fault, options);
        let audit = if degraded.unchanged {
            match &unchanged_memo {
                Some(memo) => FaultAudit {
                    fault: *fault,
                    repair: degraded.repair,
                    ..memo.clone()
                },
                None => {
                    let a = audit_degraded(&degraded, options, xtalk);
                    unchanged_memo = Some(a.clone());
                    a
                }
            }
        } else {
            audit_degraded(&degraded, options, xtalk)
        };
        xring_obs::record_hist("survivability.scenario_us", t0.elapsed().as_micros() as u64);
        xring_obs::counter("survivability.scenarios", 1);
        let fraction = audit.served_fraction();
        if audit.survived {
            survived += 1;
            xring_obs::counter("survivability.survived", 1);
        } else if worst.is_none() || fraction < min_served {
            worst = Some(format!("{fault}: {}", audit.report.summary()));
        }
        min_served = min_served.min(fraction);
        worst_snr = match (worst_snr, audit.post_snr_db) {
            (Some(w), Some(s)) => Some(w.min(s)),
            (None, s) => s,
            (w, None) => w,
        };
    }
    SurvivabilityReport {
        scenarios: faults.len(),
        survived,
        min_served_fraction: min_served,
        worst_post_snr_db: worst_snr,
        worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netspec::NetworkSpec;
    use crate::synth::Synthesizer;

    fn synth(options: &SynthesisOptions) -> XRingDesign {
        Synthesizer::new(options.clone())
            .synthesize(&NetworkSpec::proton_8())
            .expect("synthesized")
    }

    #[test]
    fn enumeration_covers_every_device() {
        let options = SynthesisOptions::with_wavelengths(8);
        let design = synth(&options);
        let faults = enumerate_single_faults(&design);
        let signals = design.plan.routes.len();
        let segments = design.plan.ring_waveguides.len() * design.cycle.len();
        let channels = design.plan.wavelengths_used();
        assert_eq!(faults.len(), signals + segments + channels);
        assert_eq!(
            faults.iter().filter(|f| f.class() == "mrr-drop").count(),
            signals
        );
    }

    #[test]
    fn mrr_drop_without_spares_loses_exactly_one_demand() {
        let options = SynthesisOptions::with_wavelengths(8);
        let design = synth(&options);
        let audit =
            audit_design_under_fault(&design, DeviceFault::MrrDrop { signal: 0 }, &options, None);
        assert!(!audit.survived);
        assert_eq!(audit.demands_served, audit.demands_expected - 1);
        assert_eq!(audit.repair.dropped_demands, 1);
        // The rest of the design is still well-formed: only the
        // demands-served invariant fails.
        let failures: Vec<_> = audit.report.failures().collect();
        assert_eq!(failures.len(), 1, "{}", audit.report.summary());
    }

    #[test]
    fn mrr_drop_with_spares_is_absorbed_in_place() {
        let options = SynthesisOptions::with_wavelengths(8).with_spares(SpareConfig {
            k_wavelengths: 0,
            k_mrrs: 1,
        });
        let design = synth(&options);
        let degraded = apply_fault(&design, DeviceFault::MrrDrop { signal: 3 }, &options);
        assert!(degraded.unchanged);
        assert_eq!(degraded.repair.spare_mrrs, 1);
        let audit = audit_degraded(&degraded, &options, None);
        assert!(audit.survived, "{}", audit.report.summary());
        assert_eq!(audit.served_fraction(), 1.0);
    }

    #[test]
    fn wavelength_loss_with_spares_retunes_and_stays_clean() {
        let options = SynthesisOptions::with_wavelengths(8).with_spares(SpareConfig::uniform(1));
        let design = synth(&options);
        for wl in 0..design.plan.wavelengths_used() as u16 {
            let audit = audit_design_under_fault(
                &design,
                DeviceFault::WavelengthLoss { wavelength: wl },
                &options,
                None,
            );
            assert!(
                audit.survived,
                "λ{wl} not survivable: {}",
                audit.report.summary()
            );
            assert_eq!(audit.served_fraction(), 1.0);
        }
    }

    #[test]
    fn segment_break_with_spares_reroutes_every_victim() {
        let options = SynthesisOptions::with_wavelengths(8).with_spares(SpareConfig::uniform(1));
        let design = synth(&options);
        let n = design.cycle.len();
        for wi in 0..design.plan.ring_waveguides.len() {
            for edge in 0..n {
                let audit = audit_design_under_fault(
                    &design,
                    DeviceFault::SegmentBreak {
                        waveguide: wi,
                        edge,
                    },
                    &options,
                    None,
                );
                assert!(
                    audit.survived,
                    "waveguide {wi} edge {edge}: {}",
                    audit.report.summary()
                );
            }
        }
    }

    #[test]
    fn zero_spare_design_has_sub_unit_fault_margin() {
        let options = SynthesisOptions::with_wavelengths(8);
        let design = synth(&options);
        let report = verify_single_fault_survivability(&design, &options, None);
        assert!(report.scenarios > 0);
        assert!(
            report.fault_margin() < 1.0,
            "zero-spare design cannot survive MRR drops"
        );
        assert!(report.min_served_fraction < 1.0);
        assert!(report.worst.is_some());
    }

    #[test]
    fn spared_synthesis_is_fully_survivable() {
        let options = SynthesisOptions::with_wavelengths(8).with_spares(SpareConfig::uniform(1));
        let design = synth(&options);
        let report = verify_single_fault_survivability(&design, &options, None);
        assert!(report.fully_survivable(), "{:?}", report.worst);
        assert_eq!(report.min_served_fraction, 1.0);
        assert_eq!(report.fault_margin(), 1.0);
    }

    #[test]
    fn fault_display_and_class_names_are_stable() {
        assert_eq!(
            DeviceFault::MrrDrop { signal: 5 }.to_string(),
            "mrr-drop(signal 5)"
        );
        assert_eq!(
            DeviceFault::SegmentBreak {
                waveguide: 1,
                edge: 2
            }
            .to_string(),
            "segment-break(waveguide 1, edge 2)"
        );
        assert_eq!(
            DeviceFault::WavelengthLoss { wavelength: 3 }.to_string(),
            "wavelength-loss(λ3)"
        );
        assert_eq!(DeviceFault::MrrDrop { signal: 0 }.class(), "mrr-drop");
        assert_eq!(
            DeviceFault::SegmentBreak {
                waveguide: 0,
                edge: 0
            }
            .class(),
            "segment-break"
        );
        assert_eq!(
            DeviceFault::WavelengthLoss { wavelength: 0 }.class(),
            "wavelength-loss"
        );
    }
}
