//! Step 3 (second half): ring waveguide opening (Sec. III-C, Fig. 8).
//!
//! For every ring waveguide, the node passed by the fewest signals is
//! chosen as the opening candidate; signals still passing it are migrated
//! to other ring waveguides (within the `#wl` cap and without crossing
//! those waveguides' openings), and the waveguide segment between the
//! node's receiver and sender is removed. Openings let the PDN reach inner
//! senders without crossing any ring waveguide.

use crate::mapping::{LaneArc, MappingPlan, RouteKind};
use crate::ring::RingCycle;
use xring_phot::Wavelength;

/// Result of the opening pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpeningStats {
    /// Waveguides successfully opened.
    pub opened: usize,
    /// Waveguides left closed (no feasible migration for their traffic).
    pub unopened: usize,
    /// Signals migrated to other waveguides.
    pub migrated: usize,
}

/// Opens every ring waveguide where possible, mutating `plan` in place.
pub fn open_rings(
    cycle: &RingCycle,
    plan: &mut MappingPlan,
    max_wavelengths: usize,
) -> OpeningStats {
    let mut stats = OpeningStats::default();
    let n = cycle.len();

    // Newly created migration-target waveguides are appended and get
    // their own opening pass in later iterations.
    let mut wi = 0;
    while wi < plan.ring_waveguides.len() {
        // Count passing signals per cycle position.
        let mut pass_count = vec![0usize; n];
        for lane in &plan.ring_waveguides[wi].lanes {
            for arc in &lane.arcs {
                for &p in &arc.interior {
                    pass_count[p] += 1;
                }
            }
        }
        let candidate = (0..n)
            .min_by_key(|&p| (pass_count[p], p))
            .expect("cycle is non-empty");

        // Collect the arcs that pass the candidate.
        let passers: Vec<(usize, usize, LaneArc)> = plan.ring_waveguides[wi]
            .lanes
            .iter()
            .enumerate()
            .flat_map(|(li, lane)| {
                lane.arcs
                    .iter()
                    .filter(|a| a.interior.contains(&candidate))
                    .cloned()
                    .map(move |a| (wi, li, a))
            })
            .collect();

        // Try to migrate every passer to another waveguide of the same
        // direction. All-or-nothing: tentatively place, roll back on
        // failure.
        let dir = plan.ring_waveguides[wi].direction;
        let real_count = plan.ring_waveguides.len();
        // (dst_wg, dst_lane, arc, src_lane); dst_wg >= real_count means a
        // fresh waveguide created on commit.
        let mut placements: Vec<(usize, usize, LaneArc, usize)> = Vec::new();
        // Virtual lane view: (waveguide, lane) -> pending arcs, so the
        // all-or-nothing tentative pass stays consistent with itself.
        let pending_fits = |placements: &[(usize, usize, LaneArc, usize)],
                            dwi: usize,
                            dli: usize,
                            arc: &LaneArc| {
            placements
                .iter()
                .filter(|(pw, pl, _, _)| *pw == dwi && *pl == dli)
                .all(|(_, _, parc, _)| parc.edges.iter().all(|e| !arc.edges.contains(e)))
        };
        let mut fresh_lane_counts: Vec<usize> = Vec::new(); // per fresh waveguide
        for (_, src_lane, arc) in &passers {
            // Phase A: fit into an existing lane on another same-direction
            // waveguide, preferring the *innermost* destination (lowest
            // index: outer concentric rings are longer, so migrating a
            // long arc outward would inflate its path), then the fullest
            // lane. Openings already set are respected; unprocessed
            // waveguides are re-checked when their turn comes.
            let mut best: Option<(usize, usize, usize)> = None; // (dwi, dli, covered)
            for (dwi, dwg) in plan.ring_waveguides.iter().enumerate() {
                if dwi == wi || dwg.direction != dir {
                    continue;
                }
                for (dli, dlane) in dwg.lanes.iter().enumerate() {
                    if dlane.accepts(&arc.edges, &arc.interior, dwg.opening)
                        && pending_fits(&placements, dwi, dli, arc)
                    {
                        let covered: usize = dlane.arcs.iter().map(|a| a.edges.len()).sum();
                        let better = match best {
                            None => true,
                            Some((bwi, _, bcov)) => dwi < bwi || (dwi == bwi && covered > bcov),
                        };
                        if better {
                            best = Some((dwi, dli, covered));
                        }
                    }
                }
            }
            if let Some((dwi, dli, _)) = best {
                placements.push((dwi, dli, arc.clone(), *src_lane));
                continue;
            }
            // Phase B: lanes of pending fresh waveguides.
            let mut placed = false;
            for (f, &lane_count) in fresh_lane_counts.iter().enumerate() {
                let dwi = real_count + f;
                for dli in 0..lane_count {
                    if pending_fits(&placements, dwi, dli, arc) {
                        placements.push((dwi, dli, arc.clone(), *src_lane));
                        placed = true;
                        break;
                    }
                }
                if placed {
                    break;
                }
            }
            if placed {
                continue;
            }
            // Phase C: a new lane on the fullest waveguide with headroom
            // (counting pending new lanes).
            let mut best_new: Option<(usize, usize, usize)> = None; // (lanes, dwi, new_li)
            for (dwi, dwg) in plan.ring_waveguides.iter().enumerate() {
                if dwi == wi || dwg.direction != dir {
                    continue;
                }
                let pending_new = placements
                    .iter()
                    .filter(|(pw, pl, _, _)| *pw == dwi && *pl >= dwg.lanes.len())
                    .map(|(_, pl, _, _)| pl + 1 - dwg.lanes.len())
                    .max()
                    .unwrap_or(0);
                let effective = dwg.lanes.len() + pending_new;
                if effective < max_wavelengths
                    && best_new.map(|(l, _, _)| effective > l).unwrap_or(true)
                {
                    best_new = Some((effective, dwi, effective));
                }
            }
            if let Some((_, dwi, new_li)) = best_new {
                placements.push((dwi, new_li, arc.clone(), *src_lane));
                continue;
            }
            // Phase D: new lane on a fresh waveguide, else a brand-new
            // fresh waveguide.
            let mut placed = false;
            for (f, lane_count) in fresh_lane_counts.iter_mut().enumerate() {
                if *lane_count < max_wavelengths {
                    placements.push((real_count + f, *lane_count, arc.clone(), *src_lane));
                    *lane_count += 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                placements.push((
                    real_count + fresh_lane_counts.len(),
                    0,
                    arc.clone(),
                    *src_lane,
                ));
                fresh_lane_counts.push(1);
            }
        }

        // Commit: remove passers from this waveguide, insert at targets
        // (creating fresh waveguides/lanes on demand), update routes, set
        // the opening.
        for (_, src_lane, arc) in &passers {
            let lane = &mut plan.ring_waveguides[wi].lanes[*src_lane];
            lane.arcs.retain(|a| a.signal != arc.signal);
        }
        for (dwi, dli, arc, _) in placements {
            while plan.ring_waveguides.len() <= dwi {
                let level = plan
                    .ring_waveguides
                    .iter()
                    .filter(|w| w.direction == dir)
                    .count();
                plan.ring_waveguides.push(crate::mapping::RingWaveguide {
                    direction: dir,
                    level,
                    opening: None,
                    lanes: Vec::new(),
                });
            }
            let dwg = &mut plan.ring_waveguides[dwi];
            while dwg.lanes.len() <= dli {
                dwg.lanes.push(Default::default());
            }
            let signal = arc.signal;
            dwg.lanes[dli].arcs.push(arc);
            plan.routes[signal].kind = RouteKind::Ring { waveguide: dwi };
            plan.routes[signal].wavelength = Wavelength::new(dli as u16);
            stats.migrated += 1;
        }
        plan.ring_waveguides[wi].opening = Some(candidate);
        stats.opened += 1;
        wi += 1;
    }

    debug_assert_eq!(plan.validate(), Ok(()));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::map_signals;
    use crate::netspec::NetworkSpec;
    use crate::ring::RingBuilder;
    use crate::shortcut::{plan_shortcuts, ShortcutPlan};

    #[test]
    fn every_waveguide_opened_on_8_nodes() {
        let net = NetworkSpec::proton_8();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let sc = plan_shortcuts(&net, &ring.cycle);
        let mut plan = map_signals(&net, &ring.cycle, &sc, 8, 0).expect("mapped");
        let stats = open_rings(&ring.cycle, &mut plan, 8);
        assert_eq!(stats.unopened, 0, "all waveguides should open");
        assert!(plan.ring_waveguides.iter().all(|w| w.opening.is_some()));
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn openings_not_passed_after_migration() {
        let net = NetworkSpec::psion_16();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let sc = plan_shortcuts(&net, &ring.cycle);
        let mut plan = map_signals(&net, &ring.cycle, &sc, 14, 0).expect("mapped");
        open_rings(&ring.cycle, &mut plan, 14);
        for wg in &plan.ring_waveguides {
            if let Some(open) = wg.opening {
                for lane in &wg.lanes {
                    for arc in &lane.arcs {
                        assert!(!arc.interior.contains(&open), "arc still passes opening");
                    }
                }
            }
        }
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn migration_preserves_signal_count() {
        let net = NetworkSpec::psion_16();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let mut plan =
            map_signals(&net, &ring.cycle, &ShortcutPlan::empty(), 16, 0).expect("mapped");
        let before: usize = plan
            .ring_waveguides
            .iter()
            .flat_map(|w| &w.lanes)
            .map(|l| l.arcs.len())
            .sum();
        open_rings(&ring.cycle, &mut plan, 16);
        let after: usize = plan
            .ring_waveguides
            .iter()
            .flat_map(|w| &w.lanes)
            .map(|l| l.arcs.len())
            .sum();
        assert_eq!(before, after);
    }

    #[test]
    fn opening_pass_is_idempotent_on_opened_plan() {
        let net = NetworkSpec::proton_8();
        let ring = RingBuilder::new().build(&net).expect("ring");
        let mut plan =
            map_signals(&net, &ring.cycle, &ShortcutPlan::empty(), 8, 0).expect("mapped");
        open_rings(&ring.cycle, &mut plan, 8);
        let snapshot = plan.clone();
        let stats2 = open_rings(&ring.cycle, &mut plan, 8);
        // Second pass keeps all openings (possibly re-deriving the same
        // candidates) and migrates nothing new.
        assert_eq!(stats2.migrated, 0);
        assert_eq!(plan.ring_waveguides.len(), snapshot.ring_waveguides.len());
    }
}
