//! Property-based tests of the synthesis pipeline over random floorplans.

use proptest::prelude::*;
use xring_core::{
    map_signals, open_rings, plan_shortcuts, Direction, NetworkSpec, RingAlgorithm, RingBuilder,
    RouteKind, ShortcutPlan, SynthesisOptions, Synthesizer,
};
use xring_phot::{CrosstalkParams, LossParams, PowerParams};

fn arb_net() -> impl Strategy<Value = NetworkSpec> {
    (4usize..10, 0u64..1_000).prop_map(|(n, seed)| {
        NetworkSpec::irregular(n, 8_000, seed + 1).expect("irregular nets are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_is_always_a_hamiltonian_cycle(net in arb_net()) {
        for algorithm in [RingAlgorithm::Milp, RingAlgorithm::Heuristic, RingAlgorithm::Perimeter] {
            let out = RingBuilder::new()
                .with_algorithm(algorithm)
                .build(&net)
                .expect("ring builds");
            prop_assert_eq!(out.cycle.len(), net.len());
            let mut seen = vec![false; net.len()];
            for id in out.cycle.order() {
                prop_assert!(!seen[id.index()]);
                seen[id.index()] = true;
            }
            // Perimeter equals the sum of edge lengths and of arc pairs.
            let p = out.cycle.perimeter();
            prop_assert_eq!(
                p,
                (0..net.len()).map(|e| out.cycle.edge_length(e)).sum::<i64>()
            );
        }
    }

    #[test]
    fn milp_ring_never_loses_to_heuristic_without_merges(net in arb_net()) {
        let milp = RingBuilder::new().build(&net).expect("milp");
        if milp.stats.subcycles_merged == 0 {
            let heur = RingBuilder::new()
                .with_algorithm(RingAlgorithm::Heuristic)
                .build(&net)
                .expect("heuristic");
            prop_assert!(milp.cycle.perimeter() <= heur.cycle.perimeter());
        }
    }

    #[test]
    fn arcs_cover_the_cycle_consistently(net in arb_net()) {
        let out = RingBuilder::new()
            .with_algorithm(RingAlgorithm::Heuristic)
            .build(&net)
            .expect("ring");
        let c = &out.cycle;
        let n = c.len();
        for a in 0..n {
            for b in 0..n {
                if a == b { continue; }
                let cw = c.arc_edges(a, b, Direction::Cw);
                let ccw = c.arc_edges(a, b, Direction::Ccw);
                // Together the two directions cover every edge exactly once.
                prop_assert_eq!(cw.len() + ccw.len(), n);
                let mut all: Vec<usize> = cw.iter().chain(ccw.iter()).copied().collect();
                all.sort_unstable();
                prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
                // Lengths add up to the perimeter.
                prop_assert_eq!(
                    c.arc_length(a, b, Direction::Cw) + c.arc_length(a, b, Direction::Ccw),
                    c.perimeter()
                );
            }
        }
    }

    #[test]
    fn mapping_is_always_valid_and_complete(net in arb_net(), wl in 2usize..12) {
        let ring = RingBuilder::new()
            .with_algorithm(RingAlgorithm::Heuristic)
            .build(&net)
            .expect("ring");
        let sc = plan_shortcuts(&net, &ring.cycle);
        let plan = map_signals(&net, &ring.cycle, &sc, wl, 0).expect("mapped");
        prop_assert_eq!(plan.routes.len(), net.signal_count());
        prop_assert_eq!(plan.validate(), Ok(()));
        for wg in &plan.ring_waveguides {
            prop_assert!(wg.lanes.len() <= wl);
        }
    }

    #[test]
    fn opening_preserves_validity(net in arb_net(), wl in 2usize..12) {
        let ring = RingBuilder::new()
            .with_algorithm(RingAlgorithm::Heuristic)
            .build(&net)
            .expect("ring");
        let mut plan =
            map_signals(&net, &ring.cycle, &ShortcutPlan::empty(), wl, 0).expect("mapped");
        let total_before: usize = plan
            .ring_waveguides
            .iter()
            .flat_map(|w| &w.lanes)
            .map(|l| l.arcs.len())
            .sum();
        open_rings(&ring.cycle, &mut plan, wl);
        let total_after: usize = plan
            .ring_waveguides
            .iter()
            .flat_map(|w| &w.lanes)
            .map(|l| l.arcs.len())
            .sum();
        prop_assert_eq!(total_before, total_after, "signals lost in migration");
        prop_assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn full_pipeline_invariants(net in arb_net()) {
        let design = Synthesizer::new(SynthesisOptions {
            ring_algorithm: RingAlgorithm::Heuristic,
            ..SynthesisOptions::with_wavelengths(8)
        })
        .synthesize(&net)
        .expect("synthesis succeeds");
        // Every signal routed, every route well-formed.
        prop_assert_eq!(design.layout.signals.len(), net.signal_count());
        for (i, r) in design.plan.routes.iter().enumerate() {
            match r.kind {
                RouteKind::Ring { waveguide } => {
                    prop_assert!(waveguide < design.plan.ring_waveguides.len());
                }
                RouteKind::ShortcutDirect { shortcut }
                | RouteKind::ShortcutCse { enter: shortcut, .. } => {
                    prop_assert!(shortcut < design.shortcuts.shortcuts.len(), "signal {}", i);
                }
            }
        }
        // The report is finite and sane.
        let report = design.report(
            "prop",
            &LossParams::default(),
            Some(&CrosstalkParams::default()),
            &PowerParams::default(),
        );
        prop_assert!(report.worst_il_db.is_finite() && report.worst_il_db > 0.0);
        prop_assert!(report.total_power_w.expect("pdn modelled").is_finite());
        prop_assert!(report.noise_free_fraction().expect("noise evaluated") >= 0.9);
    }

    #[test]
    fn shortcut_plan_respects_structural_rules(net in arb_net()) {
        let ring = RingBuilder::new()
            .with_algorithm(RingAlgorithm::Heuristic)
            .build(&net)
            .expect("ring");
        let plan = plan_shortcuts(&net, &ring.cycle);
        // One shortcut per node.
        let mut used = std::collections::HashSet::new();
        for s in &plan.shortcuts {
            prop_assert!(used.insert(s.a));
            prop_assert!(used.insert(s.b));
            prop_assert!(s.gain_um > 0);
        }
        // Crossing partnerships are symmetric and 1:1.
        for (i, s) in plan.shortcuts.iter().enumerate() {
            if let Some(p) = s.crossing_partner {
                prop_assert_eq!(plan.shortcuts[p].crossing_partner, Some(i));
            }
        }
    }
}
