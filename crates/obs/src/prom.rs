//! Prometheus text-exposition (format 0.0.4) rendering of a drained
//! [`Trace`]: counter totals become `_total` counters, the last sample
//! of each gauge becomes a gauge, and histogram snapshots become
//! cumulative `_bucket{le="…"}` series with `_sum`/`_count`.
//!
//! The output is a point-in-time snapshot written to a file
//! (`xring … --metrics-out FILE`); the same renderer can back an HTTP
//! `/metrics` endpoint later without touching the recording layer.

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::hist::HistogramSnapshot;
use crate::trace::Trace;

/// Rewrites `name` into a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every invalid character becomes `_`,
/// so the workspace's dotted names (`milp.nodes`) map to underscored
/// ones (`milp_nodes`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Checks that `text` is well-formed Prometheus text exposition (format
/// 0.0.4) as this crate emits it: every comment is a `# TYPE` line and
/// every sample line is `name value` or `name{le="…"} value` with a valid
/// metric name and a parseable value. Returns the first offence, if any.
///
/// This is the golden-test harness shared by the obs tests and the
/// `xring-serve` protocol tests — any endpoint claiming to serve
/// Prometheus text can assert against it.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    for line in text.lines() {
        if line.starts_with('#') {
            if !line.starts_with("# TYPE ") {
                return Err(format!("comment is not a # TYPE line: {line}"));
            }
            continue;
        }
        let Some((name_part, value)) = line.rsplit_once(' ') else {
            return Err(format!("no space-separated value: {line}"));
        };
        if value.parse::<f64>().is_err() {
            return Err(format!("unparseable value: {line}"));
        }
        let name = name_part.split('{').next().unwrap_or("");
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("invalid metric name: {line}"));
        }
        if let Some(rest) = name_part.strip_prefix(name) {
            let label_ok = rest.is_empty() || (rest.starts_with("{le=\"") && rest.ends_with("\"}"));
            if !label_ok {
                return Err(format!("malformed label set: {line}"));
            }
        }
    }
    Ok(())
}

fn write_histogram<W: Write>(w: &mut W, h: &HistogramSnapshot) -> io::Result<()> {
    let metric = format!("xring_{}", sanitize_metric_name(&h.name));
    writeln!(w, "# TYPE {metric} histogram")?;
    let mut cumulative = 0u64;
    for &(le, count) in &h.buckets {
        cumulative += count;
        writeln!(w, "{metric}_bucket{{le=\"{le}\"}} {cumulative}")?;
    }
    // The +Inf bucket is the total count by definition; overflow
    // samples appear only here.
    writeln!(w, "{metric}_bucket{{le=\"+Inf\"}} {}", h.count)?;
    writeln!(w, "{metric}_sum {}", h.sum)?;
    writeln!(w, "{metric}_count {}", h.count)
}

impl Trace {
    /// Writes the trace as Prometheus text exposition format 0.0.4:
    /// one `# TYPE` block per metric — counters first, then gauges
    /// (last sample per name wins), then histograms — all under an
    /// `xring_` prefix with [`sanitize_metric_name`]-mangled names.
    pub fn write_prometheus<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (name, value) in &self.totals {
            let metric = format!("xring_{}_total", sanitize_metric_name(name));
            writeln!(w, "# TYPE {metric} counter")?;
            writeln!(w, "{metric} {value}")?;
        }
        // A gauge exposition is point-in-time: keep the latest sample
        // of each name (samples may arrive out of order across
        // threads, so compare timestamps rather than trusting order).
        let mut latest: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
        for g in &self.gauges {
            let entry = latest.entry(&g.name).or_insert((g.at_ns, g.value));
            if g.at_ns >= entry.0 {
                *entry = (g.at_ns, g.value);
            }
        }
        for (name, (_, value)) in latest {
            let metric = format!("xring_{}", sanitize_metric_name(name));
            writeln!(w, "# TYPE {metric} gauge")?;
            writeln!(w, "{metric} {value}")?;
        }
        for h in &self.hists {
            write_histogram(w, h)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::GaugeRecord;

    fn sample_trace() -> Trace {
        Trace {
            spans: Vec::new(),
            gauges: vec![
                GaugeRecord {
                    name: "engine.queue_depth".to_owned(),
                    value: 3.0,
                    thread: 1,
                    at_ns: 10,
                },
                GaugeRecord {
                    name: "engine.queue_depth".to_owned(),
                    value: 1.5,
                    thread: 2,
                    at_ns: 20,
                },
            ],
            totals: vec![
                ("milp.nodes".to_owned(), 42),
                ("milp.lp_solves".to_owned(), 7),
            ],
            hists: vec![HistogramSnapshot {
                name: "engine.queue_wait_us".to_owned(),
                count: 6,
                sum: 23,
                max: 9,
                overflow: 0,
                buckets: vec![(1, 1), (2, 2), (4, 0), (8, 2), (16, 1)],
            }],
        }
    }

    #[test]
    fn golden_exposition_output() {
        let mut out = Vec::new();
        sample_trace().write_prometheus(&mut out).unwrap();
        let expected = "\
# TYPE xring_milp_nodes_total counter
xring_milp_nodes_total 42
# TYPE xring_milp_lp_solves_total counter
xring_milp_lp_solves_total 7
# TYPE xring_engine_queue_depth gauge
xring_engine_queue_depth 1.5
# TYPE xring_engine_queue_wait_us histogram
xring_engine_queue_wait_us_bucket{le=\"1\"} 1
xring_engine_queue_wait_us_bucket{le=\"2\"} 3
xring_engine_queue_wait_us_bucket{le=\"4\"} 3
xring_engine_queue_wait_us_bucket{le=\"8\"} 5
xring_engine_queue_wait_us_bucket{le=\"16\"} 6
xring_engine_queue_wait_us_bucket{le=\"+Inf\"} 6
xring_engine_queue_wait_us_sum 23
xring_engine_queue_wait_us_count 6
";
        assert_eq!(String::from_utf8(out).unwrap(), expected);
    }

    fn assert_parses(text: &str) {
        validate_exposition(text).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_exposition("# HELP foo bar").is_err());
        assert!(validate_exposition("no_value").is_err());
        assert!(validate_exposition("name not-a-number").is_err());
        assert!(validate_exposition("bad-name 1").is_err());
        assert!(validate_exposition("name{job=\"x\"} 1").is_err());
        assert!(validate_exposition("# TYPE ok counter\nok 1\n").is_ok());
        assert!(validate_exposition("h_bucket{le=\"+Inf\"} 3").is_ok());
    }

    #[test]
    fn exposition_parses_with_monotone_buckets_and_consistent_totals() {
        let mut out = Vec::new();
        sample_trace().write_prometheus(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_parses(&text);

        // Histogram invariants: cumulative bucket counts are monotone
        // non-decreasing in `le`, +Inf equals `_count`, and `_sum` is
        // consistent with the bucket bounds.
        let bucket_lines: Vec<&str> = text.lines().filter(|l| l.contains("_bucket{le=")).collect();
        let mut last_cum = 0u64;
        let mut last_le = 0u64;
        for line in &bucket_lines {
            let cum: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(cum >= last_cum, "cumulative counts regress: {line}");
            last_cum = cum;
            let le = line
                .split("le=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap();
            if le != "+Inf" {
                let le: u64 = le.parse().unwrap();
                assert!(le > last_le, "le bounds not increasing: {line}");
                last_le = le;
            }
        }
        let count: u64 = text
            .lines()
            .find(|l| l.ends_with(" 6") && l.contains("_count"))
            .and_then(|l| l.rsplit_once(' '))
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert_eq!(last_cum, count, "+Inf bucket equals _count");
        let sum: u64 = text
            .lines()
            .find(|l| l.contains("_sum "))
            .and_then(|l| l.rsplit_once(' '))
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert!(sum as f64 <= 16.0 * count as f64, "_sum exceeds max*count");
    }

    #[test]
    fn end_to_end_snapshot_from_live_recording() {
        let _lock = crate::test_guard();
        crate::start();
        crate::counter("prom.test.nodes", 5);
        crate::gauge("prom.test.depth", 2.5);
        crate::record_hist("prom.test.wait_us", 3);
        crate::record_hist("prom.test.wait_us", 300);
        let trace = crate::finish();
        let mut out = Vec::new();
        trace.write_prometheus(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_parses(&text);
        assert!(text.contains("xring_prom_test_nodes_total 5"));
        assert!(text.contains("xring_prom_test_depth 2.5"));
        assert!(text.contains("xring_prom_test_wait_us_sum 303"));
        assert!(text.contains("xring_prom_test_wait_us_count 2"));
        assert!(text.contains("xring_prom_test_wait_us_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(sanitize_metric_name("milp.nodes"), "milp_nodes");
        assert_eq!(sanitize_metric_name("queue-wait µs"), "queue_wait__s");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("a:b_c9"), "a:b_c9");
        assert_eq!(sanitize_metric_name(""), "_");
    }
}
