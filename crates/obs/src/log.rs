//! Structured, leveled JSONL logging.
//!
//! A deliberately tiny facility replacing ad-hoc `eprintln!`s: each event
//! is one JSON object per line with a monotonic timestamp, a severity
//! level, a `target` (the emitting subsystem), the message, optional
//! key/value fields, and — when the calling thread has a request attached
//! (see [`crate::RequestCtx`]) — the request id, so daemon logs correlate
//! with traces and the flight recorder for free.
//!
//! Events below the configured level are dropped with a single relaxed
//! atomic load. Output goes to stderr by default; [`set_output`] redirects
//! it (a log file, a test buffer).
//!
//! ```
//! use xring_obs::log::{self, Level};
//!
//! log::set_level(Level::Debug);
//! log::info("doctest", "starting", &[("port", "7878")]);
//! log::set_level(Level::Info);
//! ```

use std::io::Write;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::export::json_escape;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed; data or availability was affected.
    Error = 0,
    /// Something unexpected that the process absorbed.
    Warn = 1,
    /// Lifecycle and notable-progress events (the default level).
    Info = 2,
    /// High-volume diagnostic detail.
    Debug = 3,
}

impl Level {
    /// The lowercase name used in the JSONL `level` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(raw: u8) -> Level {
        match raw {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level '{other}' (expected error|warn|info|debug)"
            )),
        }
    }
}

/// The active threshold; events with a higher (less severe) level drop.
static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// The redirected sink, if any; `None` means stderr.
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Sets the severity threshold: events strictly less severe are dropped.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current severity threshold.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// `true` when an event at `level` would be emitted; callers batching
/// expensive field formatting can use it to skip the work.
pub fn enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Redirects log output (`None` restores stderr). The previous sink, if
/// any, is flushed and dropped.
pub fn set_output(sink: Option<Box<dyn Write + Send>>) {
    let mut slot = SINK.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(old) = slot.as_mut() {
        let _ = old.flush();
    }
    *slot = sink;
}

/// Emits one event. `fields` are appended as string-valued JSON members
/// after the standard ones; keys should be lowercase identifiers.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, &str)]) {
    if !enabled(level) {
        return;
    }
    let mut line = String::with_capacity(96 + msg.len());
    line.push_str("{\"ts_us\":");
    line.push_str(&(crate::trace::epoch_now_ns() / 1_000).to_string());
    line.push_str(",\"level\":\"");
    line.push_str(level.as_str());
    line.push_str("\",\"target\":\"");
    line.push_str(&json_escape(target));
    line.push_str("\",\"msg\":\"");
    line.push_str(&json_escape(msg));
    line.push('"');
    if let Some(req) = crate::reqctx::current_request_id() {
        line.push_str(",\"req\":\"");
        line.push_str(&req.to_hex());
        line.push('"');
    }
    for (key, value) in fields {
        line.push_str(",\"");
        line.push_str(&json_escape(key));
        line.push_str("\":\"");
        line.push_str(&json_escape(value));
        line.push('"');
    }
    line.push_str("}\n");
    let mut slot = SINK.lock().unwrap_or_else(|p| p.into_inner());
    match slot.as_mut() {
        Some(sink) => {
            let _ = sink.write_all(line.as_bytes());
            let _ = sink.flush();
        }
        None => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
    }
}

/// Emits an [`Level::Error`] event.
pub fn error(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Error, target, msg, fields);
}

/// Emits a [`Level::Warn`] event.
pub fn warn(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Warn, target, msg, fields);
}

/// Emits an [`Level::Info`] event.
pub fn info(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Info, target, msg, fields);
}

/// Emits a [`Level::Debug`] event.
pub fn debug(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Debug, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` that appends into a shared buffer, for capturing output.
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Logging state is global; tests share the trace test lock.
    fn with_capture(f: impl FnOnce()) -> String {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        set_output(Some(Box::new(Capture(Arc::clone(&buf)))));
        let prev = level();
        f();
        set_level(prev);
        set_output(None);
        let bytes = buf.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("warn".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("warning".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn threshold_drops_less_severe_events() {
        let _lock = crate::test_guard();
        let out = with_capture(|| {
            set_level(Level::Warn);
            assert!(enabled(Level::Error));
            assert!(!enabled(Level::Info));
            error("t", "kept-error", &[]);
            warn("t", "kept-warn", &[]);
            info("t", "dropped-info", &[]);
            debug("t", "dropped-debug", &[]);
        });
        assert!(out.contains("kept-error"));
        assert!(out.contains("kept-warn"));
        assert!(!out.contains("dropped"));
    }

    #[test]
    fn events_render_fields_and_escape() {
        let _lock = crate::test_guard();
        let out = with_capture(|| {
            set_level(Level::Info);
            info("serve", "got \"quoted\"", &[("addr", "127.0.0.1:0")]);
        });
        let line = out.lines().next().unwrap();
        assert!(line.starts_with("{\"ts_us\":"));
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"target\":\"serve\""));
        assert!(line.contains("\"msg\":\"got \\\"quoted\\\"\""));
        assert!(line.contains("\"addr\":\"127.0.0.1:0\""));
        assert!(!line.contains("\"req\""));
    }

    #[test]
    fn events_carry_the_attached_request_id() {
        let _lock = crate::test_guard();
        let ctx = crate::RequestCtx::new(crate::RequestId::mint(1, 2, 3));
        let hex = ctx.id().to_hex();
        let out = with_capture(|| {
            set_level(Level::Info);
            let _scope = ctx.attach();
            info("serve", "in-request", &[]);
        });
        assert!(out.contains(&format!("\"req\":\"{hex}\"")));
    }
}
